# Smoke test: `cosmos run --out` then `cosmos analyze` round-trips a
# trace through the binary format.
execute_process(
    COMMAND ${CLI} run micro_rmw --iterations 6
            --out ${WORK}/roundtrip.trace
    RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "cosmos run failed: ${rc1}")
endif()
execute_process(
    COMMAND ${CLI} analyze ${WORK}/roundtrip.trace --depth 2
    RESULT_VARIABLE rc2
    OUTPUT_VARIABLE out)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "cosmos analyze failed: ${rc2}")
endif()
if(NOT out MATCHES "overall")
    message(FATAL_ERROR "analyze output missing accuracy summary")
endif()
