/**
 * @file
 * cosmos -- command-line driver for the library.
 *
 * Subcommands:
 *   list                         available workloads
 *   run <app> [options]          simulate; print a run summary and
 *                                optionally save the message trace.
 *                                Instead of a built-in app, traffic
 *                                can come from an external capture
 *                                (--trace-file) or the synthetic
 *                                forge (--forge)
 *   gen [options]                write a forge stream as a text
 *                                trace file (--forge ... --out F)
 *   analyze <trace> [options]    replay a saved trace through Cosmos
 *   sweep <app> [options]        depth x filter accuracy table
 *   accel <app> [options]        baseline vs predictor-accelerated run
 *   figures <app> [options]      write Graphviz signature graphs
 *   census <app> [options]       sharing-pattern census
 *   fuzz [options]               schedule-fuzz the protocol under
 *                                the invariant checker (src/check)
 *   model [options]              exhaustively enumerate every
 *                                reachable protocol state of a small
 *                                configuration (src/model), check
 *                                safety invariants, lint the observed
 *                                transition table, and diff it
 *                                against the declared one
 *   lint [options]               statically analyze the declared
 *                                transition table (src/lint): no
 *                                exploration, just the rows --
 *                                completeness, determinism, message
 *                                conservation, channel discipline,
 *                                forwarding asymmetry
 *
 * Lint options:
 *   --nodes N        configured node count (default 2)
 *   --forwarding / --legacy-forwarding / --policy P
 *                    select the protocol variant whose table to build
 *   --capacity N     cache capacity in blocks (0 = unlimited);
 *                    enables the stale-invalidation rows
 *   --mutate KIND    plant a table bug before analyzing (must-fail CI
 *                    legs): missing_row | overlapping_rows |
 *                    dropped_response | out_of_order_consume |
 *                    forwarding_asymmetry
 *   --out FILE       write the cosmos-lint-v1 JSON artifact
 *
 * Model options:
 *   --nodes N        nodes in the modeled machine (default 2)
 *   --blocks N       modeled blocks (default 1)
 *   --reorder K      allow a delivery to overtake up to K earlier
 *                    messages on its channel (default 0 = the
 *                    simulator's FIFO contract)
 *   --max-states N   abort (as a liveness failure) past N states
 *   --forwarding     enable SGI-Origin-style request forwarding
 *                    (three-hop). Only inval_rw/downgrade recalls
 *                    are forwarded -- inval_ro sweeps never are,
 *                    since the home itself holds the data while the
 *                    block is shared. The transfer is closed by a
 *                    requester->home fwd_ack that keeps the
 *                    directory entry busy until the forwarded data
 *                    arrived; the full state space closes with zero
 *                    violations (see ARCHITECTURE.md "Protocol
 *                    assumptions")
 *   --legacy-forwarding
 *                    (with --forwarding) drop the fwd_ack handshake
 *                    and release the directory entry on the owner's
 *                    revision message alone -- the pre-fix protocol.
 *                    Negative-testing oracle: the checker must find
 *                    the direct-reply-vs-next-invalidation race
 *   --inject-ignore-inval N
 *                    plant the lost-invalidation bug (the checker
 *                    must find an SWMR counterexample)
 *   --out FILE       write the cosmos-model-v1 JSON artifact
 *   --counterexample-out FILE
 *                    write the first counterexample as a replayable
 *                    schedule (cosmos fuzz --replay-model FILE)
 *
 * Fuzz options:
 *   --seeds N        number of fuzz cases (default 100)
 *   --seed S         first seed of the campaign
 *   --replay S       re-run exactly one seed (and shrink if it fails)
 *   --nodes N        nodes per fuzz machine (default 4)
 *   --blocks N       contended blocks (default 8)
 *   --ops N          random ops per node (default 64)
 *   --jitter T       max extra delivery delay in ticks (default 64)
 *   --forge-mix F    probability in [0,1] that a case's workload is
 *                    structured forge traffic (migratory /
 *                    producer-consumer / false-sharing rounds)
 *                    instead of uniform random ops (default 0)
 *   --inject-ignore-inval N
 *                    plant a lost-invalidation bug: every Nth
 *                    inval_ro ack skips the invalidation (negative
 *                    testing -- the run must FAIL)
 *   --out FILE       write the cosmos-fuzz-v1 JSON artifact
 *   --replay-model FILE
 *                    execute a model-checker counterexample schedule
 *                    through the real simulator (jitter 0); exits
 *                    nonzero when the invariant engine confirms it
 *
 * Traffic options (run / gen):
 *   --trace-file P   (run) replay an external text trace -- a file of
 *                    `<proc> <r|w> <hexaddr>` lines or a benchmark
 *                    directory of such files (.gz transparent when
 *                    zlib is available). Use --nodes for machines
 *                    bigger than the default 16
 *   --forge SPEC     (run/gen) synthetic traffic with ground-truth
 *                    labels; SPEC is key=value pairs: migratory,
 *                    false, private, readonly (class fractions),
 *                    fanout, phase, blocks, procs, seed
 *   --forge-out F    (run --forge) write the per-class accuracy
 *                    report as cosmos-forge-v1 JSON
 *   --chunk N        accesses replayed per barrier-delimited chunk
 *                    (default 2048)
 *   --accesses N     (gen) accesses to write (default 100000)
 *
 * Common options:
 *   --iterations N   override the workload's iteration count; for
 *                    --forge, chunks to generate (default 64)
 *   --seed S         simulation seed (decimal or 0x hex)
 *   --policy P       owner-read policy: half-migratory | downgrade
 *   --depth D        MHR depth for analyze (default 2)
 *   --filter F       filter max count for analyze (default 0)
 *   --threads N      (sweep) worker threads; 0 = COSMOS_THREADS,
 *                    else hardware concurrency
 *   --out FILE       (run) save the trace here; (figures) output
 *                    directory (default ".")
 *   --metrics-out F  write the metrics registry as stable JSON
 *                    (run / analyze / sweep); the export contains
 *                    only Stability::stable metrics, so it is
 *                    byte-identical across runs and thread counts
 *   --trace-out F    record span/instant events for the whole
 *                    command and write Chrome trace-event JSON
 *                    (load in chrome://tracing or ui.perfetto.dev)
 *
 * Examples:
 *   cosmos run moldyn --iterations 20 --out moldyn.trace
 *   cosmos analyze moldyn.trace --depth 3
 *   cosmos sweep unstructured
 *   cosmos sweep micro_migratory --metrics-out metrics.json \
 *       --trace-out trace.json
 *   cosmos accel micro_rmw
 *   cosmos figures appbt --out figs/
 *   cosmos gen --forge migratory=0.4,fanout=3 --out synth.trace
 *   cosmos run --trace-file synth.trace --nodes 16
 *   cosmos run --forge migratory=0.4,phase=8 --forge-out forge.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <fstream>

#include "check/fuzzer.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "lint/analyzer.hh"
#include "lint/mutate.hh"
#include "lint/report.hh"
#include "forge/score.hh"
#include "forge/synth.hh"
#include "forge/text_trace.hh"
#include "harness/traffic.hh"
#include "model/explorer.hh"
#include "model/report.hh"
#include "cosmos/predictor_bank.hh"
#include "obs/metrics.hh"
#include "obs/trace_event.hh"
#include "harness/accel_runner.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/sweep.hh"
#include "trace/pattern_census.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace
{

using namespace cosmos;

struct CliArgs
{
    std::string command;
    std::string target;
    int iterations = -1;
    std::uint64_t seed = 0x5eedc05305ULL;
    OwnerReadPolicy policy = OwnerReadPolicy::half_migratory;
    unsigned depth = 2;
    unsigned filter = 0;
    unsigned threads = 0;
    std::string out;
    std::string metricsOut;
    std::string traceOut;

    // fuzz-only options
    unsigned fuzzSeeds = 100;
    bool haveReplay = false;
    std::uint64_t replaySeed = 0;
    unsigned fuzzNodes = 4;
    unsigned fuzzBlocks = 8;
    unsigned fuzzOps = 64;
    Tick fuzzJitter = 64;
    unsigned injectIgnoreInval = 0;
    std::string replayModel;
    double forgeMix = 0.0;

    // traffic options (run / gen)
    std::string traceFile;
    std::string forgeSpec;
    std::string forgeOut;
    std::size_t chunk = 2048;
    std::uint64_t genAccesses = 100000;

    // model-only options (--nodes / --blocks are shared with fuzz,
    // whose defaults differ, so the model command only overrides its
    // own defaults when the flag was given explicitly)
    bool haveNodes = false;
    bool haveBlocks = false;
    unsigned modelReorder = 0;
    std::size_t modelMaxStates = 1u << 20;
    bool forwarding = false;
    bool legacyForwarding = false;
    std::string counterexampleOut;

    // lint-only options
    std::string mutate;
    unsigned lintCapacity = 0;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: cosmos "
        "<list|run|gen|analyze|sweep|accel|figures|census|fuzz|model"
        "|lint> "
        "[target] [--iterations N] [--seed S]\n"
        "              [--policy half-migratory|downgrade] "
        "[--depth D] [--filter F] [--threads N] [--out FILE]\n"
        "              [--metrics-out FILE] [--trace-out FILE]\n"
        "       cosmos run --trace-file PATH [--nodes N] [--chunk N] "
        "[--out FILE]\n"
        "       cosmos run --forge SPEC [--nodes N] [--iterations N] "
        "[--forge-out FILE]\n"
        "       cosmos gen --forge SPEC --out FILE [--accesses N]\n"
        "       cosmos fuzz [--seeds N] [--seed S] [--replay S] "
        "[--nodes N] [--blocks N] [--ops N]\n"
        "              [--jitter T] [--forge-mix F] "
        "[--inject-ignore-inval N] "
        "[--replay-model FILE] [--out FILE]\n"
        "       cosmos model [--nodes N] [--blocks N] [--reorder K] "
        "[--max-states N] [--forwarding] [--legacy-forwarding]\n"
        "              [--policy half-migratory|downgrade] "
        "[--inject-ignore-inval N] [--out FILE]\n"
        "              [--counterexample-out FILE]\n"
        "       cosmos lint [--nodes N] [--forwarding] "
        "[--legacy-forwarding] [--policy P] [--capacity N]\n"
        "              [--mutate KIND] [--out FILE]\n");
    std::exit(2);
}

CliArgs
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    CliArgs args;
    args.command = argv[1];
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        args.target = argv[i++];
    for (; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--iterations") {
            args.iterations = std::atoi(value());
        } else if (flag == "--seed") {
            args.seed = std::strtoull(value(), nullptr, 0);
        } else if (flag == "--policy") {
            const std::string p = value();
            if (p == "half-migratory")
                args.policy = OwnerReadPolicy::half_migratory;
            else if (p == "downgrade")
                args.policy = OwnerReadPolicy::downgrade;
            else
                usage();
        } else if (flag == "--depth") {
            args.depth = static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--filter") {
            args.filter = static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--threads") {
            args.threads = static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--out") {
            args.out = value();
        } else if (flag == "--metrics-out") {
            args.metricsOut = value();
        } else if (flag == "--trace-out") {
            args.traceOut = value();
        } else if (flag == "--seeds") {
            args.fuzzSeeds = static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--replay") {
            args.haveReplay = true;
            args.replaySeed = std::strtoull(value(), nullptr, 0);
        } else if (flag == "--nodes") {
            args.fuzzNodes = static_cast<unsigned>(std::atoi(value()));
            args.haveNodes = true;
        } else if (flag == "--blocks") {
            args.fuzzBlocks =
                static_cast<unsigned>(std::atoi(value()));
            args.haveBlocks = true;
        } else if (flag == "--ops") {
            args.fuzzOps = static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--jitter") {
            args.fuzzJitter = std::strtoull(value(), nullptr, 0);
        } else if (flag == "--inject-ignore-inval") {
            args.injectIgnoreInval =
                static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--replay-model") {
            args.replayModel = value();
        } else if (flag == "--forge-mix") {
            args.forgeMix = std::atof(value());
        } else if (flag == "--trace-file") {
            args.traceFile = value();
        } else if (flag == "--forge") {
            args.forgeSpec = value();
        } else if (flag == "--forge-out") {
            args.forgeOut = value();
        } else if (flag == "--chunk") {
            args.chunk = static_cast<std::size_t>(
                std::strtoull(value(), nullptr, 0));
        } else if (flag == "--accesses") {
            args.genAccesses = std::strtoull(value(), nullptr, 0);
        } else if (flag == "--reorder") {
            args.modelReorder =
                static_cast<unsigned>(std::atoi(value()));
        } else if (flag == "--max-states") {
            args.modelMaxStates =
                static_cast<std::size_t>(std::strtoull(value(),
                                                       nullptr, 0));
        } else if (flag == "--forwarding") {
            args.forwarding = true;
        } else if (flag == "--legacy-forwarding") {
            args.legacyForwarding = true;
        } else if (flag == "--counterexample-out") {
            args.counterexampleOut = value();
        } else if (flag == "--mutate") {
            args.mutate = value();
        } else if (flag == "--capacity") {
            args.lintCapacity =
                static_cast<unsigned>(std::atoi(value()));
        } else {
            usage();
        }
    }
    return args;
}

harness::RunConfig
makeRunConfig(const CliArgs &args)
{
    harness::RunConfig cfg;
    cfg.app = args.target;
    cfg.iterations = args.iterations;
    cfg.seed = args.seed;
    cfg.machine.ownerReadPolicy = args.policy;
    cfg.checkInvariants = false;
    return cfg;
}

/** Write @p reg to @p path and confirm on stdout (no-op when the
 *  --metrics-out flag was absent). */
void
maybeWriteMetrics(const obs::Registry &reg, const std::string &path)
{
    if (path.empty())
        return;
    if (reg.writeJson(path))
        std::printf("metrics written to %s\n", path.c_str());
}

void
printAnalysis(const trace::Trace &trace, unsigned depth,
              unsigned filter, obs::Registry *reg = nullptr)
{
    pred::PredictorBank bank(trace.numNodes,
                             pred::CosmosConfig{depth, filter});
    bank.replay(trace);
    if (reg != nullptr)
        bank.publishMetrics(*reg);
    const auto &acc = bank.accuracy();
    std::printf("Cosmos depth %u, filter %u over %zu messages:\n",
                depth, filter, trace.records.size());
    std::printf("  cache %.1f%%  directory %.1f%%  overall %.1f%%\n",
                acc.cacheSide().percent(),
                acc.directorySide().percent(),
                acc.overall().percent());
    const auto mem = bank.memoryStats();
    std::printf("  memory: PHT/MHR ratio %.2f, overhead %.1f%% of a "
                "128B block\n",
                mem.ratio(), mem.overheadPercent());
    for (auto role : {proto::Role::cache, proto::Role::directory}) {
        std::printf("  dominant arcs at the %s (hit%%/ref%%):\n",
                    proto::toString(role));
        for (const auto &arc : bank.arcs(role).dominantArcs(3.0)) {
            std::printf("    %-22s -> %-22s %3.0f/%-3.0f\n",
                        proto::toString(arc.from),
                        proto::toString(arc.to), arc.hitPercent,
                        arc.refPercent);
        }
    }
}

int
cmdList()
{
    std::printf("paper applications:\n");
    for (const auto &name : wl::paperWorkloads())
        std::printf("  %s\n", name.c_str());
    std::printf("microbenchmarks:\n");
    for (const char *name :
         {"micro_producer_consumer", "micro_migratory", "micro_rmw",
          "micro_false_sharing"})
        std::printf("  %s\n", name);
    return 0;
}

/** The shared first lines of every run summary. */
void
printRunSummary(const std::string &label,
                const harness::RunResult &result)
{
    std::printf("%s: %zu messages, %zu blocks, %llu events, "
                "%llu ns simulated\n",
                label.c_str(), result.trace.records.size(),
                result.trace.distinctBlocks(),
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.finalTime));
    std::printf("network: %s\n", result.network.format().c_str());
}

/** `cosmos run --trace-file` / `cosmos run --forge`: pull traffic
 *  from an external capture or the synthetic forge instead of a
 *  built-in kernel. */
int
cmdRunTraffic(const CliArgs &args)
{
    if (!args.traceFile.empty() && !args.forgeSpec.empty())
        usage();
    obs::Registry reg;
    harness::TrafficConfig cfg;
    cfg.machine.ownerReadPolicy = args.policy;
    cfg.machine.seed = args.seed;
    cfg.opsPerIteration = args.chunk;
    cfg.maxIterations = args.iterations;
    if (!args.metricsOut.empty())
        cfg.metrics = &reg;

    std::unique_ptr<forge::TextTraceReader> reader;
    std::unique_ptr<forge::SynthSource> synth;
    forge::TrafficSource *source = nullptr;
    if (!args.traceFile.empty()) {
        cfg.machine.numNodes =
            args.haveNodes ? static_cast<NodeId>(args.fuzzNodes)
                           : cfg.machine.numNodes;
        reader = std::make_unique<forge::TextTraceReader>(
            args.traceFile, cfg.machine.numNodes);
        source = reader.get();
    } else {
        forge::ForgeParams params;
        std::string err;
        if (!forge::ForgeParams::parse(args.forgeSpec, params,
                                       &err)) {
            std::fprintf(stderr, "bad --forge spec: %s\n",
                         err.c_str());
            return 2;
        }
        cfg.machine.numNodes =
            args.haveNodes ? static_cast<NodeId>(args.fuzzNodes)
                           : params.numProcs;
        cfg.machine.blockBytes = params.blockBytes;
        cfg.machine.pageBytes = params.pageBytes;
        if (cfg.maxIterations < 0)
            cfg.maxIterations = 64; // chunks; forge is unbounded
        synth = std::make_unique<forge::SynthSource>(params);
        source = synth.get();
        std::printf("forge: %s\n", params.summary().c_str());
    }

    const auto result = harness::runTraffic(cfg, *source);
    printRunSummary(source->name(), result);
    if (reader != nullptr) {
        std::printf("ingested: %llu accesses over %llu lines "
                    "(%llu bytes%s)\n",
                    static_cast<unsigned long long>(
                        reader->accessesRead()),
                    static_cast<unsigned long long>(
                        reader->linesRead()),
                    static_cast<unsigned long long>(
                        reader->bytesRead()),
                    forge::gzipSupported() ? ", gzip-capable" : "");
    }

    if (synth != nullptr) {
        const auto score = forge::scoreByClass(
            result.trace, *synth,
            pred::CosmosConfig{args.depth, args.filter});
        std::fputs(score.formatTable().c_str(), stdout);
        if (!args.forgeOut.empty()) {
            if (forge::writeForgeReport(args.forgeOut, *synth,
                                        result.trace, score)) {
                std::printf("forge report written to %s\n",
                            args.forgeOut.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n",
                             args.forgeOut.c_str());
                return 1;
            }
        }
    }
    if (!args.out.empty()) {
        trace::saveTrace(args.out, result.trace);
        std::printf("trace written to %s\n", args.out.c_str());
    } else if (synth == nullptr) {
        printAnalysis(result.trace, args.depth, args.filter,
                      args.metricsOut.empty() ? nullptr : &reg);
    }
    maybeWriteMetrics(reg, args.metricsOut);
    return 0;
}

/** `cosmos gen`: write a forge stream as a text trace file that
 *  `cosmos run --trace-file` (or any other simulator speaking the
 *  format) can ingest. */
int
cmdGen(const CliArgs &args)
{
    if (args.out.empty())
        usage();
    forge::ForgeParams params;
    std::string err;
    if (!forge::ForgeParams::parse(args.forgeSpec, params, &err)) {
        std::fprintf(stderr, "bad --forge spec: %s\n", err.c_str());
        return 2;
    }
    forge::SynthSource src(params);
    std::printf("forge: %s\n", params.summary().c_str());
    const std::uint64_t n =
        forge::writeTextTrace(args.out, src, args.genAccesses);
    std::vector<std::uint64_t> byClass(forge::num_block_classes, 0);
    for (forge::BlockClass c : src.labels())
        ++byClass[static_cast<unsigned>(c)];
    std::printf("wrote %llu accesses (%u full rounds) to %s\n",
                static_cast<unsigned long long>(n), src.round(),
                args.out.c_str());
    std::printf("ground truth:");
    for (unsigned i = 0; i < forge::num_block_classes; ++i) {
        std::printf(" %s=%llu",
                    forge::toString(
                        static_cast<forge::BlockClass>(i)),
                    static_cast<unsigned long long>(byClass[i]));
    }
    std::printf(" blocks\n");
    return 0;
}

int
cmdRun(const CliArgs &args)
{
    if (!args.traceFile.empty() || !args.forgeSpec.empty()) {
        if (!args.target.empty())
            usage();
        return cmdRunTraffic(args);
    }
    if (args.target.empty())
        usage();
    obs::Registry reg;
    harness::RunConfig cfg = makeRunConfig(args);
    if (!args.metricsOut.empty())
        cfg.metrics = &reg;
    auto result = harness::runWorkload(cfg);
    printRunSummary(args.target, result);
    if (!result.workloadStats.empty())
        std::printf("workload: %s\n", result.workloadStats.c_str());
    std::printf("protocol: %llu loads, %llu stores, %llu read "
                "misses, %llu write misses, %llu upgrades\n",
                static_cast<unsigned long long>(result.totals.loads),
                static_cast<unsigned long long>(result.totals.stores),
                static_cast<unsigned long long>(
                    result.totals.readMisses),
                static_cast<unsigned long long>(
                    result.totals.writeMisses),
                static_cast<unsigned long long>(
                    result.totals.upgrades));
    if (!args.out.empty()) {
        trace::saveTrace(args.out, result.trace);
        std::printf("trace written to %s\n", args.out.c_str());
    } else {
        printAnalysis(result.trace, args.depth, args.filter,
                      args.metricsOut.empty() ? nullptr : &reg);
    }
    maybeWriteMetrics(reg, args.metricsOut);
    return 0;
}

int
cmdAnalyze(const CliArgs &args)
{
    if (args.target.empty())
        usage();
    const auto trace = trace::loadTrace(args.target);
    std::printf("trace: app=%s nodes=%u iterations=%d\n",
                trace.app.c_str(), trace.numNodes, trace.iterations);
    obs::Registry reg;
    printAnalysis(trace, args.depth, args.filter,
                  args.metricsOut.empty() ? nullptr : &reg);
    maybeWriteMetrics(reg, args.metricsOut);
    return 0;
}

int
cmdSweep(const CliArgs &args)
{
    if (args.target.empty())
        usage();
    // All 12 depth x filter cells replay the one simulated trace
    // concurrently through the parallel sweep engine.
    std::vector<replay::ReplayJob> jobs;
    for (unsigned depth = 1; depth <= 4; ++depth)
        for (unsigned filter = 0; filter <= 2; ++filter)
            jobs.push_back(
                {.app = args.target,
                 .iterations = args.iterations,
                 .policy = args.policy,
                 .seed = args.seed,
                 .config = pred::CosmosConfig{depth, filter}});
    obs::Registry reg;
    harness::SweepOptions opts{.threads = args.threads};
    if (!args.metricsOut.empty())
        opts.metrics = &reg;
    const auto results = harness::runSweep(jobs, opts);
    if (!args.metricsOut.empty())
        harness::publishSweepMetrics(jobs, results, reg);

    TextTable table("overall accuracy (%), " + args.target);
    table.setHeader({"Depth", "filter 0", "filter 1", "filter 2"});
    std::size_t i = 0;
    for (unsigned depth = 1; depth <= 4; ++depth) {
        std::vector<std::string> row = {std::to_string(depth)};
        for (unsigned filter = 0; filter <= 2; ++filter, ++i)
            row.push_back(TextTable::num(
                results[i].accuracy.overall().percent(), 1));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    maybeWriteMetrics(reg, args.metricsOut);
    return 0;
}

int
cmdFigures(const CliArgs &args)
{
    if (args.target.empty())
        usage();
    auto result = harness::runWorkload(makeRunConfig(args));
    pred::PredictorBank bank(result.trace.numNodes,
                             pred::CosmosConfig{args.depth,
                                                args.filter});
    bank.replay(result.trace);
    const std::string dir = args.out.empty() ? "." : args.out;
    for (const auto &path : harness::dumpSignatureDots(
             args.target, bank.arcs(proto::Role::cache),
             bank.arcs(proto::Role::directory), dir)) {
        std::printf("wrote %s\n", path.c_str());
    }
    std::printf("render with: dot -Tsvg <file> -o <file>.svg\n");
    return 0;
}

int
cmdCensus(const CliArgs &args)
{
    if (args.target.empty())
        usage();
    auto result = harness::runWorkload(makeRunConfig(args));
    const auto census = trace::classifyTrace(result.trace);
    std::printf("sharing-pattern census of %s (%llu classified "
                "blocks, %llu directory messages):\n%s",
                args.target.c_str(),
                static_cast<unsigned long long>(census.totalBlocks),
                static_cast<unsigned long long>(census.totalMessages),
                census.format().c_str());
    return 0;
}

int
cmdAccel(const CliArgs &args)
{
    if (args.target.empty())
        usage();
    const auto cfg = makeRunConfig(args);
    const auto base = harness::runWorkload(cfg);
    accel::OnlineOptions opts;
    opts.predictor = pred::CosmosConfig{args.depth,
                                        std::max(args.filter, 1u)};
    const auto acc = harness::runAccelerated(cfg, opts);
    const double speedup =
        100.0 * (static_cast<double>(base.finalTime) /
                     static_cast<double>(acc.run.finalTime) -
                 1.0);
    std::printf("baseline:     %llu ns, %llu remote messages, "
                "%llu upgrades\n",
                static_cast<unsigned long long>(base.finalTime),
                static_cast<unsigned long long>(
                    base.network.remoteMessages),
                static_cast<unsigned long long>(
                    base.totals.upgrades));
    std::printf("accelerated:  %llu ns, %llu remote messages, "
                "%llu upgrades\n",
                static_cast<unsigned long long>(acc.run.finalTime),
                static_cast<unsigned long long>(
                    acc.run.network.remoteMessages),
                static_cast<unsigned long long>(
                    acc.run.totals.upgrades));
    std::printf("speedup %.1f%%; %llu exclusive grants, %llu "
                "recalls; live predictor accuracy %.1f%%\n",
                speedup,
                static_cast<unsigned long long>(
                    acc.run.totals.exclusiveGrants),
                static_cast<unsigned long long>(
                    acc.run.totals.recalls),
                acc.predictorAccuracyPercent);
    return 0;
}

check::FuzzOptions
makeFuzzOptions(const CliArgs &args)
{
    check::FuzzOptions opts;
    opts.numSeeds = args.fuzzSeeds;
    opts.baseSeed = args.seed;
    opts.numNodes = static_cast<NodeId>(args.fuzzNodes);
    opts.numBlocks = args.fuzzBlocks;
    opts.opsPerNode = args.fuzzOps;
    opts.maxJitter = args.fuzzJitter;
    opts.ignoreInvalEvery = args.injectIgnoreInval;
    opts.forgeMix = args.forgeMix;
    return opts;
}

void
printReplayHint(const check::FuzzOptions &opts, std::uint64_t seed)
{
    std::printf("replay with: cosmos fuzz --replay %llu --nodes %u "
                "--blocks %u --ops %u --jitter %llu",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned>(opts.numNodes), opts.numBlocks,
                opts.opsPerNode,
                static_cast<unsigned long long>(opts.maxJitter));
    if (opts.ignoreInvalEvery != 0)
        std::printf(" --inject-ignore-inval %u", opts.ignoreInvalEvery);
    std::printf("\n");
}

/** Execute a model-checker counterexample through the real
 *  simulator: zero jitter, so the network replays the schedule's
 *  issue order deterministically. Exits nonzero when the invariant
 *  engine confirms the violation -- CI's replay leg asserts that. */
int
replayModelCounterexample(const CliArgs &args)
{
    const check::FuzzCase c =
        check::loadCounterexample(args.replayModel);
    check::FuzzOptions opts;
    opts.maxJitter = 0;
    const check::CaseResult r = check::runCase(c, opts);
    std::printf("model counterexample %s: %s (%llu messages "
                "delivered)\n",
                args.replayModel.c_str(),
                r.failed ? "CONFIRMED" : "did not reproduce",
                static_cast<unsigned long long>(r.delivered));
    for (const auto &v : r.violations)
        std::printf("%s\n", v.format().c_str());
    return r.failed ? 1 : 0;
}

int
cmdModel(const CliArgs &args)
{
    model::ExploreOptions opt;
    opt.mc.numNodes = static_cast<NodeId>(args.haveNodes
                                              ? args.fuzzNodes
                                              : 2u);
    opt.mc.numBlocks = args.haveBlocks ? args.fuzzBlocks : 1u;
    opt.mc.reorder = args.modelReorder;
    opt.mc.policy = args.policy;
    opt.mc.forwarding = args.forwarding;
    opt.mc.legacyForwarding = args.legacyForwarding;
    opt.mc.ignoreInvalEvery = args.injectIgnoreInval;
    opt.maxStates = args.modelMaxStates;
    opt.mc.validate();

    const model::ExploreResult res = model::explore(opt);
    std::fputs(model::renderReport(opt.mc, res).c_str(), stdout);

    if (!args.out.empty()) {
        if (model::writeReportJson(args.out, opt.mc, res)) {
            std::printf("model report written to %s\n",
                        args.out.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n",
                         args.out.c_str());
            return 1;
        }
    }
    if (!args.counterexampleOut.empty() &&
        !res.counterexamples.empty()) {
        if (model::writeCounterexample(args.counterexampleOut, opt.mc,
                                       res.counterexamples.front())) {
            std::printf("counterexample written to %s (replay with: "
                        "cosmos fuzz --replay-model %s)\n",
                        args.counterexampleOut.c_str(),
                        args.counterexampleOut.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n",
                         args.counterexampleOut.c_str());
            return 1;
        }
    }
    return res.clean() ? 0 : 1;
}

int
cmdLint(const CliArgs &args)
{
    lint::MutationKind kind = lint::MutationKind::none;
    if (!args.mutate.empty() &&
        !lint::parseMutation(args.mutate, kind)) {
        std::fprintf(stderr, "unknown --mutate kind '%s'\n",
                     args.mutate.c_str());
        return 2;
    }

    MachineConfig cfg;
    cfg.numNodes =
        static_cast<NodeId>(args.haveNodes ? args.fuzzNodes : 2u);
    cfg.forwarding = args.forwarding;
    cfg.legacyForwarding = args.legacyForwarding;
    cfg.ownerReadPolicy = args.policy;
    cfg.cacheCapacityBlocks = args.lintCapacity;

    proto::ProtocolTable table = proto::ProtocolTable::build(cfg);
    if (kind != lint::MutationKind::none) {
        std::printf("mutation: %s\n",
                    lint::applyMutation(table, kind).c_str());
    }

    const std::vector<lint::Finding> findings = lint::analyze(table);
    std::fputs(lint::renderReport(table, findings, kind).c_str(),
               stdout);

    if (!args.out.empty()) {
        std::ofstream f(args.out);
        if (f)
            f << lint::renderJson(table, findings, kind);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.out.c_str());
            return 2;
        }
        std::printf("lint report written to %s\n", args.out.c_str());
    }
    return findings.empty() ? 0 : 1;
}

int
cmdFuzz(const CliArgs &args)
{
    if (!args.replayModel.empty())
        return replayModelCounterexample(args);

    const check::FuzzOptions opts = makeFuzzOptions(args);

    check::FuzzReport report;
    if (args.haveReplay) {
        check::Failure f = check::replaySeed(args.replaySeed, opts);
        report.casesRun = 1;
        std::printf("replay seed %llu: %s (%llu messages "
                    "delivered)\n",
                    static_cast<unsigned long long>(args.replaySeed),
                    f.result.failed ? "FAILED" : "clean",
                    static_cast<unsigned long long>(
                        f.result.delivered));
        for (const auto &v : f.result.violations)
            std::printf("%s\n", v.format().c_str());
        if (f.result.failed) {
            std::printf("shrunk reproducer (%zu of %zu ops):\n",
                        f.shrunkOps, f.originalOps);
            for (const auto &line : f.reproducer)
                std::printf("  %s\n", line.c_str());
            report.failures.push_back(std::move(f));
        }
    } else {
        report = check::fuzz(opts, &std::cout);
        for (const auto &f : report.failures)
            printReplayHint(opts, f.result.seed);
    }

    if (!args.out.empty()) {
        if (check::writeReport(report, opts, args.out)) {
            std::printf("fuzz report written to %s\n",
                        args.out.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n",
                         args.out.c_str());
            return 1;
        }
    }
    return report.clean() ? 0 : 1;
}

int
dispatch(const CliArgs &args)
{
    if (args.command == "list")
        return cmdList();
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "gen")
        return cmdGen(args);
    if (args.command == "analyze")
        return cmdAnalyze(args);
    if (args.command == "sweep")
        return cmdSweep(args);
    if (args.command == "accel")
        return cmdAccel(args);
    if (args.command == "figures")
        return cmdFigures(args);
    if (args.command == "census")
        return cmdCensus(args);
    if (args.command == "fuzz")
        return cmdFuzz(args);
    if (args.command == "model")
        return cmdModel(args);
    if (args.command == "lint")
        return cmdLint(args);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = parse(argc, argv);
    if (!args.traceOut.empty())
        obs::startTracing();
    const int rc = dispatch(args);
    if (!args.traceOut.empty() && obs::writeTrace(args.traceOut))
        std::printf("trace events written to %s\n",
                    args.traceOut.c_str());
    return rc;
}
