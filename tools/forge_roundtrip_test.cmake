# Smoke test: `cosmos gen --forge` then `cosmos run --trace-file`
# round-trips a text trace through the streaming parser, and a
# malformed line is rejected with its file:line position.
execute_process(
    COMMAND ${CLI} gen
            --forge migratory=0.3,false=0.1,blocks=16,procs=4
            --accesses 4000 --out ${WORK}/forge_roundtrip.trace
    RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "cosmos gen failed: ${rc1}")
endif()
execute_process(
    COMMAND ${CLI} run --trace-file ${WORK}/forge_roundtrip.trace
            --nodes 4
    RESULT_VARIABLE rc2
    OUTPUT_VARIABLE out)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "cosmos run --trace-file failed: ${rc2}")
endif()
if(NOT out MATCHES "ingested: 4000 accesses")
    message(FATAL_ERROR "run did not ingest all generated accesses")
endif()
file(WRITE ${WORK}/forge_bad.trace "0 r 0x40\n1 q 0x80\n")
execute_process(
    COMMAND ${CLI} run --trace-file ${WORK}/forge_bad.trace --nodes 4
    RESULT_VARIABLE rc3
    OUTPUT_QUIET
    ERROR_VARIABLE err)
if(rc3 EQUAL 0)
    message(FATAL_ERROR "malformed trace line was not rejected")
endif()
if(NOT err MATCHES "forge_bad.trace:2:")
    message(FATAL_ERROR
        "rejection diagnostic lacks file:line position: ${err}")
endif()
