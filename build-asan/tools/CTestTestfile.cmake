# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build-asan/tools/cosmos" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build-asan/tools/cosmos" "run" "micro_rmw" "--iterations" "6")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build-asan/tools/cosmos" "sweep" "micro_migratory" "--iterations" "8")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_accel "/root/repo/build-asan/tools/cosmos" "accel" "micro_rmw" "--iterations" "10")
set_tests_properties(cli_accel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_figures "/root/repo/build-asan/tools/cosmos" "figures" "micro_producer_consumer" "--iterations" "8" "--out" "/root/repo/build-asan/tools/cli_figs")
set_tests_properties(cli_figures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_census "/root/repo/build-asan/tools/cosmos" "census" "micro_migratory" "--iterations" "8")
set_tests_properties(cli_census PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "/usr/bin/cmake" "-DCLI=/root/repo/build-asan/tools/cosmos" "-DWORK=/root/repo/build-asan/tools" "-P" "/root/repo/tools/trace_roundtrip_test.cmake")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build-asan/tools/cosmos" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_target "/root/repo/build-asan/tools/cosmos" "run")
set_tests_properties(cli_missing_target PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_flag "/root/repo/build-asan/tools/cosmos" "run" "micro_rmw" "--bogus")
set_tests_properties(cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
