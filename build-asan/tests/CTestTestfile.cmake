# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/proto_test[1]_include.cmake")
include("/root/repo/build-asan/tests/machine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pattern_census_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cosmos_test[1]_include.cmake")
include("/root/repo/build-asan/tests/variants_test[1]_include.cmake")
include("/root/repo/build-asan/tests/directed_test[1]_include.cmake")
include("/root/repo/build-asan/tests/accel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workloads_test[1]_include.cmake")
include("/root/repo/build-asan/tests/harness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/figures_test[1]_include.cmake")
include("/root/repo/build-asan/tests/golden_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/obs_test[1]_include.cmake")
include("/root/repo/build-asan/tests/online_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/regression_test[1]_include.cmake")
include("/root/repo/build-asan/tests/replay_test[1]_include.cmake")
include("/root/repo/build-asan/tests/check_test[1]_include.cmake")
include("/root/repo/build-asan/tests/model_test[1]_include.cmake")
