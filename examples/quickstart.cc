/**
 * @file
 * Quickstart: the paper's §3.1 walk-through in ~80 lines.
 *
 * 1. Build the 16-node target machine (Table 3 defaults).
 * 2. Run a producer-consumer micro-workload on it (Figure 2's
 *    shared_counter pattern).
 * 3. Attach a depth-1 Cosmos predictor bank to the captured trace and
 *    watch it learn the signature.
 *
 * Run:  ./quickstart
 */

#include <cstdio>

#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"
#include "workloads/micro.hh"

int
main()
{
    using namespace cosmos;

    // --- 1. machine + workload -----------------------------------
    harness::RunConfig cfg;
    cfg.machine.numNodes = 16; // the paper's target (Table 3)

    wl::ProducerConsumerParams params;
    params.blocks = 4;     // four shared_counter-style blocks
    params.consumers = 1;  // one consumer (Figure 2)
    params.iterations = 30;
    wl::ProducerConsumerMicro workload(params);

    std::printf("simulating %d iterations of a producer-consumer "
                "pattern on %u nodes...\n",
                params.iterations, cfg.machine.numNodes);
    auto result = harness::runWorkload(cfg, workload);
    std::printf("captured %zu coherence messages (%s)\n\n",
                result.trace.records.size(),
                result.network.format().c_str());

    // --- 2. show the incoming-message signature of block 0 -------
    std::printf("first messages received by the home directory for "
                "block 0 (the Figure 2b signature):\n");
    int shown = 0;
    const Addr block0 = result.trace.records.front().block;
    for (const auto &r : result.trace.records) {
        if (r.block != block0 || r.role != proto::Role::directory)
            continue;
        std::printf("  <P%u, %s>\n", r.sender, proto::toString(r.type));
        if (++shown == 8)
            break;
    }

    // --- 3. replay through Cosmos --------------------------------
    pred::PredictorBank bank(cfg.machine.numNodes,
                             pred::CosmosConfig{/*depth=*/1,
                                                /*filterMax=*/0});
    bank.replay(result.trace);

    const auto &acc = bank.accuracy();
    std::printf("\nCosmos (MHR depth 1, no filter):\n");
    std::printf("  cache-side accuracy:     %5.1f%%\n",
                acc.cacheSide().percent());
    std::printf("  directory-side accuracy: %5.1f%%\n",
                acc.directorySide().percent());
    std::printf("  overall accuracy:        %5.1f%%  (%llu "
                "predictions)\n",
                acc.overall().percent(),
                static_cast<unsigned long long>(acc.overall().total));
    std::printf("\nA stable sharing pattern produces a fixed message "
                "signature, so the\ntwo-level predictor is nearly "
                "perfect once warmed up -- the paper's core\n"
                "observation.\n");
    return 0;
}
