/**
 * @file
 * The §7 argument as a runnable demo: a workload whose sharing
 * pattern *changes phase* (unstructured's migratory <->
 * producer-consumer oscillation) defeats predictors directed at a
 * single pattern, while Cosmos -- which adapts to whatever message
 * signature actually occurs -- tracks both phases.
 *
 * Run:  ./directed_vs_cosmos
 */

#include <cstdio>

#include "cosmos/directed.hh"
#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"
#include "workloads/micro.hh"
#include "workloads/unstructured.hh"

namespace
{

using namespace cosmos;

void
report(const char *label, const trace::Trace &trace)
{
    pred::PredictorBank cosmos1(trace.numNodes,
                                pred::CosmosConfig{1, 0});
    pred::PredictorBank cosmos3(trace.numNodes,
                                pred::CosmosConfig{3, 0});
    pred::PredictorBank directed(
        trace.numNodes,
        [](NodeId, proto::Role role)
            -> std::unique_ptr<pred::MessagePredictor> {
            if (role == proto::Role::cache)
                return std::make_unique<pred::DsiPredictor>();
            return std::make_unique<pred::MigratoryPredictor>();
        });
    cosmos1.replay(trace);
    cosmos3.replay(trace);
    directed.replay(trace);

    std::printf("%-28s directed %5.1f%%   Cosmos d1 %5.1f%%   "
                "Cosmos d3 %5.1f%%\n",
                label, directed.accuracy().overall().percent(),
                cosmos1.accuracy().overall().percent(),
                cosmos3.accuracy().overall().percent());
}

} // namespace

int
main()
{
    using namespace cosmos;

    std::printf("overall prediction accuracy:\n\n");

    {
        // The directed predictors' home turf: a pure migratory
        // pattern. Both approaches do well here.
        harness::RunConfig cfg;
        wl::MigratoryParams params;
        params.iterations = 40;
        wl::MigratoryMicro workload(params);
        auto result = harness::runWorkload(cfg, workload);
        report("pure migratory (micro):", result.trace);
    }
    {
        // The §7 counterexample: unstructured oscillates between
        // migratory and producer-consumer phases on the same blocks.
        harness::RunConfig cfg;
        cfg.app = "unstructured";
        cfg.iterations = 25;
        auto result = harness::runWorkload(cfg);
        report("unstructured (composite):", result.trace);
    }

    std::printf(
        "\nA migratory-only or self-invalidation-only predictor "
        "covers just the\nslice of the message stream it was designed "
        "for; Cosmos discovers the\ncomposite, application-specific "
        "signature on its own and converts the\nextra history depth "
        "into accuracy -- the paper's case for general\nprediction "
        "over directed optimizations.\n");
    return 0;
}
