/**
 * @file
 * Trace workflow walk-through: simulate, save the coherence-message
 * trace to disk, load it back, and inspect it three ways --
 * sharing-pattern census, Cosmos accuracy at several depths, and a
 * Graphviz signature graph -- all through the public API. This is
 * the offline methodology of the paper (§5) as a program.
 *
 * Run:  ./replay_and_inspect [workload] [trace-file]
 */

#include <cstdio>
#include <string>

#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "trace/pattern_census.hh"
#include "trace/trace_io.hh"

int
main(int argc, char **argv)
{
    using namespace cosmos;

    const std::string app = argc > 1 ? argv[1] : "unstructured";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/" + app + ".trace";

    // --- 1. simulate and persist ----------------------------------
    harness::RunConfig cfg;
    cfg.app = app;
    cfg.iterations = 20;
    auto result = harness::runWorkload(cfg);
    trace::saveTrace(path, result.trace);
    std::printf("simulated %s: %zu messages -> %s\n", app.c_str(),
                result.trace.records.size(), path.c_str());

    // --- 2. reload (pretend this is a later analysis session) -----
    const trace::Trace trace = trace::loadTrace(path);
    std::printf("loaded: app=%s, %u nodes, %d iterations\n\n",
                trace.app.c_str(), trace.numNodes, trace.iterations);

    // --- 3a. sharing-pattern census --------------------------------
    std::printf("sharing-pattern census (directory side):\n%s\n",
                trace::classifyTrace(trace).format().c_str());

    // --- 3b. predictor sweep ---------------------------------------
    std::printf("Cosmos accuracy by depth:\n");
    for (unsigned depth = 1; depth <= 4; ++depth) {
        pred::PredictorBank bank(trace.numNodes,
                                 pred::CosmosConfig{depth, 0});
        bank.replay(trace);
        std::printf("  depth %u: %5.1f%% overall (%5.1f%% cache, "
                    "%5.1f%% directory)\n",
                    depth, bank.accuracy().overall().percent(),
                    bank.accuracy().cacheSide().percent(),
                    bank.accuracy().directorySide().percent());
    }

    // --- 3c. signature graph ---------------------------------------
    pred::PredictorBank bank(trace.numNodes, pred::CosmosConfig{1, 0});
    bank.replay(trace);
    const auto files = harness::dumpSignatureDots(
        app, bank.arcs(proto::Role::cache),
        bank.arcs(proto::Role::directory), "/tmp");
    std::printf("\nsignature graphs:\n");
    for (const auto &f : files)
        std::printf("  %s  (render: dot -Tsvg %s -o %s.svg)\n",
                    f.c_str(), f.c_str(), f.c_str());
    return 0;
}
