/**
 * @file
 * Acceleration walk-through (§4): from predictions to actions to an
 * estimated runtime win.
 *
 * Runs the appbt kernel (the paper's motivating stencil workload),
 * replays its trace through Cosmos, plans a §4.1 action for every
 * prediction -- reply-exclusive for read-modify-write, early
 * self-invalidation for predicted invalidations, data forwarding for
 * predicted misses -- verifies each action against the next actual
 * message, and reports the §4.4 model speedup at several (f, r)
 * operating points.
 *
 * Run:  ./producer_consumer_accel
 */

#include <cstdio>

#include "accel/speculation.hh"
#include "accel/speedup_model.hh"
#include "harness/experiment.hh"
#include "workloads/appbt.hh"

int
main()
{
    using namespace cosmos;

    harness::RunConfig cfg;
    wl::AppBtParams params;
    params.iterations = 30;
    wl::AppBt workload(params);

    std::printf("simulating appbt (%s)...\n",
                workload.info().description.c_str());
    auto result = harness::runWorkload(cfg, workload);
    std::printf("captured %zu messages\n\n",
                result.trace.records.size());

    const auto rep =
        accel::evaluateSpeculation(result.trace,
                                   pred::CosmosConfig{2, 0});
    std::printf("speculation evaluation (depth-2 Cosmos):\n%s\n",
                rep.format().c_str());
    std::printf("coverage %.1f%%, accuracy among actions %.1f%%\n\n",
                100.0 * rep.coverage(),
                100.0 * rep.actionAccuracy());

    std::printf("estimated speedup from the paper's execution model "
                "(section 4.4):\n");
    struct
    {
        double f, r;
        const char *what;
    } points[] = {
        {0.0, 0.5, "correct predictions fully overlapped"},
        {0.3, 0.5, "70% of latency hidden"},
        {0.3, 1.0, "70% hidden, expensive recovery"},
        {0.5, 0.25, "half hidden, cheap recovery"},
    };
    for (const auto &pt : points) {
        std::printf("  f=%.2f r=%.2f  ->  %+6.1f%%   (%s)\n", pt.f,
                    pt.r, rep.estimatedSpeedupPercent(pt.f, pt.r),
                    pt.what);
    }
    std::printf("\nmis-predicted actions needing rollback support: "
                "%llu of %llu\n",
                static_cast<unsigned long long>(
                    rep.recovery.checkpointRollback),
                static_cast<unsigned long long>(rep.actioned));
    return 0;
}
