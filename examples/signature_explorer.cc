/**
 * @file
 * Signature explorer: run any of the bundled workloads and print its
 * dominant incoming-message signatures (the Figures 6/7 view), plus
 * per-depth accuracy -- a working tool for investigating how sharing
 * patterns turn into predictable message streams.
 *
 * Run:  ./signature_explorer [workload] [iterations]
 *       ./signature_explorer moldyn 20
 * Workloads: appbt barnes dsmc moldyn unstructured
 *            micro_producer_consumer micro_migratory micro_rmw
 *            micro_false_sharing
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace cosmos;

    const std::string app = argc > 1 ? argv[1] : "moldyn";
    const int iterations = argc > 2 ? std::atoi(argv[2]) : -1;

    harness::RunConfig cfg;
    cfg.app = app;
    cfg.iterations = iterations;

    std::printf("running %s on %u nodes (%s)...\n", app.c_str(),
                cfg.machine.numNodes,
                cfg.machine.summary().c_str());
    auto result = harness::runWorkload(cfg);
    std::printf("%zu messages, %zu blocks, workload: %s\n\n",
                result.trace.records.size(),
                result.trace.distinctBlocks(),
                result.workloadStats.c_str());

    pred::PredictorBank bank(result.trace.numNodes,
                             pred::CosmosConfig{1, 0});
    bank.replay(result.trace);

    for (auto role : {proto::Role::cache, proto::Role::directory}) {
        std::printf("dominant signatures at the %s "
                    "(hit%% / ref%%):\n",
                    proto::toString(role));
        for (const auto &arc : bank.arcs(role).dominantArcs(2.0)) {
            std::printf("  %-22s -> %-22s  %3.0f/%-3.0f\n",
                        proto::toString(arc.from),
                        proto::toString(arc.to), arc.hitPercent,
                        arc.refPercent);
        }
        std::printf("\n");
    }

    std::printf("accuracy by MHR depth:\n");
    for (unsigned depth = 1; depth <= 4; ++depth) {
        pred::PredictorBank b(result.trace.numNodes,
                              pred::CosmosConfig{depth, 0});
        b.replay(result.trace);
        std::printf("  depth %u: cache %5.1f%%  directory %5.1f%%  "
                    "overall %5.1f%%\n",
                    depth, b.accuracy().cacheSide().percent(),
                    b.accuracy().directorySide().percent(),
                    b.accuracy().overall().percent());
    }
    return 0;
}
