/**
 * @file
 * Tests of live predictor-driven acceleration: the directory
 * speculation hook, voluntary recall semantics, and whole-machine
 * correctness and benefit of the online accelerator.
 */

#include <gtest/gtest.h>

#include "accel/online.hh"
#include "harness/accel_runner.hh"
#include "proto/invariants.hh"
#include "proto/machine.hh"
#include "workloads/micro.hh"

namespace cosmos
{
namespace
{

using proto::DirState;
using proto::LineState;

/** Speculation stub granting exclusivity to one chosen node. */
class AlwaysGrant : public proto::DirectorySpeculation
{
  public:
    explicit AlwaysGrant(NodeId who) : who_(who) {}

    bool
    grantExclusiveOnRead(Addr, NodeId requester) override
    {
        return requester == who_;
    }

  private:
    NodeId who_;
};

void
access(proto::Machine &m, NodeId node, Addr a, bool write)
{
    bool done = false;
    m.cache(node).access(a, write, [&]() { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
}

TEST(Speculation, GrantedReadArrivesExclusive)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    AlwaysGrant spec(2);
    for (NodeId n = 0; n < 4; ++n)
        m.directory(n).setSpeculation(&spec);

    const Addr block = cfg.pageBytes; // homed at node 1
    access(m, 2, block, false);       // read... granted exclusive
    EXPECT_EQ(m.cache(2).state(block), LineState::read_write);
    EXPECT_EQ(m.directory(1).state(block), DirState::exclusive);
    EXPECT_EQ(m.directory(1).stats().exclusiveGrants, 1u);
    // The subsequent store hits silently: the upgrade is gone.
    access(m, 2, block, true);
    EXPECT_EQ(m.cache(2).stats().storeHits, 1u);
    EXPECT_TRUE(proto::checkCoherence(m).empty());
}

TEST(Speculation, UngrantedReadStaysShared)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    AlwaysGrant spec(2);
    for (NodeId n = 0; n < 4; ++n)
        m.directory(n).setSpeculation(&spec);

    const Addr block = cfg.pageBytes;
    access(m, 3, block, false); // node 3 is not the chosen one
    EXPECT_EQ(m.cache(3).state(block), LineState::read_only);
    EXPECT_EQ(m.directory(1).state(block), DirState::shared);
}

TEST(Speculation, GrantAfterOwnerHandOffWorks)
{
    // The migratory fast path: reader hits an exclusive block, the
    // owner is invalidated, and the reader receives an exclusive
    // copy directly.
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    AlwaysGrant spec(3);
    for (NodeId n = 0; n < 4; ++n)
        m.directory(n).setSpeculation(&spec);

    const Addr block = cfg.pageBytes;
    access(m, 2, block, true); // node 2 owns it
    access(m, 3, block, false);
    EXPECT_EQ(m.cache(3).state(block), LineState::read_write);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_TRUE(proto::checkCoherence(m).empty());
}

TEST(Speculation, MisSpeculationRecoversWithoutRollback)
{
    // Grant exclusivity to a reader that never writes; a second
    // reader simply triggers the normal owner hand-off: legal-state
    // recovery (§4.3).
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    AlwaysGrant spec(2);
    for (NodeId n = 0; n < 4; ++n)
        m.directory(n).setSpeculation(&spec);

    const Addr block = cfg.pageBytes;
    access(m, 2, block, false); // granted exclusive (wrongly)
    access(m, 3, block, false); // other reader: owner invalidated
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.cache(3).state(block), LineState::read_only);
    EXPECT_TRUE(proto::checkCoherence(m).empty());
}

TEST(Recall, PullsExclusiveCopyHome)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    const Addr block = cfg.pageBytes;
    access(m, 2, block, true);
    EXPECT_TRUE(m.directory(1).voluntaryRecall(block));
    m.eventQueue().run();
    EXPECT_EQ(m.directory(1).state(block), DirState::idle);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.directory(1).stats().recalls, 1u);
    EXPECT_TRUE(proto::checkCoherence(m).empty());

    // The next read is a plain idle fetch: two remote messages.
    access(m, 3, block, false);
    EXPECT_EQ(m.cache(3).state(block), LineState::read_only);
}

TEST(Recall, RefusesNonExclusiveOrBusyBlocks)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine m(cfg);
    const Addr block = cfg.pageBytes;
    EXPECT_FALSE(m.directory(1).voluntaryRecall(block)); // unknown
    access(m, 2, block, false);
    EXPECT_FALSE(m.directory(1).voluntaryRecall(block)); // shared
    access(m, 3, block, true);
    EXPECT_TRUE(m.directory(1).voluntaryRecall(block));
    // Busy during the recall itself.
    EXPECT_FALSE(m.directory(1).voluntaryRecall(block));
    m.eventQueue().run();
}

TEST(OnlineAccelerator, RmwMicroGetsFasterAndStaysCoherent)
{
    harness::RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.checkInvariants = true; // full invariant checking while
                                // speculating

    const auto base = harness::runWorkload(cfg);
    accel::OnlineOptions opts;
    const auto acc = harness::runAccelerated(cfg, opts);

    EXPECT_LT(acc.run.finalTime, base.finalTime);
    EXPECT_LT(acc.run.network.remoteMessages,
              base.network.remoteMessages);
    EXPECT_LT(acc.run.totals.upgrades, base.totals.upgrades);
    EXPECT_GT(acc.run.totals.exclusiveGrants, 10u);
}

TEST(OnlineAccelerator, DisabledActionsMatchBaseline)
{
    harness::RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.checkInvariants = false;
    const auto base = harness::runWorkload(cfg);

    accel::OnlineOptions opts;
    opts.enableReplyExclusive = false;
    opts.enableVoluntaryRecall = false;
    const auto acc = harness::runAccelerated(cfg, opts);
    EXPECT_EQ(acc.run.finalTime, base.finalTime);
    EXPECT_EQ(acc.run.network.remoteMessages,
              base.network.remoteMessages);
    EXPECT_EQ(acc.run.totals.exclusiveGrants, 0u);
    EXPECT_EQ(acc.run.totals.recalls, 0u);
}

TEST(OnlineAccelerator, AllApplicationsStayCoherentWhileSpeculating)
{
    for (const auto &app : wl::paperWorkloads()) {
        harness::RunConfig cfg;
        cfg.app = app;
        cfg.iterations = 4;
        cfg.warmupIterations = 1;
        cfg.checkInvariants = true; // panics on violation
        accel::OnlineOptions opts;
        const auto acc = harness::runAccelerated(cfg, opts);
        EXPECT_GT(acc.run.trace.records.size(), 100u) << app;
    }
}

TEST(OnlineAccelerator, ConfidenceGatingSuppressesActions)
{
    harness::RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.checkInvariants = false;

    accel::OnlineOptions loose;
    const auto open = harness::runAccelerated(cfg, loose);

    accel::OnlineOptions strict;
    strict.minConfidence = 3;
    const auto gated = harness::runAccelerated(cfg, strict);

    EXPECT_GT(gated.accel.gatedByConfidence, 0u);
    EXPECT_LE(gated.run.totals.exclusiveGrants,
              open.run.totals.exclusiveGrants);
    // Gated runs still speculate once the streak builds up.
    EXPECT_GT(gated.run.totals.exclusiveGrants, 0u);
}

TEST(ForwardGate, PredictionGatesThreeHopForwarding)
{
    // micro_migratory hands the block around a stable ring, so the
    // confidence streak builds quickly: a gated run must still
    // forward most transfers, suppress some early (cold predictor),
    // and keep the fwd_ack handshake closed either way.
    harness::RunConfig cfg;
    cfg.app = "micro_migratory";
    cfg.checkInvariants = true;
    cfg.machine.forwarding = true;
    cfg.machine.forwardingPredicted = true;

    accel::OnlineOptions opts;
    opts.enableReplyExclusive = false;
    opts.enableVoluntaryRecall = false;
    opts.enableForwardGate = true;
    opts.minConfidence = 2;
    const auto acc = harness::runAccelerated(cfg, opts);

    EXPECT_GT(acc.accel.fwdQueries, 0u);
    EXPECT_GT(acc.accel.fwdGranted, 0u);
    EXPECT_LT(acc.accel.fwdGranted, acc.accel.fwdQueries);
    EXPECT_EQ(acc.run.totals.forwardsSent, acc.accel.fwdGranted);
    EXPECT_EQ(acc.run.totals.forwardsSuppressed,
              acc.accel.fwdQueries - acc.accel.fwdGranted);
    EXPECT_EQ(acc.run.totals.fwdAcks, acc.run.totals.forwardsSent);
}

TEST(ForwardGate, DisabledGateForwardsEverything)
{
    // forwardingPredicted consults the hook, but with the gate
    // option off the accelerator always answers "forward": the run
    // must match plain --forwarding exactly.
    harness::RunConfig cfg;
    cfg.app = "micro_migratory";
    cfg.checkInvariants = false;
    cfg.machine.forwarding = true;
    const auto base = harness::runWorkload(cfg);

    cfg.machine.forwardingPredicted = true;
    accel::OnlineOptions opts;
    opts.enableReplyExclusive = false;
    opts.enableVoluntaryRecall = false;
    const auto acc = harness::runAccelerated(cfg, opts);
    EXPECT_EQ(acc.run.finalTime, base.finalTime);
    EXPECT_EQ(acc.run.totals.forwardsSent, base.totals.forwardsSent);
    EXPECT_EQ(acc.run.totals.forwardsSuppressed, 0u);
    EXPECT_EQ(acc.accel.fwdQueries, 0u);
}

TEST(OnlineAccelerator, ReportsLivePredictorAccuracy)
{
    harness::RunConfig cfg;
    cfg.app = "micro_producer_consumer";
    cfg.checkInvariants = false;
    accel::OnlineOptions opts;
    const auto acc = harness::runAccelerated(cfg, opts);
    EXPECT_GT(acc.predictorAccuracyPercent, 50.0);
}

} // namespace
} // namespace cosmos
