/**
 * @file
 * Unit tests of the common substrate: address arithmetic, RNG
 * determinism and distribution sanity, statistics, table rendering,
 * and configuration validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/addr.hh"
#include "common/arena.hh"
#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace cosmos
{
namespace
{

TEST(AddrMap, BlockAndPageDecomposition)
{
    AddrMap amap(64, 4096, 16);
    EXPECT_EQ(amap.blockBase(0), 0u);
    EXPECT_EQ(amap.blockBase(63), 0u);
    EXPECT_EQ(amap.blockBase(64), 64u);
    EXPECT_EQ(amap.blockIndex(128), 2u);
    EXPECT_EQ(amap.pageBase(4095), 0u);
    EXPECT_EQ(amap.pageBase(4096), 4096u);
    EXPECT_EQ(amap.pageIndex(8192), 2u);
    EXPECT_EQ(amap.blocksPerPage(), 64u);
}

TEST(AddrMap, RoundRobinHomes)
{
    // §5.1: page X on node X mod N, page X+1 on node X+1 mod N.
    AddrMap amap(64, 4096, 16);
    for (std::uint64_t page = 0; page < 64; ++page) {
        EXPECT_EQ(amap.home(page * 4096),
                  static_cast<NodeId>(page % 16));
        EXPECT_EQ(amap.home(page * 4096 + 4095),
                  static_cast<NodeId>(page % 16));
    }
}

TEST(AddrMap, NonPowerOfTwoIsFatal)
{
    EXPECT_EXIT(AddrMap(48, 4096, 16),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(AddrMap(64, 100, 16), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(AddrMap(128, 64, 16), ::testing::ExitedWithCode(1),
                ">= block size");
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(11);
    std::vector<int> buckets(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBelow(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 * 0.9);
        EXPECT_LT(count, n / 8 * 1.1);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), -2);
    EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.fork();
    // The child must not replay the parent's stream.
    Rng b(99);
    b.next(); // advance past the fork draw
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (child.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Stats, HitRatioBasics)
{
    HitRatio r;
    EXPECT_DOUBLE_EQ(r.percent(), 0.0);
    r.record(true);
    r.record(true);
    r.record(false);
    EXPECT_EQ(r.hits, 2u);
    EXPECT_EQ(r.total, 3u);
    EXPECT_NEAR(r.percent(), 66.67, 0.01);

    HitRatio other;
    other.record(false);
    r.merge(other);
    EXPECT_EQ(r.total, 4u);
    EXPECT_NEAR(r.fraction(), 0.5, 1e-9);
}

TEST(Stats, DistributionTracksMinMaxMean)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, DistributionVarianceAndStddev)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    d.sample(5.0);
    // A single sample has no spread by definition.
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    d.sample(9.0);
    d.sample(1.0);
    // Population variance of {5, 9, 1}: mean 5, deviations 0/4/-4.
    EXPECT_NEAR(d.variance(), 32.0 / 3.0, 1e-9);
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 3.0), 1e-9);
}

TEST(Stats, DistributionMergeMatchesPooledSamples)
{
    Distribution a, b, pooled;
    for (double v : {1.0, 2.0, 3.0}) {
        a.sample(v);
        pooled.sample(v);
    }
    for (double v : {10.0, 20.0}) {
        b.sample(v);
        pooled.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), pooled.count());
    EXPECT_DOUBLE_EQ(a.mean(), pooled.mean());
    EXPECT_DOUBLE_EQ(a.min(), pooled.min());
    EXPECT_DOUBLE_EQ(a.max(), pooled.max());
    EXPECT_DOUBLE_EQ(a.variance(), pooled.variance());

    Distribution empty;
    a.merge(empty); // no-op
    EXPECT_EQ(a.count(), pooled.count());
}

TEST(Stats, HistogramEmptyAnswersZero)
{
    Histogram h = Histogram::linear(0.0, 10.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, HistogramSingleSampleAnswersExactly)
{
    Histogram h = Histogram::exponential(1.0, 2.0, 10);
    h.record(37.0);
    EXPECT_EQ(h.count(), 1u);
    // The bucket upper bound (64) clamps to the observed range.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 37.0);
}

TEST(Stats, HistogramPercentilesAndOverflowBucket)
{
    Histogram h = Histogram::linear(0.0, 100.0, 10);
    for (int v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);

    h.record(1e9); // overflow bucket; answers with the observed max
    EXPECT_EQ(h.counts().back(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
}

TEST(Stats, HistogramMergeMatchesPooledRecording)
{
    Histogram a = Histogram::linear(0.0, 50.0, 5);
    Histogram b = Histogram::linear(0.0, 50.0, 5);
    Histogram pooled = Histogram::linear(0.0, 50.0, 5);
    for (int v = 0; v < 30; ++v) {
        (v % 2 ? a : b).record(v);
        pooled.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), pooled.count());
    EXPECT_EQ(a.counts(), pooled.counts());
    EXPECT_DOUBLE_EQ(a.sum(), pooled.sum());
    EXPECT_DOUBLE_EQ(a.percentile(0.9), pooled.percentile(0.9));

    // Merging into a default-constructed histogram adopts the layout.
    Histogram fresh;
    fresh.merge(pooled);
    EXPECT_EQ(fresh.counts(), pooled.counts());

    Histogram empty = Histogram::linear(0.0, 50.0, 5);
    a.merge(empty); // zero-count merge is a no-op
    EXPECT_EQ(a.count(), pooled.count());
}

TEST(Stats, CounterSet)
{
    CounterSet c;
    c.add("misses");
    c.add("misses", 4);
    EXPECT_EQ(c.get("misses"), 5u);
    EXPECT_EQ(c.get("absent"), 0u);
    EXPECT_NE(c.format().find("misses = 5"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t("Title");
    t.setHeader({"a", "bbbb"});
    t.addRow({"xxxxx", "y"});
    t.addSeparator();
    t.addRow({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("xxxxx"), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    // Column width adapts to the widest cell.
    EXPECT_NE(out.find("a      bbbb"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(Config, DefaultsMatchPaperTable3)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.numNodes, 16);
    EXPECT_EQ(cfg.blockBytes, 64u);
    EXPECT_EQ(cfg.networkLatency, 40u);
    EXPECT_EQ(cfg.memoryLatency, 120u);
    EXPECT_EQ(cfg.networkInterfaceLatency, 60u);
    EXPECT_EQ(cfg.ownerReadPolicy, OwnerReadPolicy::half_migratory);
    cfg.validate(); // must not exit
}

TEST(Config, SummaryMentionsPolicy)
{
    MachineConfig cfg;
    EXPECT_NE(cfg.summary().find("half-migratory"), std::string::npos);
    cfg.ownerReadPolicy = OwnerReadPolicy::downgrade;
    EXPECT_NE(cfg.summary().find("downgrade"), std::string::npos);
}

TEST(Arena, AllocationsAreAlignedAndAccounted)
{
    Arena arena;
    EXPECT_EQ(arena.bytesUsed(), 0u);
    void *a = arena.allocate(3, 1);
    void *b = arena.allocate(8, 8);
    void *c = arena.allocate(64, 64);
    EXPECT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
    EXPECT_GE(arena.bytesUsed(), 3u + 8u + 64u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());
}

TEST(Arena, GrowsAcrossChunkBoundaries)
{
    Arena arena;
    // Far more than the first chunk; every allocation must be usable.
    std::vector<std::uint32_t *> ptrs;
    for (int i = 0; i < 10000; ++i) {
        auto *p = static_cast<std::uint32_t *>(
            arena.allocate(sizeof(std::uint32_t),
                           alignof(std::uint32_t)));
        *p = static_cast<std::uint32_t>(i);
        ptrs.push_back(p);
    }
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(*ptrs[i], static_cast<std::uint32_t>(i));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);
    m.insert(42, 1);
    m.insert(43, 2);
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 1);
    EXPECT_EQ(*m.find(43), 2);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(m.erase(42));
    EXPECT_FALSE(m.erase(42));
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_EQ(*m.find(43), 2);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ObtainConstructsOnceThenFinds)
{
    FlatMap<std::uint64_t, int> m;
    int &v = m.obtain(7, 11);
    EXPECT_EQ(v, 11);
    v = 99;
    EXPECT_EQ(m.obtain(7, 11), 99); // existing entry, args ignored
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowthKeepsEveryEntry)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 5000; ++k)
        m.insert(k * 64, k); // block-aligned, low-entropy keys
    EXPECT_EQ(m.size(), 5000u);
    // Power-of-two capacity under the 7/8 load limit.
    EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
    EXPECT_GE(m.capacity() * 7, m.size() * 8);
    for (std::uint64_t k = 0; k < 5000; ++k) {
        auto *v = m.find(k * 64);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k);
    }
}

TEST(FlatMap, ForEachVisitsExactlyTheLiveEntries)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.insert(k, static_cast<int>(k));
    for (std::uint64_t k = 0; k < 100; k += 2)
        m.erase(k);
    std::set<std::uint64_t> seen;
    m.forEach([&](const std::uint64_t &k, int v) {
        EXPECT_EQ(v, static_cast<int>(k));
        seen.insert(k);
    });
    EXPECT_EQ(seen.size(), 50u);
    for (std::uint64_t k : seen)
        EXPECT_EQ(k % 2, 1u);
}

TEST(FlatMap, RandomizedAgainstUnorderedMap)
{
    // Churn with erases exercises the backward-shift deletion; the
    // reference container defines the truth at every step.
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::mt19937_64 rng(0xc05305);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng() % 512; // dense: many collisions
        switch (rng() % 3) {
        case 0: // insert or overwrite
            if (auto *v = m.find(key))
                *v = static_cast<std::uint64_t>(step);
            else
                m.insert(key, static_cast<std::uint64_t>(step));
            ref[key] = static_cast<std::uint64_t>(step);
            break;
        case 1: // erase
            EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
            break;
        default: { // lookup
            auto *v = m.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
            break;
        }
        }
        EXPECT_EQ(m.size(), ref.size());
    }
    m.forEach([&](const std::uint64_t &k, std::uint64_t v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
}

TEST(FlatMap, LoadFactorAndProbeStatsUnderRandomizedChurn)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_DOUBLE_EQ(m.loadFactor(), 0.0);
    EXPECT_EQ(m.probeLengthStats().samples, 0u);
    EXPECT_DOUBLE_EQ(m.probeLengthStats().mean(), 0.0);

    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::mt19937_64 rng(0xfacade);
    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t key = rng() % 4096;
        if (rng() % 3 == 0) {
            m.erase(key);
            ref.erase(key);
        } else {
            m.obtain(key) = key;
            ref[key] = key;
        }

        if (step % 1000 != 0)
            continue;
        // Invariants that must hold at any point of the churn:
        // occupancy under the 7/8 growth limit, one probe-length
        // sample per live entry, and a mean no smaller than the
        // 1-probe best case.
        EXPECT_EQ(m.size(), ref.size());
        EXPECT_LE(m.loadFactor(), 7.0 / 8.0 + 1e-12);
        if (m.capacity() != 0) {
            EXPECT_DOUBLE_EQ(
                m.loadFactor(),
                static_cast<double>(m.size()) /
                    static_cast<double>(m.capacity()));
        }
        const auto ps = m.probeLengthStats();
        EXPECT_EQ(ps.samples, m.size());
        if (ps.samples > 0) {
            EXPECT_GE(ps.mean(), 1.0);
            EXPECT_GE(ps.longest, 1u);
            EXPECT_LE(ps.total,
                      static_cast<std::uint64_t>(ps.longest) *
                          ps.samples);
        }
        std::uint64_t visited = 0, total = 0;
        m.forEachProbeLength([&](unsigned d) {
            ++visited;
            total += d;
            EXPECT_GE(d, 1u);
            EXPECT_LE(d, ps.longest);
        });
        EXPECT_EQ(visited, ps.samples);
        EXPECT_EQ(total, ps.total);
    }
    // The churned table still agrees with the reference.
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), v);
    }
}

TEST(FlatMap, ArenaBackedTablesBumpAllocate)
{
    Arena arena;
    FlatMap<std::uint64_t, std::uint64_t> m(&arena);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert(k, k);
    EXPECT_GT(arena.bytesUsed(), 0u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), k);
    }
}

TEST(FlatMap, MoveTransfersOwnership)
{
    FlatMap<std::uint64_t, int> a;
    a.insert(1, 10);
    a.insert(2, 20);
    FlatMap<std::uint64_t, int> b(std::move(a));
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(*b.find(1), 10);
    FlatMap<std::uint64_t, int> c;
    c.insert(9, 90);
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(*c.find(2), 20);
    EXPECT_EQ(c.find(9), nullptr);
}

TEST(FlatMap, ClearEmptiesButKeepsCapacity)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 64; ++k)
        m.insert(k, 1);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), nullptr);
    m.insert(5, 2);
    EXPECT_EQ(*m.find(5), 2);
}

/** Identity hash: home slot = key & (capacity - 1), so keys chosen
 *  with high low-bits build clusters that wrap the table seam. */
struct IdentityHash
{
    std::size_t
    operator()(std::uint64_t x) const
    {
        return static_cast<std::size_t>(x);
    }
};

TEST(FlatMap, EraseBackwardShiftsClustersAcrossWrapSeam)
{
    // Capacity stays 8 (six entries < 7/8 load). Keys homing at
    // slots 6 and 7 force one collision cluster spanning the
    // end-of-array seam: slots 6, 7, 0, 1, 2.
    FlatMap<std::uint64_t, int, IdentityHash> m;
    for (std::uint64_t k : {6, 14, 22, 7, 15})
        m.insert(k, static_cast<int>(k));
    ASSERT_EQ(m.capacity(), 8u);
    const auto before = m.probeLengthStats();
    EXPECT_EQ(before.samples, 5u);
    EXPECT_GE(before.longest, 4u); // the cluster really wrapped

    // Erasing the cluster head must backward-shift the survivors
    // through the seam, not orphan them behind a hole.
    ASSERT_TRUE(m.erase(6));
    for (std::uint64_t k : {14, 22, 7, 15}) {
        ASSERT_NE(m.find(k), nullptr) << "lost key " << k;
        EXPECT_EQ(*m.find(k), static_cast<int>(k));
    }
    const auto after = m.probeLengthStats();
    EXPECT_EQ(after.samples, 4u);
    // Every survivor moved one slot closer to home.
    EXPECT_EQ(after.total, before.total - before.samples);

    // Erase from the middle of the wrapped run, then the tail.
    ASSERT_TRUE(m.erase(7));
    ASSERT_TRUE(m.erase(15));
    for (std::uint64_t k : {14, 22}) {
        ASSERT_NE(m.find(k), nullptr) << "lost key " << k;
    }
    EXPECT_FALSE(m.erase(6));
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, WrapSeamChurnAgainstReference)
{
    // All keys home into the top few slots of whatever power-of-two
    // capacity the table currently has (low 12 bits in [0xff8,
    // 0xfff]), so insert/erase churn constantly builds and tears
    // down wrapped clusters -- the erase() backward shift runs
    // through the seam thousands of times.
    FlatMap<std::uint64_t, std::uint64_t, IdentityHash> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::mt19937_64 rng(0x5ea0);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key =
            ((rng() % 64) << 12) | (0xff8 + rng() % 8);
        if (rng() % 3 == 0) {
            EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
        } else {
            m.obtain(key) = static_cast<std::uint64_t>(step);
            ref[key] = static_cast<std::uint64_t>(step);
        }
        ASSERT_EQ(m.size(), ref.size());

        if (step % 500 != 0)
            continue;
        // A backward-shift bug shows up as an unfindable live key or
        // a probe-length census that disagrees with size().
        for (const auto &[k, v] : ref) {
            ASSERT_NE(m.find(k), nullptr)
                << "step " << step << " lost key 0x" << std::hex << k;
            ASSERT_EQ(*m.find(k), v);
        }
        EXPECT_EQ(m.probeLengthStats().samples, m.size());
    }
    m.forEach([&](const std::uint64_t &k, std::uint64_t v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
}

TEST(Stats, HistogramMergeableClassifiesLayouts)
{
    Histogram a = Histogram::linear(0.0, 10.0, 10);
    Histogram b = Histogram::linear(0.0, 10.0, 10);
    Histogram c = Histogram::linear(0.0, 20.0, 10);
    Histogram fresh;

    EXPECT_TRUE(a.mergeable(b));
    EXPECT_FALSE(a.mergeable(c));
    // A layoutless histogram adopts the other side's layout.
    EXPECT_TRUE(fresh.mergeable(a));
    EXPECT_TRUE(a.mergeable(fresh));
}

TEST(Stats, HistogramMismatchedMergeReportsAndLeavesTargetIntact)
{
    Histogram a = Histogram::linear(0.0, 10.0, 10);
    Histogram b = Histogram::linear(0.0, 20.0, 10);
    a.record(3.0);
    b.record(15.0);
    ASSERT_FALSE(a.mergeable(b));

    bool reported = false;
    try {
        FailureTrap trap;
        a.merge(b);
    } catch (const RecoverableError &e) {
        reported = true;
        EXPECT_NE(std::string(e.what()).find("bucket layouts"),
                  std::string::npos);
    }
    EXPECT_TRUE(reported);
    // Strong guarantee: the failed merge mutated nothing.
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.sum(), 3.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 3.0);
}

} // namespace
} // namespace cosmos
