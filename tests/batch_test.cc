/**
 * @file
 * Tests of the batched/sharded/streaming replay pipeline.
 *
 * The whole pipeline (cosmos/batch.hh staging, the grouped counting
 * sort, the probe/apply passes, the sharded bank, and the chunked
 * stream replay) claims one property everywhere: every Table 5/6/8
 * counter is *bit-identical* to a plain scalar record-order replay.
 * This suite checks that claim against every axis the pipeline can
 * vary -- predictor configuration, batch tunables (including
 * degenerate ones), iteration prefixes, shard counts, chunk sizes --
 * plus the supporting guarantees: census reservation really prevents
 * rehashes, the traffic record sink matches materialization, and the
 * message-stream lowering is chunking-independent.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "cosmos/predictor_bank.hh"
#include "cosmos/sharded_bank.hh"
#include "cosmos/variants.hh"
#include "forge/msg_stream.hh"
#include "forge/synth.hh"
#include "harness/trace_cache.hh"
#include "harness/traffic.hh"
#include "replay/stream.hh"
#include "replay/thread_pool.hh"
#include "trace/record_source.hh"

namespace cosmos
{
namespace
{

using pred::BatchConfig;
using pred::CosmosConfig;
using pred::PredictorBank;
using pred::ShardedPredictorBank;

/** Every counter the paper's tables read, flattened for EXPECT_EQ. */
struct Counters
{
    std::uint64_t cacheHits, cacheTotal, dirHits, dirTotal;
    std::uint64_t coldMisses, cacheArcRefs, dirArcRefs;
    std::uint64_t arcHits; ///< summed over the full (from, to) grid
    std::uint64_t mhrEntries, phtEntries;

    bool operator==(const Counters &) const = default;
};

std::uint64_t
arcGridHits(const pred::ArcStats &a)
{
    std::uint64_t hits = 0;
    for (unsigned f = 0; f < proto::num_msg_types; ++f)
        for (unsigned t = 0; t < proto::num_msg_types; ++t)
            hits += a.arc(static_cast<proto::MsgType>(f),
                          static_cast<proto::MsgType>(t))
                        .hits;
    return hits;
}

Counters
snapshot(const pred::AccuracyTracker &acc,
         const pred::ArcStats &cache_arcs,
         const pred::ArcStats &dir_arcs, const pred::MemoryStats &m)
{
    return {acc.cacheSide().hits,     acc.cacheSide().total,
            acc.directorySide().hits, acc.directorySide().total,
            acc.coldMisses(),         cache_arcs.totalRefs(),
            dir_arcs.totalRefs(),
            arcGridHits(cache_arcs) + arcGridHits(dir_arcs),
            m.mhrEntries,             m.phtEntries};
}

Counters
snapshot(const PredictorBank &bank)
{
    return snapshot(bank.accuracy(), bank.arcs(proto::Role::cache),
                    bank.arcs(proto::Role::directory),
                    bank.memoryStats());
}

Counters
snapshot(const ShardedPredictorBank &bank)
{
    return snapshot(bank.accuracy(), bank.arcs(proto::Role::cache),
                    bank.arcs(proto::Role::directory),
                    bank.memoryStats());
}

Counters
scalarReference(const trace::Trace &t, const CosmosConfig &cfg,
                std::int32_t max_iteration = INT32_MAX)
{
    PredictorBank bank(t.numNodes, cfg);
    bank.replay(t, max_iteration);
    return snapshot(bank);
}

// ------------------------------------------------- batched replay

TEST(BatchedReplay, BitIdenticalAcrossConfigs)
{
    // Depth, filter, and the PHT budget all change what applyCore
    // does per record; none may change under batching.
    const CosmosConfig configs[] = {
        {.depth = 1}, {.depth = 2, .filterMax = 2},
        {.depth = 4}, {.depth = 2, .maxPhtPerBlock = 2}};
    for (const char *app : {"dsmc", "barnes"}) {
        const auto &t = harness::cachedTrace(app);
        for (const auto &cfg : configs) {
            PredictorBank bank(t.numNodes, cfg);
            bank.replayBatched(t);
            EXPECT_EQ(snapshot(bank), scalarReference(t, cfg))
                << app << " depth=" << cfg.depth
                << " filter=" << cfg.filterMax
                << " pht=" << cfg.maxPhtPerBlock;
        }
    }
}

TEST(BatchedReplay, BitIdenticalUnderDegenerateBatchConfigs)
{
    // Tiny windows force many staging flushes, depth 1 makes every
    // sub-batch a single element, groupBits 0 disables grouping, and
    // an absurd groupBits must clamp instead of allocating 2^24
    // buckets per module.
    const auto &t = harness::cachedTrace("dsmc");
    const CosmosConfig cfg{.depth = 2};
    const Counters want = scalarReference(t, cfg);
    const BatchConfig batch_cfgs[] = {
        {.depth = 1, .prefetchDistance = 0, .window = 1,
         .groupBits = 0},
        {.depth = 3, .prefetchDistance = 1, .window = 7,
         .groupBits = 2},
        {.depth = 512, .prefetchDistance = 8, .window = 1u << 18,
         .groupBits = 24},
    };
    for (const auto &bc : batch_cfgs) {
        PredictorBank bank(t.numNodes, cfg);
        bank.replayBatched(t, INT32_MAX, bc);
        EXPECT_EQ(snapshot(bank), want)
            << "batch depth=" << bc.depth << " window=" << bc.window
            << " groupBits=" << bc.groupBits;
    }
}

TEST(BatchedReplay, BitIdenticalOnIterationPrefixes)
{
    const auto &t = harness::cachedTrace("dsmc");
    const CosmosConfig cfg{.depth = 2};
    for (std::int32_t max_iter : {0, 2, 5}) {
        PredictorBank bank(t.numNodes, cfg);
        bank.replayBatched(t, max_iter);
        EXPECT_EQ(snapshot(bank), scalarReference(t, cfg, max_iter))
            << "maxIteration=" << max_iter;
    }
}

TEST(BatchedReplay, PointerSliceOverloadMatchesScalar)
{
    const auto &t = harness::cachedTrace("dsmc");
    std::vector<const trace::TraceRecord *> refs;
    refs.reserve(t.records.size());
    for (const auto &r : t.records)
        refs.push_back(&r);

    const CosmosConfig cfg{.depth = 2};
    PredictorBank scalar(t.numNodes, cfg);
    scalar.replay(refs);
    PredictorBank batched(t.numNodes, cfg);
    batched.replayBatched(refs);
    EXPECT_EQ(snapshot(batched), snapshot(scalar));
}

TEST(BatchedReplay, NonCosmosBankFallsBackBitIdentically)
{
    // Directed-baseline banks take the scalar path inside
    // replayBatched; the counters still must match plain replay.
    const auto &t = harness::cachedTrace("dsmc");
    const auto factory = [](NodeId, proto::Role) {
        return std::make_unique<pred::LastValuePredictor>();
    };
    PredictorBank scalar(t.numNodes, factory);
    scalar.replay(t);
    PredictorBank batched(t.numNodes, factory);
    batched.replayBatched(t);
    EXPECT_EQ(batched.accuracy().overall().hits,
              scalar.accuracy().overall().hits);
    EXPECT_EQ(batched.accuracy().overall().total,
              scalar.accuracy().overall().total);
    EXPECT_EQ(batched.accuracy().coldMisses(),
              scalar.accuracy().coldMisses());
}

// -------------------------------------------------- sharded bank

TEST(ShardedBank, ShardCountInvariance)
{
    const auto &t = harness::cachedTrace("dsmc");
    const CosmosConfig cfg{.depth = 2};
    const Counters want = scalarReference(t, cfg);

    for (unsigned shards : {1u, 8u}) {
        ShardedPredictorBank bank(t.numNodes, cfg, shards);
        // Feed in bounded chunks, as a stream would.
        constexpr std::size_t chunk = 10'000;
        for (std::size_t i = 0; i < t.records.size(); i += chunk) {
            const std::size_t n =
                std::min(chunk, t.records.size() - i);
            bank.observeChunk(t.records.data() + i, n);
        }
        EXPECT_EQ(snapshot(bank), want) << "shards=" << shards;
    }
}

TEST(ShardedBank, ConcurrentShardApplyMatchesSerial)
{
    const auto &t = harness::cachedTrace("dsmc");
    const CosmosConfig cfg{.depth = 1};
    constexpr unsigned shards = 4;

    ShardedPredictorBank bank(t.numNodes, cfg, shards);
    bank.reserveFromCensus(trace::moduleBlockCensus(t));
    replay::ThreadPool pool(shards);
    constexpr std::size_t chunk = 50'000;
    for (std::size_t i = 0; i < t.records.size(); i += chunk) {
        const std::size_t n = std::min(chunk, t.records.size() - i);
        bank.stageChunk(t.records.data() + i, n);
        pool.parallelFor(shards, [&](std::size_t s) {
            bank.applyShard(static_cast<unsigned>(s));
        });
    }
    EXPECT_EQ(snapshot(bank), scalarReference(t, cfg));
}

// ---------------------------------------------- streaming replay

TEST(StreamingReplay, ChunkAndShardInvariance)
{
    const auto &t = harness::cachedTrace("dsmc");
    const CosmosConfig cfg{.depth = 2};
    const Counters want = scalarReference(t, cfg);
    replay::ThreadPool pool(2);

    for (const std::size_t chunk : {std::size_t{1024},
                                    std::size_t{1} << 16}) {
        for (const unsigned shards : {1u, 3u}) {
            trace::TraceRecordSource src(t);
            replay::StreamConfig sc;
            sc.chunkRecords = chunk;
            sc.shards = shards;
            replay::StreamStats stats;
            const auto res =
                replay::replayStream(src, cfg, sc, pool, &stats);
            EXPECT_EQ(stats.records, t.records.size());
            EXPECT_EQ(snapshot(res.accuracy, res.cacheArcs,
                               res.directoryArcs, res.memory),
                      want)
                << "chunk=" << chunk << " shards=" << shards;
        }
    }
}

// ------------------------------------------------ census reserve

TEST(CensusReserve, NoRehashDuringReplay)
{
    // After reserveFromCensus, a full replay must not grow any block
    // table: the capacity snapshot before equals the one after.
    const auto &t = harness::cachedTrace("dsmc");
    PredictorBank bank(t.numNodes, CosmosConfig{.depth = 2});
    bank.reserveFromCensus(trace::moduleBlockCensus(t));

    std::vector<std::size_t> cap_before;
    for (NodeId n = 0; n < t.numNodes; ++n)
        for (auto role : {proto::Role::cache, proto::Role::directory})
            cap_before.push_back(
                dynamic_cast<const pred::CosmosPredictor &>(
                    bank.predictor(n, role))
                    .tableStats()
                    .blockCapacity);

    bank.replayBatched(t);

    std::size_t i = 0;
    for (NodeId n = 0; n < t.numNodes; ++n)
        for (auto role : {proto::Role::cache, proto::Role::directory})
            EXPECT_EQ(dynamic_cast<const pred::CosmosPredictor &>(
                          bank.predictor(n, role))
                          .tableStats()
                          .blockCapacity,
                      cap_before[i++])
                << "node " << n << " rehashed during replay";
}

TEST(FlatMapReserve, ProbeLengthsStayShortAtHighLoad)
{
    // Fill a reserved table to just under the 7/8 load limit; robin-
    // hood displacement must keep probe chains short (regression
    // guard for the probe/prefetch pipeline, whose prefetch only
    // covers the first slots of a chain).
    FlatMap<std::uint64_t, int> map;
    constexpr std::size_t n = 7000; // reserve -> 8192 slots, ~85% load
    map.reserve(n);
    const std::size_t cap = map.capacity();
    for (std::uint64_t i = 0; i < n; ++i)
        map.insert(i * 0x9E3779B97F4A7C15ull, static_cast<int>(i));
    EXPECT_EQ(map.capacity(), cap) << "reserve did not cover " << n;

    const auto ps = map.probeLengthStats();
    EXPECT_EQ(ps.samples, n);
    EXPECT_LE(ps.mean(), 8.0);
    EXPECT_LE(ps.longest, 64u);
}

// ------------------------------------------------- traffic sink

TEST(TrafficSink, ChunkedSinkMatchesMaterializedTrace)
{
    forge::ForgeParams params;
    params.numProcs = 4;
    params.blocks = 32;
    const int iterations = 6;

    harness::TrafficConfig cfg;
    cfg.machine.numNodes = params.numProcs;
    cfg.maxIterations = iterations;
    cfg.opsPerIteration = 256;

    forge::SynthSource materialized_src(params);
    const auto materialized = runTraffic(cfg, materialized_src);

    std::vector<trace::TraceRecord> sunk;
    cfg.recordSink = [&](const std::vector<trace::TraceRecord> &recs) {
        sunk.insert(sunk.end(), recs.begin(), recs.end());
    };
    forge::SynthSource streamed_src(params);
    const auto streamed = runTraffic(cfg, streamed_src);

    EXPECT_TRUE(streamed.trace.records.empty())
        << "sink must drain the trace";
    EXPECT_EQ(sunk, materialized.trace.records);
    EXPECT_EQ(streamed.trace.iterations,
              materialized.trace.iterations);
}

// -------------------------------------------------- msg stream

TEST(MsgStream, DeterministicAcrossPullChunkSizes)
{
    forge::ForgeParams params;
    params.numProcs = 8;
    params.blocks = 64;

    forge::MsgStreamConfig mc;
    mc.maxRecords = 5000;

    const auto pull_all = [&](std::size_t chunk) {
        forge::SynthSource synth(params);
        forge::CoherenceMessageStream stream(synth, mc);
        std::vector<trace::TraceRecord> all, buf;
        while (stream.next(buf, chunk) != 0)
            all.insert(all.end(), buf.begin(), buf.end());
        return all;
    };

    const auto a = pull_all(7);
    const auto b = pull_all(4096);
    EXPECT_EQ(a.size(), mc.maxRecords);
    EXPECT_EQ(a, b);
}

TEST(MsgStream, RecordsAreWellFormed)
{
    forge::ForgeParams params;
    params.numProcs = 8;
    params.blocks = 64;
    forge::SynthSource synth(params);

    forge::MsgStreamConfig mc;
    mc.maxRecords = 4000;
    mc.accessesPerIteration = synth.accessesPerRound();
    forge::CoherenceMessageStream stream(synth, mc);

    std::vector<trace::TraceRecord> buf;
    std::uint64_t seen = 0;
    while (stream.next(buf, 512) != 0) {
        for (const auto &r : buf) {
            EXPECT_NE(r.sender, r.receiver);
            EXPECT_LT(r.receiver, params.numProcs);
            EXPECT_LT(r.sender, params.numProcs);
            EXPECT_EQ(r.role, proto::receiverRole(r.type));
            EXPECT_EQ(r.block % 64, 0u) << "block not aligned";
            EXPECT_GE(r.iteration, 0);
        }
        seen += buf.size();
    }
    EXPECT_EQ(seen, mc.maxRecords);
    EXPECT_EQ(stream.emitted(), mc.maxRecords);
}

TEST(MsgStream, TrainsThePredictorOnRecurringSharing)
{
    // A few hundred rounds over a small block set must produce
    // learnable per-block message patterns -- if the lowering were
    // emitting noise (or constant self-traffic), depth-1 Cosmos
    // accuracy would sit near zero.
    forge::ForgeParams params;
    params.numProcs = 8;
    params.blocks = 64;
    forge::SynthSource synth(params);

    forge::MsgStreamConfig mc;
    mc.maxRecords = 100'000;
    mc.accessesPerIteration = synth.accessesPerRound();
    forge::CoherenceMessageStream stream(synth, mc);

    replay::ThreadPool pool(1);
    const auto res = replay::replayStream(
        stream, CosmosConfig{.depth = 1}, {}, pool);
    EXPECT_GT(res.accuracy.overall().percent(), 50.0);
}

} // namespace
} // namespace cosmos
