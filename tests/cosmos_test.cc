/**
 * @file
 * Unit tests of the Cosmos predictor core: tuple encoding, the §3.3
 * prediction and §3.4 update steps, the §3.5 out-of-order adaptation
 * example, §3.6 filter semantics, Table 7 footprint accounting, arc
 * statistics, accuracy tracking, and bank routing.
 */

#include <gtest/gtest.h>

#include "cosmos/accuracy.hh"
#include "cosmos/arc_stats.hh"
#include "cosmos/cosmos_predictor.hh"
#include "cosmos/memory_stats.hh"
#include "cosmos/predictor_bank.hh"

namespace cosmos::pred
{
namespace
{

using proto::MsgType;

MsgTuple
tup(NodeId sender, MsgType type)
{
    return MsgTuple{sender, type};
}

TEST(Tuple, EncodeDecodeRoundTrip)
{
    for (NodeId sender : {0, 1, 15, 100, 4095}) {
        for (unsigned t = 0; t < proto::num_msg_types; ++t) {
            const MsgTuple orig =
                tup(sender, static_cast<MsgType>(t));
            EXPECT_EQ(MsgTuple::decode(orig.encode()), orig);
        }
    }
}

TEST(Tuple, PatternEncodingIsPositional)
{
    const auto a = tup(1, MsgType::get_ro_request);
    const auto b = tup(2, MsgType::get_rw_request);
    EXPECT_NE(encodePattern({a, b}), encodePattern({b, a}));
    EXPECT_EQ(encodePattern({a, b}),
              (std::uint64_t(a.encode()) << 16) | b.encode());
}

TEST(Tuple, FormatIsReadable)
{
    EXPECT_EQ(tup(3, MsgType::get_ro_request).format(),
              "<P3,get_ro_request>");
}

TEST(Cosmos, NoPredictionBeforeHistoryFills)
{
    CosmosPredictor p(CosmosConfig{2, 0});
    EXPECT_FALSE(p.predict(0x40).has_value());
    auto r1 = p.observe(0x40, tup(1, MsgType::get_ro_request));
    EXPECT_FALSE(r1.counted);
    EXPECT_FALSE(p.predict(0x40).has_value());
    auto r2 = p.observe(0x40, tup(2, MsgType::get_ro_request));
    EXPECT_FALSE(r2.counted); // MHR just filled; first lookup is next
    EXPECT_FALSE(p.predict(0x40).has_value()); // pattern still cold
}

TEST(Cosmos, LearnsARepeatingCycleAtDepthOne)
{
    // The Figure 3b producer-consumer directory cycle.
    CosmosPredictor p(CosmosConfig{1, 0});
    const MsgTuple cycle[3] = {
        tup(1, MsgType::get_rw_request),
        tup(2, MsgType::get_ro_request),
        tup(1, MsgType::inval_rw_response),
    };
    // First two laps: learning (the wrap-around transition back to
    // the cycle head is only seen at the start of lap two).
    for (int lap = 0; lap < 2; ++lap)
        for (const auto &t : cycle)
            p.observe(0x80, t);
    // Third lap onward: every arrival predicted correctly.
    for (int lap = 0; lap < 5; ++lap) {
        for (const auto &t : cycle) {
            auto pred = p.predict(0x80);
            ASSERT_TRUE(pred.has_value());
            EXPECT_EQ(*pred, t);
            auto res = p.observe(0x80, t);
            EXPECT_TRUE(res.counted);
            EXPECT_TRUE(res.hit);
        }
    }
}

TEST(Cosmos, Section35OutOfOrderConsumersNeedDepthTwo)
{
    // §3.5: consumers' requests arrive in one of two alternating
    // orders. Depth 1 keeps flip-flopping; depth 2 pins every
    // transition down because each 2-tuple context recurs with a
    // single successor.
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_ro_request);
    const MsgTuple c = tup(3, MsgType::get_ro_request);
    const MsgTuple orders[2][3] = {{a, b, c}, {b, a, c}};

    auto run = [&](unsigned depth) {
        CosmosPredictor p(CosmosConfig{depth, 0});
        // Warm several alternations.
        for (int round = 0; round < 4; ++round)
            for (const auto &t : orders[round % 2])
                p.observe(0xc0, t);
        int hits = 0, counted = 0;
        for (int round = 4; round < 12; ++round) {
            for (const auto &t : orders[round % 2]) {
                auto res = p.observe(0xc0, t);
                counted += res.counted;
                hits += res.hit;
            }
        }
        EXPECT_EQ(counted, 24);
        return hits;
    };

    const int d1 = run(1);
    const int d2 = run(2);
    EXPECT_EQ(d2, 24);      // fully learned with two tuples
    EXPECT_LT(d1, d2 - 6);  // one tuple keeps guessing wrong
}

TEST(Cosmos, UnfilteredPredictorSwitchesImmediately)
{
    // filterMax = 0: a single misprediction replaces the stored
    // prediction (§3.6).
    CosmosPredictor p(CosmosConfig{1, 0});
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_rw_request);
    const MsgTuple c = tup(3, MsgType::upgrade_request);
    p.observe(0, a);
    p.observe(0, b); // learn a -> b
    p.observe(0, a);
    EXPECT_EQ(*p.predict(0), b);
    p.observe(0, c); // mispredict: replace a -> c
    p.observe(0, a);
    EXPECT_EQ(*p.predict(0), c);
}

TEST(Cosmos, FilterKeepsPredictionThroughOneGlitch)
{
    // filterMax = 1: only two *consecutive* mispredictions replace
    // the prediction -- the paper's single-bit counter.
    CosmosPredictor p(CosmosConfig{1, 1});
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_rw_request);
    const MsgTuple c = tup(3, MsgType::upgrade_request);

    p.observe(0, a);
    p.observe(0, b); // learn a -> b
    p.observe(0, a);
    p.observe(0, c); // glitch 1: counter 0 -> 1, prediction stays b
    p.observe(0, a);
    EXPECT_EQ(*p.predict(0), b);
    auto res = p.observe(0, b); // correct again: counter resets
    EXPECT_TRUE(res.hit);
    p.observe(0, a);
    p.observe(0, c); // glitch (counter 1)
    p.observe(0, a);
    EXPECT_EQ(*p.predict(0), b); // still b: glitches not consecutive
}

TEST(Cosmos, FilterReplacesAfterConsecutiveMisses)
{
    CosmosPredictor p(CosmosConfig{1, 1});
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_rw_request);
    const MsgTuple c = tup(3, MsgType::upgrade_request);

    p.observe(0, a);
    p.observe(0, b); // learn a -> b
    // Two consecutive (a -> c) mispredictions: adopt c.
    p.observe(0, a);
    p.observe(0, c);
    p.observe(0, a);
    p.observe(0, c);
    p.observe(0, a);
    EXPECT_EQ(*p.predict(0), c);
}

TEST(Cosmos, BlocksAreIndependent)
{
    CosmosPredictor p(CosmosConfig{1, 0});
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_rw_request);
    p.observe(0x000, a);
    p.observe(0x000, b);
    p.observe(0x040, a);
    // Block 0x40's PHT knows nothing about block 0's a -> b.
    EXPECT_FALSE(p.predict(0x040).has_value());
    p.observe(0x000, a);
    EXPECT_TRUE(p.predict(0x000).has_value());
}

TEST(Cosmos, HistoryReportsMhrContents)
{
    CosmosPredictor p(CosmosConfig{3, 0});
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(2, MsgType::get_rw_request);
    const MsgTuple c = tup(3, MsgType::upgrade_request);
    const MsgTuple d = tup(4, MsgType::inval_ro_response);
    p.observe(0, a);
    p.observe(0, b);
    p.observe(0, c);
    p.observe(0, d); // a falls out
    const auto hist = p.history(0);
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_EQ(hist[0], b);
    EXPECT_EQ(hist[1], c);
    EXPECT_EQ(hist[2], d);
}

TEST(Cosmos, FootprintCountsMhrAndPht)
{
    CosmosPredictor p(CosmosConfig{1, 0});
    // Block 0: three messages -> MHR + 2 patterns.
    p.observe(0x000, tup(1, MsgType::get_ro_request));
    p.observe(0x000, tup(2, MsgType::get_rw_request));
    p.observe(0x000, tup(3, MsgType::upgrade_request));
    // Block 1: one message -> MHR only (refs <= depth).
    p.observe(0x040, tup(1, MsgType::get_ro_request));
    const auto f = p.footprint();
    EXPECT_EQ(f.mhrEntries, 2u);
    EXPECT_EQ(f.phtEntries, 2u);
}

TEST(CosmosDeathTest, DepthOutOfRangePanics)
{
    EXPECT_DEATH(CosmosPredictor(CosmosConfig{0, 0}), "depth");
    EXPECT_DEATH(CosmosPredictor(CosmosConfig{5, 0}), "depth");
}

TEST(MemoryStats, Table7Formula)
{
    MemoryStats m;
    m.depth = 1;
    m.mhrEntries = 100;
    m.phtEntries = 120;
    EXPECT_DOUBLE_EQ(m.ratio(), 1.2);
    // Ovhd = 2 * (1 + 1.2 * 2) * 100 / 128 = 5.3125
    EXPECT_NEAR(m.overheadPercent(), 5.3125, 1e-9);

    MemoryStats deep;
    deep.depth = 3;
    deep.mhrEntries = 10;
    deep.phtEntries = 93;
    // Paper's barnes row at depth 3: ratio 9.3 -> 63.0% (the exact
    // formula value is 62.8125; the paper rounds).
    EXPECT_NEAR(deep.overheadPercent(), 62.8125, 1e-9);
}

TEST(ArcStats, TracksHitAndRefShares)
{
    ArcStats arcs;
    for (int i = 0; i < 90; ++i)
        arcs.record(MsgType::get_ro_request, MsgType::upgrade_request,
                    true);
    for (int i = 0; i < 10; ++i)
        arcs.record(MsgType::upgrade_request,
                    MsgType::inval_ro_response, false);
    const auto dominant = arcs.dominantArcs();
    ASSERT_EQ(dominant.size(), 2u);
    EXPECT_EQ(dominant[0].to, MsgType::upgrade_request);
    EXPECT_DOUBLE_EQ(dominant[0].hitPercent, 100.0);
    EXPECT_DOUBLE_EQ(dominant[0].refPercent, 90.0);
    EXPECT_DOUBLE_EQ(dominant[1].hitPercent, 0.0);

    // Threshold filters the small arc out.
    EXPECT_EQ(arcs.dominantArcs(20.0).size(), 1u);

    const auto one = arcs.arc(MsgType::upgrade_request,
                              MsgType::inval_ro_response);
    EXPECT_EQ(one.refs, 10u);
    EXPECT_EQ(one.hits, 0u);
}

TEST(Accuracy, SplitsByRoleAndIteration)
{
    AccuracyTracker acc;
    acc.record(proto::Role::cache, 0, true);
    acc.record(proto::Role::cache, 0, false);
    acc.record(proto::Role::directory, 1, true);
    acc.record(proto::Role::directory, 2, false, false);

    EXPECT_DOUBLE_EQ(acc.cacheSide().percent(), 50.0);
    EXPECT_DOUBLE_EQ(acc.directorySide().percent(), 50.0);
    EXPECT_DOUBLE_EQ(acc.overall().percent(), 50.0);
    EXPECT_EQ(acc.coldMisses(), 1u);
    EXPECT_EQ(acc.byIteration().size(), 3u);
    EXPECT_DOUBLE_EQ(acc.upToIteration(1).percent(), 2.0 / 3.0 * 100);
}

TEST(Bank, RoutesRecordsToPerModulePredictors)
{
    PredictorBank bank(4, CosmosConfig{1, 0});
    trace::TraceRecord r;
    r.block = 0x40;
    r.sender = 1;
    r.type = MsgType::get_ro_request;
    r.role = proto::Role::directory;
    r.iteration = 0;

    // Same block at two different directories: independent state.
    r.receiver = 0;
    bank.observe(r);
    r.receiver = 2;
    bank.observe(r);
    EXPECT_FALSE(bank.predictor(0, proto::Role::directory)
                     .predict(0x40)
                     .has_value());
    // Cache-role predictor at node 0 knows nothing of it.
    EXPECT_FALSE(bank.predictor(0, proto::Role::cache)
                     .predict(0x40)
                     .has_value());
    const auto mem = bank.memoryStats();
    EXPECT_EQ(mem.mhrEntries, 2u);
}

TEST(Bank, ReplayRespectsIterationCap)
{
    trace::Trace t;
    t.numNodes = 2;
    for (int iter = 0; iter < 10; ++iter) {
        trace::TraceRecord r;
        r.block = 0;
        r.receiver = 0;
        r.sender = 1;
        r.type = MsgType::get_ro_request;
        r.role = proto::Role::directory;
        r.iteration = iter;
        t.records.push_back(r);
    }
    PredictorBank bank(2, CosmosConfig{1, 0});
    bank.replay(t, 4);
    // 5 records fed (iterations 0..4): first uncounted, 4 counted.
    EXPECT_EQ(bank.accuracy().overall().total, 4u);
}

TEST(PackedMhr, KeyMatchesEncodePatternAtEveryDepth)
{
    // The packed word must equal the reference vector encoding after
    // every push, for every supported depth.
    const std::vector<MsgTuple> stream = {
        tup(1, MsgType::get_ro_request),
        tup(2, MsgType::get_ro_response),
        tup(3, MsgType::get_rw_request),
        tup(1, MsgType::inval_ro_request),
        tup(4, MsgType::inval_ro_response),
        tup(2, MsgType::get_ro_response),
        tup(5, MsgType::upgrade_request)};
    for (unsigned depth = 1; depth <= max_mhr_depth; ++depth) {
        PackedMhr mhr;
        std::vector<MsgTuple> window; // reference: last `depth` tuples
        for (const MsgTuple &t : stream) {
            mhr.push(t, depth);
            window.push_back(t);
            if (window.size() > depth)
                window.erase(window.begin());
            EXPECT_EQ(mhr.key(), encodePattern(window))
                << "depth " << depth;
            EXPECT_EQ(mhr.size(), window.size());
            EXPECT_EQ(mhr.full(depth), window.size() >= depth);
        }
    }
}

TEST(PackedMhr, DecodeReturnsOldestFirst)
{
    PackedMhr mhr;
    mhr.push(tup(1, MsgType::get_ro_request), 3);
    mhr.push(tup(2, MsgType::get_ro_response), 3);
    EXPECT_EQ(mhr.decode(),
              (std::vector<MsgTuple>{
                  tup(1, MsgType::get_ro_request),
                  tup(2, MsgType::get_ro_response)}));
    mhr.push(tup(3, MsgType::upgrade_response), 3);
    // Tuple 1 falls out of the depth-3 window.
    mhr.push(tup(4, MsgType::inval_ro_request), 3);
    EXPECT_EQ(mhr.decode(),
              (std::vector<MsgTuple>{
                  tup(2, MsgType::get_ro_response),
                  tup(3, MsgType::upgrade_response),
                  tup(4, MsgType::inval_ro_request)}));
}

TEST(PackedMhr, ObserveReportsPreviousMessageType)
{
    // The predictor's block state carries the last message type so
    // PredictorBank's arc statistics need no second table.
    CosmosPredictor p(CosmosConfig{1, 0});
    auto r1 = p.observe(0x40, tup(1, MsgType::get_ro_request));
    EXPECT_FALSE(r1.hadPrevType);
    auto r2 = p.observe(0x40, tup(2, MsgType::get_ro_response));
    EXPECT_TRUE(r2.hadPrevType);
    EXPECT_EQ(r2.prevType, MsgType::get_ro_request);
    // A different block has its own (empty) previous type.
    auto r3 = p.observe(0x80, tup(1, MsgType::upgrade_request));
    EXPECT_FALSE(r3.hadPrevType);
}

} // namespace
} // namespace cosmos::pred
