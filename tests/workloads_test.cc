/**
 * @file
 * Unit tests of the workload kernels: allocator behaviour, the
 * choice-order helper, and each application's structural properties
 * (partition balance, sharing-structure statistics, iteration
 * emission).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/addr.hh"
#include "runtime/program.hh"
#include "workloads/allocator.hh"
#include "workloads/appbt.hh"
#include "workloads/barnes.hh"
#include "workloads/dsmc.hh"
#include "workloads/micro.hh"
#include "workloads/moldyn.hh"
#include "workloads/unstructured.hh"
#include "workloads/workload.hh"

namespace cosmos::wl
{
namespace
{

const AddrMap test_amap(64, 4096, 16);

TEST(Allocator, PageAlignedSequentialRegions)
{
    Allocator alloc(test_amap);
    const Addr a = alloc.allocate(100, "a");
    const Addr b = alloc.allocate(5000, "b");
    const Addr c = alloc.allocate(1, "c");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 4096u);       // a rounded up to one page
    EXPECT_EQ(c, 4096u * 3);   // b took two pages
    EXPECT_EQ(alloc.regions().size(), 3u);
    EXPECT_EQ(alloc.bytesAllocated(), 4096u * 4);
}

TEST(Allocator, BlockElemStridesByBlock)
{
    Allocator alloc(test_amap);
    const Addr base = alloc.allocate(4096, "arr");
    EXPECT_EQ(alloc.blockElem(base, 0), base);
    EXPECT_EQ(alloc.blockElem(base, 3), base + 3 * 64);
    EXPECT_EQ(Allocator::stridedElem(base, 5, 32), base + 160);
}

TEST(ChoiceOrder, DeterministicPerChoice)
{
    std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
    auto v2 = v1, v3 = v1;
    choiceOrder(v1, 42, 0);
    choiceOrder(v2, 42, 0);
    choiceOrder(v3, 42, 1);
    EXPECT_EQ(v1, v2);
    EXPECT_NE(v1, v3);
    auto sorted = v3;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Registry, AllNamesConstruct)
{
    for (const auto &name : paperWorkloads()) {
        auto w = makeWorkload(name);
        EXPECT_EQ(w->info().name, name);
        EXPECT_GT(w->info().iterations, 0);
    }
    EXPECT_NE(makeWorkload("micro_rmw"), nullptr);
}

TEST(RegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(SparseTouches, EmitsRequestedReads)
{
    Rng rng(1);
    runtime::ProgramBuilder b(16);
    emitSparseTouches(b, rng, 0x100000, 500, 40, 16, 64);
    std::size_t reads = 0;
    auto programs = b.take();
    for (const auto &prog : programs) {
        for (const auto &op : prog) {
            EXPECT_EQ(op.kind, runtime::Op::Kind::read);
            EXPECT_GE(op.addr, 0x100000u);
            EXPECT_LT(op.addr, 0x100000u + 500 * 64);
            ++reads;
        }
    }
    EXPECT_EQ(reads, 40u);
}

TEST(AppBt, EmitsProducerAndConsumerPhases)
{
    AppBtParams params;
    AppBt app(params);
    app.setup(test_amap, 16, 1);
    runtime::ProgramBuilder b(16);
    app.emitIteration(0, b);
    auto programs = b.take();
    // Every processor does real work and sees two barriers (the
    // sparse-touch prologue precedes the final one).
    for (const auto &prog : programs) {
        int barriers = 0;
        int reads = 0, writes = 0;
        for (const auto &op : prog) {
            barriers += op.kind == runtime::Op::Kind::barrier;
            reads += op.kind == runtime::Op::Kind::read;
            writes += op.kind == runtime::Op::Kind::write;
        }
        EXPECT_EQ(barriers, 2);
        EXPECT_GT(reads, 10);
        EXPECT_GT(writes, 5);
    }
    EXPECT_NE(app.statsSummary().find("boundary_cells"),
              std::string::npos);
}

TEST(AppBtDeathTest, WrongProcessorCountIsFatal)
{
    AppBt app;
    EXPECT_DEATH(app.setup(test_amap, 8, 1), "processors");
}

TEST(Barnes, TreeCoversAllBodiesEveryIteration)
{
    BarnesParams params;
    params.nbodies = 64;
    params.iterations = 3;
    Barnes app(params);
    app.setup(test_amap, 16, 7);
    for (int iter = 0; iter < 3; ++iter) {
        runtime::ProgramBuilder b(16);
        app.emitIteration(iter, b);
        // Every processor emits at least some accesses (tree build
        // writes and traversal reads).
        auto programs = b.take();
        std::size_t total = 0;
        for (const auto &prog : programs)
            total += prog.size();
        EXPECT_GT(total, 200u);
    }
    EXPECT_NE(app.statsSummary().find("mean_cells"),
              std::string::npos);
}

TEST(Dsmc, MigrantsFlowThroughBuffers)
{
    DsmcParams params;
    params.iterations = 6;
    Dsmc app(params);
    app.setup(test_amap, 16, 3);
    std::size_t total_writes = 0;
    for (int iter = 0; iter < 6; ++iter) {
        runtime::ProgramBuilder b(16);
        app.emitIteration(iter, b);
        auto programs = b.take();
        for (const auto &prog : programs)
            for (const auto &op : prog)
                total_writes += op.kind == runtime::Op::Kind::write;
    }
    // Particles do move: producer writes happen.
    EXPECT_GT(total_writes, 200u);
    EXPECT_NE(app.statsSummary().find("migrants_per_iter"),
              std::string::npos);
}

TEST(Moldyn, InteractionStructureIsSymmetricAndShared)
{
    MoldynParams params;
    Moldyn app(params);
    app.setup(test_amap, 16, 5);
    // The paper reports ~4.9 consumers per coordinates block; our
    // miniature box should land in the same multi-consumer regime.
    EXPECT_GT(app.meanConsumers(), 1.5);
    EXPECT_LT(app.meanConsumers(), 8.0);

    runtime::ProgramBuilder b(16);
    app.emitIteration(0, b);
    auto programs = b.take();
    // Critical sections are balanced: every lock has an unlock.
    for (const auto &prog : programs) {
        int depth = 0;
        for (const auto &op : prog) {
            if (op.kind == runtime::Op::Kind::lock)
                ++depth;
            if (op.kind == runtime::Op::Kind::unlock)
                --depth;
            EXPECT_GE(depth, 0);
            EXPECT_LE(depth, 1);
        }
        EXPECT_EQ(depth, 0);
    }
}

TEST(Unstructured, RcbBalancesThePartition)
{
    UnstructuredParams params;
    params.meshNodes = 480;
    Unstructured app(params);
    app.setup(test_amap, 16, 9);
    // 480 nodes / 16 parts = 30 per part; RCB splits by rank, so
    // partitions are balanced to within one node.
    const auto sizes = app.partitionSizes();
    ASSERT_EQ(sizes.size(), 16u);
    for (std::size_t size : sizes)
        EXPECT_NEAR(static_cast<double>(size), 30.0, 1.0);
    EXPECT_GT(app.meanConsumers(), 1.0);
    EXPECT_LT(app.meanConsumers(), 4.5);

    runtime::ProgramBuilder b(16);
    app.emitIteration(0, b);
    EXPECT_GT(b.totalOps(), 500u);
}

TEST(MicroProducerConsumer, BlindProducerSkipsReads)
{
    ProducerConsumerParams params;
    params.producerReadsFirst = false;
    params.blocks = 4;
    ProducerConsumerMicro app(params);
    app.setup(test_amap, 16, 1);
    runtime::ProgramBuilder b(16);
    app.emitIteration(0, b);
    auto programs = b.take();
    int producer_reads = 0;
    for (const auto &op : programs[0])
        producer_reads += op.kind == runtime::Op::Kind::read;
    EXPECT_EQ(producer_reads, 0);
}

TEST(MicroMigratory, EveryStepIsLockProtected)
{
    MigratoryParams params;
    params.blocks = 2;
    params.rotation = 4;
    MigratoryMicro app(params);
    app.setup(test_amap, 16, 1);
    runtime::ProgramBuilder b(16);
    app.emitIteration(0, b);
    auto programs = b.take();
    for (unsigned p = 0; p < 4; ++p) {
        int locks = 0;
        for (const auto &op : programs[p])
            locks += op.kind == runtime::Op::Kind::lock;
        EXPECT_EQ(locks, 2);
    }
}

} // namespace
} // namespace cosmos::wl
