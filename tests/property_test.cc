/**
 * @file
 * Property-based suites (parameterized gtest): invariants that must
 * hold across randomized inputs, seeds, workloads, and predictor
 * configurations.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "cosmos/cosmos_predictor.hh"
#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"
#include "proto/invariants.hh"
#include "proto/machine.hh"
#include "runtime/processor.hh"
#include "workloads/workload.hh"

namespace cosmos
{
namespace
{

// --- Property: the protocol keeps the machine coherent under random
// concurrent access streams, for any seed. -----------------------------

class ProtocolStress
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, OwnerReadPolicy>>
{
};

TEST_P(ProtocolStress, RandomAccessesStayCoherent)
{
    Rng rng(std::get<0>(GetParam()));
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.ownerReadPolicy = std::get<1>(GetParam());
    proto::Machine machine(cfg);
    runtime::Runtime rt(machine);

    // 16 hot blocks spread over all homes; every processor issues a
    // random read/write stream over them, with random think time.
    std::vector<Addr> blocks;
    for (int i = 0; i < 16; ++i)
        blocks.push_back(static_cast<Addr>(i) * cfg.pageBytes +
                         (i % 4) * cfg.blockBytes);

    for (int round = 0; round < 4; ++round) {
        runtime::ProgramBuilder b(cfg.numNodes);
        for (NodeId p = 0; p < cfg.numNodes; ++p) {
            auto prog = b.proc(p);
            for (int op = 0; op < 40; ++op) {
                const Addr a = blocks[rng.nextBelow(blocks.size())];
                if (rng.nextBool(0.1))
                    prog.think(rng.nextBelow(200));
                if (rng.nextBool(0.4))
                    prog.write(a);
                else
                    prog.read(a);
            }
        }
        b.barrier();
        rt.runPrograms(b.take());
        const auto violations = proto::checkCoherence(machine);
        EXPECT_TRUE(violations.empty())
            << "seed " << std::get<0>(GetParam()) << ": "
            << violations.front();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolStress,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
        ::testing::Values(OwnerReadPolicy::half_migratory,
                          OwnerReadPolicy::downgrade)));

// --- Property: Cosmos only ever predicts tuples it has observed for
// that block, and predict() agrees with the following observe(). -------

class CosmosConsistency
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CosmosConsistency, PredictionsComeFromObservedHistory)
{
    const auto [depth, filter] = GetParam();
    pred::CosmosPredictor predictor(
        pred::CosmosConfig{depth, filter});
    Rng rng(depth * 100 + filter);

    std::map<Addr, std::set<std::uint16_t>> seen;
    for (int i = 0; i < 5000; ++i) {
        const Addr block = rng.nextBelow(8) * 64;
        const pred::MsgTuple actual{
            static_cast<NodeId>(rng.nextBelow(4)),
            static_cast<proto::MsgType>(rng.nextBelow(6))};

        const auto before = predictor.predict(block);
        const auto res = predictor.observe(block, actual);

        // predict() and observe() must agree about the prediction in
        // effect at this arrival.
        EXPECT_EQ(before.has_value(), res.hadPrediction);
        if (before) {
            EXPECT_EQ(*before, res.predicted);
            EXPECT_EQ(res.hit, *before == actual);
            // Whatever was predicted was once observed here.
            EXPECT_TRUE(seen[block].count(before->encode()))
                << "prediction was never observed for this block";
        }
        seen[block].insert(actual.encode());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CosmosConsistency,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0u, 1u, 2u)));

// --- Property: the unfiltered Cosmos predictor matches a brute-force
// reference model exactly -- for every depth, over long random
// streams. The reference stores, per block, a map from the literal
// last-d-tuple window to the tuple that followed it most recently. ----

class CosmosOracle : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CosmosOracle, MatchesBruteForceReference)
{
    const unsigned depth = GetParam();
    pred::CosmosPredictor predictor(pred::CosmosConfig{depth, 0});
    Rng rng(0xabc0de + depth);

    // Reference model state.
    struct RefBlock
    {
        std::vector<pred::MsgTuple> window;
        std::map<std::vector<std::uint16_t>, pred::MsgTuple> table;
    };
    std::map<Addr, RefBlock> ref;

    auto encoded = [](const std::vector<pred::MsgTuple> &w) {
        std::vector<std::uint16_t> key;
        for (const auto &t : w)
            key.push_back(t.encode());
        return key;
    };

    for (int i = 0; i < 20000; ++i) {
        const Addr block = rng.nextBelow(6) * 64;
        const pred::MsgTuple actual{
            static_cast<NodeId>(rng.nextBelow(5)),
            static_cast<proto::MsgType>(rng.nextBelow(5))};

        // Reference prediction.
        RefBlock &rb = ref[block];
        std::optional<pred::MsgTuple> expect;
        if (rb.window.size() == depth) {
            auto it = rb.table.find(encoded(rb.window));
            if (it != rb.table.end())
                expect = it->second;
        }

        const auto got = predictor.predict(block);
        ASSERT_EQ(got.has_value(), expect.has_value())
            << "step " << i << " depth " << depth;
        if (expect) {
            ASSERT_EQ(*got, *expect) << "step " << i;
        }

        // Reference update (unfiltered: always adopt the newest).
        if (rb.window.size() == depth)
            rb.table[encoded(rb.window)] = actual;
        rb.window.push_back(actual);
        if (rb.window.size() > depth)
            rb.window.erase(rb.window.begin());

        predictor.observe(block, actual);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, CosmosOracle,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- Property: replaying any trace is deterministic, and accuracy is
// bounded by coverage. --------------------------------------------------

class ReplayProperties : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReplayProperties, ReplayIsDeterministicAndBounded)
{
    harness::RunConfig cfg;
    cfg.app = GetParam();
    cfg.iterations = 5;
    cfg.warmupIterations = 1;
    cfg.checkInvariants = false;
    const auto result = harness::runWorkload(cfg);

    pred::PredictorBank a(result.trace.numNodes,
                          pred::CosmosConfig{2, 0});
    pred::PredictorBank b(result.trace.numNodes,
                          pred::CosmosConfig{2, 0});
    a.replay(result.trace);
    b.replay(result.trace);

    EXPECT_EQ(a.accuracy().overall().hits,
              b.accuracy().overall().hits);
    EXPECT_EQ(a.accuracy().overall().total,
              b.accuracy().overall().total);

    // Counted references can never exceed messages; hits can never
    // exceed non-cold references.
    const auto &acc = a.accuracy();
    EXPECT_LE(acc.overall().total, result.trace.records.size());
    EXPECT_LE(acc.overall().hits,
              acc.overall().total - acc.coldMisses());

    // Role split adds up.
    EXPECT_EQ(acc.cacheSide().total + acc.directorySide().total,
              acc.overall().total);
}

TEST_P(ReplayProperties, ArcRefsMatchAccuracyCounts)
{
    harness::RunConfig cfg;
    cfg.app = GetParam();
    cfg.iterations = 5;
    cfg.warmupIterations = 1;
    cfg.checkInvariants = false;
    const auto result = harness::runWorkload(cfg);

    pred::PredictorBank bank(result.trace.numNodes,
                             pred::CosmosConfig{1, 0});
    bank.replay(result.trace);

    // Arc references cannot exceed counted references per role (an
    // arc needs one extra preceding message).
    for (auto role : {proto::Role::cache, proto::Role::directory}) {
        const auto &side = role == proto::Role::cache
                               ? bank.accuracy().cacheSide()
                               : bank.accuracy().directorySide();
        EXPECT_LE(bank.arcs(role).totalRefs(), side.total);
        double ref_sum = 0.0;
        for (const auto &arc : bank.arcs(role).dominantArcs())
            ref_sum += arc.refPercent;
        EXPECT_NEAR(ref_sum,
                    bank.arcs(role).totalRefs() > 0 ? 100.0 : 0.0,
                    0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ReplayProperties,
                         ::testing::Values("appbt", "barnes", "dsmc",
                                           "moldyn", "unstructured",
                                           "micro_producer_consumer",
                                           "micro_migratory",
                                           "micro_false_sharing"));

// --- Property: deeper history can only reduce *wrong* predictions on
// a fixed deterministic cycle. ------------------------------------------

class DepthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DepthSweep, DeterministicCycleIsLearnedAtEveryDepth)
{
    const unsigned depth = GetParam();
    pred::CosmosPredictor p(pred::CosmosConfig{depth, 0});
    const pred::MsgTuple cycle[4] = {
        {1, proto::MsgType::get_ro_request},
        {1, proto::MsgType::upgrade_request},
        {2, proto::MsgType::get_ro_request},
        {1, proto::MsgType::inval_rw_response},
    };
    int hits = 0, counted = 0;
    for (int i = 0; i < 400; ++i) {
        auto res = p.observe(0x40, cycle[i % 4]);
        counted += res.counted;
        hits += res.hit;
    }
    // After warm-up, everything is predicted.
    EXPECT_GE(hits, counted - 8);
    EXPECT_GT(counted, 380 - static_cast<int>(depth));
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- Property: the protocol stays coherent under *random*
// speculation decisions -- the speculation hook may fire arbitrarily
// and the machine must remain correct (§4.3 legal-state actions). ----

class SpeculationStress
    : public ::testing::TestWithParam<std::uint64_t>,
      public proto::DirectorySpeculation
{
  public:
    bool
    grantExclusiveOnRead(Addr, NodeId) override
    {
        return rng_->nextBool(0.5);
    }

  protected:
    std::unique_ptr<Rng> rng_;
};

TEST_P(SpeculationStress, RandomGrantsAndRecallsStayCoherent)
{
    rng_ = std::make_unique<Rng>(GetParam());
    MachineConfig cfg;
    cfg.numNodes = 8;
    proto::Machine machine(cfg);
    runtime::Runtime rt(machine);
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        machine.directory(n).setSpeculation(this);

    std::vector<Addr> blocks;
    for (int i = 0; i < 12; ++i)
        blocks.push_back(static_cast<Addr>(i) * cfg.pageBytes +
                         (i % 3) * cfg.blockBytes);

    for (int round = 0; round < 4; ++round) {
        runtime::ProgramBuilder b(cfg.numNodes);
        for (NodeId p = 0; p < cfg.numNodes; ++p) {
            auto prog = b.proc(p);
            for (int op = 0; op < 30; ++op) {
                const Addr a = blocks[rng_->nextBelow(blocks.size())];
                if (rng_->nextBool(0.35))
                    prog.write(a);
                else
                    prog.read(a);
            }
        }
        b.barrier();
        rt.runPrograms(b.take());

        // Random voluntary recalls at quiescent points.
        for (Addr a : blocks)
            if (rng_->nextBool(0.5))
                machine.directory(machine.addrMap().home(a))
                    .voluntaryRecall(a);
        machine.eventQueue().run();

        const auto violations = proto::checkCoherence(machine);
        ASSERT_TRUE(violations.empty())
            << "seed " << GetParam() << ": " << violations.front();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeculationStress,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

// --- Property: every combination of protocol options keeps the
// machine coherent under concurrent stress: owner-read policy x
// forwarding x cache capacity x issue width. ---------------------------

struct MatrixConfig
{
    OwnerReadPolicy policy;
    bool forwarding;
    unsigned capacity;
    unsigned mlp;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixConfig>
{
};

TEST_P(ConfigMatrix, StressStaysCoherent)
{
    const auto param = GetParam();
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.ownerReadPolicy = param.policy;
    cfg.forwarding = param.forwarding;
    cfg.cacheCapacityBlocks = param.capacity;
    cfg.memoryLevelParallelism = param.mlp;
    proto::Machine machine(cfg);
    runtime::Runtime rt(machine);
    Rng rng(0xc0ffee);

    std::vector<Addr> blocks;
    for (int i = 0; i < 12; ++i)
        blocks.push_back(static_cast<Addr>(i) * cfg.pageBytes +
                         (i % 3) * cfg.blockBytes);

    for (int round = 0; round < 3; ++round) {
        runtime::ProgramBuilder b(cfg.numNodes);
        for (NodeId p = 0; p < cfg.numNodes; ++p) {
            auto prog = b.proc(p);
            for (int op = 0; op < 30; ++op) {
                const Addr a = blocks[rng.nextBelow(blocks.size())];
                if (rng.nextBool(0.4))
                    prog.write(a);
                else
                    prog.read(a);
            }
        }
        b.barrier();
        rt.runPrograms(b.take());
        const auto violations = proto::checkCoherence(machine);
        ASSERT_TRUE(violations.empty()) << violations.front();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptions, ConfigMatrix,
    ::testing::Values(
        MatrixConfig{OwnerReadPolicy::half_migratory, false, 0, 1},
        MatrixConfig{OwnerReadPolicy::half_migratory, false, 0, 4},
        MatrixConfig{OwnerReadPolicy::half_migratory, false, 4, 1},
        MatrixConfig{OwnerReadPolicy::half_migratory, false, 4, 4},
        MatrixConfig{OwnerReadPolicy::half_migratory, true, 0, 1},
        MatrixConfig{OwnerReadPolicy::half_migratory, true, 0, 4},
        MatrixConfig{OwnerReadPolicy::half_migratory, true, 4, 1},
        MatrixConfig{OwnerReadPolicy::half_migratory, true, 4, 4},
        MatrixConfig{OwnerReadPolicy::downgrade, false, 0, 1},
        MatrixConfig{OwnerReadPolicy::downgrade, false, 0, 4},
        MatrixConfig{OwnerReadPolicy::downgrade, false, 4, 1},
        MatrixConfig{OwnerReadPolicy::downgrade, false, 4, 4},
        MatrixConfig{OwnerReadPolicy::downgrade, true, 0, 1},
        MatrixConfig{OwnerReadPolicy::downgrade, true, 0, 4},
        MatrixConfig{OwnerReadPolicy::downgrade, true, 4, 1},
        MatrixConfig{OwnerReadPolicy::downgrade, true, 4, 4}));

// --- Property: workload emission is a pure function of the seed. ------

class WorkloadDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadDeterminism, SameSeedSameTrace)
{
    harness::RunConfig cfg;
    cfg.app = GetParam();
    cfg.iterations = 3;
    cfg.warmupIterations = 0;
    cfg.checkInvariants = false;
    cfg.seed = 0x1234;
    const auto a = harness::runWorkload(cfg);
    const auto b = harness::runWorkload(cfg);
    EXPECT_EQ(a.trace.records, b.trace.records);
}

INSTANTIATE_TEST_SUITE_P(Apps, WorkloadDeterminism,
                         ::testing::Values("appbt", "barnes", "dsmc",
                                           "moldyn",
                                           "unstructured"));

} // namespace
} // namespace cosmos
