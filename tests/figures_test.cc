/**
 * @file
 * Tests of the figure-artifact emitters: Graphviz signature graphs
 * and CSV output.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/figures.hh"

namespace cosmos::harness
{
namespace
{

using proto::MsgType;

pred::ArcStats
sampleArcs()
{
    pred::ArcStats arcs;
    for (int i = 0; i < 80; ++i)
        arcs.record(MsgType::get_ro_response,
                    MsgType::upgrade_response, true);
    for (int i = 0; i < 15; ++i)
        arcs.record(MsgType::upgrade_response,
                    MsgType::inval_rw_request, false);
    for (int i = 0; i < 5; ++i)
        arcs.record(MsgType::inval_rw_request,
                    MsgType::get_ro_response, true);
    return arcs;
}

TEST(Figures, DotContainsNodesEdgesAndLabels)
{
    std::ostringstream os;
    writeSignatureDot(sampleArcs(), "test graph", os, 2.0, 50.0);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("digraph signature"), std::string::npos);
    EXPECT_NE(dot.find("label=\"test graph\""), std::string::npos);
    EXPECT_NE(dot.find("\"get_ro_response\" -> \"upgrade_response\""),
              std::string::npos);
    // 80/100 refs, all hits: label 100/80, bold (>= 50%).
    EXPECT_NE(dot.find("label=\"100/80\", style=bold"),
              std::string::npos);
    // 15% arc is present but not bold.
    EXPECT_NE(dot.find("label=\"0/15\"];"), std::string::npos);
}

TEST(Figures, DotThresholdDropsSmallArcs)
{
    std::ostringstream os;
    writeSignatureDot(sampleArcs(), "t", os, 10.0);
    // The 5% arc is below the 10% cut.
    EXPECT_EQ(os.str().find("\"inval_rw_request\" ->"),
              std::string::npos);
}

TEST(Figures, CsvEscapesSpecials)
{
    std::ostringstream os;
    writeCsv(os, {"a", "b"},
             {{"plain", "with,comma"}, {"with\"quote", "x"}});
    EXPECT_EQ(os.str(), "a,b\n"
                        "plain,\"with,comma\"\n"
                        "\"with\"\"quote\",x\n");
}

TEST(FiguresDeathTest, CsvRowWidthMismatchPanics)
{
    std::ostringstream os;
    EXPECT_DEATH(writeCsv(os, {"a", "b"}, {{"only-one"}}),
                 "width mismatch");
}

TEST(Figures, DumpWritesBothRoles)
{
    const std::string dir =
        ::testing::TempDir() + "/cosmos_figures_test";
    std::filesystem::remove_all(dir);
    const auto paths =
        dumpSignatureDots("unit", sampleArcs(), sampleArcs(), dir);
    ASSERT_EQ(paths.size(), 2u);
    for (const auto &path : paths) {
        std::ifstream is(path);
        ASSERT_TRUE(is.good()) << path;
        std::stringstream ss;
        ss << is.rdbuf();
        EXPECT_NE(ss.str().find("digraph"), std::string::npos);
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace cosmos::harness
