/**
 * @file
 * Unit tests of the experiment harness: run configuration handling,
 * trace metadata, invariant enforcement, and the trace cache
 * (including its disk persistence).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/trace_cache.hh"
#include "replay/thread_pool.hh"
#include "workloads/micro.hh"

namespace cosmos::harness
{
namespace
{

TEST(Experiment, FillsTraceMetadata)
{
    RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.iterations = 6;
    cfg.warmupIterations = 1;
    cfg.seed = 0xabc;
    auto result = runWorkload(cfg);
    EXPECT_EQ(result.trace.app, "micro_rmw");
    EXPECT_EQ(result.trace.numNodes, 16);
    EXPECT_EQ(result.trace.blockBytes, 64u);
    EXPECT_EQ(result.trace.iterations, 6);
    EXPECT_EQ(result.trace.seed, 0xabcu);
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.finalTime, 0u);
}

TEST(Experiment, WarmupIterationsAreExcluded)
{
    RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.iterations = 8;
    cfg.warmupIterations = 4;
    auto result = runWorkload(cfg);
    for (const auto &r : result.trace.records)
        EXPECT_GE(r.iteration, 4);

    cfg.warmupIterations = 0;
    auto full = runWorkload(cfg);
    EXPECT_GT(full.trace.records.size(),
              result.trace.records.size());
}

TEST(Experiment, IterationOverrideWins)
{
    RunConfig cfg;
    cfg.app = "micro_producer_consumer";
    cfg.iterations = 3;
    cfg.warmupIterations = 0;
    auto result = runWorkload(cfg);
    std::int32_t max_iter = 0;
    for (const auto &r : result.trace.records)
        max_iter = std::max(max_iter, r.iteration);
    EXPECT_EQ(max_iter, 2);
}

TEST(ExperimentDeathTest, WarmupBeyondIterationsPanics)
{
    RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.iterations = 2;
    cfg.warmupIterations = 5;
    EXPECT_DEATH(runWorkload(cfg), "warm-up");
}

TEST(Experiment, ForwardingCountersAreDeterministicAndClosed)
{
    // Same config twice -> bit-identical timing and protocol totals,
    // with forwarding's handshake closed (every forwarded recall
    // produced exactly one fwd_ack by quiescence). Forwarding off ->
    // all three counters stay zero. A diff between the two repeat
    // runs would mean iteration/chunk order leaks into the
    // directories' stats_ accounting.
    RunConfig cfg;
    cfg.app = "micro_migratory";
    cfg.iterations = 8;
    cfg.machine.forwarding = true;
    auto a = runWorkload(cfg);
    auto b = runWorkload(cfg);
    EXPECT_EQ(a.finalTime, b.finalTime);
    EXPECT_EQ(a.totals.forwardsSent, b.totals.forwardsSent);
    EXPECT_EQ(a.totals.fwdAcks, b.totals.fwdAcks);
    EXPECT_EQ(a.totals.invalsSent, b.totals.invalsSent);
    EXPECT_EQ(a.totals.readMisses, b.totals.readMisses);
    EXPECT_EQ(a.totals.writeMisses, b.totals.writeMisses);
    EXPECT_GT(a.totals.forwardsSent, 0u);
    EXPECT_EQ(a.totals.fwdAcks, a.totals.forwardsSent);
    EXPECT_EQ(a.totals.forwardsSuppressed, 0u);

    cfg.machine.forwarding = false;
    auto c = runWorkload(cfg);
    EXPECT_EQ(c.totals.forwardsSent, 0u);
    EXPECT_EQ(c.totals.forwardsSuppressed, 0u);
    EXPECT_EQ(c.totals.fwdAcks, 0u);
}

TEST(Experiment, CustomWorkloadInstance)
{
    RunConfig cfg;
    wl::FalseSharingParams params;
    params.blocks = 4;
    params.iterations = 10;
    wl::FalseSharingMicro workload(params);
    auto result = runWorkload(cfg, workload);
    EXPECT_GT(result.trace.records.size(), 50u);
    // False sharing means both halves' writers fight over the same
    // blocks: at most `blocks` + padding-page blocks are involved.
    EXPECT_LE(result.trace.distinctBlocks(), 4u);
}

TEST(TraceCache, ReturnsSameObjectForSameKey)
{
    clearTraceCache();
    const auto &a = cachedTrace("micro_rmw", 4);
    const auto &b = cachedTrace("micro_rmw", 4);
    EXPECT_EQ(&a, &b);
    const auto &c = cachedTrace("micro_rmw", 5);
    EXPECT_NE(&a, &c);
    clearTraceCache();
}

TEST(TraceCache, KeysOnPolicyAndSeed)
{
    clearTraceCache();
    const auto &hm =
        cachedTrace("micro_rmw", 4, OwnerReadPolicy::half_migratory);
    const auto &dg =
        cachedTrace("micro_rmw", 4, OwnerReadPolicy::downgrade);
    EXPECT_NE(&hm, &dg);
    const auto &seeded = cachedTrace(
        "micro_rmw", 4, OwnerReadPolicy::half_migratory, 99);
    EXPECT_NE(&hm, &seeded);
    clearTraceCache();
}

TEST(TraceCache, PersistsToDiskWhenConfigured)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/cosmos_trace_cache_test";
    fs::remove_all(dir);
    setenv("COSMOS_TRACE_CACHE", dir.c_str(), 1);

    clearTraceCache();
    const auto &first = cachedTrace("micro_rmw", 4);
    const auto first_size = first.records.size();
    // A file must now exist.
    bool found = false;
    for (const auto &entry : fs::directory_iterator(dir))
        found |= entry.path().extension() == ".trace";
    EXPECT_TRUE(found);

    // A fresh in-memory cache must load the same trace from disk.
    clearTraceCache();
    const auto &second = cachedTrace("micro_rmw", 4);
    EXPECT_EQ(second.records.size(), first_size);

    unsetenv("COSMOS_TRACE_CACHE");
    clearTraceCache();
    fs::remove_all(dir);
}

TEST(TraceCache, CorruptDiskCacheFallsBackToSimulation)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/cosmos_trace_cache_corrupt";
    fs::remove_all(dir);
    setenv("COSMOS_TRACE_CACHE", dir.c_str(), 1);

    // Prime the disk cache, then corrupt the file in place.
    clearTraceCache();
    const auto good_size = cachedTrace("micro_rmw", 4).records.size();
    std::string path;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".trace")
            path = entry.path().string();
    ASSERT_FALSE(path.empty());
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "half-written garbage";
    }

    // A fresh fetch must re-simulate (warning, not abort) and
    // produce the same trace.
    clearTraceCache();
    setWarningsEnabled(false);
    const auto &again = cachedTrace("micro_rmw", 4);
    setWarningsEnabled(true);
    EXPECT_EQ(again.records.size(), good_size);

    unsetenv("COSMOS_TRACE_CACHE");
    clearTraceCache();
    fs::remove_all(dir);
}

TEST(TraceCache, ConcurrentDistinctKeysSimulateInParallel)
{
    clearTraceCache();
    replay::ThreadPool pool(4);
    std::vector<const trace::Trace *> traces(4);
    pool.parallelFor(traces.size(), [&](std::size_t i) {
        traces[i] =
            &cachedTrace("micro_rmw", 3 + static_cast<int>(i));
    });
    for (std::size_t i = 0; i < traces.size(); ++i)
        for (std::size_t j = i + 1; j < traces.size(); ++j)
            EXPECT_NE(traces[i], traces[j]);
    clearTraceCache();
}

} // namespace
} // namespace cosmos::harness
