/**
 * @file
 * Tests of the predictor design variants: last-value baseline,
 * macroblock grouping, and the bounded-PHT hardware budget.
 */

#include <gtest/gtest.h>

#include "cosmos/variants.hh"

namespace cosmos::pred
{
namespace
{

using proto::MsgType;

MsgTuple
tup(NodeId sender, MsgType type)
{
    return MsgTuple{sender, type};
}

TEST(LastValue, PredictsRepeatedTuple)
{
    LastValuePredictor p;
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    EXPECT_FALSE(p.predict(0).has_value());
    auto r1 = p.observe(0, a);
    EXPECT_FALSE(r1.counted);
    ASSERT_TRUE(p.predict(0).has_value());
    EXPECT_EQ(*p.predict(0), a);
    auto r2 = p.observe(0, a);
    EXPECT_TRUE(r2.counted);
    EXPECT_TRUE(r2.hit);
}

TEST(LastValue, FailsOnAlternation)
{
    // The canonical coherence pattern: tuples alternate, so the
    // last-value predictor is wrong every time.
    LastValuePredictor p;
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(1, MsgType::upgrade_request);
    p.observe(0, a);
    int hits = 0, counted = 0;
    for (int i = 0; i < 20; ++i) {
        auto res = p.observe(0, i % 2 == 0 ? b : a);
        counted += res.counted;
        hits += res.hit;
    }
    EXPECT_EQ(counted, 20);
    EXPECT_EQ(hits, 0);
}

TEST(LastValue, BlocksAreIndependent)
{
    LastValuePredictor p;
    p.observe(0x00, tup(1, MsgType::get_ro_request));
    EXPECT_FALSE(p.predict(0x40).has_value());
}

TEST(Macroblock, GroupsConsecutiveBlocks)
{
    // All four blocks of the macroblock share one history: a pattern
    // learned via block 0 predicts for block 3.
    MacroblockPredictor p(CosmosConfig{1, 0}, 4, 64);
    const MsgTuple a = tup(1, MsgType::get_ro_request);
    const MsgTuple b = tup(1, MsgType::upgrade_request);
    p.observe(0x000, a);
    p.observe(0x040, b); // learned: a -> b (same macroblock)
    p.observe(0x080, a);
    ASSERT_TRUE(p.predict(0x0c0).has_value());
    EXPECT_EQ(*p.predict(0x0c0), b);
}

TEST(Macroblock, SeparatesDistinctMacroblocks)
{
    MacroblockPredictor p(CosmosConfig{1, 0}, 4, 64);
    p.observe(0x000, tup(1, MsgType::get_ro_request));
    // 0x100 is the next macroblock (4 * 64 = 0x100).
    EXPECT_FALSE(p.predict(0x100).has_value());
}

TEST(Macroblock, FootprintIsShared)
{
    MacroblockPredictor p(CosmosConfig{1, 0}, 4, 64);
    for (Addr a = 0; a < 4 * 64; a += 64)
        p.observe(a, tup(1, MsgType::get_ro_request));
    // Four blocks, one macroblock: a single MHR entry.
    EXPECT_EQ(p.footprint().mhrEntries, 1u);
}

TEST(MacroblockDeathTest, NonPowerOfTwoGroupPanics)
{
    EXPECT_DEATH(MacroblockPredictor(CosmosConfig{1, 0}, 3, 64),
                 "power");
}

TEST(BudgetPht, CapsEntriesPerBlock)
{
    CosmosPredictor p(CosmosConfig{1, 0, 2});
    // Feed four distinct patterns through one block.
    const MsgTuple t[] = {
        tup(1, MsgType::get_ro_request),
        tup(2, MsgType::get_rw_request),
        tup(3, MsgType::upgrade_request),
        tup(4, MsgType::inval_ro_response),
    };
    for (int lap = 0; lap < 3; ++lap)
        for (const auto &x : t)
            p.observe(0, x);
    EXPECT_LE(p.footprint().phtEntries, 2u);
}

TEST(BudgetPht, UnboundedKeepsEverything)
{
    CosmosPredictor p(CosmosConfig{1, 0, 0});
    const MsgTuple t[] = {
        tup(1, MsgType::get_ro_request),
        tup(2, MsgType::get_rw_request),
        tup(3, MsgType::upgrade_request),
        tup(4, MsgType::inval_ro_response),
    };
    for (int lap = 0; lap < 2; ++lap)
        for (const auto &x : t)
            p.observe(0, x);
    EXPECT_EQ(p.footprint().phtEntries, 4u);
}

TEST(BudgetPht, LargeEnoughBudgetMatchesUnbounded)
{
    // A cycle with three patterns fits a 4-entry budget exactly, so
    // capped and uncapped predictors behave identically.
    CosmosPredictor capped(CosmosConfig{1, 0, 4});
    CosmosPredictor open(CosmosConfig{1, 0, 0});
    const MsgTuple cycle[] = {
        tup(1, MsgType::get_ro_request),
        tup(1, MsgType::upgrade_request),
        tup(2, MsgType::get_ro_request),
    };
    int hits_capped = 0, hits_open = 0;
    for (int i = 0; i < 60; ++i) {
        hits_capped += capped.observe(0, cycle[i % 3]).hit;
        hits_open += open.observe(0, cycle[i % 3]).hit;
    }
    EXPECT_EQ(hits_capped, hits_open);
    EXPECT_GT(hits_capped, 50);
}

TEST(TypeOnly, IgnoresSenderInHistoryAndHit)
{
    // The same type from different senders is one pattern, and a hit
    // only needs the type to match.
    TypeOnlyPredictor p(CosmosConfig{1, 0});
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, tup(2, MsgType::upgrade_request));
    // Same type-pattern from another sender: prediction applies.
    auto res = p.observe(0, tup(7, MsgType::get_ro_request));
    EXPECT_TRUE(res.counted);
    auto res2 = p.observe(0, tup(9, MsgType::upgrade_request));
    EXPECT_TRUE(res2.hadPrediction);
    EXPECT_TRUE(res2.hit); // type matches, sender irrelevant
}

TEST(TypeOnly, StillMissesOnWrongType)
{
    TypeOnlyPredictor p(CosmosConfig{1, 0});
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, tup(1, MsgType::upgrade_request));
    p.observe(0, tup(1, MsgType::get_ro_request));
    auto res = p.observe(0, tup(1, MsgType::inval_ro_response));
    EXPECT_TRUE(res.hadPrediction);
    EXPECT_FALSE(res.hit);
}

TEST(SenderSet, AccumulatesAlternatingSenders)
{
    // Two consumers alternate after the same pattern; the set learns
    // both, so either one is a hit (footnote 3).
    SenderSetPredictor p(CosmosConfig{1, 0});
    const MsgTuple trigger = tup(0, MsgType::upgrade_request);
    p.observe(0, trigger);
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, trigger);
    p.observe(0, tup(2, MsgType::get_ro_request));
    p.observe(0, trigger);
    // Both sender 1 and sender 2 are now in the set.
    EXPECT_EQ(p.setFor(0), (1u << 1) | (1u << 2));
    auto r1 = p.observe(0, tup(2, MsgType::get_ro_request));
    EXPECT_TRUE(r1.hit);
    p.observe(0, trigger);
    auto r2 = p.observe(0, tup(1, MsgType::get_ro_request));
    EXPECT_TRUE(r2.hit);
    EXPECT_GT(p.meanSetSize(), 1.0);
}

TEST(SenderSet, TypeChangeResetsTheSet)
{
    SenderSetPredictor p(CosmosConfig{1, 0});
    const MsgTuple trigger = tup(0, MsgType::upgrade_request);
    p.observe(0, trigger);
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, trigger);
    auto res = p.observe(0, tup(3, MsgType::inval_rw_response));
    EXPECT_FALSE(res.hit); // type mismatch
    EXPECT_EQ(p.setFor(0), 0u); // MHR moved on; new pattern is cold
    p.observe(0, trigger);
    // The set for the trigger pattern was rebuilt around the new
    // type/sender.
    EXPECT_EQ(p.setFor(0), 1u << 3);
}

TEST(SenderSet, NoPredictionBeforeWarm)
{
    SenderSetPredictor p(CosmosConfig{2, 0});
    EXPECT_FALSE(p.predict(0).has_value());
    p.observe(0, tup(1, MsgType::get_ro_request));
    EXPECT_FALSE(p.predict(0).has_value());
}

} // namespace
} // namespace cosmos::pred
