/**
 * @file
 * Tests of the sharing-pattern classifier: hand-built directory
 * message streams with exactly known classifications, plus
 * end-to-end checks against the micro-workloads.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "trace/pattern_census.hh"
#include "workloads/micro.hh"

namespace cosmos::trace
{
namespace
{

using proto::MsgType;

void
append(Trace &t, Addr block, NodeId sender, MsgType type)
{
    TraceRecord r;
    r.block = block;
    r.sender = sender;
    r.type = type;
    r.role = proto::receiverRole(type);
    t.records.push_back(r);
}

TEST(PatternCensus, ReadOnlyBlock)
{
    Trace t;
    for (int i = 0; i < 8; ++i)
        append(t, 0, static_cast<NodeId>(i % 4),
               MsgType::get_ro_request);
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::read_only)],
              1u);
    EXPECT_DOUBLE_EQ(
        census.messagePercent(SharingPattern::read_only), 100.0);
}

TEST(PatternCensus, RarelyTouchedBlock)
{
    Trace t;
    append(t, 0, 1, MsgType::get_ro_request);
    append(t, 0, 1, MsgType::get_rw_request);
    const auto census = classifyTrace(t, 6);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::rarely_touched)],
              1u);
}

TEST(PatternCensus, ProducerConsumerBlock)
{
    // One writer (node 0), one reader (node 1), many rounds.
    Trace t;
    for (int round = 0; round < 6; ++round) {
        append(t, 0, 0, MsgType::get_rw_request);
        append(t, 0, 0, MsgType::inval_rw_response);
        append(t, 0, 1, MsgType::get_ro_request);
    }
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::producer_consumer)],
              1u);
}

TEST(PatternCensus, ProducerWhoReadsFirstIsStillProducerConsumer)
{
    // appbt-style: the dominant writer reads before writing; that
    // must not classify as migratory (ownership never rotates).
    Trace t;
    for (int round = 0; round < 6; ++round) {
        append(t, 0, 0, MsgType::get_ro_request);
        append(t, 0, 0, MsgType::upgrade_request);
        append(t, 0, 1, MsgType::get_ro_request);
    }
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::producer_consumer)],
              1u);
}

TEST(PatternCensus, MigratoryBlock)
{
    // Ownership rotates 0 -> 1 -> 2 -> 0 ..., each node reading then
    // upgrading: the Figure 8b discipline.
    Trace t;
    for (int round = 0; round < 6; ++round) {
        const NodeId node = static_cast<NodeId>(round % 3);
        append(t, 0, node, MsgType::get_ro_request);
        append(t, 0, node, MsgType::upgrade_request);
    }
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::migratory)],
              1u);
}

TEST(PatternCensus, MultiWriterBlock)
{
    // Two writers alternating blind writes: false-sharing style.
    Trace t;
    for (int round = 0; round < 8; ++round)
        append(t, 0, static_cast<NodeId>(round % 2),
               MsgType::get_rw_request);
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.blocks[static_cast<unsigned>(
                  SharingPattern::multi_writer)],
              1u);
}

TEST(PatternCensus, CacheSideRecordsAreIgnored)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        append(t, 0, 1, MsgType::get_ro_response); // cache role
    const auto census = classifyTrace(t);
    EXPECT_EQ(census.totalBlocks, 0u);
}

TEST(PatternCensus, MicroWorkloadsClassifyAsDesigned)
{
    {
        harness::RunConfig cfg;
        wl::MigratoryParams params;
        params.iterations = 20;
        wl::MigratoryMicro workload(params);
        auto result = harness::runWorkload(cfg, workload);
        const auto census = classifyTrace(result.trace);
        EXPECT_GT(census.messagePercent(SharingPattern::migratory),
                  90.0);
    }
    {
        harness::RunConfig cfg;
        wl::ProducerConsumerParams params;
        params.iterations = 20;
        wl::ProducerConsumerMicro workload(params);
        auto result = harness::runWorkload(cfg, workload);
        const auto census = classifyTrace(result.trace);
        EXPECT_GT(census.messagePercent(
                      SharingPattern::producer_consumer),
                  90.0);
    }
}

TEST(PatternCensus, FormatListsAllClasses)
{
    PatternCensus census;
    census.totalBlocks = 1;
    census.totalMessages = 10;
    census.blocks[2] = 1;
    census.messages[2] = 10;
    const std::string text = census.format();
    for (unsigned i = 0; i < num_sharing_patterns; ++i)
        EXPECT_NE(text.find(toString(
                      static_cast<SharingPattern>(i))),
                  std::string::npos);
}

} // namespace
} // namespace cosmos::trace
