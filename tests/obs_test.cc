/**
 * @file
 * Tests of the observability subsystem: the metrics registry (typed
 * metrics, name-wise merge, the stable JSON export and its central
 * guarantee -- byte-identical output across runs, thread counts, and
 * serial-vs-sharded replay) and the Chrome trace-event tracing layer
 * (files always parse; events carry the required keys).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fixtures/mini_json.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "obs/metrics.hh"
#include "obs/trace_event.hh"

namespace cosmos
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

// ------------------------------------------------------------ registry

TEST(Registry, LookupCreatesOnceAndReturnsSameObject)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("x.count");
    a.add(3);
    EXPECT_EQ(&reg.counter("x.count"), &a);
    EXPECT_EQ(reg.counter("x.count").value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, GaugeTracksHighWater)
{
    obs::Registry reg;
    obs::Gauge &g = reg.gauge("q.depth");
    g.set(5);
    g.set(2);
    g.add(1);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.highWater(), 5);
}

TEST(Registry, MergeFoldsEveryKind)
{
    obs::Registry a;
    a.counter("c").add(10);
    a.gauge("g").set(7);
    a.histogram("h", Histogram::linear(0.0, 10.0, 10)).record(3.0);
    a.summary("s").sample(1.0);

    obs::Registry b;
    b.counter("c").add(5);
    b.gauge("g").set(3);
    b.histogram("h", Histogram::linear(0.0, 10.0, 10)).record(8.0);
    b.summary("s").sample(5.0);
    b.counter("only_in_b").add(1);

    a.merge(b);
    EXPECT_EQ(a.counter("c").value(), 15u);
    EXPECT_EQ(a.gauge("g").value(), 10);
    EXPECT_EQ(a.gauge("g").highWater(), 7);
    EXPECT_EQ(a.histogram("h", {}).count(), 2u);
    EXPECT_EQ(a.summary("s").count(), 2u);
    EXPECT_EQ(a.counter("only_in_b").value(), 1u);
}

TEST(Registry, JsonParsesAndHidesVolatileByDefault)
{
    obs::Registry reg;
    reg.counter("stable.count").add(42);
    reg.counter("volatile.count", obs::Stability::volatile_).add(9);
    reg.histogram("stable.hist", Histogram::exponential(1.0, 2.0, 4))
        .record(3.0);

    const std::string json = reg.toJson();
    auto doc = mini_json::parse(json);
    ASSERT_TRUE(doc->isObject());
    ASSERT_TRUE(doc->has("schema"));
    EXPECT_EQ(doc->get("schema")->string, "cosmos-metrics-v1");
    const auto *metrics = doc->get("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->has("stable.count"));
    EXPECT_TRUE(metrics->has("stable.hist"));
    EXPECT_FALSE(metrics->has("volatile.count"));

    auto full = mini_json::parse(reg.toJson(true));
    EXPECT_TRUE(full->get("metrics")->has("volatile.count"));
}

TEST(Registry, JsonIsByteStableAcrossIdenticalRuns)
{
    auto build = [] {
        obs::Registry reg;
        reg.counter("a").add(7);
        reg.gauge("b").set(-3);
        reg.histogram("c", Histogram::linear(0.0, 1.0, 4)).record(0.5);
        reg.summary("d").sample(2.5);
        return reg.toJson();
    };
    EXPECT_EQ(build(), build());
}

// ----------------------------------------------- machine instrumentation

TEST(MachineMetrics, MatchTheRunResultCounters)
{
    obs::Registry reg;
    harness::RunConfig cfg;
    cfg.app = "micro_rmw";
    cfg.iterations = 4;
    cfg.checkInvariants = false;
    cfg.metrics = &reg;
    const auto result = harness::runWorkload(cfg);

    EXPECT_EQ(reg.counter("sim.events_executed").value(),
              result.events);
    EXPECT_EQ(reg.counter("net.remote_messages").value(),
              result.network.remoteMessages);
    EXPECT_EQ(reg.counter("proto.cache.loads").value(),
              result.totals.loads);
    EXPECT_EQ(reg.counter("proto.cache.stores").value(),
              result.totals.stores);
    // Every remote message shows up in the latency histogram.
    EXPECT_EQ(reg.histogram("net.latency_ticks", {}).count(),
              result.network.remoteMessages);
    // All in-flight messages were delivered by quiescence.
    EXPECT_EQ(reg.gauge("net.in_flight").value(), 0);
    EXPECT_GT(reg.gauge("net.in_flight").highWater(), 0);
    EXPECT_GT(reg.gauge("sim.queue_depth").highWater(), 0);
}

// -------------------------------------------------- export determinism

std::vector<replay::ReplayJob>
smallGrid(unsigned shards = 0)
{
    std::vector<replay::ReplayJob> jobs;
    for (unsigned depth = 1; depth <= 2; ++depth) {
        replay::ReplayJob j;
        j.app = "micro_migratory";
        j.iterations = 6;
        j.config = pred::CosmosConfig{depth, 0};
        j.shards = shards;
        jobs.push_back(j);
    }
    return jobs;
}

std::string
sweepJson(unsigned threads, unsigned shards)
{
    const auto jobs = smallGrid(shards);
    obs::Registry reg;
    harness::SweepOptions opts;
    opts.threads = threads;
    opts.metrics = &reg; // volatile pool stats must not leak into JSON
    const auto results = harness::runSweep(jobs, opts);
    harness::publishSweepMetrics(jobs, results, reg);
    return reg.toJson();
}

TEST(MetricsExport, ByteIdenticalAcrossThreadCounts)
{
    const std::string serial = sweepJson(1, 1);
    const std::string threaded = sweepJson(4, 1);
    EXPECT_EQ(serial, threaded);
}

TEST(MetricsExport, ByteIdenticalSerialVsShardedReplay)
{
    const std::string serial = sweepJson(2, 1);
    const std::string sharded = sweepJson(2, 4);
    EXPECT_EQ(serial, sharded);
}

TEST(MetricsExport, WriteJsonRoundTrips)
{
    obs::Registry reg;
    reg.counter("k").add(1);
    const std::string path = tempPath("metrics_roundtrip.json");
    ASSERT_TRUE(reg.writeJson(path));
    EXPECT_EQ(slurp(path), reg.toJson());
    std::remove(path.c_str());
}

// -------------------------------------------------------------- tracing

TEST(Tracing, TraceFileIsValidChromeTraceJson)
{
    obs::startTracing();
    {
        COSMOS_SPAN("test", "outer");
        COSMOS_SPAN_ARGS("test", "inner", "index", 7u);
        COSMOS_INSTANT("test", "marker");
    }
    const std::string path = tempPath("trace_events.json");
    ASSERT_TRUE(obs::writeTrace(path));

    auto doc = mini_json::parse(slurp(path));
    std::remove(path.c_str());
    ASSERT_TRUE(doc->isObject());
    const auto *events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

#if COSMOS_OBS_TRACING_ENABLED
    ASSERT_GE(events->array.size(), 3u);
#endif
    for (const auto &ev : events->array) {
        ASSERT_TRUE(ev->isObject());
        EXPECT_TRUE(ev->has("name"));
        EXPECT_TRUE(ev->has("cat"));
        EXPECT_TRUE(ev->has("ph"));
        EXPECT_TRUE(ev->has("ts"));
        EXPECT_TRUE(ev->has("pid"));
        EXPECT_TRUE(ev->has("tid"));
        const std::string ph = ev->get("ph")->string;
        EXPECT_TRUE(ph == "X" || ph == "i");
        if (ph == "X") {
            EXPECT_TRUE(ev->has("dur"));
        }
    }
}

TEST(Tracing, DisabledRecordersProduceAnEmptyValidTrace)
{
    // Not started: macros are armed (in tracing builds) but inactive.
    const std::string path = tempPath("trace_empty.json");
    {
        COSMOS_SPAN("test", "ignored");
    }
    ASSERT_TRUE(obs::writeTrace(path));
    auto doc = mini_json::parse(slurp(path));
    std::remove(path.c_str());
    const auto *events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->array.empty());
}

} // namespace
} // namespace cosmos
