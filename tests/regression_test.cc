/**
 * @file
 * Shape-regression suite: full default runs of every application,
 * asserting the paper-shape properties that EXPERIMENTS.md reports.
 * These tests guard the workload kernels and the predictor against
 * refactors that would silently break the reproduction; bounds are
 * deliberately generous bands around the measured values, not exact
 * pins.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "cosmos/predictor_bank.hh"
#include "harness/trace_cache.hh"

namespace cosmos
{
namespace
{

struct Rates
{
    double c, d, o;
};

Rates
ratesFor(const std::string &app, unsigned depth, unsigned filter = 0)
{
    const auto &trace = harness::cachedTrace(app);
    pred::PredictorBank bank(trace.numNodes,
                             pred::CosmosConfig{depth, filter});
    bank.replay(trace);
    const auto &acc = bank.accuracy();
    return {acc.cacheSide().percent(), acc.directorySide().percent(),
            acc.overall().percent()};
}

TEST(Regression, Table5BandsHold)
{
    // Generous +-6-point bands around the measured Table 5 values
    // (paper values in EXPERIMENTS.md).
    const std::map<std::string, double> overall_d1 = {
        {"appbt", 81},       {"barnes", 69}, {"dsmc", 86},
        {"moldyn", 84},      {"unstructured", 73}};
    const std::map<std::string, double> overall_d3 = {
        {"appbt", 84},       {"barnes", 69}, {"dsmc", 90},
        {"moldyn", 86},      {"unstructured", 89}};
    for (const auto &[app, expect] : overall_d1)
        EXPECT_NEAR(ratesFor(app, 1).o, expect, 6.0) << app << " d1";
    for (const auto &[app, expect] : overall_d3)
        EXPECT_NEAR(ratesFor(app, 3).o, expect, 6.0) << app << " d3";
}

TEST(Regression, CacheBeatsDirectoryEverywhere)
{
    for (const auto &app : wl::paperWorkloads()) {
        for (unsigned depth : {1u, 3u}) {
            const auto r = ratesFor(app, depth);
            EXPECT_GT(r.c, r.d) << app << " depth " << depth;
        }
    }
}

TEST(Regression, BarnesIsTheWorstApplication)
{
    for (unsigned depth : {1u, 2u, 3u}) {
        const double barnes = ratesFor("barnes", depth).o;
        for (const auto &app : wl::paperWorkloads()) {
            if (app == "barnes")
                continue;
            EXPECT_GT(ratesFor(app, depth).o, barnes)
                << app << " vs barnes at depth " << depth;
        }
    }
}

TEST(Regression, UnstructuredGainsMostFromDepth)
{
    double best_gain = -100.0;
    std::string best_app;
    for (const auto &app : wl::paperWorkloads()) {
        const double gain =
            ratesFor(app, 3).o - ratesFor(app, 1).o;
        if (gain > best_gain) {
            best_gain = gain;
            best_app = app;
        }
    }
    EXPECT_EQ(best_app, "unstructured");
    EXPECT_GT(best_gain, 8.0);
}

TEST(Regression, DsmcDirectoryGainsFromDepth)
{
    // The §3.5 out-of-order mechanism: dsmc's directory side climbs
    // several points from depth 1 to depth 3.
    EXPECT_GT(ratesFor("dsmc", 3).d, ratesFor("dsmc", 1).d + 4.0);
}

TEST(Regression, FiltersHelpOnlyAtDepthOne)
{
    // Mean filter benefit across applications: clearly positive at
    // depth 1, near zero at depth 2 (Table 6's shape).
    double gain_d1 = 0.0, gain_d2 = 0.0;
    for (const auto &app : wl::paperWorkloads()) {
        gain_d1 += ratesFor(app, 1, 1).o - ratesFor(app, 1, 0).o;
        gain_d2 += ratesFor(app, 2, 1).o - ratesFor(app, 2, 0).o;
    }
    gain_d1 /= 5.0;
    gain_d2 /= 5.0;
    EXPECT_GT(gain_d1, 0.5);
    EXPECT_LT(gain_d2, gain_d1);
}

TEST(Regression, BarnesHasTheLargestMemoryFootprint)
{
    for (const auto &app : wl::paperWorkloads()) {
        if (app == "barnes")
            continue;
        const auto &barnes_trace = harness::cachedTrace("barnes");
        const auto &other_trace = harness::cachedTrace(app);
        pred::PredictorBank barnes_bank(barnes_trace.numNodes,
                                        pred::CosmosConfig{3, 0});
        pred::PredictorBank other_bank(other_trace.numNodes,
                                       pred::CosmosConfig{3, 0});
        barnes_bank.replay(barnes_trace);
        other_bank.replay(other_trace);
        EXPECT_GT(barnes_bank.memoryStats().ratio(),
                  other_bank.memoryStats().ratio())
            << app;
    }
}

TEST(Regression, DsmcRatioStaysBelowOne)
{
    const auto &trace = harness::cachedTrace("dsmc");
    pred::PredictorBank bank(trace.numNodes, pred::CosmosConfig{1, 0});
    bank.replay(trace);
    EXPECT_LT(bank.memoryStats().ratio(), 1.0);
}

TEST(Regression, MoldynShowsMigratorySignature)
{
    const auto &trace = harness::cachedTrace("moldyn");
    pred::PredictorBank bank(trace.numNodes, pred::CosmosConfig{1, 0});
    bank.replay(trace);
    // The Figure 7 cache-side relationship: the migratory second leg
    // (upgrade_response after get_ro_response) out-references the
    // producer-consumer leg (inval_ro_request after get_ro_response).
    const auto &arcs = bank.arcs(proto::Role::cache);
    const auto migratory = arcs.arc(proto::MsgType::get_ro_response,
                                    proto::MsgType::upgrade_response);
    const auto pc = arcs.arc(proto::MsgType::get_ro_response,
                             proto::MsgType::inval_ro_request);
    EXPECT_GT(migratory.refs, pc.refs);
    EXPECT_GT(migratory.refs, 0u);
    EXPECT_GT(pc.refs, 0u);
}

TEST(Regression, AppbtFalseSharingDragsDirectoryArcsDown)
{
    // The paper's Figure 6 blames appbt's weakest directory arcs on
    // false sharing in two data structures. Our kernel's false-shared
    // residual arrays produce the same effect: the weakest dominant
    // directory arc sits well below the directory average, while the
    // cache side has no comparably weak dominant arc.
    const auto &trace = harness::cachedTrace("appbt");
    pred::PredictorBank bank(trace.numNodes, pred::CosmosConfig{1, 0});
    bank.replay(trace);

    const auto weakest = [&](proto::Role role) {
        double w = 100.0;
        for (const auto &arc : bank.arcs(role).dominantArcs(5.0))
            w = std::min(w, arc.hitPercent);
        return w;
    };
    EXPECT_LT(weakest(proto::Role::directory),
              bank.accuracy().directorySide().percent() - 3.0);
    EXPECT_GT(weakest(proto::Role::cache), 75.0);

    // The Figure 6 false-sharing arc itself exists and is imperfect.
    const auto fs_arc =
        bank.arcs(proto::Role::directory)
            .arc(proto::MsgType::upgrade_request,
                 proto::MsgType::inval_ro_response);
    ASSERT_GT(fs_arc.refs, 100u);
    EXPECT_LT(fs_arc.hitPercent, 85.0);
}

} // namespace
} // namespace cosmos
