/**
 * @file
 * Whole-pipeline integration tests: machine + runtime + workload ->
 * trace -> predictor bank, checking the cross-module behaviours the
 * paper's evaluation relies on.
 */

#include <gtest/gtest.h>

#include "cosmos/predictor_bank.hh"
#include "harness/experiment.hh"
#include "proto/invariants.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace cosmos
{
namespace
{

harness::RunConfig
smallConfig(const std::string &app)
{
    harness::RunConfig cfg;
    cfg.app = app;
    cfg.machine.numNodes = 16;
    cfg.checkInvariants = true;
    return cfg;
}

TEST(Integration, ProducerConsumerSignatureIsPerfectlyPredictable)
{
    // The §3.1 example: a stable producer-consumer block generates a
    // fixed message signature, and a depth-1 Cosmos predictor learns
    // it essentially perfectly.
    wl::ProducerConsumerParams params;
    params.blocks = 8;
    params.consumers = 1;
    params.iterations = 40;
    auto cfg = smallConfig("");
    wl::ProducerConsumerMicro workload(params);
    auto result = harness::runWorkload(cfg, workload);

    ASSERT_GT(result.trace.records.size(), 500u);
    pred::PredictorBank bank(16, pred::CosmosConfig{1, 0});
    bank.replay(result.trace);
    EXPECT_GT(bank.accuracy().overall().percent(), 95.0);
}

TEST(Integration, MigratorySignatureNeedsNoFilterAtDepthOne)
{
    // A deterministic 4-processor rotation is exactly learnable with
    // one tuple of history because senders disambiguate positions.
    wl::MigratoryParams params;
    params.blocks = 6;
    params.rotation = 4;
    params.iterations = 40;
    auto cfg = smallConfig("");
    wl::MigratoryMicro workload(params);
    auto result = harness::runWorkload(cfg, workload);

    pred::PredictorBank bank(16, pred::CosmosConfig{1, 0});
    bank.replay(result.trace);
    EXPECT_GT(bank.accuracy().overall().percent(), 90.0);
}

TEST(Integration, EveryPaperWorkloadRunsCoherently)
{
    // Short runs of all five applications with invariant checking on:
    // the protocol stays coherent and produces traced messages at
    // both roles.
    for (const auto &app : wl::paperWorkloads()) {
        auto cfg = smallConfig(app);
        cfg.iterations = 5;
        cfg.warmupIterations = 1;
        auto result = harness::runWorkload(cfg);
        EXPECT_GT(result.trace.records.size(), 100u) << app;
        EXPECT_GT(result.trace.cacheRecords(), 0u) << app;
        EXPECT_GT(result.trace.directoryRecords(), 0u) << app;
    }
}

TEST(Integration, TracesAreDeterministicGivenASeed)
{
    auto cfg = smallConfig("appbt");
    cfg.iterations = 4;
    cfg.warmupIterations = 1;
    auto a = harness::runWorkload(cfg);
    auto b = harness::runWorkload(cfg);
    ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
    EXPECT_EQ(a.trace.records, b.trace.records);
    EXPECT_EQ(a.finalTime, b.finalTime);
}

TEST(Integration, DifferentSeedsPerturbTiming)
{
    auto cfg = smallConfig("appbt");
    cfg.iterations = 4;
    cfg.warmupIterations = 1;
    auto a = harness::runWorkload(cfg);
    cfg.seed ^= 0x1234;
    auto b = harness::runWorkload(cfg);
    EXPECT_NE(a.trace.records, b.trace.records);
}

TEST(Integration, DepthImprovesUnstructured)
{
    // §6.1: unstructured oscillates between migratory and
    // producer-consumer phases; more MHR depth must help noticeably.
    auto cfg = smallConfig("unstructured");
    cfg.iterations = 20;
    auto result = harness::runWorkload(cfg);

    pred::PredictorBank d1(16, pred::CosmosConfig{1, 0});
    pred::PredictorBank d3(16, pred::CosmosConfig{3, 0});
    d1.replay(result.trace);
    d3.replay(result.trace);
    EXPECT_GT(d3.accuracy().overall().percent(),
              d1.accuracy().overall().percent() + 3.0);
}

TEST(Integration, CacheSideBeatsDirectorySide)
{
    // §6.1: a Stache cache hears from a single fixed sender (the home
    // directory), so cache-side prediction is easier than
    // directory-side prediction.
    for (const auto &app : {"appbt", "moldyn"}) {
        auto cfg = smallConfig(app);
        cfg.iterations = 15;
        auto result = harness::runWorkload(cfg);
        pred::PredictorBank bank(16, pred::CosmosConfig{1, 0});
        bank.replay(result.trace);
        EXPECT_GT(bank.accuracy().cacheSide().percent(),
                  bank.accuracy().directorySide().percent())
            << app;
    }
}

} // namespace
} // namespace cosmos
