/**
 * @file
 * Static protocol analyzer (src/lint) tests.
 *
 * The shipped transition table must lint clean under every protocol
 * variant, and each of the five planted table mutations must trip
 * exactly the lint pass built to catch its bug class -- the mutation
 * tests pin the finding's kind, role, detail and row provenance, and
 * the cosmos-lint-v1 JSON rendering of each.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/analyzer.hh"
#include "lint/mutate.hh"
#include "lint/report.hh"
#include "proto/transition_table.hh"

namespace
{

using namespace cosmos;

MachineConfig
config(bool forwarding, bool legacy = false, unsigned capacity = 0,
       OwnerReadPolicy policy = OwnerReadPolicy::half_migratory)
{
    MachineConfig cfg;
    cfg.numNodes = 3;
    cfg.forwarding = forwarding;
    cfg.legacyForwarding = legacy;
    cfg.cacheCapacityBlocks = capacity;
    cfg.ownerReadPolicy = policy;
    return cfg;
}

/** Analyze the table for @p cfg after applying @p kind. */
std::vector<lint::Finding>
analyzeMutated(const MachineConfig &cfg, lint::MutationKind kind)
{
    proto::ProtocolTable table = proto::ProtocolTable::build(cfg);
    lint::applyMutation(table, kind);
    return lint::analyze(table);
}

/** Findings of @p kind, in table order. */
std::vector<lint::Finding>
ofKind(const std::vector<lint::Finding> &all, lint::Finding::Kind kind)
{
    std::vector<lint::Finding> out;
    for (const lint::Finding &f : all)
        if (f.kind == kind)
            out.push_back(f);
    return out;
}

TEST(LintClean, ShippedTableHasZeroFindings)
{
    // Every protocol variant the model checker pins must lint clean:
    // base, forwarding, forwarding+capacity, legacy forwarding, and
    // the downgrade owner-read policy.
    const MachineConfig variants[] = {
        config(false),
        config(false, false, 1),
        config(true),
        config(true, false, 1),
        config(true, true),
        config(false, false, 0, OwnerReadPolicy::downgrade),
        config(true, false, 0, OwnerReadPolicy::downgrade),
    };
    for (const MachineConfig &cfg : variants) {
        const proto::ProtocolTable table =
            proto::ProtocolTable::build(cfg);
        const auto findings = lint::analyze(table);
        std::string all;
        for (const lint::Finding &f : findings)
            all += f.detail + "\n";
        EXPECT_TRUE(findings.empty())
            << "forwarding=" << cfg.forwarding
            << " legacy=" << cfg.legacyForwarding
            << " capacity=" << cfg.cacheCapacityBlocks << "\n"
            << all;
    }
}

TEST(LintClean, JsonArtifactIsCleanAndWellFormed)
{
    const proto::ProtocolTable table =
        proto::ProtocolTable::build(config(true));
    const std::string json = lint::renderJson(
        table, lint::analyze(table), lint::MutationKind::none);
    EXPECT_NE(json.find("\"format\": \"cosmos-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mutation\": \"none\""), std::string::npos);
    EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
    EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
}

TEST(LintMutation, MissingRowTripsCompleteness)
{
    const auto all =
        analyzeMutated(config(true), lint::MutationKind::missing_row);
    const auto hits = ofKind(all, lint::Finding::Kind::missing_row);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].role, proto::Role::cache);
    EXPECT_EQ(hits[0].detail,
              "cache wait_upg x inval_ro_request: no transition row "
              "and no declared-unreachable marker");
    EXPECT_TRUE(hits[0].rows.empty());
}

TEST(LintMutation, DuplicateRowTripsDeterminism)
{
    const auto all = analyzeMutated(
        config(true), lint::MutationKind::overlapping_rows);
    const auto hits =
        ofKind(all, lint::Finding::Kind::overlapping_rows);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].role, proto::Role::cache);
    EXPECT_NE(hits[0].detail.find("match the same guard"),
              std::string::npos);
    // Both conflicting rows are referenced, with their declaration
    // sites.
    ASSERT_EQ(hits[0].rows.size(), 2u);
    EXPECT_NE(hits[0].rows[0].where.find("transition_table.cc:"),
              std::string::npos);
}

TEST(LintMutation, DroppedResponseTripsConservation)
{
    const auto all = analyzeMutated(
        config(true), lint::MutationKind::dropped_response);
    const auto hits =
        ofKind(all, lint::Finding::Kind::dropped_response);
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].role, proto::Role::directory);
    EXPECT_NE(hits[0].detail.find("the requester would wait forever"),
              std::string::npos);
    ASSERT_EQ(hits[0].rows.size(), 1u);
}

TEST(LintMutation, EarlyPhaseExitTripsChannelDiscipline)
{
    const auto all = analyzeMutated(
        config(true), lint::MutationKind::out_of_order_consume);
    const auto hits =
        ofKind(all, lint::Finding::Kind::out_of_order_consume);
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].role, proto::Role::directory);
    EXPECT_NE(hits[0].detail.find("has no row in next state"),
              std::string::npos);
    // The finding names the consuming row and the in-flight message's
    // candidate row.
    ASSERT_EQ(hits[0].rows.size(), 2u);
}

TEST(LintMutation, ForwardedSweepTripsAsymmetry)
{
    const auto all = analyzeMutated(
        config(true), lint::MutationKind::forwarding_asymmetry);
    const auto hits =
        ofKind(all, lint::Finding::Kind::forwarding_asymmetry);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].role, proto::Role::cache);
    EXPECT_NE(hits[0].detail.find("never forwarded"),
              std::string::npos);
}

TEST(LintMutation, JsonRendersTheFinding)
{
    proto::ProtocolTable table =
        proto::ProtocolTable::build(config(true));
    lint::applyMutation(table, lint::MutationKind::missing_row);
    const std::string json =
        lint::renderJson(table, lint::analyze(table),
                         lint::MutationKind::missing_row);
    EXPECT_NE(json.find("\"mutation\": \"missing_row\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"missing_row\""),
              std::string::npos);
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
}

TEST(LintMutation, ParseRoundTripsEveryKind)
{
    for (const char *name :
         {"none", "missing_row", "overlapping_rows", "dropped_response",
          "out_of_order_consume", "forwarding_asymmetry"}) {
        lint::MutationKind kind{};
        ASSERT_TRUE(lint::parseMutation(name, kind)) << name;
        EXPECT_STREQ(lint::toString(kind), name);
    }
    lint::MutationKind kind{};
    EXPECT_FALSE(lint::parseMutation("bogus", kind));
}

TEST(LintProvenance, EveryRowCarriesADeclarationSite)
{
    const proto::ProtocolTable table =
        proto::ProtocolTable::build(config(true, false, 1));
    for (const proto::TransitionRow &r : table.rows()) {
        EXPECT_NE(r.where().find("transition_table.cc:"),
                  std::string::npos)
            << r.format();
    }
}

} // namespace
