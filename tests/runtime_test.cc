/**
 * @file
 * Unit tests of the runtime services: lock manager FIFO semantics,
 * barrier reuse, processor program execution, and deadlock
 * detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "proto/machine.hh"
#include "runtime/barrier.hh"
#include "runtime/lock_manager.hh"
#include "runtime/processor.hh"
#include "runtime/program.hh"

namespace cosmos::runtime
{
namespace
{

TEST(LockManager, GrantsFreeLockAfterLatency)
{
    sim::EventQueue eq;
    LockManager locks(eq, 200);
    Tick granted_at = 0;
    locks.acquire(1, [&]() { granted_at = eq.now(); });
    eq.run();
    EXPECT_EQ(granted_at, 200u);
    EXPECT_TRUE(locks.held(1));
}

TEST(LockManager, QueuesWaitersFifo)
{
    sim::EventQueue eq;
    LockManager locks(eq, 10);
    std::vector<int> order;
    locks.acquire(7, [&]() { order.push_back(0); });
    locks.acquire(7, [&]() { order.push_back(1); });
    locks.acquire(7, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(locks.waiters(7), 2u);

    locks.release(7);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    locks.release(7);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    locks.release(7);
    EXPECT_FALSE(locks.held(7));
}

TEST(LockManager, IndependentLocksDoNotInterfere)
{
    sim::EventQueue eq;
    LockManager locks(eq, 1);
    int got = 0;
    locks.acquire(1, [&]() { ++got; });
    locks.acquire(2, [&]() { ++got; });
    eq.run();
    EXPECT_EQ(got, 2);
}

TEST(LockManagerDeathTest, ReleasingUnheldLockPanics)
{
    sim::EventQueue eq;
    LockManager locks(eq, 1);
    EXPECT_DEATH(locks.release(3), "unheld");
}

TEST(Barrier, ReleasesWhenAllArrive)
{
    sim::EventQueue eq;
    Barrier barrier(eq, 3, 400);
    int released = 0;
    barrier.arrive([&]() { ++released; });
    barrier.arrive([&]() { ++released; });
    eq.run();
    EXPECT_EQ(released, 0);
    barrier.arrive([&]() { ++released; });
    eq.run();
    EXPECT_EQ(released, 3);
}

TEST(Barrier, IsReusable)
{
    sim::EventQueue eq;
    Barrier barrier(eq, 2, 1);
    int rounds = 0;
    for (int r = 0; r < 5; ++r) {
        barrier.arrive([&]() {});
        barrier.arrive([&]() { ++rounds; });
        eq.run();
    }
    EXPECT_EQ(rounds, 5);
}

TEST(ProgramBuilder, BuildsPerProcessorPrograms)
{
    ProgramBuilder b(3);
    b.proc(0).read(0x40).write(0x40).think(7);
    b.proc(1).lockAcq(5).unlock(5);
    b.barrier();
    EXPECT_EQ(b.totalOps(), 3u + 2u + 3u);

    auto programs = b.take();
    ASSERT_EQ(programs.size(), 3u);
    EXPECT_EQ(programs[0].size(), 4u); // 3 ops + barrier
    EXPECT_EQ(programs[0][0].kind, Op::Kind::read);
    EXPECT_EQ(programs[0][1].kind, Op::Kind::write);
    EXPECT_EQ(programs[0][2].kind, Op::Kind::think);
    EXPECT_EQ(programs[0][3].kind, Op::Kind::barrier);
    EXPECT_EQ(programs[1][0].lock, 5u);
    EXPECT_EQ(programs[2].size(), 1u); // barrier only
}

TEST(Runtime, RunsMixedProgramsToCompletion)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine machine(cfg);
    Runtime rt(machine);

    ProgramBuilder b(4);
    // Everyone RMWs a private block, syncs, then reads a shared one.
    for (NodeId p = 0; p < 4; ++p) {
        const Addr priv = 0x10000 + p * 4096;
        b.proc(p).read(priv).write(priv);
    }
    b.barrier();
    for (NodeId p = 0; p < 4; ++p)
        b.proc(p).read(0x20000);
    rt.runPrograms(b.take());

    for (NodeId p = 0; p < 4; ++p)
        EXPECT_GE(rt.processor(p).opsExecuted(), 4u);
    EXPECT_EQ(machine.cache(0).state(0x20000),
              proto::LineState::read_only);
}

TEST(Runtime, CriticalSectionsSerializeConflictingWriters)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    proto::Machine machine(cfg);
    Runtime rt(machine);

    ProgramBuilder b(4);
    const Addr shared = 0x30000;
    for (NodeId p = 0; p < 4; ++p)
        b.proc(p).lockAcq(1).read(shared).write(shared).unlock(1);
    rt.runPrograms(b.take());
    // Exactly one exclusive owner at the end; no deadlock happened
    // (runPrograms panics otherwise).
    EXPECT_EQ(machine.directory(machine.addrMap().home(shared))
                  .state(shared),
              proto::DirState::exclusive);
}

TEST(RuntimeDeathTest, UnreleasableLockDeadlockIsDetected)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    proto::Machine machine(cfg);
    Runtime rt(machine);

    ProgramBuilder b(2);
    // Processor 0 holds lock 1 forever; processor 1 waits on it.
    b.proc(0).lockAcq(1);
    b.proc(1).lockAcq(1);
    auto programs = b.take();
    EXPECT_DEATH(rt.runPrograms(std::move(programs)), "deadlock");
}

TEST(Runtime, WiderWindowOverlapsDistinctBlockMisses)
{
    // Two remote misses to different blocks: a blocking processor
    // serializes them; a window of 2 overlaps them and finishes
    // measurably earlier.
    Tick times[2];
    for (int i = 0; i < 2; ++i) {
        MachineConfig cfg;
        cfg.numNodes = 4;
        cfg.memoryLevelParallelism = i == 0 ? 1 : 2;
        proto::Machine machine(cfg);
        Runtime rt(machine);
        ProgramBuilder b(4);
        b.proc(0).read(0x1000).read(0x2000);
        rt.runPrograms(b.take());
        times[i] = machine.eventQueue().now();
    }
    EXPECT_LT(times[1], times[0]);
}

TEST(Runtime, SameBlockAccessesNeverReorder)
{
    // read A; write A must stay ordered even with a wide window: the
    // write stalls while A's read miss is outstanding, so the final
    // state is exclusive (the write happened after the read).
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.memoryLevelParallelism = 4;
    proto::Machine machine(cfg);
    Runtime rt(machine);
    ProgramBuilder b(4);
    b.proc(0).read(0x1000).write(0x1000);
    rt.runPrograms(b.take());
    EXPECT_EQ(machine.cache(0).state(0x1000),
              proto::LineState::read_write);
}

TEST(Runtime, SyncDrainsTheWindow)
{
    // A barrier after overlapped misses completes only after every
    // outstanding miss resolved; the run must not deadlock and all
    // lines must be present afterwards.
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.memoryLevelParallelism = 4;
    proto::Machine machine(cfg);
    Runtime rt(machine);
    ProgramBuilder b(2);
    for (int i = 0; i < 4; ++i)
        b.proc(0).read(0x1000 + i * 4096);
    b.barrier();
    b.proc(1).think(5);
    rt.runPrograms(b.take());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(machine.cache(0).state(0x1000 + i * 4096),
                  proto::LineState::read_only);
}

TEST(Runtime, ProcessorsAreReusableAcrossIterations)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    proto::Machine machine(cfg);
    Runtime rt(machine);

    for (int iter = 0; iter < 3; ++iter) {
        ProgramBuilder b(2);
        b.proc(0).read(0x40);
        b.proc(1).read(0x4000 + iter * 64);
        b.barrier();
        rt.runPrograms(b.take());
    }
    EXPECT_GE(rt.processor(1).opsExecuted(), 6u);
}

} // namespace
} // namespace cosmos::runtime
