/**
 * @file
 * Tests of the exhaustive protocol model checker (src/model).
 *
 * The golden state/transition counts pinned here are load-bearing:
 * they change only when the protocol's reachable space changes, so a
 * diff in these numbers is a protocol-semantics diff that must be
 * reviewed, not refreshed blindly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "check/fuzzer.hh"
#include "check/violation.hh"
#include "model/explorer.hh"
#include "model/state.hh"
#include "model/stepper.hh"
#include "model/table.hh"

namespace cosmos
{
namespace
{

model::ModelConfig
twoNodes()
{
    model::ModelConfig mc;
    mc.numNodes = 2;
    mc.numBlocks = 1;
    return mc;
}

model::ModelConfig
threeNodes()
{
    model::ModelConfig mc;
    mc.numNodes = 3;
    mc.numBlocks = 1;
    return mc;
}

model::Action
issueRead(NodeId node, std::uint8_t block = 0)
{
    model::Action a;
    a.kind = model::Action::Kind::issue_read;
    a.node = node;
    a.blockIdx = block;
    return a;
}

bool
hasViolation(const model::ExploreResult &res, check::ViolationKind k)
{
    for (const auto &ce : res.counterexamples)
        if (ce.violation.kind == k)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Stepper basics

TEST(Stepper, InitialStateIsQuiescent)
{
    const model::ModelConfig mc = twoNodes();
    EXPECT_TRUE(model::isQuiescent(model::Stepper::initialState(), mc));
}

TEST(Stepper, IssueLeavesQuiescenceAndIsDeterministic)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    model::Stepper::Result r1, r2;
    stepper.step(model::Stepper::initialState(), issueRead(1), r1);
    stepper.step(model::Stepper::initialState(), issueRead(1), r2);
    ASSERT_FALSE(r1.failed);
    ASSERT_FALSE(r2.failed);
    EXPECT_FALSE(model::isQuiescent(r1.next, mc));

    std::vector<std::uint8_t> e1, e2;
    model::encodeState(r1.next, mc, e1);
    model::encodeState(r2.next, mc, e2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(r1.samples.size(), r2.samples.size());
}

TEST(Stepper, HomeNodeAccessCompletesLocallyInOneStep)
{
    // Node 0 is block 0's home: the request, directory service, and
    // response are all local, so one step runs the whole cascade and
    // lands back in a quiescent state with a read_only copy.
    const model::ModelConfig mc = twoNodes();
    model::Stepper stepper(mc);
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(0), r);
    ASSERT_FALSE(r.failed);
    EXPECT_TRUE(model::isQuiescent(r.next, mc));
    EXPECT_EQ(static_cast<proto::LineState>(r.next.line[0][0]),
              proto::LineState::read_only);
    // Cascade: proc_read sample + directory sample + response sample.
    EXPECT_GE(r.samples.size(), 3u);
}

// ---------------------------------------------------------------------
// Canonicalization (symmetry reduction)

TEST(Canonical, SymmetricNodesCanonicalizeIdentically)
{
    // Nodes 1 and 2 of a 3-node, 1-block machine are interchangeable
    // (only node 0 is a home). The same action done by either must
    // reach the same canonical state.
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    model::Stepper::Result byNode1, byNode2;
    stepper.step(model::Stepper::initialState(), issueRead(1), byNode1);
    stepper.step(model::Stepper::initialState(), issueRead(2), byNode2);
    ASSERT_FALSE(byNode1.failed);
    ASSERT_FALSE(byNode2.failed);

    std::vector<std::uint8_t> plain1, plain2, canon1, canon2;
    model::encodeState(byNode1.next, mc, plain1);
    model::encodeState(byNode2.next, mc, plain2);
    model::canonicalEncoding(byNode1.next, mc, canon1);
    model::canonicalEncoding(byNode2.next, mc, canon2);
    EXPECT_NE(plain1, plain2); // genuinely different concrete states
    EXPECT_EQ(canon1, canon2); // ... identified by symmetry
}

TEST(Canonical, ExplicitPermutationIsInvariant)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    // Drive to an asymmetric mid-transaction state: node 1 waiting.
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(1), r);
    ASSERT_FALSE(r.failed);

    std::array<std::uint8_t, model::max_nodes> swap12{};
    swap12[0] = 0;
    swap12[1] = 2;
    swap12[2] = 1;
    const model::GlobalState permuted =
        model::permuteNodes(r.next, mc, swap12);

    std::vector<std::uint8_t> canonOrig, canonPerm;
    model::canonicalEncoding(r.next, mc, canonOrig);
    model::canonicalEncoding(permuted, mc, canonPerm);
    EXPECT_EQ(canonOrig, canonPerm);
}

TEST(Canonical, EncodeDecodeRoundTrips)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(1), r);
    ASSERT_FALSE(r.failed);

    std::vector<std::uint8_t> enc, enc2;
    model::encodeState(r.next, mc, enc);
    model::GlobalState decoded;
    model::decodeState(enc.data(), enc.size(), mc, decoded);
    model::encodeState(decoded, mc, enc2);
    EXPECT_EQ(enc, enc2);
}

// ---------------------------------------------------------------------
// Exhaustive exploration

TEST(Explore, TwoNodeSpaceIsCleanWithGoldenCounts)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.states, 48u);
    EXPECT_EQ(res.transitions, 86u);
    EXPECT_EQ(res.maxDepth, 8u);
    EXPECT_EQ(res.deadlocks, 0u);
    EXPECT_EQ(res.failedSteps, 0u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, ThreeNodeSpaceIsCleanWithGoldenCounts)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.states, 488u);
    EXPECT_EQ(res.transitions, 1152u);
    EXPECT_EQ(res.maxDepth, 15u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, DowngradePolicyIsClean)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.policy = OwnerReadPolicy::downgrade;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, DedupMatchesBruteForceEnumeration)
{
    // Independent reference BFS: plain encodings in a std::set, no
    // symmetry (a 2-node, 1-block machine has no symmetric node
    // pair, so the canonical space and the concrete space coincide).
    const model::ModelConfig mc = twoNodes();
    model::Stepper stepper(mc);

    std::set<std::vector<std::uint8_t>> seen;
    std::deque<model::GlobalState> frontier;
    std::size_t transitions = 0;

    std::vector<std::uint8_t> enc;
    model::encodeState(model::Stepper::initialState(), mc, enc);
    seen.insert(enc);
    frontier.push_back(model::Stepper::initialState());

    std::vector<model::Action> actions;
    model::Stepper::Result r;
    while (!frontier.empty()) {
        const model::GlobalState s = frontier.front();
        frontier.pop_front();
        actions.clear();
        model::enumerateActions(s, mc, actions);
        for (const model::Action &a : actions) {
            stepper.step(s, a, r);
            ASSERT_FALSE(r.failed) << a.format();
            ++transitions;
            model::encodeState(r.next, mc, enc);
            if (seen.insert(enc).second)
                frontier.push_back(r.next);
        }
    }

    model::ExploreOptions opt;
    opt.mc = mc;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_EQ(res.states, seen.size());
    EXPECT_EQ(res.transitions, transitions);
}

TEST(Explore, MaxStatesBoundReportsIncomplete)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.maxStates = 10;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_FALSE(res.complete);
    EXPECT_FALSE(res.clean());
    EXPECT_TRUE(hasViolation(res, check::ViolationKind::liveness));
}

// ---------------------------------------------------------------------
// Planted-bug detection (negative testing)

TEST(Explore, PlantedLostInvalidationViolatesSWMR)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_FALSE(res.clean());
    EXPECT_TRUE(
        hasViolation(res, check::ViolationKind::writer_and_readers));
    ASSERT_FALSE(res.counterexamples.empty());
    EXPECT_FALSE(res.counterexamples.front().schedule.empty());
    // The buggy space is larger than the clean one (stale read_only
    // copies survive), and the checker keeps exploring past the
    // first violation rather than aborting.
    EXPECT_GT(res.states, 48u);
}

TEST(Lint, AlternatingFaultShowsAsNondeterminism)
{
    // ignoreInvalEvery=2 makes the cache honor every other
    // invalidation: same (state, input), two different next states.
    // That is exactly what the table lint's nondeterminism check is
    // for -- hidden state the transition table cannot see.
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 2;
    const model::ExploreResult res = model::explore(opt);

    bool foundCacheNondet = false;
    for (const model::LintFinding &f : res.table.lint()) {
        if (f.kind == model::LintFinding::Kind::nondeterministic &&
            f.module == model::Module::cache)
            foundCacheNondet = true;
    }
    EXPECT_TRUE(foundCacheNondet);
    EXPECT_FALSE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, TrappedAssertionsDoNotAbortExploration)
{
    // Bounded network overtaking (reorder=1) breaks the protocol's
    // FIFO-channel assumption; the controllers assert. The FailureTrap
    // must convert each into a terminal violation while the BFS keeps
    // exploring the rest of the space.
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.reorder = 1;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_GT(res.failedSteps, 0u);
    EXPECT_TRUE(res.complete); // ran to closure despite the traps
    EXPECT_FALSE(res.counterexamples.empty());
    EXPECT_TRUE(hasViolation(res, check::ViolationKind::assertion));
    // Strictly more states than the FIFO space: exploration continued
    // past the first trapped assertion.
    EXPECT_GT(res.states, 48u);
}

// ---------------------------------------------------------------------
// Counterexample replay through the real simulator

TEST(Counterexample, FormatHasHeaderAndSteps)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_FALSE(res.counterexamples.empty());

    const std::string text = model::formatCounterexample(
        opt.mc, res.counterexamples.front());
    EXPECT_NE(text.find("# cosmos-model-counterexample-v1"),
              std::string::npos);
    EXPECT_NE(text.find("# config nodes=2"), std::string::npos);
    EXPECT_NE(text.find("inject_ignore_inval=1"), std::string::npos);
    EXPECT_NE(text.find("step 0 "), std::string::npos);
}

TEST(Counterexample, ReplaysThroughRealSimulatorAndReproduces)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_FALSE(res.counterexamples.empty());

    const std::string path =
        testing::TempDir() + "model_counterexample.txt";
    ASSERT_TRUE(model::writeCounterexample(
        path, opt.mc, res.counterexamples.front()));

    const check::FuzzCase c = check::loadCounterexample(path);
    EXPECT_EQ(c.cfg.numNodes, 2u);
    EXPECT_EQ(c.cfg.fault.ignoreInvalEvery, 1u);
    EXPECT_GT(c.totalOps(), 0u);

    check::FuzzOptions fopts;
    fopts.maxJitter = 0; // deterministic delivery: replay the schedule
    const check::CaseResult r = check::runCase(c, fopts);
    EXPECT_TRUE(r.failed);
    bool swmr = false;
    for (const check::Violation &v : r.violations)
        if (v.kind == check::ViolationKind::writer_and_readers ||
            v.kind == check::ViolationKind::multiple_writers)
            swmr = true;
    EXPECT_TRUE(swmr);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Transition-table lint sanity

TEST(Lint, CleanRunFlagsOnlyDeadTableSpace)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    const auto lint = res.table.lint();
    EXPECT_FALSE(lint.empty()); // tiny configs leave dead table space
    for (const model::LintFinding &f : lint) {
        EXPECT_NE(f.kind, model::LintFinding::Kind::nondeterministic)
            << f.detail;
    }
    // Recall paths need capacity evictions, which the model's
    // infinite-capacity caches never trigger: busy_recall must be
    // flagged unreachable, proving the lint sees dead states.
    bool busyRecallUnreachable = false;
    for (const model::LintFinding &f : lint) {
        if (f.kind == model::LintFinding::Kind::unreachable_state &&
            f.detail.find("busy_recall") != std::string::npos)
            busyRecallUnreachable = true;
    }
    EXPECT_TRUE(busyRecallUnreachable);
}

TEST(Lint, TableEntriesCoverBothModules)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    bool sawCache = false, sawDir = false;
    for (const auto &[key, entry] : res.table.entries()) {
        EXPECT_GT(entry.hits, 0u);
        if (key.module == model::Module::cache)
            sawCache = true;
        else
            sawDir = true;
    }
    EXPECT_TRUE(sawCache);
    EXPECT_TRUE(sawDir);
}

} // namespace
} // namespace cosmos
