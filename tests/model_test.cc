/**
 * @file
 * Tests of the exhaustive protocol model checker (src/model).
 *
 * The golden state/transition counts pinned here are load-bearing:
 * they change only when the protocol's reachable space changes, so a
 * diff in these numbers is a protocol-semantics diff that must be
 * reviewed, not refreshed blindly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "check/fuzzer.hh"
#include "check/violation.hh"
#include "model/explorer.hh"
#include "model/state.hh"
#include "model/stepper.hh"
#include "model/table.hh"

namespace cosmos
{
namespace
{

model::ModelConfig
twoNodes()
{
    model::ModelConfig mc;
    mc.numNodes = 2;
    mc.numBlocks = 1;
    return mc;
}

model::ModelConfig
threeNodes()
{
    model::ModelConfig mc;
    mc.numNodes = 3;
    mc.numBlocks = 1;
    return mc;
}

model::Action
issueRead(NodeId node, std::uint8_t block = 0)
{
    model::Action a;
    a.kind = model::Action::Kind::issue_read;
    a.node = node;
    a.blockIdx = block;
    return a;
}

bool
hasViolation(const model::ExploreResult &res, check::ViolationKind k)
{
    for (const auto &ce : res.counterexamples)
        if (ce.violation.kind == k)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Stepper basics

TEST(Stepper, InitialStateIsQuiescent)
{
    const model::ModelConfig mc = twoNodes();
    EXPECT_TRUE(model::isQuiescent(model::Stepper::initialState(), mc));
}

TEST(Stepper, IssueLeavesQuiescenceAndIsDeterministic)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    model::Stepper::Result r1, r2;
    stepper.step(model::Stepper::initialState(), issueRead(1), r1);
    stepper.step(model::Stepper::initialState(), issueRead(1), r2);
    ASSERT_FALSE(r1.failed);
    ASSERT_FALSE(r2.failed);
    EXPECT_FALSE(model::isQuiescent(r1.next, mc));

    std::vector<std::uint8_t> e1, e2;
    model::encodeState(r1.next, mc, e1);
    model::encodeState(r2.next, mc, e2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(r1.samples.size(), r2.samples.size());
}

TEST(Stepper, HomeNodeAccessCompletesLocallyInOneStep)
{
    // Node 0 is block 0's home: the request, directory service, and
    // response are all local, so one step runs the whole cascade and
    // lands back in a quiescent state with a read_only copy.
    const model::ModelConfig mc = twoNodes();
    model::Stepper stepper(mc);
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(0), r);
    ASSERT_FALSE(r.failed);
    EXPECT_TRUE(model::isQuiescent(r.next, mc));
    EXPECT_EQ(static_cast<proto::LineState>(r.next.line[0][0]),
              proto::LineState::read_only);
    // Cascade: proc_read sample + directory sample + response sample.
    EXPECT_GE(r.samples.size(), 3u);
}

// ---------------------------------------------------------------------
// Canonicalization (symmetry reduction)

TEST(Canonical, SymmetricNodesCanonicalizeIdentically)
{
    // Nodes 1 and 2 of a 3-node, 1-block machine are interchangeable
    // (only node 0 is a home). The same action done by either must
    // reach the same canonical state.
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    model::Stepper::Result byNode1, byNode2;
    stepper.step(model::Stepper::initialState(), issueRead(1), byNode1);
    stepper.step(model::Stepper::initialState(), issueRead(2), byNode2);
    ASSERT_FALSE(byNode1.failed);
    ASSERT_FALSE(byNode2.failed);

    std::vector<std::uint8_t> plain1, plain2, canon1, canon2;
    model::encodeState(byNode1.next, mc, plain1);
    model::encodeState(byNode2.next, mc, plain2);
    model::canonicalEncoding(byNode1.next, mc, canon1);
    model::canonicalEncoding(byNode2.next, mc, canon2);
    EXPECT_NE(plain1, plain2); // genuinely different concrete states
    EXPECT_EQ(canon1, canon2); // ... identified by symmetry
}

TEST(Canonical, ExplicitPermutationIsInvariant)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);

    // Drive to an asymmetric mid-transaction state: node 1 waiting.
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(1), r);
    ASSERT_FALSE(r.failed);

    std::array<std::uint8_t, model::max_nodes> swap12{};
    swap12[0] = 0;
    swap12[1] = 2;
    swap12[2] = 1;
    const model::GlobalState permuted =
        model::permuteNodes(r.next, mc, swap12);

    std::vector<std::uint8_t> canonOrig, canonPerm;
    model::canonicalEncoding(r.next, mc, canonOrig);
    model::canonicalEncoding(permuted, mc, canonPerm);
    EXPECT_EQ(canonOrig, canonPerm);
}

TEST(Canonical, EncodeDecodeRoundTrips)
{
    const model::ModelConfig mc = threeNodes();
    model::Stepper stepper(mc);
    model::Stepper::Result r;
    stepper.step(model::Stepper::initialState(), issueRead(1), r);
    ASSERT_FALSE(r.failed);

    std::vector<std::uint8_t> enc, enc2;
    model::encodeState(r.next, mc, enc);
    model::GlobalState decoded;
    model::decodeState(enc.data(), enc.size(), mc, decoded);
    model::encodeState(decoded, mc, enc2);
    EXPECT_EQ(enc, enc2);
}

// ---------------------------------------------------------------------
// Exhaustive exploration

TEST(Explore, TwoNodeSpaceIsCleanWithGoldenCounts)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.states, 48u);
    EXPECT_EQ(res.transitions, 86u);
    EXPECT_EQ(res.maxDepth, 8u);
    EXPECT_EQ(res.deadlocks, 0u);
    EXPECT_EQ(res.failedSteps, 0u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, ThreeNodeSpaceIsCleanWithGoldenCounts)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_EQ(res.states, 488u);
    EXPECT_EQ(res.transitions, 1152u);
    EXPECT_EQ(res.maxDepth, 15u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, ForwardingTwoNodeSpaceIsCleanWithGoldenCounts)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.forwarding = true;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.states, 78u);
    EXPECT_EQ(res.transitions, 142u);
    EXPECT_EQ(res.maxDepth, 10u);
    EXPECT_EQ(res.failedSteps, 0u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, ForwardingThreeNodeSpaceIsCleanWithGoldenCounts)
{
    // The space where the pre-fwd_ack protocol races (three distinct
    // parties: home, owner, requester). Closure with zero violations
    // is the proof of the forwarding fix.
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.forwarding = true;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.states, 883u);
    EXPECT_EQ(res.transitions, 2149u);
    EXPECT_EQ(res.maxDepth, 17u);
    EXPECT_EQ(res.failedSteps, 0u);
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, ForwardingDowngradePolicyIsClean)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.forwarding = true;
    opt.mc.policy = OwnerReadPolicy::downgrade;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, LegacyForwardingTwoNodesCannotRace)
{
    // The three-hop race needs home, owner, and requester to be
    // three different nodes: with two nodes the requester is always
    // the home or the owner, so even the ack-less legacy protocol
    // closes cleanly. The negative leg below must therefore run at
    // three nodes -- a 2-node "proof" of the fix proves nothing.
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.forwarding = true;
    opt.mc.legacyForwarding = true;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_TRUE(res.clean());
}

TEST(Explore, LegacyForwardingThreeNodesReproducesTheRace)
{
    // The negative oracle: without the fwd_ack the directory reopens
    // the entry on the owner's revision message, its next
    // invalidation overtakes the owner's in-flight data reply on a
    // disjoint channel, and the requester sees an invalidation for a
    // block it is still waiting on.
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.forwarding = true;
    opt.mc.legacyForwarding = true;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_FALSE(res.clean());
    EXPECT_TRUE(res.complete); // traps, not aborts
    EXPECT_GT(res.failedSteps, 0u);
    EXPECT_TRUE(hasViolation(res, check::ViolationKind::assertion));
    ASSERT_FALSE(res.counterexamples.empty());
    bool requesterPanicked = false;
    for (const auto &ce : res.counterexamples) {
        if (ce.violation.detail.find("state wait_") !=
            std::string::npos)
            requesterPanicked = true;
    }
    EXPECT_TRUE(requesterPanicked);
}

TEST(Explore, DowngradePolicyIsClean)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.policy = OwnerReadPolicy::downgrade;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_TRUE(res.clean());
    EXPECT_TRUE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, DedupMatchesBruteForceEnumeration)
{
    // Independent reference BFS: plain encodings in a std::set, no
    // symmetry (a 2-node, 1-block machine has no symmetric node
    // pair, so the canonical space and the concrete space coincide).
    const model::ModelConfig mc = twoNodes();
    model::Stepper stepper(mc);

    std::set<std::vector<std::uint8_t>> seen;
    std::deque<model::GlobalState> frontier;
    std::size_t transitions = 0;

    std::vector<std::uint8_t> enc;
    model::encodeState(model::Stepper::initialState(), mc, enc);
    seen.insert(enc);
    frontier.push_back(model::Stepper::initialState());

    std::vector<model::Action> actions;
    model::Stepper::Result r;
    while (!frontier.empty()) {
        const model::GlobalState s = frontier.front();
        frontier.pop_front();
        actions.clear();
        model::enumerateActions(s, mc, actions);
        for (const model::Action &a : actions) {
            stepper.step(s, a, r);
            ASSERT_FALSE(r.failed) << a.format();
            ++transitions;
            model::encodeState(r.next, mc, enc);
            if (seen.insert(enc).second)
                frontier.push_back(r.next);
        }
    }

    model::ExploreOptions opt;
    opt.mc = mc;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_EQ(res.states, seen.size());
    EXPECT_EQ(res.transitions, transitions);
}

TEST(Explore, MaxStatesBoundReportsIncomplete)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.maxStates = 10;
    const model::ExploreResult res = model::explore(opt);
    EXPECT_FALSE(res.complete);
    EXPECT_FALSE(res.clean());
    EXPECT_TRUE(hasViolation(res, check::ViolationKind::liveness));
}

// ---------------------------------------------------------------------
// Planted-bug detection (negative testing)

TEST(Explore, PlantedLostInvalidationViolatesSWMR)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_FALSE(res.clean());
    EXPECT_TRUE(
        hasViolation(res, check::ViolationKind::writer_and_readers));
    ASSERT_FALSE(res.counterexamples.empty());
    EXPECT_FALSE(res.counterexamples.front().schedule.empty());
    // The buggy space is larger than the clean one (stale read_only
    // copies survive), and the checker keeps exploring past the
    // first violation rather than aborting.
    EXPECT_GT(res.states, 48u);
}

TEST(Lint, AlternatingFaultShowsAsNondeterminism)
{
    // ignoreInvalEvery=2 makes the cache honor every other
    // invalidation: same (state, input), two different next states.
    // That is exactly what the table lint's nondeterminism check is
    // for -- hidden state the transition table cannot see.
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 2;
    const model::ExploreResult res = model::explore(opt);

    bool foundCacheNondet = false;
    for (const model::LintFinding &f : res.table.lint()) {
        if (f.kind == model::LintFinding::Kind::nondeterministic &&
            f.module == model::Module::cache)
            foundCacheNondet = true;
    }
    EXPECT_TRUE(foundCacheNondet);
    EXPECT_FALSE(res.table.nondeterministicKeys().empty());
}

TEST(Explore, TrappedAssertionsDoNotAbortExploration)
{
    // Bounded network overtaking (reorder=1) breaks the protocol's
    // FIFO-channel assumption; the controllers assert. The FailureTrap
    // must convert each into a terminal violation while the BFS keeps
    // exploring the rest of the space.
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.reorder = 1;
    const model::ExploreResult res = model::explore(opt);

    EXPECT_GT(res.failedSteps, 0u);
    EXPECT_TRUE(res.complete); // ran to closure despite the traps
    EXPECT_FALSE(res.counterexamples.empty());
    EXPECT_TRUE(hasViolation(res, check::ViolationKind::assertion));
    // Strictly more states than the FIFO space: exploration continued
    // past the first trapped assertion.
    EXPECT_GT(res.states, 48u);
}

// ---------------------------------------------------------------------
// Replay regression seed: the model checker's original forwarding
// counterexample

/** One step of a pinned schedule: a processor issue or a delivery. */
struct SeedStep
{
    bool issue;
    NodeId node;          ///< issuing node (issue)
    bool write;           ///< issue kind
    NodeId src, dst;      ///< channel (deliver)
    proto::MsgType type;  ///< delivered message (deliver)
};

constexpr SeedStep
seedIssue(NodeId node, bool write)
{
    return {true, node, write, 0, 0, proto::MsgType::get_ro_request};
}

constexpr SeedStep
seedDeliver(NodeId src, NodeId dst, proto::MsgType type)
{
    return {false, 0, false, src, dst, type};
}

/**
 * The first counterexample `cosmos model --forwarding
 * --legacy-forwarding --nodes 3` ever produced, pinned verbatim: the
 * timed simulator cannot reproduce it (uniform latencies keep the
 * home's next invalidation two hops behind the owner's data reply),
 * so the regression seed replays through the model Stepper, which
 * explores delivery orders the network would need adversarial timing
 * to produce.
 *
 * node 2 owns the block; node 1's read is queued; node 0's write is
 * queued behind it. The owner's forwarded data reply to node 1 and
 * the revision home race: legacy reopens the entry on the revision,
 * serves node 0's write, and its inval_ro_request reaches node 1
 * while the forwarded data is still in flight.
 */
constexpr SeedStep legacy_race_schedule[] = {
    seedIssue(1, false),
    seedIssue(2, true),
    seedDeliver(2, 0, proto::MsgType::get_rw_request),
    seedDeliver(0, 2, proto::MsgType::get_rw_response),
    seedDeliver(1, 0, proto::MsgType::get_ro_request),
    seedIssue(0, true),
    seedDeliver(0, 2, proto::MsgType::inval_rw_request),
    seedDeliver(2, 0, proto::MsgType::inval_rw_response),
    // Legacy only: the entry reopened above, so node 0's queued
    // write was served and this invalidation is in flight. Under
    // the fixed protocol the entry is still awaiting node 1's
    // fwd_ack and this message does not exist.
    seedDeliver(0, 1, proto::MsgType::inval_ro_request),
};

/** Find @p step among the enabled actions of @p s, or report why
 *  it is not enabled. */
testing::AssertionResult
findSeedAction(const model::GlobalState &s,
               const model::ModelConfig &mc, const SeedStep &step,
               model::Action &out)
{
    std::vector<model::Action> actions;
    model::enumerateActions(s, mc, actions);
    for (const model::Action &a : actions) {
        if (step.issue) {
            const auto want = step.write
                                  ? model::Action::Kind::issue_write
                                  : model::Action::Kind::issue_read;
            if (a.kind == want && a.node == step.node) {
                out = a;
                return testing::AssertionSuccess();
            }
        } else if (a.kind == model::Action::Kind::deliver &&
                   a.src == step.src && a.dst == step.dst &&
                   a.msg.type == step.type) {
            out = a;
            return testing::AssertionSuccess();
        }
    }
    return testing::AssertionFailure()
           << "schedule step not enabled (" << actions.size()
           << " actions)";
}

TEST(Replay, LegacyRaceSeedStillTripsTheOracle)
{
    model::ModelConfig mc = threeNodes();
    mc.forwarding = true;
    mc.legacyForwarding = true;
    model::Stepper stepper(mc);

    model::GlobalState s = model::Stepper::initialState();
    model::Stepper::Result r;
    const std::size_t steps = std::size(legacy_race_schedule);
    for (std::size_t i = 0; i < steps; ++i) {
        model::Action a;
        ASSERT_TRUE(
            findSeedAction(s, mc, legacy_race_schedule[i], a))
            << "step " << i;
        stepper.step(s, a, r);
        if (i + 1 < steps) {
            ASSERT_FALSE(r.failed)
                << "step " << i << ": " << r.failureMsg;
            s = r.next;
        }
    }
    // The final delivery is the invalidation overtaking the
    // forwarded data: the requester's controller must trap.
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.failureMsg.find("state wait_ro"), std::string::npos)
        << r.failureMsg;
}

TEST(Replay, LegacyRaceSeedIsClosedByTheAckProtocol)
{
    // Same schedule, fixed protocol: after the owner's revision
    // lands (step 7) the entry must still be busy awaiting node 1's
    // fwd_ack, the racing invalidation must not exist, and draining
    // the remaining messages must reach quiescence cleanly -- the
    // delayed ack serves the queued write only after the handshake
    // closes.
    model::ModelConfig mc = threeNodes();
    mc.forwarding = true;
    model::Stepper stepper(mc);

    model::GlobalState s = model::Stepper::initialState();
    model::Stepper::Result r;
    const std::size_t prefix = std::size(legacy_race_schedule) - 1;
    for (std::size_t i = 0; i < prefix; ++i) {
        model::Action a;
        ASSERT_TRUE(
            findSeedAction(s, mc, legacy_race_schedule[i], a))
            << "step " << i;
        stepper.step(s, a, r);
        ASSERT_FALSE(r.failed)
            << "step " << i << ": " << r.failureMsg;
        s = r.next;
    }

    // Block 0 is homed at node 0; its entry holds the transfer open.
    EXPECT_TRUE(s.dir[0].busy);
    EXPECT_TRUE(s.dir[0].fwdAckPending);
    std::vector<model::Action> actions;
    model::enumerateActions(s, mc, actions);
    model::Action dataDeliver;
    bool sawData = false;
    for (const model::Action &a : actions) {
        if (a.kind != model::Action::Kind::deliver)
            continue;
        // The racing invalidation of the legacy schedule must not be
        // deliverable anywhere.
        EXPECT_NE(a.msg.type, proto::MsgType::inval_ro_request)
            << a.format();
        // The forwarded data (owner -> requester) is still in
        // flight; the ack does not exist until it lands.
        EXPECT_NE(a.msg.type, proto::MsgType::fwd_ack) << a.format();
        if (a.src == 2 && a.dst == 1) {
            sawData = true;
            dataDeliver = a;
        }
    }
    ASSERT_TRUE(sawData);

    // Landing the forwarded data makes the requester emit fwd_ack.
    stepper.step(s, dataDeliver, r);
    ASSERT_FALSE(r.failed) << r.failureMsg;
    s = r.next;
    EXPECT_TRUE(s.dir[0].busy);
    EXPECT_TRUE(s.dir[0].fwdAckPending);
    actions.clear();
    model::enumerateActions(s, mc, actions);
    model::Action ackDeliver;
    bool sawAck = false;
    for (const model::Action &a : actions) {
        if (a.kind == model::Action::Kind::deliver &&
            a.msg.type == proto::MsgType::fwd_ack) {
            sawAck = true;
            ackDeliver = a;
        }
    }
    ASSERT_TRUE(sawAck);

    // Deliver the delayed ack first, then drain to quiescence.
    stepper.step(s, ackDeliver, r);
    ASSERT_FALSE(r.failed) << r.failureMsg;
    s = r.next;
    for (int guard = 0; guard < 64; ++guard) {
        if (model::isQuiescent(s, mc))
            break;
        actions.clear();
        model::enumerateActions(s, mc, actions);
        // Drain deliveries only: issue_* actions would inject fresh
        // traffic and keep the system away from quiescence.
        const auto it = std::find_if(
            actions.begin(), actions.end(),
            [](const model::Action &a) {
                return a.kind == model::Action::Kind::deliver;
            });
        ASSERT_NE(it, actions.end()); // no deadlock
        stepper.step(s, *it, r);
        ASSERT_FALSE(r.failed) << r.failureMsg;
        s = r.next;
    }
    EXPECT_TRUE(model::isQuiescent(s, mc));
    // Every issued access completed: node 0's queued write won the
    // block last in this drain order or earlier -- either way the
    // protocol settled with a single writer or no copies, which
    // quiescence plus the explorer's invariants already guarantee.
    EXPECT_FALSE(s.dir[0].busy);
    EXPECT_FALSE(s.dir[0].fwdAckPending);
}

// ---------------------------------------------------------------------
// Counterexample replay through the real simulator

TEST(Counterexample, FormatHasHeaderAndSteps)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_FALSE(res.counterexamples.empty());

    const std::string text = model::formatCounterexample(
        opt.mc, res.counterexamples.front());
    EXPECT_NE(text.find("# cosmos-model-counterexample-v1"),
              std::string::npos);
    EXPECT_NE(text.find("# config nodes=2"), std::string::npos);
    EXPECT_NE(text.find("legacy_forwarding=0"), std::string::npos);
    EXPECT_NE(text.find("inject_ignore_inval=1"), std::string::npos);
    EXPECT_NE(text.find("step 0 "), std::string::npos);
}

TEST(Counterexample, LegacyForwardingRoundTripsThroughLoader)
{
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.forwarding = true;
    opt.mc.legacyForwarding = true;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_FALSE(res.counterexamples.empty());

    const std::string path =
        testing::TempDir() + "legacy_counterexample.txt";
    ASSERT_TRUE(model::writeCounterexample(
        path, opt.mc, res.counterexamples.front()));
    const check::FuzzCase c = check::loadCounterexample(path);
    EXPECT_EQ(c.cfg.numNodes, 3u);
    EXPECT_TRUE(c.cfg.forwarding);
    EXPECT_TRUE(c.cfg.legacyForwarding);
    std::remove(path.c_str());
}

TEST(Counterexample, ReplaysThroughRealSimulatorAndReproduces)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    opt.mc.ignoreInvalEvery = 1;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_FALSE(res.counterexamples.empty());

    const std::string path =
        testing::TempDir() + "model_counterexample.txt";
    ASSERT_TRUE(model::writeCounterexample(
        path, opt.mc, res.counterexamples.front()));

    const check::FuzzCase c = check::loadCounterexample(path);
    EXPECT_EQ(c.cfg.numNodes, 2u);
    EXPECT_EQ(c.cfg.fault.ignoreInvalEvery, 1u);
    EXPECT_GT(c.totalOps(), 0u);

    check::FuzzOptions fopts;
    fopts.maxJitter = 0; // deterministic delivery: replay the schedule
    const check::CaseResult r = check::runCase(c, fopts);
    EXPECT_TRUE(r.failed);
    bool swmr = false;
    for (const check::Violation &v : r.violations)
        if (v.kind == check::ViolationKind::writer_and_readers ||
            v.kind == check::ViolationKind::multiple_writers)
            swmr = true;
    EXPECT_TRUE(swmr);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Transition-table lint sanity

TEST(Lint, CleanRunFlagsOnlyDeadTableSpace)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    const auto lint = res.table.lint();
    EXPECT_FALSE(lint.empty()); // tiny configs leave dead table space
    for (const model::LintFinding &f : lint) {
        EXPECT_NE(f.kind, model::LintFinding::Kind::nondeterministic)
            << f.detail;
    }
    // Recall paths need capacity evictions, which the model's
    // infinite-capacity caches never trigger: busy_recall must be
    // flagged unreachable, proving the lint sees dead states.
    bool busyRecallUnreachable = false;
    for (const model::LintFinding &f : lint) {
        if (f.kind == model::LintFinding::Kind::unreachable_state &&
            f.detail.find("busy_recall") != std::string::npos)
            busyRecallUnreachable = true;
    }
    EXPECT_TRUE(busyRecallUnreachable);
}

TEST(Lint, ForwardingAsymmetryHoldsInForwardedSpaces)
{
    // DirectoryController::forward() marks only inval_rw/downgrade
    // recalls forwarded: inval_ro sweeps target shared blocks, whose
    // data the home itself holds, so a cache answering one with a
    // data response would bypass the fwd_ack handshake entirely. The
    // lint watches for exactly that emission; a clean forwarding
    // exploration must produce zero findings of the kind.
    model::ExploreOptions opt;
    opt.mc = threeNodes();
    opt.mc.forwarding = true;
    const model::ExploreResult res = model::explore(opt);
    ASSERT_TRUE(res.clean());
    for (const model::LintFinding &f : res.table.lint()) {
        EXPECT_NE(f.kind,
                  model::LintFinding::Kind::forwarding_asymmetry)
            << f.detail;
    }

    // The cache rows that do emit forwarded data carry the "fwd"
    // context on recall inputs, never on the ro sweep.
    bool sawForwardedRecallRow = false;
    for (const auto &[key, entry] : res.table.entries()) {
        if (key.module == model::Module::cache &&
            key.context.find("fwd") != std::string::npos) {
            EXPECT_NE(key.input,
                      static_cast<std::uint8_t>(
                          proto::MsgType::inval_ro_request))
                << key.format();
            if (key.input == static_cast<std::uint8_t>(
                                 proto::MsgType::inval_rw_request))
                sawForwardedRecallRow = true;
        }
    }
    EXPECT_TRUE(sawForwardedRecallRow);
}

TEST(Lint, TableEntriesCoverBothModules)
{
    model::ExploreOptions opt;
    opt.mc = twoNodes();
    const model::ExploreResult res = model::explore(opt);

    bool sawCache = false, sawDir = false;
    for (const auto &[key, entry] : res.table.entries()) {
        EXPECT_GT(entry.hits, 0u);
        if (key.module == model::Module::cache)
            sawCache = true;
        else
            sawDir = true;
    }
    EXPECT_TRUE(sawCache);
    EXPECT_TRUE(sawDir);
}

} // namespace
} // namespace cosmos
