/**
 * @file
 * Tests of the Machine wiring: observer notification semantics,
 * iteration tagging, message routing by receiver role, and the
 * local-message exclusion that implements Stache's home-node
 * optimization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "proto/machine.hh"

namespace cosmos::proto
{
namespace
{

struct Seen
{
    Msg msg;
    Role role;
    int iteration;
    Tick when;
};

class Recorder : public MsgObserver
{
  public:
    std::vector<Seen> seen;

    void
    onMessage(const Msg &m, Role role, int iteration,
              Tick when) override
    {
        seen.push_back({m, role, iteration, when});
    }
};

MachineConfig
cfg4()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    return cfg;
}

void
access(Machine &m, NodeId node, Addr a, bool write)
{
    bool done = false;
    m.cache(node).access(a, write, [&]() { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
}

TEST(Machine, ObserversSeeEveryRemoteMessageInOrder)
{
    Machine m(cfg4());
    Recorder rec;
    m.addObserver(&rec);
    const Addr block = m.addrMap().pageBytes(); // homed at node 1
    access(m, 2, block, false);
    ASSERT_EQ(rec.seen.size(), 2u);
    EXPECT_EQ(rec.seen[0].msg.type, MsgType::get_ro_request);
    EXPECT_EQ(rec.seen[0].role, Role::directory);
    EXPECT_EQ(rec.seen[1].msg.type, MsgType::get_ro_response);
    EXPECT_EQ(rec.seen[1].role, Role::cache);
    EXPECT_LT(rec.seen[0].when, rec.seen[1].when);
}

TEST(Machine, MultipleObserversAllNotified)
{
    Machine m(cfg4());
    Recorder a, b;
    m.addObserver(&a);
    m.addObserver(&b);
    access(m, 2, m.addrMap().pageBytes(), true);
    EXPECT_EQ(a.seen.size(), b.seen.size());
    EXPECT_GT(a.seen.size(), 0u);
}

TEST(Machine, IterationTagFollowsSetIteration)
{
    Machine m(cfg4());
    Recorder rec;
    m.addObserver(&rec);
    const Addr block = m.addrMap().pageBytes();
    m.setIteration(7);
    access(m, 2, block, false);
    m.setIteration(8);
    access(m, 3, block, false);
    ASSERT_GE(rec.seen.size(), 3u);
    EXPECT_EQ(rec.seen.front().iteration, 7);
    EXPECT_EQ(rec.seen.back().iteration, 8);
}

TEST(Machine, LocalMessagesAreInvisible)
{
    Machine m(cfg4());
    Recorder rec;
    m.addObserver(&rec);
    // Node 1 is home of page 1: its own accesses stay local.
    access(m, 1, m.addrMap().pageBytes(), true);
    EXPECT_TRUE(rec.seen.empty());
    EXPECT_GT(m.networkStats().localMessages, 0u);
    EXPECT_EQ(m.networkStats().remoteMessages, 0u);
}

TEST(Machine, RoleRoutingMatchesReceiverRole)
{
    Machine m(cfg4());
    Recorder rec;
    m.addObserver(&rec);
    const Addr block = m.addrMap().pageBytes();
    access(m, 0, block, true);
    access(m, 2, block, true); // forces an owner invalidation
    for (const auto &s : rec.seen)
        EXPECT_EQ(s.role, receiverRole(s.msg.type)) << s.msg.format();
}

TEST(Machine, ConfigDefaultsReachTheMachine)
{
    MachineConfig cfg;
    Machine m(cfg);
    EXPECT_EQ(m.numNodes(), 16);
    EXPECT_EQ(m.addrMap().blockBytes(), 64u);
    EXPECT_EQ(m.addrMap().home(0), 0);
    EXPECT_EQ(m.addrMap().home(cfg.pageBytes * 17), 1);
}

TEST(MachineDeathTest, BadNodeAccessPanics)
{
    Machine m(cfg4());
    EXPECT_DEATH(m.cache(9), "bad node");
    EXPECT_DEATH(m.directory(9), "bad node");
}

} // namespace
} // namespace cosmos::proto
