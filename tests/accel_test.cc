/**
 * @file
 * Unit tests of the acceleration layer: the §4.4 speedup model
 * (including the paper's worked example), the §4.1 prediction-to-
 * action mapping with §4.3 recovery classes, and the trace-driven
 * speculation evaluator.
 */

#include <gtest/gtest.h>

#include "accel/action_map.hh"
#include "accel/speculation.hh"
#include "accel/speedup_model.hh"
#include "harness/experiment.hh"
#include "workloads/micro.hh"

namespace cosmos::accel
{
namespace
{

using proto::MsgType;
using proto::Role;

TEST(SpeedupModel, PaperWorkedExample)
{
    // §4.4: p = 0.8, r = 1, f = 0.3 -> "speedup can be as high as
    // 56%".
    EXPECT_NEAR(speedupPercent({0.8, 0.3, 1.0}), 56.25, 0.01);
}

TEST(SpeedupModel, PerfectPredictionFullOverlap)
{
    // p = 1, f = 0: messages vanish from the critical path.
    EXPECT_NEAR(relativeTime({1.0, 0.0, 1.0}), 0.0, 1e-12);
}

TEST(SpeedupModel, NoPredictionBenefitIsNeutral)
{
    // f = 1 and p = 1: nothing gained, nothing lost.
    EXPECT_NEAR(speedup({1.0, 1.0, 0.5}), 1.0, 1e-12);
}

TEST(SpeedupModel, ZeroAccuracyCostsThePenalty)
{
    // p = 0: every message pays (1 + r).
    EXPECT_NEAR(relativeTime({0.0, 0.3, 0.5}), 1.5, 1e-12);
    EXPECT_LT(speedupPercent({0.0, 0.3, 0.5}), 0.0);
}

TEST(SpeedupModel, MonotonicInEachParameter)
{
    // More accuracy helps; more residual delay hurts; more penalty
    // hurts.
    EXPECT_GT(speedup({0.9, 0.3, 0.5}), speedup({0.7, 0.3, 0.5}));
    EXPECT_GT(speedup({0.8, 0.2, 0.5}), speedup({0.8, 0.4, 0.5}));
    EXPECT_GT(speedup({0.8, 0.3, 0.25}), speedup({0.8, 0.3, 1.0}));
}

TEST(SpeedupModel, CurveHasRequestedShape)
{
    const auto curve = figure5Curve(0.8, 1.0, 11);
    ASSERT_EQ(curve.size(), 11u);
    EXPECT_DOUBLE_EQ(curve.front().f, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
    // Monotonically decreasing in f.
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_LT(curve[i].speedupPercent,
                  curve[i - 1].speedupPercent);
}

TEST(ActionMap, ReadModifyWritePredictionRepliesExclusive)
{
    // §4.1's flagship example: read predicted to be followed by an
    // upgrade from the same node.
    const auto plan =
        planAction(Role::directory, 0, MsgType::get_ro_request,
                   {3, MsgType::upgrade_request});
    EXPECT_EQ(plan.action, Action::reply_exclusive);
    EXPECT_EQ(plan.recovery, Recovery::discard_future_state);
}

TEST(ActionMap, PredictedInvalidationSelfInvalidates)
{
    const auto plan =
        planAction(Role::cache, 2, MsgType::get_rw_response,
                   {0, MsgType::inval_rw_request});
    EXPECT_EQ(plan.action, Action::self_invalidate);
    // Replacing exclusive -> invalid moves between legal states.
    EXPECT_EQ(plan.recovery, Recovery::none);
}

TEST(ActionMap, PredictedMissForwardsData)
{
    const auto plan =
        planAction(Role::directory, 0, MsgType::inval_rw_response,
                   {5, MsgType::get_ro_request});
    EXPECT_EQ(plan.action, Action::forward_data);
}

TEST(ActionMap, PredictedResponsePrefetchesWithRollback)
{
    const auto plan =
        planAction(Role::cache, 1, MsgType::inval_rw_request,
                   {0, MsgType::get_ro_response});
    EXPECT_EQ(plan.action, Action::prefetch);
    EXPECT_EQ(plan.recovery, Recovery::checkpoint_rollback);
}

TEST(ActionMap, UpgradePredictionWithoutPriorReadDoesNothing)
{
    const auto plan =
        planAction(Role::directory, 0, MsgType::inval_ro_response,
                   {3, MsgType::upgrade_request});
    EXPECT_EQ(plan.action, Action::none);
}

TEST(ActionMap, NamesAreStable)
{
    EXPECT_STREQ(toString(Action::reply_exclusive),
                 "reply_exclusive");
    EXPECT_STREQ(toString(Recovery::checkpoint_rollback),
                 "checkpoint_rollback");
}

TEST(Speculation, NearPerfectPatternYieldsHighCoverageAndSpeedup)
{
    harness::RunConfig cfg;
    wl::ProducerConsumerParams params;
    params.blocks = 8;
    params.iterations = 40;
    wl::ProducerConsumerMicro workload(params);
    auto result = harness::runWorkload(cfg, workload);

    const auto rep =
        evaluateSpeculation(result.trace, pred::CosmosConfig{1, 0});
    EXPECT_GT(rep.references, 100u);
    EXPECT_GT(rep.actionAccuracy(), 0.9);
    EXPECT_GT(rep.coverage(), 0.5);
    EXPECT_GT(rep.estimatedSpeedupPercent(0.3, 0.5), 10.0);
    // Model sanity: zero residual delay beats partial overlap.
    EXPECT_GT(rep.estimatedSpeedupPercent(0.0, 0.5),
              rep.estimatedSpeedupPercent(0.5, 0.5));
}

TEST(Speculation, ReportsRecoveryBreakdown)
{
    harness::RunConfig cfg;
    wl::MigratoryParams params;
    params.iterations = 30;
    wl::MigratoryMicro workload(params);
    auto result = harness::runWorkload(cfg, workload);

    const auto rep =
        evaluateSpeculation(result.trace, pred::CosmosConfig{2, 0});
    EXPECT_EQ(rep.recovery.none + rep.recovery.discardFutureState +
                  rep.recovery.checkpointRollback,
              rep.actioned);
    EXPECT_FALSE(rep.format().empty());
}

TEST(SpeculationModel, EmptyReportIsNeutral)
{
    SpeculationReport rep;
    EXPECT_DOUBLE_EQ(rep.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(rep.actionAccuracy(), 0.0);
    EXPECT_DOUBLE_EQ(rep.estimatedSpeedupPercent(0.3, 0.5), 0.0);
}

} // namespace
} // namespace cosmos::accel
