/**
 * @file
 * Unit tests of trace capture and serialization: recorder filtering,
 * summary queries, and binary round-tripping.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace cosmos::trace
{
namespace
{

proto::Msg
msg(proto::MsgType t, NodeId src, NodeId dst, Addr block)
{
    proto::Msg m;
    m.type = t;
    m.src = src;
    m.dst = dst;
    m.block = block;
    m.requester = src;
    return m;
}

TEST(TraceRecorder, RecordsRoleAndIteration)
{
    Trace t;
    TraceRecorder rec(t, 0);
    rec.onMessage(msg(proto::MsgType::get_ro_request, 1, 2, 0x40),
                  proto::Role::directory, 3, 777);
    ASSERT_EQ(t.records.size(), 1u);
    EXPECT_EQ(t.records[0].sender, 1);
    EXPECT_EQ(t.records[0].receiver, 2);
    EXPECT_EQ(t.records[0].block, 0x40u);
    EXPECT_EQ(t.records[0].role, proto::Role::directory);
    EXPECT_EQ(t.records[0].iteration, 3);
    EXPECT_EQ(t.records[0].when, 777u);
}

TEST(TraceRecorder, DropsWarmupIterations)
{
    Trace t;
    TraceRecorder rec(t, 2);
    for (int iter = 0; iter < 5; ++iter) {
        rec.onMessage(msg(proto::MsgType::get_ro_request, 0, 1, 0),
                      proto::Role::directory, iter, 0);
    }
    EXPECT_EQ(t.records.size(), 3u);
    EXPECT_EQ(rec.dropped(), 2u);
    EXPECT_EQ(t.records.front().iteration, 2);
}

TEST(Trace, SummaryQueries)
{
    Trace t;
    TraceRecorder rec(t, 0);
    rec.onMessage(msg(proto::MsgType::get_ro_request, 0, 1, 0x0),
                  proto::Role::directory, 0, 0);
    rec.onMessage(msg(proto::MsgType::get_ro_response, 1, 0, 0x0),
                  proto::Role::cache, 0, 0);
    rec.onMessage(msg(proto::MsgType::get_rw_response, 1, 0, 0x40),
                  proto::Role::cache, 0, 0);
    EXPECT_EQ(t.cacheRecords(), 2u);
    EXPECT_EQ(t.directoryRecords(), 1u);
    EXPECT_EQ(t.distinctBlocks(), 2u);
}

TEST(TraceIo, RoundTripsEverything)
{
    Trace t;
    t.app = "unit";
    t.numNodes = 16;
    t.blockBytes = 64;
    t.iterations = 7;
    t.seed = 0xdeadbeef;
    for (int i = 0; i < 100; ++i) {
        TraceRecord r;
        r.block = static_cast<Addr>(i) * 64;
        r.when = static_cast<Tick>(i) * 13;
        r.receiver = static_cast<NodeId>(i % 16);
        r.sender = static_cast<NodeId>((i + 5) % 16);
        r.type = static_cast<proto::MsgType>(i % 12);
        r.role = proto::receiverRole(r.type);
        r.iteration = i / 10;
        t.records.push_back(r);
    }

    std::stringstream ss;
    writeTrace(ss, t);
    const Trace back = readTrace(ss);
    EXPECT_EQ(back.app, t.app);
    EXPECT_EQ(back.numNodes, t.numNodes);
    EXPECT_EQ(back.blockBytes, t.blockBytes);
    EXPECT_EQ(back.iterations, t.iterations);
    EXPECT_EQ(back.seed, t.seed);
    EXPECT_EQ(back.records, t.records);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    Trace t;
    t.app = "empty";
    std::stringstream ss;
    writeTrace(ss, t);
    const Trace back = readTrace(ss);
    EXPECT_EQ(back.app, "empty");
    EXPECT_TRUE(back.records.empty());
}

TEST(TraceIoDeathTest, BadMagicPanics)
{
    std::stringstream ss;
    ss << "this is not a trace file";
    EXPECT_DEATH(readTrace(ss), "malformed");
}

TEST(TraceIoDeathTest, TruncatedStreamPanics)
{
    Trace t;
    t.app = "x";
    TraceRecord r;
    t.records.push_back(r);
    std::stringstream ss;
    writeTrace(ss, t);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream cut(bytes);
    EXPECT_DEATH(readTrace(cut), "malformed");
}

TEST(TraceIo, TryReadRecoversFromMalformedStreams)
{
    // Bad magic.
    std::stringstream junk("this is not a trace file");
    EXPECT_FALSE(tryReadTrace(junk).has_value());

    Trace t;
    t.app = "x";
    TraceRecord r;
    r.type = proto::MsgType::get_ro_request;
    t.records.push_back(r);
    std::stringstream ss;
    writeTrace(ss, t);
    const std::string bytes = ss.str();

    // Truncation at every prefix length must be survivable.
    for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
        std::stringstream s(bytes.substr(0, cut));
        EXPECT_FALSE(tryReadTrace(s).has_value());
    }

    // An out-of-range message type byte is rejected, not trusted.
    std::string corrupt = bytes;
    corrupt[corrupt.size() - 6] = '\x7f'; // type byte of the record
    std::stringstream cs(corrupt);
    EXPECT_FALSE(tryReadTrace(cs).has_value());

    // The intact stream still parses.
    std::stringstream good(bytes);
    const auto back = tryReadTrace(good);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->records, t.records);
}

TEST(TraceIo, DiagnosticsCarryOffsetAndReason)
{
    Trace t;
    t.app = "diag";
    TraceRecord r;
    r.type = proto::MsgType::get_ro_request;
    t.records.push_back(r);
    std::stringstream ss;
    writeTrace(ss, t);
    const std::string bytes = ss.str();

    // Bad magic fails at offset 0 and says the file is foreign.
    ReadDiagnostic diag;
    std::stringstream junk("zzzz not a trace");
    EXPECT_FALSE(tryReadTrace(junk, &diag).has_value());
    EXPECT_EQ(diag.offset, 0u);
    EXPECT_NE(diag.reason.find("bad magic"), std::string::npos)
        << diag.reason;

    // Truncation inside the header points past the 4-byte magic and
    // names the missing bytes.
    std::stringstream cut(bytes.substr(0, 6));
    EXPECT_FALSE(tryReadTrace(cut, &diag).has_value());
    EXPECT_EQ(diag.offset, 4u);
    EXPECT_NE(diag.reason.find("truncated"), std::string::npos)
        << diag.reason;

    // Truncation inside a record names the record index.
    std::stringstream mid(bytes.substr(0, bytes.size() - 3));
    EXPECT_FALSE(tryReadTrace(mid, &diag).has_value());
    EXPECT_NE(diag.reason.find("record 0 of 1"), std::string::npos)
        << diag.reason;

    // format() stitches in the source name for user-facing errors.
    const std::string msg = diag.format("foo.trace");
    EXPECT_NE(msg.find("foo.trace"), std::string::npos);
    EXPECT_NE(msg.find("byte offset"), std::string::npos);
}

TEST(TraceIoDeathTest, LoadTracePanicsWithPathAndOffset)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/cosmos_diag_trace";
    fs::create_directories(dir);
    const std::string path = dir + "/cut.trace";

    Trace t;
    t.app = "diag";
    TraceRecord r;
    r.type = proto::MsgType::get_ro_request;
    t.records.push_back(r);
    std::stringstream ss;
    writeTrace(ss, t);
    const std::string bytes = ss.str();
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - 5));
    os.close();
    EXPECT_DEATH(loadTrace(path),
                 "malformed.*cut\\.trace.*byte offset");
    fs::remove_all(dir);
}

TEST(TraceIo, TryLoadMissingFileReturnsNullopt)
{
    EXPECT_FALSE(
        tryLoadTrace("/nonexistent/dir/nothing.trace").has_value());
}

TEST(TraceIo, TryLoadCorruptFilesOnDiskReturnNullopt)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/cosmos_corrupt_trace";
    fs::create_directories(dir);

    // A valid two-record file to corrupt from.
    Trace t;
    t.app = "corruptible";
    TraceRecord r;
    r.block = 0x40;
    r.type = proto::MsgType::get_ro_request;
    t.records.push_back(r);
    r.block = 0x80;
    r.type = proto::MsgType::get_rw_response;
    t.records.push_back(r);
    const std::string good = dir + "/good.trace";
    saveTrace(good, t);
    ASSERT_TRUE(tryLoadTrace(good).has_value());

    std::ifstream in(good, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();

    const auto writeFile = [&](const std::string &name,
                               const std::string &content) {
        const std::string path = dir + "/" + name;
        std::ofstream os(path, std::ios::binary);
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        return path;
    };

    // Empty file.
    EXPECT_FALSE(tryLoadTrace(writeFile("empty.trace", ""))
                     .has_value());

    // Bad magic: flip one bit of the first byte.
    std::string bad_magic = bytes;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x01);
    EXPECT_FALSE(tryLoadTrace(writeFile("badmagic.trace", bad_magic))
                     .has_value());

    // Truncated mid-header (inside the app-name string).
    EXPECT_FALSE(tryLoadTrace(writeFile("header.trace",
                                        bytes.substr(0, 6)))
                     .has_value());

    // Short read mid-record: the count promises two records but the
    // file ends partway through the second.
    EXPECT_FALSE(
        tryLoadTrace(writeFile("midrecord.trace",
                               bytes.substr(0, bytes.size() - 9)))
            .has_value());

    // The pristine file still loads after all that.
    const auto back = tryLoadTrace(good);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->records, t.records);
    fs::remove_all(dir);
}

TEST(TraceIo, AtomicSaveRoundTripsAndLeavesNoTempFile)
{
    namespace fs = std::filesystem;
    Trace t;
    t.app = "atomic";
    TraceRecord r;
    r.block = 0x40;
    t.records.push_back(r);

    const std::string dir =
        ::testing::TempDir() + "/cosmos_atomic_save";
    fs::create_directories(dir);
    const std::string path = dir + "/x.trace";
    saveTraceAtomic(path, t);
    const auto back = tryLoadTrace(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->records, t.records);
    // Only the final file remains -- the temp was renamed away.
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++entries;
    EXPECT_EQ(entries, 1u);

    // Overwriting an existing file is also atomic and lossless.
    t.records.push_back(r);
    saveTraceAtomic(path, t);
    EXPECT_EQ(tryLoadTrace(path)->records.size(), 2u);
    fs::remove_all(dir);
}

TEST(TraceIo, FileSaveAndLoad)
{
    Trace t;
    t.app = "file";
    TraceRecord r;
    r.block = 0x1234;
    r.type = proto::MsgType::upgrade_request;
    r.role = proto::Role::directory;
    t.records.push_back(r);

    const std::string path = ::testing::TempDir() + "/cosmos.trace";
    saveTrace(path, t);
    const Trace back = loadTrace(path);
    EXPECT_EQ(back.records, t.records);
    std::remove(path.c_str());
}

} // namespace
} // namespace cosmos::trace
