/**
 * @file
 * Unit tests of the interconnect model: latency, per-channel FIFO
 * ordering, local-delivery semantics, and statistics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"

namespace cosmos::net
{
namespace
{

struct Delivery
{
    std::string payload;
    bool local;
    Tick when;
};

struct Fixture
{
    sim::EventQueue eq;
    Network<std::string> net{eq, 4, /*wire=*/40, /*ni=*/60};
    std::vector<std::vector<Delivery>> got{4};

    Fixture()
    {
        for (NodeId n = 0; n < 4; ++n) {
            net.attach(n, [this, n](const std::string &p, bool local) {
                got[n].push_back({p, local, eq.now()});
            });
        }
    }
};

TEST(Network, RemoteLatencyIsNiWireNi)
{
    Fixture f;
    f.net.send(0, 1, "hello");
    f.eq.run();
    ASSERT_EQ(f.got[1].size(), 1u);
    EXPECT_EQ(f.got[1][0].when, 2 * 60 + 40u);
    EXPECT_FALSE(f.got[1][0].local);
}

TEST(Network, LocalDeliveryNextTickAndFlagged)
{
    Fixture f;
    f.net.send(2, 2, "self");
    f.eq.run();
    ASSERT_EQ(f.got[2].size(), 1u);
    EXPECT_EQ(f.got[2][0].when, 1u);
    EXPECT_TRUE(f.got[2][0].local);
}

TEST(Network, PerChannelFifoOrdering)
{
    Fixture f;
    for (int i = 0; i < 20; ++i)
        f.net.send(0, 1, std::to_string(i));
    f.eq.run();
    ASSERT_EQ(f.got[1].size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(f.got[1][i].payload, std::to_string(i));
    // Same-cycle sends on one channel cannot arrive simultaneously.
    for (int i = 1; i < 20; ++i)
        EXPECT_GT(f.got[1][i].when, f.got[1][i - 1].when);
}

TEST(Network, DistinctChannelsDoNotSerialize)
{
    Fixture f;
    f.net.send(0, 1, "a");
    f.net.send(2, 1, "b");
    f.eq.run();
    ASSERT_EQ(f.got[1].size(), 2u);
    // Both arrive at the same nominal latency: different channels.
    EXPECT_EQ(f.got[1][0].when, f.got[1][1].when);
}

TEST(Network, StatsCountBothKinds)
{
    Fixture f;
    f.net.send(0, 1, "r");
    f.net.send(3, 3, "l");
    f.eq.run();
    EXPECT_EQ(f.net.stats().remoteMessages, 1u);
    EXPECT_EQ(f.net.stats().localMessages, 1u);
    EXPECT_DOUBLE_EQ(f.net.stats().meanLatency(), 160.0);
    EXPECT_NE(f.net.stats().format().find("remote=1"),
              std::string::npos);
}

TEST(Network, ZeroStatsFormat)
{
    NetworkStats s;
    EXPECT_DOUBLE_EQ(s.meanLatency(), 0.0);
}

TEST(NetworkDeathTest, BadNodePanics)
{
    Fixture f;
    EXPECT_DEATH(f.net.send(0, 9, "x"), "bad nodes");
}

} // namespace
} // namespace cosmos::net
