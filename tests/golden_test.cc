/**
 * @file
 * Golden regression suite: replays the Table 5 / Table 6 grid and
 * requires every accuracy counter to equal the pinned values in
 * fixtures/golden_accuracy.hh, cell by cell and bit for bit.
 *
 * The fixture was captured from the seed implementation before the
 * predictor's data layout was flattened (packed MHRs, open-addressing
 * tables, arena backing), so this suite is the proof that those are
 * pure performance changes. It intentionally checks raw integer
 * counters, not percentages: a drift of one reference is a bug even
 * when every rounded table entry still matches the paper.
 */

#include <gtest/gtest.h>

#include <string>

#include "cosmos/predictor_bank.hh"
#include "fixtures/golden_accuracy.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"

namespace cosmos
{
namespace
{

TEST(GoldenAccuracy, SerialReplayMatchesFixtureBitForBit)
{
    std::string prev_app;
    for (const auto &row : fixtures::golden_accuracy_rows) {
        const auto &trace = harness::cachedTrace(row.app);
        pred::PredictorBank bank(
            trace.numNodes,
            pred::CosmosConfig{row.depth, row.filterMax});
        bank.replay(trace);
        const auto &acc = bank.accuracy();
        const std::string cell = std::string(row.app) + " depth " +
                                 std::to_string(row.depth) +
                                 " filter " +
                                 std::to_string(row.filterMax);
        EXPECT_EQ(acc.cacheSide().hits, row.cacheHits) << cell;
        EXPECT_EQ(acc.cacheSide().total, row.cacheTotal) << cell;
        EXPECT_EQ(acc.directorySide().hits, row.dirHits) << cell;
        EXPECT_EQ(acc.directorySide().total, row.dirTotal) << cell;
        EXPECT_EQ(acc.coldMisses(), row.coldMisses) << cell;
    }
}

TEST(GoldenAccuracy, ParallelSweepMatchesFixtureBitForBit)
{
    // The same grid through the sharded SweepEngine: the parallel
    // path must land on the very same counters.
    std::vector<replay::ReplayJob> jobs;
    for (const auto &row : fixtures::golden_accuracy_rows)
        jobs.push_back(
            {.app = row.app,
             .config = pred::CosmosConfig{row.depth, row.filterMax}});
    const auto results = harness::runSweep(jobs);
    ASSERT_EQ(results.size(), fixtures::num_golden_accuracy_rows);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &row = fixtures::golden_accuracy_rows[i];
        const auto &acc = results[i].accuracy;
        const std::string cell = std::string(row.app) + " depth " +
                                 std::to_string(row.depth) +
                                 " filter " +
                                 std::to_string(row.filterMax);
        EXPECT_EQ(acc.cacheSide().hits, row.cacheHits) << cell;
        EXPECT_EQ(acc.cacheSide().total, row.cacheTotal) << cell;
        EXPECT_EQ(acc.directorySide().hits, row.dirHits) << cell;
        EXPECT_EQ(acc.directorySide().total, row.dirTotal) << cell;
        EXPECT_EQ(acc.coldMisses(), row.coldMisses) << cell;
    }
}

TEST(GoldenAccuracy, FixtureCoversTheFullGrid)
{
    // 5 applications x (4 unfiltered depths + 2 depths x 2 filters).
    EXPECT_EQ(fixtures::num_golden_accuracy_rows, 40u);
}

} // namespace
} // namespace cosmos
