/**
 * @file
 * Tests of the invariant engine and schedule fuzzer (src/check).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "check/fuzzer.hh"
#include "check/invariant_engine.hh"
#include "common/log.hh"
#include "proto/machine.hh"
#include "runtime/processor.hh"
#include "runtime/program.hh"

namespace cosmos
{
namespace
{

MachineConfig
smallConfig(NodeId nodes = 4)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    return cfg;
}

// ---------------------------------------------------------------------
// Recoverable failure path (common/log FailureTrap)

TEST(FailureTrap, AssertThrowsRecoverableErrorWhenTrapped)
{
    bool caught = false;
    try {
        FailureTrap trap;
        cosmos_assert(1 + 1 == 3, "math broke");
    } catch (const RecoverableError &e) {
        caught = true;
        EXPECT_NE(std::string(e.what()).find("math broke"),
                  std::string::npos);
        EXPECT_NE(std::string(e.file()).find("check_test"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
    EXPECT_TRUE(caught);
    EXPECT_FALSE(failuresAreRecoverable());
}

TEST(FailureTrap, NestsAndUnwinds)
{
    EXPECT_FALSE(failuresAreRecoverable());
    {
        FailureTrap outer;
        EXPECT_TRUE(failuresAreRecoverable());
        {
            FailureTrap inner;
            EXPECT_TRUE(failuresAreRecoverable());
        }
        EXPECT_TRUE(failuresAreRecoverable());
    }
    EXPECT_FALSE(failuresAreRecoverable());
}

TEST(FailureTrapDeathTest, UntrappedAssertStillAborts)
{
    EXPECT_DEATH(
        { cosmos_assert(false, "untrapped"); }, "untrapped");
}

// The assert condition must be evaluated exactly once whether or not
// it holds (Release-parity audit: no side-effecting double evaluation).
TEST(FailureTrap, ConditionEvaluatedExactlyOnce)
{
    int evaluations = 0;
    cosmos_assert(++evaluations == 1, "side effect");
    EXPECT_EQ(evaluations, 1);

    try {
        FailureTrap trap;
        cosmos_assert(++evaluations == 100, "fails once");
    } catch (const RecoverableError &) {
    }
    EXPECT_EQ(evaluations, 2);
}

// ---------------------------------------------------------------------
// Violation records

TEST(Violation, FormatCarriesContext)
{
    check::Violation v;
    v.kind = check::ViolationKind::writer_and_readers;
    v.block = 0x1040;
    v.nodes = {1, 3};
    v.when = 777;
    v.detail = "writer node 1 coexists with 1 read_only copy";
    v.history = {"t=770 get_rw_response 0->1 block=0x1040"};

    const std::string s = v.format();
    EXPECT_NE(s.find("writer_and_readers"), std::string::npos);
    EXPECT_NE(s.find("block 0x1040"), std::string::npos);
    EXPECT_NE(s.find("nodes [1, 3]"), std::string::npos);
    EXPECT_NE(s.find("t=777"), std::string::npos);
    EXPECT_NE(s.find("last 1 messages"), std::string::npos);
}

TEST(Violation, KindNamesRoundTrip)
{
    EXPECT_STREQ(check::toString(
                     check::ViolationKind::multiple_writers),
                 "multiple_writers");
    EXPECT_STREQ(check::toString(check::ViolationKind::assertion),
                 "assertion");
}

// ---------------------------------------------------------------------
// Invariant engine on a healthy machine

TEST(InvariantEngine, CleanOnHealthyContendedRun)
{
    proto::Machine machine(smallConfig());
    check::InvariantEngine engine(machine);
    runtime::Runtime rt(machine);

    // Four nodes hammering two blocks: reads, writes, upgrades,
    // invalidations -- every protocol flow, no faults.
    runtime::ProgramBuilder b(4);
    const Addr a0 = 0;
    const Addr a1 = 4096;
    for (NodeId p = 0; p < 4; ++p) {
        for (int i = 0; i < 8; ++i)
            b.proc(p).read(a0).write(a1).write(a0).read(a1);
    }
    rt.runPrograms(b.take());
    engine.checkQuiescent();

    EXPECT_TRUE(engine.clean())
        << engine.violations().front().format();
    EXPECT_GT(engine.delivered(), 0u);
    EXPECT_EQ(engine.suppressed(), 0u);
}

// ---------------------------------------------------------------------
// Invariant engine catches a planted protocol bug

TEST(InvariantEngine, CatchesLostInvalidation)
{
    MachineConfig cfg = smallConfig(3);
    cfg.fault.ignoreInvalEvery = 1; // every inval_ro ack is a lie
    proto::Machine machine(cfg);
    check::InvariantEngine engine(machine);
    runtime::Runtime rt(machine);

    // Node 1 takes a read-only copy; node 2 then writes. The
    // directory invalidates node 1's copy, node 1 acks without
    // invalidating, and exclusivity is granted while the stale
    // read-only copy survives: SWMR must fire at that delivery.
    runtime::ProgramBuilder b(3);
    const Addr a = 0;
    b.proc(1).read(a);
    b.barrier();
    b.proc(2).write(a);
    rt.runPrograms(b.take());
    engine.checkQuiescent();

    ASSERT_FALSE(engine.clean());
    const check::Violation &v = engine.violations().front();
    EXPECT_EQ(v.kind, check::ViolationKind::writer_and_readers);
    EXPECT_EQ(v.block, a);
    ASSERT_EQ(v.nodes.size(), 2u);
    EXPECT_EQ(v.nodes[0], 1);
    EXPECT_EQ(v.nodes[1], 2);
    EXPECT_FALSE(v.history.empty());
    EXPECT_GT(v.when, 0u);
}

TEST(InvariantEngine, NoteFailureRecordsAssertion)
{
    proto::Machine machine(smallConfig());
    check::InvariantEngine engine(machine);
    try {
        FailureTrap trap;
        cosmos_panic("deliberate panic for the engine");
    } catch (const RecoverableError &e) {
        engine.noteFailure(e);
    }
    ASSERT_EQ(engine.violations().size(), 1u);
    EXPECT_EQ(engine.violations().front().kind,
              check::ViolationKind::assertion);
    EXPECT_NE(engine.violations().front().detail.find(
                  "deliberate panic"),
              std::string::npos);
}

TEST(InvariantEngine, MaxViolationsCapsAndCountsSuppressed)
{
    check::CheckOptions opts;
    opts.maxViolations = 2;
    proto::Machine machine(smallConfig());
    check::InvariantEngine engine(machine, opts);
    for (int i = 0; i < 5; ++i) {
        try {
            FailureTrap trap;
            cosmos_panic("panic ", i);
        } catch (const RecoverableError &e) {
            engine.noteFailure(e);
        }
    }
    EXPECT_EQ(engine.violations().size(), 2u);
    EXPECT_EQ(engine.suppressed(), 3u);
}

// ---------------------------------------------------------------------
// Schedule fuzzer

TEST(Fuzzer, CaseDerivationIsDeterministic)
{
    check::FuzzOptions opts;
    const check::FuzzCase a = check::makeCase(42, opts);
    const check::FuzzCase b = check::makeCase(42, opts);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (std::size_t p = 0; p < a.programs.size(); ++p) {
        ASSERT_EQ(a.programs[p].size(), b.programs[p].size());
        for (std::size_t i = 0; i < a.programs[p].size(); ++i) {
            EXPECT_EQ(a.programs[p][i].kind, b.programs[p][i].kind);
            EXPECT_EQ(a.programs[p][i].addr, b.programs[p][i].addr);
            EXPECT_EQ(a.programs[p][i].delay, b.programs[p][i].delay);
        }
    }
    EXPECT_EQ(a.cfg.forwarding, b.cfg.forwarding);
    EXPECT_EQ(a.cfg.ownerReadPolicy, b.cfg.ownerReadPolicy);

    // Different seeds give different workloads.
    const check::FuzzCase c = check::makeCase(43, opts);
    EXPECT_NE(a.totalOps(), 0u);
    bool differs =
        check::formatPrograms(a.programs) !=
            check::formatPrograms(c.programs) ||
        a.cfg.forwarding != c.cfg.forwarding;
    EXPECT_TRUE(differs);
}

TEST(Fuzzer, RunIsDeterministic)
{
    check::FuzzOptions opts;
    opts.opsPerNode = 32;
    const check::FuzzCase c = check::makeCase(7, opts);
    const check::CaseResult r1 = check::runCase(c, opts);
    const check::CaseResult r2 = check::runCase(c, opts);
    EXPECT_EQ(r1.failed, r2.failed);
    EXPECT_EQ(r1.delivered, r2.delivered);
    EXPECT_EQ(r1.violations.size(), r2.violations.size());
}

TEST(Fuzzer, CleanCampaignOnHealthyProtocol)
{
    check::FuzzOptions opts;
    opts.numSeeds = 20;
    opts.opsPerNode = 32;
    const check::FuzzReport report = check::fuzz(opts);
    EXPECT_EQ(report.casesRun, 20u);
    EXPECT_TRUE(report.clean())
        << report.failures.front().result.violations.front().format();
}

TEST(Fuzzer, CatchesInjectedBugAndShrinks)
{
    check::FuzzOptions opts;
    opts.numSeeds = 4;
    opts.opsPerNode = 48;
    opts.ignoreInvalEvery = 2;
    const check::FuzzReport report = check::fuzz(opts);
    ASSERT_FALSE(report.clean());

    const check::Failure &f = report.failures.front();
    EXPECT_TRUE(f.result.failed);
    EXPECT_FALSE(f.result.violations.empty());
    // The shrunk reproducer is no bigger than the original and still
    // non-trivial (losing an invalidation needs a reader + a writer).
    EXPECT_LE(f.shrunkOps, f.originalOps);
    EXPECT_GE(f.shrunkOps, 2u);
    EXPECT_FALSE(f.reproducer.empty());

    // The captured seed replays to the same failure.
    const check::Failure again =
        check::replaySeed(f.result.seed, opts);
    EXPECT_TRUE(again.result.failed);
    EXPECT_EQ(again.result.violations.size(),
              f.result.violations.size());
    EXPECT_EQ(again.shrunkOps, f.shrunkOps);
}

TEST(Fuzzer, ReplayOfCleanSeedIsClean)
{
    check::FuzzOptions opts;
    opts.opsPerNode = 32;
    const check::Failure f = check::replaySeed(11, opts);
    EXPECT_FALSE(f.result.failed);
    EXPECT_EQ(f.shrunkOps, f.originalOps);
}

TEST(Fuzzer, WritesWellFormedArtifact)
{
    check::FuzzOptions opts;
    opts.numSeeds = 2;
    opts.opsPerNode = 24;
    opts.ignoreInvalEvery = 1;
    const check::FuzzReport report = check::fuzz(opts);
    ASSERT_FALSE(report.clean());

    const std::string path =
        testing::TempDir() + "/fuzz_artifact.json";
    ASSERT_TRUE(check::writeReport(report, opts, path));

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"format\": \"cosmos-fuzz-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"violations\""), std::string::npos);
    EXPECT_NE(json.find("\"reproducer\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace cosmos
