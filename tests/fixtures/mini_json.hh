/**
 * @file
 * A minimal recursive-descent JSON parser for test assertions.
 *
 * Just enough JSON to validate the simulator's exports (metrics
 * documents, Chrome trace-event files): objects, arrays, strings
 * with the escapes our writers emit, numbers, true/false/null.
 * Throws std::runtime_error with a byte offset on malformed input,
 * so EXPECT_NO_THROW(parse(text)) doubles as a validity check.
 *
 * Not a general-purpose parser -- no \uXXXX decoding (the escape is
 * consumed but not translated), no surrogate handling, doubles only.
 */

#ifndef COSMOS_TESTS_FIXTURES_MINI_JSON_HH
#define COSMOS_TESTS_FIXTURES_MINI_JSON_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mini_json
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Type
    {
        object,
        array,
        string,
        number,
        boolean,
        null,
    };

    Type type = Type::null;
    std::map<std::string, ValuePtr> object;
    std::vector<ValuePtr> array;
    std::string string;
    double number = 0.0;
    bool boolean = false;

    bool isObject() const { return type == Type::object; }
    bool isArray() const { return type == Type::array; }
    bool isString() const { return type == Type::string; }
    bool isNumber() const { return type == Type::number; }

    /** Object member, or nullptr when absent / not an object. */
    const Value *
    get(const std::string &key) const
    {
        if (type != Type::object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : it->second.get();
    }

    bool has(const std::string &key) const
    {
        return get(key) != nullptr;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing bytes after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    ValuePtr
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            ValuePtr key = parseString();
            expect(':');
            if (!v->object.emplace(key->string, parseValue()).second)
                fail("duplicate key \"" + key->string + "\"");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v->array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::string;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"':  v->string += '"'; break;
                  case '\\': v->string += '\\'; break;
                  case '/':  v->string += '/'; break;
                  case 'b':  v->string += '\b'; break;
                  case 'f':  v->string += '\f'; break;
                  case 'n':  v->string += '\n'; break;
                  case 'r':  v->string += '\r'; break;
                  case 't':  v->string += '\t'; break;
                  case 'u':
                    // Consume 4 hex digits; not decoded.
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            fail("bad \\u escape");
                        ++pos_;
                    }
                    v->string += '?';
                    break;
                  default: fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            } else {
                v->string += c;
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    ValuePtr
    parseNumber()
    {
        const std::size_t start = pos_;
        auto isNumChar = [](char c) {
            return (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                   c == '.' || c == 'e' || c == 'E';
        };
        while (pos_ < text_.size() && isNumChar(text_[pos_]))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        std::size_t used = 0;
        const std::string tok = text_.substr(start, pos_ - start);
        auto v = std::make_shared<Value>();
        v->type = Value::Type::number;
        try {
            v->number = std::stod(tok, &used);
        } catch (const std::exception &) {
            fail("bad number \"" + tok + "\"");
        }
        if (used != tok.size())
            fail("bad number \"" + tok + "\"");
        return v;
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::boolean;
        if (text_.compare(pos_, 4, "true") == 0) {
            v->boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v->boolean = false;
            pos_ += 5;
        } else {
            fail("expected true/false");
        }
        return v;
    }

    ValuePtr
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("expected null");
        pos_ += 4;
        auto v = std::make_shared<Value>();
        v->type = Value::Type::null;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Parse @p text; throws std::runtime_error on malformed input. */
inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace mini_json

#endif // COSMOS_TESTS_FIXTURES_MINI_JSON_HH
