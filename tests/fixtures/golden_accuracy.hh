/**
 * @file
 * Golden prediction-accuracy counters for the Table 5 / Table 6
 * replay grid: every (application, MHR depth, filter) cell's exact
 * integer hit/total counts per receiver role, plus cold misses.
 *
 * These were produced by the seed implementation (std::unordered_map
 * tables, vector MHRs) and pin the predictor's externally visible
 * behaviour bit-for-bit: any layout or hot-path change that alters a
 * single counter is a correctness regression, not noise. Both the
 * golden regression test suite (tests/golden_test.cc) and the
 * throughput bench (bench/bench_predictor_throughput.cc) assert
 * against these rows before reporting anything.
 *
 * Regenerate (only when the *model* intentionally changes) with
 * `bench_predictor_throughput --dump-goldens`.
 */

#ifndef COSMOS_TESTS_FIXTURES_GOLDEN_ACCURACY_HH
#define COSMOS_TESTS_FIXTURES_GOLDEN_ACCURACY_HH

#include <cstddef>
#include <cstdint>

namespace cosmos::fixtures
{

/** One pinned replay cell: config plus its exact result counters. */
struct GoldenAccuracyRow
{
    const char *app;         ///< standard paper trace name
    unsigned depth;          ///< MHR depth (CosmosConfig::depth)
    unsigned filterMax;      ///< filter max (CosmosConfig::filterMax)
    std::uint64_t cacheHits; ///< cache-side hits (Table 5 "C")
    std::uint64_t cacheTotal;
    std::uint64_t dirHits; ///< directory-side hits (Table 5 "D")
    std::uint64_t dirTotal;
    std::uint64_t coldMisses; ///< lookups that found no pattern
};

/**
 * The full pinned grid, application-major: depths 1-4 unfiltered
 * (Table 5), then depths 1-2 x filters 1-2 (Table 6).
 */
inline constexpr GoldenAccuracyRow golden_accuracy_rows[] = {
    {"appbt", 1, 0, 64071u, 69738u, 53529u, 71874u, 8286u},
    {"appbt", 2, 0, 62959u, 68373u, 57512u, 70675u, 10398u},
    {"appbt", 3, 0, 61800u, 67565u, 56347u, 69992u, 12358u},
    {"appbt", 4, 0, 60624u, 66779u, 55113u, 69508u, 14220u},
    {"appbt", 1, 1, 64801u, 69738u, 56108u, 71874u, 8286u},
    {"appbt", 1, 2, 64930u, 69738u, 56864u, 71874u, 8286u},
    {"appbt", 2, 1, 63647u, 68373u, 59005u, 70675u, 10398u},
    {"appbt", 2, 2, 63734u, 68373u, 59305u, 70675u, 10398u},
    {"barnes", 1, 0, 97155u, 109564u, 60423u, 113699u, 17948u},
    {"barnes", 2, 0, 97383u, 105163u, 62436u, 113313u, 31628u},
    {"barnes", 3, 0, 94444u, 101677u, 57960u, 112931u, 46345u},
    {"barnes", 4, 0, 91601u, 98316u, 52848u, 112551u, 55719u},
    {"barnes", 1, 1, 98974u, 109564u, 60647u, 113699u, 17948u},
    {"barnes", 1, 2, 98932u, 109564u, 60209u, 113699u, 17948u},
    {"barnes", 2, 1, 97381u, 105163u, 62269u, 113313u, 31628u},
    {"barnes", 2, 2, 97378u, 105163u, 62003u, 113313u, 31628u},
    {"dsmc", 1, 0, 112750u, 117521u, 104688u, 134773u, 18886u},
    {"dsmc", 2, 0, 111721u, 117082u, 108981u, 132016u, 16757u},
    {"dsmc", 3, 0, 111306u, 116795u, 109702u, 129399u, 14970u},
    {"dsmc", 4, 0, 110651u, 116508u, 109062u, 126799u, 13169u},
    {"dsmc", 1, 1, 112355u, 117521u, 104533u, 134773u, 18886u},
    {"dsmc", 1, 2, 111767u, 117521u, 103263u, 134773u, 18886u},
    {"dsmc", 2, 1, 111889u, 117082u, 108732u, 132016u, 16757u},
    {"dsmc", 2, 2, 112095u, 117082u, 108139u, 132016u, 16757u},
    {"moldyn", 1, 0, 308697u, 338803u, 271513u, 353726u, 41708u},
    {"moldyn", 2, 0, 315504u, 331429u, 274323u, 347362u, 57239u},
    {"moldyn", 3, 0, 309988u, 325024u, 262877u, 344479u, 70060u},
    {"moldyn", 4, 0, 304472u, 318619u, 252046u, 343110u, 83496u},
    {"moldyn", 1, 1, 315651u, 338803u, 273946u, 353726u, 41708u},
    {"moldyn", 1, 2, 315651u, 338803u, 266650u, 353726u, 41708u},
    {"moldyn", 2, 1, 315220u, 331429u, 274827u, 347362u, 57239u},
    {"moldyn", 2, 2, 314918u, 331429u, 273021u, 347362u, 57239u},
    {"unstructured", 1, 0, 68145u, 79259u, 48007u, 80018u, 3971u},
    {"unstructured", 2, 0, 72427u, 78767u, 65977u, 79430u, 5341u},
    {"unstructured", 3, 0, 71544u, 78275u, 68758u, 79057u, 6503u},
    {"unstructured", 4, 0, 70780u, 77783u, 67982u, 78795u, 7822u},
    {"unstructured", 1, 1, 71708u, 79259u, 56530u, 80018u, 3971u},
    {"unstructured", 1, 2, 71874u, 79259u, 57422u, 80018u, 3971u},
    {"unstructured", 2, 1, 73120u, 78767u, 68547u, 79430u, 5341u},
    {"unstructured", 2, 2, 73297u, 78767u, 68889u, 79430u, 5341u},
};

inline constexpr std::size_t num_golden_accuracy_rows =
    sizeof(golden_accuracy_rows) / sizeof(golden_accuracy_rows[0]);

} // namespace cosmos::fixtures

#endif // COSMOS_TESTS_FIXTURES_GOLDEN_ACCURACY_HH
