/**
 * @file
 * Unit tests of the discrete-event engine: ordering, tie-breaking,
 * time monotonicity, nested scheduling, and bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace cosmos::sim
{
namespace
{

TEST(EventQueue, StartsAtTimeZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&]() { order.push_back(3); });
    eq.scheduleAt(10, [&]() { order.push_back(1); });
    eq.scheduleAt(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(17, [&]() { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.scheduleAt(100, [&]() {
        eq.scheduleAfter(5, [&]() { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 105u);
}

TEST(EventQueue, NestedSchedulingChains)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, RunHonoursEventLimit)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(i, [&]() { ++fired; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.pending(), 6u);
    eq.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, ExecutedCountsAllEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(i, []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(50, []() {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(10, []() {}), "past");
}

TEST(EventQueue, SameTickEventScheduledDuringExecutionRuns)
{
    // An event scheduled for "now" from inside a handler must still
    // fire (after the current event).
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(5, [&]() {
        order.push_back(1);
        eq.scheduleAt(5, [&]() { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ReserveDoesNotAffectSemantics)
{
    EventQueue eq;
    eq.reserve(1000);
    EXPECT_EQ(eq.pending(), 0u);
    std::vector<int> order;
    for (int i = 99; i >= 0; --i)
        eq.scheduleAt(static_cast<Tick>(i),
                      [&order, i]() { order.push_back(i); });
    EXPECT_EQ(eq.pending(), 100u);
    EXPECT_EQ(eq.run(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlerMaySchedulePastItsOwnPop)
{
    // runOne() moves the callback out before popping, so a handler
    // that schedules (possibly reallocating the heap) and then keeps
    // using its own captures must be safe.
    EventQueue eq;
    std::vector<int> order;
    const std::vector<int> payload = {1, 2, 3};
    eq.scheduleAt(1, [&eq, &order, payload]() {
        for (int i = 0; i < 64; ++i)
            eq.scheduleAfter(static_cast<Tick>(i + 1), []() {});
        // Captured state must still be intact after the growth above.
        for (int v : payload)
            order.push_back(v);
    });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(order, payload);
    EXPECT_EQ(eq.pending(), 64u);
    eq.run();
    EXPECT_EQ(eq.executed(), 65u);
}

} // namespace
} // namespace cosmos::sim
