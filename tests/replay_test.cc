/**
 * @file
 * Tests of the parallel replay subsystem: the work-stealing
 * ThreadPool, the block-sharding invariant, the deterministic stats
 * merges, and -- the core guarantee -- that sharded parallel replay
 * is bit-identical to serial replay for every workload and depth.
 *
 * This suite is also the ThreadSanitizer target (scripts/ci.sh builds
 * it with -DCOSMOS_TSAN=ON), so the concurrency tests double as race
 * detectors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cosmos/predictor_bank.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"
#include "replay/sharding.hh"
#include "replay/sweep.hh"
#include "replay/thread_pool.hh"

namespace cosmos
{
namespace
{

using replay::ReplayJob;
using replay::ReplayResult;
using replay::SweepEngine;
using replay::ThreadPool;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] {
            count.fetch_add(1);
            done.fetch_add(1);
        });
    while (done.load() < 100)
        std::this_thread::yield();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerStatsSumToTasksSubmitted)
{
    constexpr int n = 500;
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < n; ++i)
        pool.submit([&] { done.fetch_add(1); });
    while (done.load() < n)
        std::this_thread::yield();

    EXPECT_EQ(pool.tasksSubmitted(), static_cast<std::uint64_t>(n));
    const auto stats = pool.workerStats();
    // One slot per worker plus the external-helper slot.
    ASSERT_EQ(stats.size(), pool.size() + 1);
    std::uint64_t run = 0;
    for (const auto &w : stats)
        run += w.tasksRun;
    EXPECT_EQ(run, pool.tasksSubmitted());
}

TEST(ThreadPool, ParallelForTasksAllAccountedAcrossSlots)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(200);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    // A drain task that finds no index left can still be queued when
    // parallelFor returns; workers consume such stragglers promptly,
    // so the counters converge on the submit count.
    const std::uint64_t submitted = pool.tasksSubmitted();
    auto sumRun = [&pool] {
        std::uint64_t run = 0;
        for (const auto &w : pool.workerStats())
            run += w.tasksRun;
        return run;
    };
    while (sumRun() < submitted)
        std::this_thread::yield();
    EXPECT_EQ(sumRun(), submitted);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(50,
                                  [](std::size_t i) {
                                      if (i == 17)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, AsyncReturnsValueAndException)
{
    ThreadPool pool(2);
    auto ok = pool.async([] { return 41 + 1; });
    EXPECT_EQ(ok.get(), 42);
    auto bad = pool.async(
        []() -> int { throw std::logic_error("nope"); });
    EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> leaves{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(8,
                         [&](std::size_t) { leaves.fetch_add(1); });
    });
    EXPECT_EQ(leaves.load(), 32);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironment)
{
    setenv("COSMOS_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    setenv("COSMOS_THREADS", "not-a-number", 1);
    setWarningsEnabled(false);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    setWarningsEnabled(true);
    unsetenv("COSMOS_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

// ------------------------------------------------------------ sharding

TEST(Sharding, BlocksNeverSplitAcrossShardsAndOrderIsKept)
{
    const auto &trace = harness::cachedTrace("micro_rmw", 8);
    const auto shards = replay::shardByBlock(trace, 4);
    ASSERT_EQ(shards.size(), 4u);

    std::size_t total = 0;
    std::set<Addr> seen_elsewhere;
    for (unsigned s = 0; s < shards.size(); ++s) {
        std::set<Addr> blocks_here;
        Tick last = 0;
        for (const auto *r : shards[s].records) {
            EXPECT_EQ(replay::shardOfBlock(r->block, 4), s);
            EXPECT_GE(r->when, last); // trace order preserved
            last = r->when;
            blocks_here.insert(r->block);
        }
        for (Addr b : blocks_here)
            EXPECT_FALSE(seen_elsewhere.count(b));
        seen_elsewhere.insert(blocks_here.begin(), blocks_here.end());
        total += shards[s].records.size();
    }
    EXPECT_EQ(total, trace.records.size());
}

TEST(Sharding, ShardOfBlockIsStable)
{
    for (Addr b = 0; b < 4096; b += 64)
        for (unsigned k : {1u, 2u, 7u})
            EXPECT_EQ(replay::shardOfBlock(b, k),
                      replay::shardOfBlock(b, k));
    EXPECT_EQ(replay::shardOfBlock(0x1234, 1), 0u);
}

// -------------------------------------------------------- stats merges

TEST(StatsMerge, AccuracyTrackerMergeEqualsInterleavedRecording)
{
    pred::AccuracyTracker whole, left, right;
    for (int i = 0; i < 40; ++i) {
        const auto role = i % 2 == 0 ? proto::Role::cache
                                     : proto::Role::directory;
        const bool hit = i % 3 == 0;
        const bool cold = i % 5 == 0;
        whole.record(role, i % 7, hit, !cold);
        (i % 2 == 0 ? left : right).record(role, i % 7, hit, !cold);
    }
    left.merge(right);
    EXPECT_EQ(left.overall().hits, whole.overall().hits);
    EXPECT_EQ(left.overall().total, whole.overall().total);
    EXPECT_EQ(left.cacheSide().hits, whole.cacheSide().hits);
    EXPECT_EQ(left.directorySide().total,
              whole.directorySide().total);
    EXPECT_EQ(left.coldMisses(), whole.coldMisses());
    ASSERT_EQ(left.byIteration().size(), whole.byIteration().size());
    for (std::size_t i = 0; i < whole.byIteration().size(); ++i) {
        EXPECT_EQ(left.byIteration()[i].hits,
                  whole.byIteration()[i].hits);
        EXPECT_EQ(left.byIteration()[i].total,
                  whole.byIteration()[i].total);
    }
}

TEST(StatsMerge, ArcStatsMergeSumsPerArcCounts)
{
    using proto::MsgType;
    pred::ArcStats whole, left, right;
    const MsgType a = MsgType::get_ro_request;
    const MsgType b = MsgType::get_rw_request;
    for (int i = 0; i < 30; ++i) {
        const MsgType from = i % 2 == 0 ? a : b;
        const bool hit = i % 4 == 0;
        whole.record(from, b, hit);
        (i % 3 == 0 ? left : right).record(from, b, hit);
    }
    left.merge(right);
    EXPECT_EQ(left.totalRefs(), whole.totalRefs());
    for (MsgType from : {a, b}) {
        EXPECT_EQ(left.arc(from, b).refs, whole.arc(from, b).refs);
        EXPECT_EQ(left.arc(from, b).hits, whole.arc(from, b).hits);
    }
}

TEST(StatsMerge, MemoryStatsMergeSumsEntries)
{
    pred::MemoryStats a, b;
    a.depth = b.depth = 3;
    a.mhrEntries = 10;
    a.phtEntries = 25;
    b.mhrEntries = 4;
    b.phtEntries = 6;
    a.merge(b);
    EXPECT_EQ(a.mhrEntries, 14u);
    EXPECT_EQ(a.phtEntries, 31u);
    EXPECT_EQ(a.depth, 3u);
}

TEST(StatsMergeDeathTest, MemoryStatsMergeRejectsDepthMismatch)
{
    pred::MemoryStats a, b;
    a.depth = 1;
    b.depth = 2;
    EXPECT_DEATH(a.merge(b), "different depths");
}

// --------------------------------------------------------- determinism

/** Serial reference replay through one bank. */
ReplayResult
serialReplay(const trace::Trace &t, const pred::CosmosConfig &cfg)
{
    pred::PredictorBank bank(t.numNodes, cfg);
    bank.replay(t);
    ReplayResult r;
    r.accuracy = bank.accuracy();
    r.cacheArcs = bank.arcs(proto::Role::cache);
    r.directoryArcs = bank.arcs(proto::Role::directory);
    r.memory = bank.memoryStats();
    return r;
}

void
expectBitIdentical(const ReplayResult &a, const ReplayResult &b)
{
    EXPECT_EQ(a.accuracy.overall().hits, b.accuracy.overall().hits);
    EXPECT_EQ(a.accuracy.overall().total, b.accuracy.overall().total);
    EXPECT_EQ(a.accuracy.cacheSide().hits,
              b.accuracy.cacheSide().hits);
    EXPECT_EQ(a.accuracy.cacheSide().total,
              b.accuracy.cacheSide().total);
    EXPECT_EQ(a.accuracy.directorySide().hits,
              b.accuracy.directorySide().hits);
    EXPECT_EQ(a.accuracy.directorySide().total,
              b.accuracy.directorySide().total);
    EXPECT_EQ(a.accuracy.coldMisses(), b.accuracy.coldMisses());
    ASSERT_EQ(a.accuracy.byIteration().size(),
              b.accuracy.byIteration().size());
    for (std::size_t i = 0; i < a.accuracy.byIteration().size(); ++i) {
        EXPECT_EQ(a.accuracy.byIteration()[i].hits,
                  b.accuracy.byIteration()[i].hits);
        EXPECT_EQ(a.accuracy.byIteration()[i].total,
                  b.accuracy.byIteration()[i].total);
    }
    for (const auto *side : {"cache", "dir"}) {
        const auto &aa = side[0] == 'c' ? a.cacheArcs : a.directoryArcs;
        const auto &bb = side[0] == 'c' ? b.cacheArcs : b.directoryArcs;
        EXPECT_EQ(aa.totalRefs(), bb.totalRefs());
        const auto arcs_a = aa.dominantArcs();
        const auto arcs_b = bb.dominantArcs();
        ASSERT_EQ(arcs_a.size(), arcs_b.size());
        for (std::size_t i = 0; i < arcs_a.size(); ++i) {
            EXPECT_EQ(arcs_a[i].from, arcs_b[i].from);
            EXPECT_EQ(arcs_a[i].to, arcs_b[i].to);
            EXPECT_EQ(arcs_a[i].refs, arcs_b[i].refs);
            EXPECT_EQ(arcs_a[i].hits, arcs_b[i].hits);
        }
    }
    EXPECT_EQ(a.memory.depth, b.memory.depth);
    EXPECT_EQ(a.memory.mhrEntries, b.memory.mhrEntries);
    EXPECT_EQ(a.memory.phtEntries, b.memory.phtEntries);
}

TEST(Determinism, ShardedReplayMatchesSerialForAllAppsAndDepths)
{
    // Short runs keep the suite fast; the invariant is iteration-
    // count independent (prediction state is purely per-block).
    ThreadPool pool(4);
    SweepEngine engine(pool);
    for (const std::string app :
         {"appbt", "barnes", "dsmc", "moldyn", "unstructured"}) {
        const auto &trace = harness::cachedTrace(app, 6);
        for (unsigned depth = 1; depth <= 4; ++depth) {
            const pred::CosmosConfig cfg{depth, 0};
            const auto serial = serialReplay(trace, cfg);
            ReplayJob job;
            job.app = app;
            job.config = cfg;
            job.shards = 5;
            // Sharding down-scales on tiny traces; force >1 shard by
            // replaying through explicit shard counts.
            for (unsigned shards : {2u, 5u}) {
                const auto parts =
                    replay::shardByBlock(trace, shards);
                std::vector<ReplayResult> partial(parts.size());
                pool.parallelFor(parts.size(), [&](std::size_t s) {
                    pred::PredictorBank bank(trace.numNodes, cfg);
                    bank.replay(parts[s].records);
                    ReplayResult r;
                    r.accuracy = bank.accuracy();
                    r.cacheArcs = bank.arcs(proto::Role::cache);
                    r.directoryArcs =
                        bank.arcs(proto::Role::directory);
                    r.memory = bank.memoryStats();
                    partial[s] = r;
                });
                ReplayResult merged = partial.front();
                for (std::size_t s = 1; s < partial.size(); ++s)
                    merged.merge(partial[s]);
                expectBitIdentical(serial, merged);
            }
        }
    }
}

TEST(Determinism, SweepEngineMatchesSerialWithFiltersAndPrefixes)
{
    ThreadPool pool(3);
    SweepEngine engine(pool);
    const auto &trace = harness::cachedTrace("dsmc", 8);

    for (const auto &cfg :
         {pred::CosmosConfig{1, 1}, pred::CosmosConfig{2, 2}}) {
        pred::PredictorBank bank(trace.numNodes, cfg);
        bank.replay(trace, 4);
        ReplayJob job;
        job.config = cfg;
        job.maxIteration = 4;
        job.shards = 4;
        const auto parallel = engine.replayTrace(trace, job);
        // Force actual sharding past the size heuristic by checking
        // counts (tiny traces may collapse to one shard; the counts
        // must match either way).
        EXPECT_EQ(parallel.accuracy.overall().hits,
                  bank.accuracy().overall().hits);
        EXPECT_EQ(parallel.accuracy.overall().total,
                  bank.accuracy().overall().total);
        EXPECT_EQ(parallel.memory.phtEntries,
                  bank.memoryStats().phtEntries);
    }
}

// ----------------------------------------------------- engine plumbing

TEST(SweepEngine, RunReturnsResultsInJobOrder)
{
    harness::clearTraceCache();
    std::vector<ReplayJob> jobs;
    for (unsigned depth = 1; depth <= 4; ++depth) {
        ReplayJob job;
        job.app = "micro_rmw";
        job.iterations = 8;
        job.config = pred::CosmosConfig{depth, 0};
        jobs.push_back(job);
    }
    const auto results = harness::runSweep(jobs, {.threads = 4});
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &trace = harness::cachedTrace("micro_rmw", 8);
        pred::PredictorBank bank(trace.numNodes, jobs[i].config);
        bank.replay(trace);
        EXPECT_EQ(results[i].accuracy.overall().hits,
                  bank.accuracy().overall().hits);
        EXPECT_EQ(results[i].memory.depth, jobs[i].config.depth);
    }
    harness::clearTraceCache();
}

TEST(SweepEngine, ConcurrentFetchesOfOneKeySimulateOnce)
{
    harness::clearTraceCache();
    ThreadPool pool(8);
    std::vector<const trace::Trace *> seen(16);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        seen[i] = &harness::cachedTrace("micro_rmw", 6);
    });
    for (const auto *t : seen)
        EXPECT_EQ(t, seen[0]); // one entry, simulated once
    harness::clearTraceCache();
}

} // namespace
} // namespace cosmos
