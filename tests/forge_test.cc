/**
 * @file
 * Unit tests of the traffic forge: synthetic-stream determinism,
 * text-trace round-tripping (file, directory, and gzip layouts),
 * malformed-input diagnostics, and ground-truth scoring against the
 * sharing-pattern census.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "forge/score.hh"
#include "forge/synth.hh"
#include "forge/text_trace.hh"
#include "harness/traffic.hh"

namespace cosmos::forge
{
namespace
{

ForgeParams
smallParams()
{
    ForgeParams p;
    p.numProcs = 4;
    p.blocks = 16;
    p.migratory = 0.3;
    p.falseSharing = 0.1;
    p.privateFrac = 0.2;
    p.readOnly = 0.2;
    return p;
}

std::vector<Access>
pull(TrafficSource &src, std::size_t total, std::size_t chunk)
{
    std::vector<Access> all, buf;
    while (all.size() < total) {
        const std::size_t got =
            src.next(buf, std::min(chunk, total - all.size()));
        if (got == 0)
            break;
        all.insert(all.end(), buf.begin(), buf.end());
    }
    return all;
}

std::string
tempDir(const std::string &leaf)
{
    const std::string dir = ::testing::TempDir() + "/" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(Synth, StreamIsDeterministicAcrossChunkSizes)
{
    // The stream is a pure function of (seed, params): the consumer's
    // chunking must not be observable.
    SynthSource a(smallParams());
    SynthSource b(smallParams());
    const auto coarse = pull(a, 6000, 1000);
    const auto fine = pull(b, 6000, 17);
    ASSERT_EQ(coarse.size(), 6000u);
    EXPECT_EQ(coarse, fine);
}

TEST(Synth, SeedSelectsTheStream)
{
    ForgeParams p = smallParams();
    SynthSource a(p);
    p.seed ^= 1;
    SynthSource c(p);
    EXPECT_NE(pull(a, 2000, 256), pull(c, 2000, 256));
}

TEST(Synth, GroundTruthLabelsCoverEveryBlock)
{
    const ForgeParams p = smallParams();
    SynthSource src(p);
    ASSERT_EQ(src.labels().size(), p.blocks);
    unsigned counts[num_block_classes] = {};
    for (unsigned i = 0; i < p.blocks; ++i) {
        EXPECT_EQ(src.label(i), src.labels()[i]);
        EXPECT_EQ(src.labelOfAddr(src.blockAddr(i)), src.label(i));
        ++counts[static_cast<unsigned>(src.label(i))];
    }
    // Every class got a share of this mix.
    for (unsigned c = 0; c < num_block_classes; ++c)
        EXPECT_GT(counts[c], 0u) << toString(BlockClass(c));
    // Every emitted address maps back to a labeled block.
    SynthSource probe(p);
    for (const Access &acc : pull(probe, 1000, 128)) {
        EXPECT_LT(acc.proc, p.numProcs);
        probe.labelOfAddr(acc.addr); // panics on a foreign address
    }
}

TEST(TextTrace, RoundTripsByteIdentically)
{
    const std::string dir = tempDir("cosmos_forge_roundtrip");
    const std::string path = dir + "/t.trace";

    SynthSource src(smallParams());
    EXPECT_EQ(writeTextTrace(path, src, 5000), 5000u);

    // Same params again: the file is byte-identical.
    const std::string path2 = dir + "/t2.trace";
    SynthSource src2(smallParams());
    writeTextTrace(path2, src2, 5000);
    std::ifstream f1(path, std::ios::binary), f2(path2,
                                                 std::ios::binary);
    std::stringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_EQ(b1.str(), b2.str());

    // And the reader reproduces the generator's stream exactly.
    TextTraceReader reader(path, smallParams().numProcs);
    EXPECT_TRUE(reader.bounded());
    const auto back = pull(reader, 6000, 512);
    SynthSource ref(smallParams());
    EXPECT_EQ(back, pull(ref, 5000, 512));
    EXPECT_FALSE(reader.failed());
    EXPECT_EQ(reader.accessesRead(), 5000u);
    EXPECT_GT(reader.bytesRead(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(TextTrace, MalformedLineReportsFileAndLine)
{
    const std::string dir = tempDir("cosmos_forge_badline");
    const std::string path = dir + "/bad.trace";
    std::ofstream(path) << "# comment\n"
                        << "0 r 0x40\n"
                        << "1 w 0x80\n"
                        << "2 q 0xc0\n";
    TextTraceReader reader(path, 4);
    std::vector<Access> buf;
    std::size_t got = 0;
    while (const std::size_t n = reader.next(buf, 64))
        got += n;
    EXPECT_EQ(got, 2u); // the two good lines before the bad one
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("bad.trace:4:"), std::string::npos)
        << reader.error();
    std::filesystem::remove_all(dir);
}

TEST(TextTrace, OutOfRangeProcessorIsMalformed)
{
    const std::string dir = tempDir("cosmos_forge_badproc");
    const std::string path = dir + "/p.trace";
    std::ofstream(path) << "7 r 0x40\n";
    TextTraceReader reader(path, 4);
    std::vector<Access> buf;
    EXPECT_EQ(reader.next(buf, 64), 0u);
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("processor"), std::string::npos)
        << reader.error();
    std::filesystem::remove_all(dir);
}

TEST(TextTrace, DirectoryLayoutIngestsFilesInNameOrder)
{
    const std::string dir = tempDir("cosmos_forge_dir");
    std::ofstream(dir + "/b.trace") << "1 w 0x80\n";
    std::ofstream(dir + "/a.trace") << "0 r 0x40\n";
    TextTraceReader reader(dir, 4);
    const auto all = pull(reader, 10, 8);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], (Access{0, false, 0x40}));
    EXPECT_EQ(all[1], (Access{1, true, 0x80}));
    std::filesystem::remove_all(dir);
}

TEST(TextTrace, StemSuffixSuppliesTheProcessorColumn)
{
    const std::string dir = tempDir("cosmos_forge_stem");
    // `app_2.data`: two-field lines default to processor 2.
    std::ofstream(dir + "/app_2.data") << "r 0x40\nw 0x80\n";
    TextTraceReader reader(dir, 4);
    const auto all = pull(reader, 10, 8);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], (Access{2, false, 0x40}));
    EXPECT_EQ(all[1], (Access{2, true, 0x80}));
    std::filesystem::remove_all(dir);
}

TEST(TextTrace, GzipRoundTripsWhenSupported)
{
    if (!gzipSupported())
        GTEST_SKIP() << "built without zlib";
    const std::string dir = tempDir("cosmos_forge_gz");
    const std::string path = dir + "/t.trace.gz";
    SynthSource src(smallParams());
    EXPECT_EQ(writeTextTrace(path, src, 3000), 3000u);
    TextTraceReader reader(path, smallParams().numProcs);
    SynthSource ref(smallParams());
    EXPECT_EQ(pull(reader, 4000, 256), pull(ref, 3000, 256));
    EXPECT_FALSE(reader.failed());
    std::filesystem::remove_all(dir);
}

TEST(ForgeParams, ParsesSpecsAndRejectsGarbage)
{
    ForgeParams p;
    std::string err;
    ASSERT_TRUE(ForgeParams::parse(
        "migratory=0.4,false=0.05,private=0.1,readonly=0.1,"
        "fanout=5,phase=3,blocks=128,procs=8,seed=0x2a",
        p, &err))
        << err;
    EXPECT_DOUBLE_EQ(p.migratory, 0.4);
    EXPECT_DOUBLE_EQ(p.falseSharing, 0.05);
    EXPECT_EQ(p.fanout, 5u);
    EXPECT_EQ(p.phase, 3u);
    EXPECT_EQ(p.blocks, 128u);
    EXPECT_EQ(p.numProcs, 8);
    EXPECT_EQ(p.seed, 0x2aull);
    EXPECT_DOUBLE_EQ(p.producerConsumer(), 1.0 - 0.4 - 0.05 - 0.2);

    EXPECT_FALSE(ForgeParams::parse("bogus=1", p, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(ForgeParams::parse("migratory=oops", p, &err));
    EXPECT_FALSE(ForgeParams::parse("migratory", p, &err));
}

TEST(Score, CensusAgreesWithGroundTruthOnStaticRoles)
{
    // With static role assignment (phase=0) every class the census
    // can see must classify as its expected pattern: a census with a
    // known answer (satellite of the paper's §6.1 conjecture).
    // The canonical mix (bench_forge's static cell): enough rounds
    // that every shared block crosses the census message threshold.
    ForgeParams p;
    p.numProcs = 8;
    p.blocks = 64;
    p.migratory = 0.3;
    p.falseSharing = 0.1;
    p.privateFrac = 0.2;
    p.readOnly = 0.2;
    SynthSource src(p);

    harness::TrafficConfig cfg;
    cfg.machine.numNodes = p.numProcs;
    cfg.machine.blockBytes = p.blockBytes;
    cfg.machine.pageBytes = p.pageBytes;
    cfg.opsPerIteration = 2048;
    cfg.maxIterations = 32;
    const auto result = harness::runTraffic(cfg, src);
    ASSERT_FALSE(result.trace.records.empty());

    const ForgeScore score =
        scoreByClass(result.trace, src, pred::CosmosConfig{2, 0});
    std::uint64_t records = 0, blocks = 0, counted = 0;
    for (const ClassScore &c : score.classes) {
        EXPECT_EQ(c.censusAgree, c.censusSeen)
            << toString(c.cls) << " blocks misclassified";
        records += c.records;
        blocks += c.blocks;
        counted += c.accuracy.overall().total;
    }
    // The class slices partition the whole trace and block space,
    // and the merged total equals the per-class counts exactly.
    EXPECT_EQ(records, result.trace.records.size());
    EXPECT_EQ(blocks, p.blocks);
    EXPECT_EQ(score.total.overall().total, counted);
    EXPECT_LE(counted, records); // not every record is a lookup
    // Heavily-shared classes must actually be predictable.
    const auto &mig = score.classes[static_cast<unsigned>(
        BlockClass::migratory)];
    EXPECT_GT(mig.accuracy.overall().percent(), 50.0);
}

TEST(Traffic, RunIsDeterministicForFixedParams)
{
    ForgeParams p = smallParams();
    harness::TrafficConfig cfg;
    cfg.machine.numNodes = p.numProcs;
    cfg.machine.blockBytes = p.blockBytes;
    cfg.machine.pageBytes = p.pageBytes;
    cfg.opsPerIteration = 512;
    cfg.maxIterations = 8;
    SynthSource a(p);
    SynthSource b(p);
    const auto r1 = harness::runTraffic(cfg, a);
    const auto r2 = harness::runTraffic(cfg, b);
    EXPECT_EQ(r1.trace.records, r2.trace.records);
    EXPECT_EQ(r1.finalTime, r2.finalTime);
}

} // namespace
} // namespace cosmos::forge
