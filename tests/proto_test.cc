/**
 * @file
 * Unit tests of the Stache-like directory protocol: message
 * vocabulary, the Figure 1 flow, half-migratory vs downgrade owner
 * policies, upgrade races, and invariant checking.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "proto/invariants.hh"
#include "proto/machine.hh"
#include "proto/messages.hh"

namespace cosmos::proto
{
namespace
{

MachineConfig
smallMachine(NodeId nodes = 4)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    return cfg;
}

/** Collects every remote message, for signature assertions. */
class Collector : public MsgObserver
{
  public:
    struct Seen
    {
        Msg msg;
        Role role;
    };
    std::vector<Seen> seen;

    void
    onMessage(const Msg &m, Role role, int, Tick) override
    {
        seen.push_back({m, role});
    }

    std::vector<MsgType>
    typesAt(Role role, NodeId node) const
    {
        std::vector<MsgType> out;
        for (const auto &s : seen)
            if (s.role == role && s.msg.dst == node)
                out.push_back(s.msg.type);
        return out;
    }
};

/** Block homed at node @p home in a machine with @p nodes nodes. */
Addr
blockHomedAt(const Machine &m, NodeId home)
{
    const auto &amap = m.addrMap();
    return static_cast<Addr>(home) * amap.pageBytes();
}

/** Run a blocking access to completion. */
void
access(Machine &m, NodeId node, Addr a, bool write)
{
    bool done = false;
    m.cache(node).access(a, write, [&]() { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
}

TEST(Messages, ReceiverRoleSplitsRequestsAndResponses)
{
    EXPECT_EQ(receiverRole(MsgType::get_ro_request), Role::directory);
    EXPECT_EQ(receiverRole(MsgType::get_rw_request), Role::directory);
    EXPECT_EQ(receiverRole(MsgType::upgrade_request), Role::directory);
    EXPECT_EQ(receiverRole(MsgType::inval_ro_response), Role::directory);
    EXPECT_EQ(receiverRole(MsgType::inval_rw_response), Role::directory);
    EXPECT_EQ(receiverRole(MsgType::downgrade_response),
              Role::directory);
    EXPECT_EQ(receiverRole(MsgType::fwd_ack), Role::directory);
    EXPECT_FALSE(isRequest(MsgType::fwd_ack));

    EXPECT_EQ(receiverRole(MsgType::get_ro_response), Role::cache);
    EXPECT_EQ(receiverRole(MsgType::get_rw_response), Role::cache);
    EXPECT_EQ(receiverRole(MsgType::upgrade_response), Role::cache);
    EXPECT_EQ(receiverRole(MsgType::inval_ro_request), Role::cache);
    EXPECT_EQ(receiverRole(MsgType::inval_rw_request), Role::cache);
    EXPECT_EQ(receiverRole(MsgType::downgrade_request), Role::cache);
}

TEST(Messages, NamesRoundTrip)
{
    for (unsigned i = 0; i < num_msg_types; ++i) {
        const auto t = static_cast<MsgType>(i);
        EXPECT_EQ(msgTypeFromString(toString(t)), t);
    }
}

TEST(Messages, RequestPredicate)
{
    EXPECT_TRUE(isRequest(MsgType::get_ro_request));
    EXPECT_TRUE(isRequest(MsgType::inval_rw_request));
    EXPECT_FALSE(isRequest(MsgType::get_ro_response));
    EXPECT_FALSE(isRequest(MsgType::downgrade_response));
}

TEST(Protocol, ColdReadMiss)
{
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    access(m, 1, block, false);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_only);
    EXPECT_EQ(m.directory(0).state(block), DirState::shared);
    EXPECT_EQ(m.directory(0).sharers(block), 1u << 1);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, ColdWriteMiss)
{
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    EXPECT_EQ(m.cache(2).state(block), LineState::read_write);
    EXPECT_EQ(m.directory(0).state(block), DirState::exclusive);
    EXPECT_EQ(m.directory(0).owner(block), 2);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, Figure1StoreToRemoteExclusive)
{
    // Figure 1: processor two holds the block exclusive; processor
    // one stores to it. Four remote messages flow:
    //   get_rw_request (P1 -> dir), inval_rw_request (dir -> P2),
    //   inval_rw_response (P2 -> dir), get_rw_response (dir -> P1).
    Machine m(smallMachine());
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);

    access(m, 2, block, true);
    col.seen.clear();

    access(m, 1, block, true);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_write);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);

    ASSERT_EQ(col.seen.size(), 4u);
    EXPECT_EQ(col.seen[0].msg.type, MsgType::get_rw_request);
    EXPECT_EQ(col.seen[1].msg.type, MsgType::inval_rw_request);
    EXPECT_EQ(col.seen[2].msg.type, MsgType::inval_rw_response);
    EXPECT_EQ(col.seen[3].msg.type, MsgType::get_rw_response);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, HalfMigratoryInvalidatesOwnerOnRemoteRead)
{
    // §5.1: with the half-migratory optimization a read miss to an
    // exclusive block *invalidates* the former owner.
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    access(m, 1, block, false);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_only);
    EXPECT_EQ(m.directory(0).state(block), DirState::shared);
    EXPECT_EQ(m.directory(0).sharers(block), 1u << 1);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, DowngradePolicyKeepsOwnerShared)
{
    // DASH-style ablation: the former owner keeps a read-only copy.
    auto cfg = smallMachine();
    cfg.ownerReadPolicy = OwnerReadPolicy::downgrade;
    Machine m(cfg);
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    access(m, 1, block, false);
    EXPECT_EQ(m.cache(2).state(block), LineState::read_only);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_only);
    EXPECT_EQ(m.directory(0).sharers(block), (1u << 1) | (1u << 2));

    const auto at_p2 = col.typesAt(Role::cache, 2);
    ASSERT_FALSE(at_p2.empty());
    EXPECT_EQ(at_p2.back(), MsgType::downgrade_request);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, UpgradeWithNoOtherSharersIsImmediate)
{
    Machine m(smallMachine());
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 1, block, false);
    col.seen.clear();
    access(m, 1, block, true);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_write);
    ASSERT_EQ(col.seen.size(), 2u);
    EXPECT_EQ(col.seen[0].msg.type, MsgType::upgrade_request);
    EXPECT_EQ(col.seen[1].msg.type, MsgType::upgrade_response);
}

TEST(Protocol, UpgradeInvalidatesOtherSharers)
{
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    access(m, 1, block, false);
    access(m, 2, block, false);
    access(m, 3, block, false);
    access(m, 1, block, true);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_write);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.cache(3).state(block), LineState::invalid);
    EXPECT_EQ(m.directory(0).owner(block), 1);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, RacingUpgradesArePromoted)
{
    // Two sharers upgrade concurrently; the loser's shared copy is
    // invalidated before its upgrade is served, so the directory
    // promotes that upgrade to a full write fetch. Both must finish
    // and exactly one owner can remain.
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    access(m, 1, block, false);
    access(m, 2, block, false);

    int done = 0;
    m.cache(1).access(block, true, [&]() { ++done; });
    m.cache(2).access(block, true, [&]() { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(m.directory(0).state(block), DirState::exclusive);
    const NodeId owner = m.directory(0).owner(block);
    EXPECT_TRUE(owner == 1 || owner == 2);
    EXPECT_EQ(m.cache(owner).state(block), LineState::read_write);
    EXPECT_EQ(m.cache(owner == 1 ? 2 : 1).state(block),
              LineState::invalid);
    EXPECT_GT(m.directory(0).stats().upgradePromotions, 0u);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Protocol, HomeNodeAccessesAreLocalAndUntraced)
{
    // Stache's local optimization: the home node's own misses produce
    // no remote (traced) messages.
    Machine m(smallMachine());
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 0, block, false);
    access(m, 0, block, true);
    EXPECT_TRUE(col.seen.empty());
    EXPECT_EQ(m.cache(0).state(block), LineState::read_write);
}

TEST(Protocol, HomeNodeOwnerStillInvalidatedRemotely)
{
    // The home node holds the block exclusive; a remote reader causes
    // a *local* invalidation at the home but remote messages only for
    // the requester.
    Machine m(smallMachine());
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 0, block, true);
    col.seen.clear();
    access(m, 3, block, false);
    EXPECT_EQ(m.cache(0).state(block), LineState::invalid);
    EXPECT_EQ(m.cache(3).state(block), LineState::read_only);
    // Remote messages: get_ro_request (3 -> dir0), get_ro_response.
    ASSERT_EQ(col.seen.size(), 2u);
    EXPECT_EQ(col.seen[0].msg.type, MsgType::get_ro_request);
    EXPECT_EQ(col.seen[1].msg.type, MsgType::get_ro_response);
}

TEST(Protocol, QueuedRequestsServeInArrivalOrder)
{
    // Many concurrent write misses to one block serialize; everyone
    // completes and the final state is coherent.
    Machine m(smallMachine(8));
    const Addr block = blockHomedAt(m, 0);
    int done = 0;
    for (NodeId n = 1; n < 8; ++n)
        m.cache(n).access(block, true, [&]() { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 7);
    EXPECT_EQ(m.directory(0).state(block), DirState::exclusive);
    EXPECT_TRUE(checkCoherence(m).empty());
    EXPECT_GT(m.directory(0).stats().queued, 0u);
}

TEST(Protocol, ProducerConsumerDirectorySignature)
{
    // §3.1 / Figure 2: consumer read, producer write steady state.
    // With half-migratory Stache the directory's incoming signature
    // for the block cycles through:
    //   get_rw_request(P), inval_ro_response(C),
    //   get_ro_request(C), inval_rw_response(P).
    Machine m(smallMachine());
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 3);
    const NodeId producer = 1, consumer = 2;

    for (int round = 0; round < 4; ++round) {
        access(m, producer, block, true);
        access(m, consumer, block, false);
    }
    auto dir_types = col.typesAt(Role::directory, 3);
    // Skip the cold first round (2 messages: get_rw_req; none else)
    // and check a steady-state cycle.
    ASSERT_GE(dir_types.size(), 10u);
    const std::vector<MsgType> cycle = {
        MsgType::get_rw_request, MsgType::inval_ro_response,
        MsgType::get_ro_request, MsgType::inval_rw_response};
    // Find the cycle start in the tail.
    const std::size_t base = dir_types.size() - 8;
    std::size_t offset = 0;
    while (offset < 4 && dir_types[base + offset] != cycle[0])
        ++offset;
    ASSERT_LT(offset, 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(dir_types[base + offset + i], cycle[i])
            << "position " << i;
    }
}

TEST(Invariants, DetectNothingOnFreshMachine)
{
    Machine m(smallMachine());
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Invariants, DetectsAnInjectedDesync)
{
    // Hand a cache an exclusive copy behind the directory's back: the
    // checker must notice the cached-but-unknown block.
    Machine m(smallMachine());
    const Addr block = blockHomedAt(m, 0);
    m.cache(2).access(block, true, []() {});
    Msg forged;
    forged.type = MsgType::get_rw_response;
    forged.src = 0;
    forged.dst = 2;
    forged.block = block;
    m.cache(2).handleMessage(forged);
    // The directory never processed anything (the real request is
    // still in flight), so the machine is incoherent.
    const auto violations = checkCoherence(m);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations.front().find("unknown to its home"),
              std::string::npos);
}

TEST(Replacement, CapacityEvictsReadOnlyVictims)
{
    auto cfg = smallMachine();
    cfg.cacheCapacityBlocks = 2;
    Machine m(cfg);
    // Three read-only fetches at node 3: the third evicts a victim.
    for (int i = 0; i < 3; ++i)
        access(m, 3, blockHomedAt(m, 0) + i * cfg.blockBytes, false);
    EXPECT_EQ(m.cache(3).stats().evictions, 1u);
    std::size_t valid = 0;
    m.cache(3).forEachLine([&](Addr, LineState st) {
        valid += st == LineState::read_only;
    });
    EXPECT_EQ(valid, 2u);
    // The dropped sharer is a superset case, not a violation.
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Replacement, StaleInvalIsAcknowledged)
{
    auto cfg = smallMachine();
    cfg.cacheCapacityBlocks = 1;
    Machine m(cfg);
    const Addr a = blockHomedAt(m, 0);
    const Addr b = a + cfg.blockBytes;
    access(m, 3, a, false); // cached
    access(m, 3, b, false); // evicts a; directory still lists node 3
    EXPECT_EQ(m.cache(3).state(a), LineState::invalid);
    EXPECT_EQ(m.directory(0).sharers(a), 1u << 3);

    // A writer invalidates sharers of a: node 3 must ack the stale
    // invalidation for the copy it no longer holds.
    access(m, 2, a, true);
    EXPECT_EQ(m.cache(3).stats().staleInvals, 1u);
    EXPECT_EQ(m.directory(0).owner(a), 2);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Replacement, WriteRefetchAfterDropIsPromoted)
{
    auto cfg = smallMachine();
    cfg.cacheCapacityBlocks = 1;
    Machine m(cfg);
    const Addr a = blockHomedAt(m, 0);
    const Addr b = a + cfg.blockBytes;
    access(m, 3, a, false);
    access(m, 3, b, false); // drops a silently
    // Node 3 now writes a: it sends get_rw_request although the
    // directory still lists it as a sharer.
    access(m, 3, a, true);
    EXPECT_EQ(m.cache(3).state(a), LineState::read_write);
    EXPECT_EQ(m.directory(0).owner(a), 3);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, WriteMissTakesThreeHops)
{
    // Figure 1's flow in forwarding mode: the former owner sends the
    // data directly to the requester (3 messages on the critical
    // path) plus a revision message home.
    auto cfg = smallMachine();
    cfg.forwarding = true;
    Machine m(cfg);
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    col.seen.clear();

    access(m, 1, block, true);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_write);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.directory(0).owner(block), 1);

    // request, recall, direct data reply, revision home, fwd_ack.
    ASSERT_EQ(col.seen.size(), 5u);
    EXPECT_EQ(col.seen[0].msg.type, MsgType::get_rw_request);
    EXPECT_EQ(col.seen[1].msg.type, MsgType::inval_rw_request);
    // The data response comes from the *owner*, not the home, and is
    // marked forwarded so the requester closes the transfer with a
    // fwd_ack to home.
    bool saw_direct = false;
    bool saw_ack = false;
    for (const auto &s : col.seen) {
        if (s.msg.type == MsgType::get_rw_response) {
            EXPECT_EQ(s.msg.src, 2);
            EXPECT_EQ(s.msg.dst, 1);
            EXPECT_TRUE(s.msg.forwarded);
            saw_direct = true;
        }
        if (s.msg.type == MsgType::fwd_ack) {
            EXPECT_EQ(s.msg.src, 1);
            EXPECT_EQ(s.msg.dst, 0);
            saw_ack = true;
        }
    }
    EXPECT_TRUE(saw_direct);
    EXPECT_TRUE(saw_ack);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, ReadMissUnderHalfMigratory)
{
    auto cfg = smallMachine();
    cfg.forwarding = true;
    Machine m(cfg);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    access(m, 1, block, false);
    // Owner invalidated (half-migratory), reader got a shared copy
    // directly from the owner.
    EXPECT_EQ(m.cache(1).state(block), LineState::read_only);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_EQ(m.directory(0).state(block), DirState::shared);
    EXPECT_EQ(m.directory(0).sharers(block), 1u << 1);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, ReadMissUnderDowngradePolicy)
{
    auto cfg = smallMachine();
    cfg.forwarding = true;
    cfg.ownerReadPolicy = OwnerReadPolicy::downgrade;
    Machine m(cfg);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    access(m, 1, block, false);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_only);
    EXPECT_EQ(m.cache(2).state(block), LineState::read_only);
    EXPECT_EQ(m.directory(0).sharers(block), (1u << 1) | (1u << 2));
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, VoluntaryRecallIsNotForwarded)
{
    auto cfg = smallMachine();
    cfg.forwarding = true;
    Machine m(cfg);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    EXPECT_TRUE(m.directory(0).voluntaryRecall(block));
    m.eventQueue().run();
    EXPECT_EQ(m.directory(0).state(block), DirState::idle);
    EXPECT_EQ(m.cache(2).state(block), LineState::invalid);
    EXPECT_TRUE(checkCoherence(m).empty());
}

/** Observer that runs a callback at every delivery (probes fire
 *  before the handler, so the callback sees pre-handling state). */
class DeliveryHook : public MsgObserver
{
  public:
    std::function<void(const Msg &)> fn;

    void
    onMessage(const Msg &m, Role, int, Tick) override
    {
        if (fn)
            fn(m);
    }
};

TEST(Forwarding, VoluntaryRecallDeniedWhileAwaitingAck)
{
    // The fwd_ack keeps the directory entry busy after the owner's
    // revision message lands, so a voluntary recall racing the ack
    // must be refused -- the entry only reopens once the requester
    // confirmed receipt of the forwarded data.
    auto cfg = smallMachine();
    cfg.forwarding = true;
    Machine m(cfg);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);

    DeliveryHook hook;
    bool sawAck = false;
    bool recallDenied = false;
    hook.fn = [&](const Msg &msg) {
        if (msg.type == MsgType::fwd_ack && !sawAck) {
            sawAck = true;
            // Observed at delivery, before the directory handles the
            // ack: the entry is still busy awaiting exactly this
            // receipt (the owner's revision already arrived -- it
            // left two hops earlier).
            recallDenied = !m.directory(0).voluntaryRecall(block);
        }
    };
    m.addObserver(&hook);
    access(m, 1, block, true);
    EXPECT_TRUE(sawAck);
    EXPECT_TRUE(recallDenied);
    EXPECT_EQ(m.cache(1).state(block), LineState::read_write);
    EXPECT_TRUE(checkCoherence(m).empty());

    // With the handshake closed the same recall goes through.
    EXPECT_TRUE(m.directory(0).voluntaryRecall(block));
    m.eventQueue().run();
    EXPECT_EQ(m.directory(0).state(block), DirState::idle);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, QueuedRequestWaitsForDelayedAck)
{
    // A request queued behind a forwarded transfer must not be
    // served until the requester's fwd_ack closes the transfer: the
    // directory drains its waiting queue from the ack handler, never
    // from the revision handler.
    auto cfg = smallMachine();
    cfg.forwarding = true;
    Machine m(cfg);
    Collector col;
    m.addObserver(&col);
    const Addr block = blockHomedAt(m, 0);
    access(m, 2, block, true);
    col.seen.clear();

    int done = 0;
    m.cache(1).access(block, true, [&]() { ++done; });
    m.cache(3).access(block, true, [&]() { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(m.cache(3).state(block), LineState::read_write);
    EXPECT_EQ(m.directory(0).owner(block), 3);

    // Both hand-offs were forwarded (2 -> 1, then 1 -> 3), so two
    // acks; node 3's recall (the second inval_rw_request into node 1)
    // must only leave home after node 1's ack arrived there.
    std::size_t firstAck = col.seen.size();
    std::size_t secondRecall = col.seen.size();
    std::size_t acks = 0;
    for (std::size_t i = 0; i < col.seen.size(); ++i) {
        const auto &s = col.seen[i];
        if (s.msg.type == MsgType::fwd_ack) {
            if (++acks == 1)
                firstAck = i;
        }
        if (s.msg.type == MsgType::inval_rw_request &&
            s.msg.dst == 1) {
            secondRecall = i;
        }
    }
    EXPECT_EQ(acks, 2u);
    EXPECT_LT(firstAck, secondRecall);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Forwarding, QueuedWritersSerializeCorrectly)
{
    auto cfg = smallMachine(8);
    cfg.forwarding = true;
    Machine m(cfg);
    const Addr block = blockHomedAt(m, 0);
    int done = 0;
    for (NodeId n = 1; n < 8; ++n)
        m.cache(n).access(block, true, [&]() { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 7);
    EXPECT_EQ(m.directory(0).state(block), DirState::exclusive);
    EXPECT_TRUE(checkCoherence(m).empty());
}

TEST(Replacement, ExclusiveLinesAreNeverDropped)
{
    auto cfg = smallMachine();
    cfg.cacheCapacityBlocks = 1;
    Machine m(cfg);
    const Addr a = blockHomedAt(m, 0);
    const Addr b = a + cfg.blockBytes;
    access(m, 3, a, true);  // exclusive: not a drop candidate
    access(m, 3, b, false); // soft-exceeds the capacity instead
    EXPECT_EQ(m.cache(3).state(a), LineState::read_write);
    EXPECT_EQ(m.cache(3).state(b), LineState::read_only);
    EXPECT_EQ(m.cache(3).stats().evictions, 0u);
}

} // namespace
} // namespace cosmos::proto
