/**
 * @file
 * Unit tests of the directed predictor baselines (§7, Figure 8):
 * migratory detection at the directory and dynamic self-invalidation
 * detection at the cache.
 */

#include <gtest/gtest.h>

#include "cosmos/directed.hh"

namespace cosmos::pred
{
namespace
{

using proto::MsgType;

MsgTuple
tup(NodeId sender, MsgType type)
{
    return MsgTuple{sender, type};
}

TEST(Migratory, DetectsReadThenUpgradeBySameNode)
{
    MigratoryPredictor p;
    EXPECT_EQ(p.migratoryBlocks(), 0u);
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, tup(1, MsgType::upgrade_request));
    EXPECT_EQ(p.migratoryBlocks(), 1u);
}

TEST(Migratory, DetectsHandOffWithInterveningInvalResponse)
{
    // The steady migratory cycle at the directory interposes the old
    // owner's inval_rw_response between read and upgrade.
    MigratoryPredictor p;
    p.observe(0, tup(2, MsgType::get_ro_request));
    p.observe(0, tup(1, MsgType::inval_rw_response));
    p.observe(0, tup(2, MsgType::upgrade_request));
    EXPECT_EQ(p.migratoryBlocks(), 1u);
}

TEST(Migratory, DoesNotMarkProducerConsumer)
{
    // Reader and writer differ: not migratory.
    MigratoryPredictor p;
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, tup(2, MsgType::get_rw_request));
    p.observe(0, tup(1, MsgType::get_ro_request));
    EXPECT_EQ(p.migratoryBlocks(), 0u);
}

TEST(Migratory, PredictsTheCanonicalCycleOnceDetected)
{
    MigratoryPredictor p;
    // Hand-offs 1 -> 2 -> 1 under half-migratory Stache.
    p.observe(0, tup(1, MsgType::get_ro_request));
    p.observe(0, tup(1, MsgType::upgrade_request));
    p.observe(0, tup(2, MsgType::get_ro_request));
    ASSERT_TRUE(p.predict(0).has_value());
    // The current owner (1) must give up its copy.
    EXPECT_EQ(*p.predict(0), tup(1, MsgType::inval_rw_response));
    p.observe(0, tup(1, MsgType::inval_rw_response));
    // The reader (2) will upgrade.
    EXPECT_EQ(*p.predict(0), tup(2, MsgType::upgrade_request));
    p.observe(0, tup(2, MsgType::upgrade_request));
    // Ping-pong guess: previous owner (1) reads next.
    EXPECT_EQ(*p.predict(0), tup(1, MsgType::get_ro_request));
}

TEST(Migratory, ObserveReportsHitsOnTwoPartyPingPong)
{
    MigratoryPredictor p;
    const Addr block = 0x40;
    // Warm up one full hand-off.
    p.observe(block, tup(1, MsgType::get_ro_request));
    p.observe(block, tup(1, MsgType::upgrade_request));
    int hits = 0, total = 0;
    NodeId reader = 2, owner = 1;
    for (int round = 0; round < 10; ++round) {
        for (const auto &t :
             {tup(reader, MsgType::get_ro_request),
              tup(owner, MsgType::inval_rw_response),
              tup(reader, MsgType::upgrade_request)}) {
            auto res = p.observe(block, t);
            total += res.counted;
            hits += res.hit;
        }
        std::swap(reader, owner);
    }
    EXPECT_EQ(total, 30);
    EXPECT_GE(hits, 25); // near-perfect after the first lap
}

TEST(Dsi, MarksBlockAfterTwoConsecutivePairs)
{
    DsiPredictor p;
    p.observe(0, tup(5, MsgType::get_rw_response));
    p.observe(0, tup(5, MsgType::inval_rw_request));
    EXPECT_EQ(p.selfInvalBlocks(), 0u);
    p.observe(0, tup(5, MsgType::get_rw_response));
    p.observe(0, tup(5, MsgType::inval_rw_request));
    EXPECT_EQ(p.selfInvalBlocks(), 1u);
}

TEST(Dsi, PredictsInvalidationAfterDataResponse)
{
    DsiPredictor p;
    for (int i = 0; i < 2; ++i) {
        p.observe(0, tup(5, MsgType::get_rw_response));
        p.observe(0, tup(5, MsgType::inval_rw_request));
    }
    p.observe(0, tup(5, MsgType::get_rw_response));
    ASSERT_TRUE(p.predict(0).has_value());
    EXPECT_EQ(*p.predict(0), tup(5, MsgType::inval_rw_request));
}

TEST(Dsi, HandlesReadOnlySelfInvalidationToo)
{
    DsiPredictor p;
    for (int i = 0; i < 2; ++i) {
        p.observe(0, tup(3, MsgType::get_ro_response));
        p.observe(0, tup(3, MsgType::inval_ro_request));
    }
    p.observe(0, tup(3, MsgType::get_ro_response));
    EXPECT_EQ(*p.predict(0), tup(3, MsgType::inval_ro_request));
}

TEST(Dsi, UnexpectedInvalidationResetsConfidence)
{
    DsiPredictor p;
    for (int i = 0; i < 2; ++i) {
        p.observe(0, tup(5, MsgType::get_rw_response));
        p.observe(0, tup(5, MsgType::inval_rw_request));
    }
    EXPECT_EQ(p.selfInvalBlocks(), 1u);
    // An invalidation with no preceding fetch breaks the pattern.
    p.observe(0, tup(5, MsgType::inval_rw_request));
    EXPECT_EQ(p.selfInvalBlocks(), 0u);
}

TEST(Dsi, MakesNoPredictionOutsideItsPattern)
{
    DsiPredictor p;
    for (int i = 0; i < 2; ++i) {
        p.observe(0, tup(5, MsgType::get_rw_response));
        p.observe(0, tup(5, MsgType::inval_rw_request));
    }
    // After the invalidation (not a data response): no prediction --
    // the directed predictor's narrow coverage.
    EXPECT_FALSE(p.predict(0).has_value());
}

} // namespace
} // namespace cosmos::pred
