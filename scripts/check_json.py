#!/usr/bin/env python3
"""Validate JSON artifacts the simulator emits.

Usage:
    check_json.py [--schema metrics|chrome-trace|any] FILE...

Schemas:
    any           the file parses as JSON (the default)
    metrics       a cosmos-metrics-v1 document: {"schema":
                  "cosmos-metrics-v1", "metrics": {name: {...}}} with
                  per-kind required fields
    chrome-trace  a Chrome trace-event file: {"traceEvents": [...]}
                  where every event carries name/cat/ph/ts/pid/tid
                  (and dur for complete events)

Exits non-zero with a per-file message on the first failure, so it
slots directly into scripts/ci.sh.
"""

import argparse
import json
import sys

METRIC_KINDS = {
    "counter": {"value"},
    "gauge": {"value", "high_water"},
    "histogram": {"count", "sum", "min", "max", "p50", "p90", "p99",
                  "bounds", "counts"},
    "summary": {"count", "sum", "min", "max", "mean", "stddev"},
}

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def check_metrics(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != "cosmos-metrics-v1":
        return f"unexpected schema field: {doc.get('schema')!r}"
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return "missing \"metrics\" object"
    for name, m in metrics.items():
        if not isinstance(m, dict):
            return f"metric {name!r} is not an object"
        kind = m.get("kind")
        required = METRIC_KINDS.get(kind)
        if required is None:
            return f"metric {name!r} has unknown kind {kind!r}"
        missing = required - m.keys()
        if missing:
            return (f"metric {name!r} ({kind}) missing fields: "
                    f"{sorted(missing)}")
        if kind == "histogram" and \
                len(m["counts"]) != len(m["bounds"]) + 1:
            return (f"metric {name!r}: counts must have one overflow "
                    f"slot beyond bounds")
    return None


def check_chrome_trace(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return "missing \"traceEvents\" array"
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        missing = TRACE_EVENT_KEYS - ev.keys()
        if missing:
            return f"event {i} missing keys: {sorted(missing)}"
        if ev["ph"] == "X" and "dur" not in ev:
            return f"complete event {i} has no \"dur\""
        if not isinstance(ev["ts"], (int, float)):
            return f"event {i} \"ts\" is not a number"
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", default="any",
                    choices=["any", "metrics", "chrome-trace"])
    ap.add_argument("files", nargs="+", metavar="FILE")
    args = ap.parse_args()

    for path in args.files:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"check_json: {path}: {e}", file=sys.stderr)
            return 1
        error = None
        if args.schema == "metrics":
            error = check_metrics(doc)
        elif args.schema == "chrome-trace":
            error = check_chrome_trace(doc)
        if error:
            print(f"check_json: {path}: {error}", file=sys.stderr)
            return 1
        print(f"check_json: {path}: OK ({args.schema})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
