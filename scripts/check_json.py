#!/usr/bin/env python3
"""Validate JSON artifacts the simulator emits.

Usage:
    check_json.py [--schema metrics|chrome-trace|any] FILE...

Schemas:
    any           the file parses as JSON (the default)
    metrics       a cosmos-metrics-v1 document: {"schema":
                  "cosmos-metrics-v1", "metrics": {name: {...}}} with
                  per-kind required fields
    chrome-trace  a Chrome trace-event file: {"traceEvents": [...]}
                  where every event carries name/cat/ph/ts/pid/tid
                  (and dur for complete events)
    fuzz          a cosmos-fuzz-v1 document from `cosmos fuzz --out`:
                  campaign counters, a "clean" verdict consistent with
                  the failure list, and per-failure violations each
                  carrying kind/block/when/nodes/detail/history plus
                  a shrunk reproducer no larger than the original
    model         a cosmos-model-v1 document from `cosmos model
                  --out`: exploration counters, a "clean" verdict
                  consistent with the violation list and completeness,
                  a transition table whose entries carry sorted
                  module/state/input keys with at least one outcome
                  each, lint findings with known kinds, and a
                  "consistent" verdict agreeing with the
                  declared-table consistency diff
    lint          a cosmos-lint-v1 document from `cosmos lint --out`:
                  the analyzed configuration, the planted mutation (or
                  "none"), row counts, findings with known kinds and
                  file:line row provenance, and a "clean" verdict
                  consistent with the finding list
    forge         a cosmos-forge-v1 document from `cosmos run --forge
                  ... --forge-out`: the forge parameters, replay
                  config, and one accuracy row per ground-truth
                  sharing class whose record counts sum to the
                  message total and whose census agreement never
                  exceeds the blocks seen
    bench         a cosmos-bench-predictor-v2 document from
                  bench_predictor_throughput: passing goldens, the
                  batch-pipeline tunables, scalar AND batched serial
                  dsmc cells, and sweep / stream sections that each
                  carry their thread, shard, and chunk metadata
    forwarding    a cosmos-bench-forwarding-v1 document from
                  bench_ablation_forwarding: one row per app covering
                  the never/always/predicted cells, each with timing,
                  accuracy, speedup, and forwarding counters whose
                  fwd_ack handshake closes (acks == forwards sent)

Exits non-zero with a per-file message on the first failure, so it
slots directly into scripts/ci.sh.
"""

import argparse
import json
import sys

METRIC_KINDS = {
    "counter": {"value"},
    "gauge": {"value", "high_water"},
    "histogram": {"count", "sum", "min", "max", "p50", "p90", "p99",
                  "bounds", "counts"},
    "summary": {"count", "sum", "min", "max", "mean", "stddev"},
}

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def check_metrics(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != "cosmos-metrics-v1":
        return f"unexpected schema field: {doc.get('schema')!r}"
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return "missing \"metrics\" object"
    for name, m in metrics.items():
        if not isinstance(m, dict):
            return f"metric {name!r} is not an object"
        kind = m.get("kind")
        required = METRIC_KINDS.get(kind)
        if required is None:
            return f"metric {name!r} has unknown kind {kind!r}"
        missing = required - m.keys()
        if missing:
            return (f"metric {name!r} ({kind}) missing fields: "
                    f"{sorted(missing)}")
        if kind == "histogram" and \
                len(m["counts"]) != len(m["bounds"]) + 1:
            return (f"metric {name!r}: counts must have one overflow "
                    f"slot beyond bounds")
    return None


def check_chrome_trace(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return "missing \"traceEvents\" array"
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        missing = TRACE_EVENT_KEYS - ev.keys()
        if missing:
            return f"event {i} missing keys: {sorted(missing)}"
        if ev["ph"] == "X" and "dur" not in ev:
            return f"complete event {i} has no \"dur\""
        if not isinstance(ev["ts"], (int, float)):
            return f"event {i} \"ts\" is not a number"
    return None


VIOLATION_KINDS = {
    "multiple_writers", "writer_and_readers", "directory_mismatch",
    "conservation", "liveness", "assertion",
}

VIOLATION_KEYS = {"kind", "block", "when", "nodes", "detail",
                  "history"}

FAILURE_KEYS = {"seed", "delivered", "original_ops", "shrunk_ops",
                "suppressed", "violations", "reproducer"}


def check_fuzz(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("format") != "cosmos-fuzz-v1":
        return f"unexpected format field: {doc.get('format')!r}"
    for key in ("base_seed", "num_seeds", "cases_run"):
        if not isinstance(doc.get(key), int):
            return f"missing or non-integer {key!r}"
    if not isinstance(doc.get("clean"), bool):
        return "missing boolean \"clean\""
    failures = doc.get("failures")
    if not isinstance(failures, list):
        return "missing \"failures\" array"
    if doc["clean"] != (len(failures) == 0):
        return "\"clean\" verdict disagrees with the failure list"
    for i, f in enumerate(failures):
        if not isinstance(f, dict):
            return f"failure {i} is not an object"
        missing = FAILURE_KEYS - f.keys()
        if missing:
            return f"failure {i} missing keys: {sorted(missing)}"
        if not f["violations"]:
            return f"failure {i} carries no violations"
        if f["shrunk_ops"] > f["original_ops"]:
            return (f"failure {i}: shrunk reproducer is larger than "
                    f"the original case")
        for j, v in enumerate(f["violations"]):
            if not isinstance(v, dict):
                return f"failure {i} violation {j} is not an object"
            missing = VIOLATION_KEYS - v.keys()
            if missing:
                return (f"failure {i} violation {j} missing keys: "
                        f"{sorted(missing)}")
            if v["kind"] not in VIOLATION_KINDS:
                return (f"failure {i} violation {j} has unknown "
                        f"kind {v['kind']!r}")
            if not isinstance(v["nodes"], list):
                return f"failure {i} violation {j} nodes not a list"
    return None


MODEL_CONFIG_KEYS = {"nodes", "blocks", "reorder", "policy",
                     "forwarding", "legacy_forwarding",
                     "ignore_inval_every"}

MODEL_COUNTER_KEYS = {"states", "transitions", "max_depth",
                      "deadlocks", "failed_steps"}

MODEL_ENTRY_KEYS = {"module", "state", "input", "context", "hits",
                    "outcomes"}

LINT_KINDS = {"unreachable_state", "dead_input", "nondeterministic",
              "forwarding_asymmetry"}

CONSISTENCY_KINDS = {"undeclared_transition", "unreachable_reached",
                     "outcome_mismatch"}


def check_model(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("format") != "cosmos-model-v1":
        return f"unexpected format field: {doc.get('format')!r}"
    config = doc.get("config")
    if not isinstance(config, dict):
        return "missing \"config\" object"
    missing = MODEL_CONFIG_KEYS - config.keys()
    if missing:
        return f"config missing keys: {sorted(missing)}"
    for key in ("complete", "clean"):
        if not isinstance(doc.get(key), bool):
            return f"missing boolean {key!r}"
    for key in MODEL_COUNTER_KEYS:
        if not isinstance(doc.get(key), int):
            return f"missing or non-integer {key!r}"
    violations = doc.get("violations")
    if not isinstance(violations, list):
        return "missing \"violations\" array"
    if doc["clean"] != (len(violations) == 0 and doc["complete"]):
        return ("\"clean\" verdict disagrees with the violation "
                "list / completeness")
    for j, v in enumerate(violations):
        if not isinstance(v, dict):
            return f"violation {j} is not an object"
        missing = VIOLATION_KEYS - v.keys()
        if missing:
            return f"violation {j} missing keys: {sorted(missing)}"
        if v["kind"] not in VIOLATION_KINDS:
            return f"violation {j} has unknown kind {v['kind']!r}"
    table = doc.get("table")
    if not isinstance(table, dict):
        return "missing \"table\" object"
    entries = table.get("entries")
    if not isinstance(entries, list) or not entries:
        return "table has no entries"
    if not isinstance(table.get("nondeterministic"), int):
        return "table missing integer \"nondeterministic\""
    for i, e in enumerate(entries):
        if not isinstance(e, dict):
            return f"table entry {i} is not an object"
        missing = MODEL_ENTRY_KEYS - e.keys()
        if missing:
            return f"table entry {i} missing keys: {sorted(missing)}"
        if e["module"] not in ("cache", "directory"):
            return (f"table entry {i} has unknown module "
                    f"{e['module']!r}")
        if not isinstance(e["outcomes"], list) or not e["outcomes"]:
            return f"table entry {i} has no outcomes"
        if not (isinstance(e["hits"], int) and e["hits"] > 0):
            return f"table entry {i} has no hits"
    lint = doc.get("lint")
    if not isinstance(lint, list):
        return "missing \"lint\" array"
    for i, f in enumerate(lint):
        if not isinstance(f, dict):
            return f"lint finding {i} is not an object"
        if f.get("kind") not in LINT_KINDS:
            return (f"lint finding {i} has unknown kind "
                    f"{f.get('kind')!r}")
        if not isinstance(f.get("detail"), str):
            return f"lint finding {i} missing \"detail\""
    if not isinstance(doc.get("consistent"), bool):
        return "missing boolean \"consistent\""
    consistency = doc.get("consistency")
    if not isinstance(consistency, list):
        return "missing \"consistency\" array"
    if doc["consistent"] != (len(consistency) == 0):
        return ("\"consistent\" verdict disagrees with the "
                "consistency finding list")
    for i, f in enumerate(consistency):
        if not isinstance(f, dict):
            return f"consistency finding {i} is not an object"
        if f.get("kind") not in CONSISTENCY_KINDS:
            return (f"consistency finding {i} has unknown kind "
                    f"{f.get('kind')!r}")
        if f.get("module") not in ("cache", "directory"):
            return (f"consistency finding {i} has unknown module "
                    f"{f.get('module')!r}")
        if not isinstance(f.get("detail"), str):
            return f"consistency finding {i} missing \"detail\""
    return None


LINT_STATIC_KINDS = {"missing_row", "overlapping_rows",
                     "dropped_response", "out_of_order_consume",
                     "forwarding_asymmetry"}

LINT_CONFIG_KEYS = {"nodes", "forwarding", "legacy_forwarding",
                    "owner_read_policy", "cache_capacity_blocks"}


def check_lint(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("format") != "cosmos-lint-v1":
        return f"unexpected format field: {doc.get('format')!r}"
    config = doc.get("config")
    if not isinstance(config, dict):
        return "missing \"config\" object"
    missing = LINT_CONFIG_KEYS - config.keys()
    if missing:
        return f"config missing keys: {sorted(missing)}"
    mutation = doc.get("mutation")
    if mutation not in LINT_STATIC_KINDS | {"none"}:
        return f"unknown mutation {mutation!r}"
    for key in ("rows", "unreachable_rows"):
        if not (isinstance(doc.get(key), int) and doc[key] >= 0):
            return f"missing or negative integer {key!r}"
    if doc["rows"] <= 0:
        return "the analyzed table has no live rows"
    findings = doc.get("findings")
    if not isinstance(findings, list):
        return "missing \"findings\" array"
    if not isinstance(doc.get("clean"), bool):
        return "missing boolean \"clean\""
    if doc["clean"] != (len(findings) == 0):
        return "\"clean\" verdict disagrees with the finding list"
    for i, f in enumerate(findings):
        if not isinstance(f, dict):
            return f"finding {i} is not an object"
        if f.get("kind") not in LINT_STATIC_KINDS:
            return f"finding {i} has unknown kind {f.get('kind')!r}"
        if f.get("role") not in ("cache", "directory"):
            return f"finding {i} has unknown role {f.get('role')!r}"
        if not isinstance(f.get("detail"), str):
            return f"finding {i} missing \"detail\""
        rows = f.get("rows")
        if not isinstance(rows, list):
            return f"finding {i} missing \"rows\" array"
        for j, r in enumerate(rows):
            if not isinstance(r, dict) or \
                    not isinstance(r.get("where"), str) or \
                    not isinstance(r.get("row"), str):
                return f"finding {i} row ref {j} is malformed"
            if ":" not in r["where"]:
                return (f"finding {i} row ref {j} carries no "
                        f"file:line provenance: {r['where']!r}")
    return None


FORGE_PARAM_KEYS = {"procs", "blocks", "migratory", "false",
                    "private", "readonly", "producer_consumer",
                    "fanout", "phase", "seed"}

FORGE_CLASS_KEYS = {"class", "blocks", "records", "cache_pct",
                    "directory_pct", "overall_pct", "census_seen",
                    "census_agree"}

FORGE_CLASSES = {"private", "read-only", "migratory",
                 "producer-consumer", "false-sharing"}


def check_forge(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("format") != "cosmos-forge-v1":
        return f"unexpected format field: {doc.get('format')!r}"
    params = doc.get("params")
    if not isinstance(params, dict):
        return "missing \"params\" object"
    missing = FORGE_PARAM_KEYS - params.keys()
    if missing:
        return f"params missing keys: {sorted(missing)}"
    fractions = sum(params[k] for k in
                    ("migratory", "false", "private", "readonly",
                     "producer_consumer"))
    if not 0.99 <= fractions <= 1.01:
        return f"class fractions sum to {fractions}, not 1"
    for key in ("depth", "filter", "nodes", "iterations", "messages"):
        if not isinstance(doc.get(key), int):
            return f"missing or non-integer {key!r}"
    if not isinstance(doc.get("overall_pct"), (int, float)):
        return "missing numeric \"overall_pct\""
    classes = doc.get("classes")
    if not isinstance(classes, list) or not classes:
        return "missing or empty \"classes\" array"
    records = 0
    for i, c in enumerate(classes):
        if not isinstance(c, dict):
            return f"class row {i} is not an object"
        missing = FORGE_CLASS_KEYS - c.keys()
        if missing:
            return f"class row {i} missing keys: {sorted(missing)}"
        if c["class"] not in FORGE_CLASSES:
            return f"class row {i} has unknown class {c['class']!r}"
        for key in ("cache_pct", "directory_pct", "overall_pct"):
            if not 0 <= c[key] <= 100:
                return (f"class row {i} {key!r} {c[key]} outside "
                        f"[0, 100]")
        if c["census_agree"] > c["census_seen"]:
            return (f"class row {i}: census agreement exceeds "
                    f"blocks seen")
        if c["census_seen"] > c["blocks"]:
            return (f"class row {i}: census saw more blocks than "
                    f"exist in the class")
        records += c["records"]
    if records != doc["messages"]:
        return (f"per-class records sum to {records}, not the "
                f"message total {doc['messages']}")
    return None


BENCH_BATCH_KEYS = {"depth", "prefetch_distance", "window",
                    "group_bits"}

BENCH_CELL_KEYS = {"mode", "depth", "reps", "seconds",
                   "messages_per_sec"}

BENCH_SWEEP_KEYS = {"threads", "cells", "messages", "seconds",
                    "messages_per_sec"}

BENCH_STREAM_KEYS = {"blocks", "procs", "threads", "shards",
                     "chunk_records", "messages", "accesses",
                     "chunks", "seconds", "messages_per_sec"}


def check_bench(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != "cosmos-bench-predictor-v2":
        return f"unexpected schema field: {doc.get('schema')!r}"
    if doc.get("goldens") != "pass":
        return f"goldens did not pass: {doc.get('goldens')!r}"
    if not isinstance(doc.get("golden_cells"), int) \
            or doc["golden_cells"] <= 0:
        return "missing positive integer \"golden_cells\""
    batch = doc.get("batch")
    if not isinstance(batch, dict):
        return "missing \"batch\" object"
    missing = BENCH_BATCH_KEYS - batch.keys()
    if missing:
        return f"batch missing keys: {sorted(missing)}"
    serial = doc.get("serial_dsmc")
    if not isinstance(serial, dict):
        return "missing \"serial_dsmc\" object"
    if not isinstance(serial.get("records"), int):
        return "serial_dsmc missing integer \"records\""
    cells = serial.get("cells")
    if not isinstance(cells, list) or not cells:
        return "serial_dsmc has no cells"
    modes = set()
    for i, c in enumerate(cells):
        if not isinstance(c, dict):
            return f"serial cell {i} is not an object"
        missing = BENCH_CELL_KEYS - c.keys()
        if missing:
            return f"serial cell {i} missing keys: {sorted(missing)}"
        if c["mode"] not in ("scalar", "batched"):
            return f"serial cell {i} has unknown mode {c['mode']!r}"
        if c["messages_per_sec"] <= 0:
            return f"serial cell {i} reports no throughput"
        modes.add(c["mode"])
    if modes != {"scalar", "batched"}:
        return f"serial cells cover modes {sorted(modes)}, " \
               f"need both scalar and batched"
    for section, keys in (("sweep", BENCH_SWEEP_KEYS),
                          ("stream", BENCH_STREAM_KEYS)):
        s = doc.get(section)
        if not isinstance(s, dict):
            return f"missing \"{section}\" object"
        missing = keys - s.keys()
        if missing:
            return f"{section} missing keys: {sorted(missing)}"
    if doc["stream"]["messages"] <= 0:
        return "stream replayed no messages"
    if doc["stream"]["shards"] <= 0:
        return "stream reports no shards"
    return None


FORWARDING_CELL_KEYS = {"mode", "time", "cache_pct", "directory_pct",
                        "overall_pct", "forwards_sent",
                        "forwards_suppressed", "fwd_acks",
                        "fwd_queries", "fwd_granted",
                        "measured_speedup_pct", "model_speedup_pct"}

FORWARDING_MODES = {"never", "always", "predicted"}


def check_forwarding(doc):
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != "cosmos-bench-forwarding-v1":
        return f"unexpected schema field: {doc.get('schema')!r}"
    apps = doc.get("apps")
    if not isinstance(apps, list) or not apps:
        return "missing or empty \"apps\" array"
    for i, a in enumerate(apps):
        if not isinstance(a, dict) or not isinstance(a.get("app"),
                                                     str):
            return f"app row {i} is malformed"
        cells = a.get("cells")
        if not isinstance(cells, list):
            return f"app {a['app']!r} has no cells"
        modes = set()
        for j, c in enumerate(cells):
            if not isinstance(c, dict):
                return f"app {a['app']!r} cell {j} is not an object"
            missing = FORWARDING_CELL_KEYS - c.keys()
            if missing:
                return (f"app {a['app']!r} cell {j} missing keys: "
                        f"{sorted(missing)}")
            if c["mode"] not in FORWARDING_MODES:
                return (f"app {a['app']!r} cell {j} has unknown mode "
                        f"{c['mode']!r}")
            if c["time"] <= 0:
                return f"app {a['app']!r} cell {c['mode']} ran no time"
            if c["fwd_acks"] != c["forwards_sent"]:
                return (f"app {a['app']!r} cell {c['mode']}: fwd_ack "
                        f"count disagrees with forwards sent -- the "
                        f"handshake did not close")
            if c["mode"] == "never" and c["forwards_sent"] != 0:
                return (f"app {a['app']!r}: the never cell forwarded "
                        f"{c['forwards_sent']} transfers")
            if c["mode"] == "predicted" and \
                    c["fwd_granted"] > c["fwd_queries"]:
                return (f"app {a['app']!r}: predicted cell granted "
                        f"more forwards than it was queried for")
            modes.add(c["mode"])
        if modes != FORWARDING_MODES:
            return (f"app {a['app']!r} covers modes {sorted(modes)}, "
                    f"need never/always/predicted")
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", default="any",
                    choices=["any", "metrics", "chrome-trace",
                             "fuzz", "model", "forge", "bench",
                             "forwarding", "lint"])
    ap.add_argument("files", nargs="+", metavar="FILE")
    args = ap.parse_args()

    for path in args.files:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"check_json: {path}: {e}", file=sys.stderr)
            return 1
        error = None
        if args.schema == "metrics":
            error = check_metrics(doc)
        elif args.schema == "chrome-trace":
            error = check_chrome_trace(doc)
        elif args.schema == "fuzz":
            error = check_fuzz(doc)
        elif args.schema == "model":
            error = check_model(doc)
        elif args.schema == "forge":
            error = check_forge(doc)
        elif args.schema == "bench":
            error = check_bench(doc)
        elif args.schema == "forwarding":
            error = check_forwarding(doc)
        elif args.schema == "lint":
            error = check_lint(doc)
        if error:
            print(f"check_json: {path}: {error}", file=sys.stderr)
            return 1
        print(f"check_json: {path}: OK ({args.schema})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
