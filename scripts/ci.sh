#!/usr/bin/env bash
# Full local CI: configure, build (warnings as errors), test,
# smoke-run every bench and example (with per-bench wall time, so
# parallel-replay speedups are visible), and race-check the replay
# engine under ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja, but fall back to CMake's default generator (usually
# Unix Makefiles) on hosts without it. An already-configured build
# directory keeps whatever generator it was created with.
GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
    GENERATOR=(-G Ninja)
fi
gen_for() { [[ -f "$1/CMakeCache.txt" ]] && echo || echo "${GENERATOR[@]:-}"; }

# shellcheck disable=SC2046
cmake -B build $(gen_for build) -DCOSMOS_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

now_ms() { echo $(($(date +%s%N) / 1000000)); }

for b in build/bench/bench_*; do
    start=$(now_ms)
    if [[ "$(basename "$b")" == bench_microperf ]]; then
        "$b" --benchmark_min_time=0.05 > /dev/null
    else
        "$b" > /dev/null
    fi
    echo "== $b ($(($(now_ms) - start)) ms)"
done
for e in build/examples/*; do
    [[ -x "$e" && -f "$e" ]] || continue
    echo "== $e"
    "$e" > /dev/null
done
./build/tools/cosmos list > /dev/null

# ThreadSanitizer pass over the parallel replay engine: the
# determinism + ThreadPool + trace-cache concurrency tests must run
# race-free.
# shellcheck disable=SC2046
cmake -B build-tsan $(gen_for build-tsan) -DCOSMOS_TSAN=ON
cmake --build build-tsan --target replay_test harness_test
start=$(now_ms)
./build-tsan/tests/replay_test
./build-tsan/tests/harness_test --gtest_filter='TraceCache.*'
echo "== tsan replay/trace-cache suites ($(($(now_ms) - start)) ms)"

echo "CI OK"
