#!/usr/bin/env bash
# Full local CI: configure, build (warnings as errors), test,
# smoke-run every bench and example (with per-bench wall time, so
# parallel-replay speedups are visible), and race-check the replay
# engine under ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja, but fall back to CMake's default generator (usually
# Unix Makefiles) on hosts without it. An already-configured build
# directory keeps whatever generator it was created with.
GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
    GENERATOR=(-G Ninja)
fi
gen_for() { [[ -f "$1/CMakeCache.txt" ]] && echo || echo "${GENERATOR[@]:-}"; }

# shellcheck disable=SC2046
cmake -B build $(gen_for build) -DCOSMOS_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

now_ms() { echo $(($(date +%s%N) / 1000000)); }

for b in build/bench/bench_*; do
    start=$(now_ms)
    case "$(basename "$b")" in
        bench_microperf)
            "$b" --benchmark_min_time=0.05 > /dev/null ;;
        bench_predictor_throughput)
            # Smoke only; the tracked run happens in Release below.
            "$b" --min-seconds 0.05 \
                 --stream-messages 500000 --stream-blocks 65536 \
                 --out build/BENCH_predictor_throughput.json > /dev/null ;;
        bench_forge)
            "$b" --out build/BENCH_forge.json > /dev/null ;;
        bench_ablation_forwarding)
            "$b" --out build/BENCH_forwarding.json > /dev/null ;;
        *)
            "$b" > /dev/null ;;
    esac
    echo "== $b ($(($(now_ms) - start)) ms)"
done
for e in build/examples/*; do
    [[ -x "$e" && -f "$e" ]] || continue
    echo "== $e"
    "$e" > /dev/null
done
./build/tools/cosmos list > /dev/null

# Observability smoke: a sweep must emit a valid, stable metrics
# document and a loadable Chrome trace-event file. The metrics export
# contains only stable (thread-count-independent) metrics, so the
# --threads 1 and --threads 2 documents must be byte-identical.
mkdir -p artifacts
./build/tools/cosmos sweep micro_migratory --threads 2 \
    --metrics-out artifacts/metrics_sweep.json \
    --trace-out artifacts/trace_sweep.json > /dev/null
./build/tools/cosmos sweep micro_migratory --threads 1 \
    --metrics-out artifacts/metrics_sweep_serial.json > /dev/null
cmp artifacts/metrics_sweep.json artifacts/metrics_sweep_serial.json
python3 scripts/check_json.py --schema metrics \
    artifacts/metrics_sweep.json
python3 scripts/check_json.py --schema chrome-trace \
    artifacts/trace_sweep.json
python3 scripts/check_json.py build/BENCH_*.json
python3 scripts/check_json.py --schema forwarding \
    build/BENCH_forwarding.json
echo "== observability smoke OK"

# Fuzz smoke: 200 fixed seeds through the schedule fuzzer + invariant
# checker must come back clean and emit a valid cosmos-fuzz-v1
# artifact. Then the negative leg: a planted lost-invalidation bug
# (--inject-ignore-inval) MUST be caught -- the run has to exit
# non-zero and its artifact has to record the violations -- proving
# the checker can actually see protocol bugs, not just green runs.
./build/tools/cosmos fuzz --seeds 200 --seed 1 \
    --out artifacts/fuzz_clean.json > /dev/null
python3 scripts/check_json.py --schema fuzz artifacts/fuzz_clean.json
if ./build/tools/cosmos fuzz --seeds 5 --seed 1 \
    --inject-ignore-inval 2 \
    --out artifacts/fuzz_planted_bug.json > /dev/null; then
    echo "fuzz smoke: planted protocol bug was NOT caught" >&2
    exit 1
fi
python3 scripts/check_json.py --schema fuzz \
    artifacts/fuzz_planted_bug.json
echo "== fuzz smoke OK (200 clean seeds, planted bug caught)"

# Model-check smoke: the exhaustive checker must close out the
# 2-node and 3-node spaces cleanly with the pinned golden counts (a
# count drift is a protocol-semantics change that must be reviewed)
# and a valid cosmos-model-v1 artifact. Negative leg: the planted
# lost-invalidation bug MUST produce an SWMR counterexample, and that
# counterexample MUST reproduce when replayed through the real
# simulator (cosmos fuzz --replay-model exits non-zero on
# confirmation -- a clean replay means the bridge is broken).
./build/tools/cosmos model --out artifacts/model_2n.json > /dev/null
./build/tools/cosmos model --nodes 3 \
    --out artifacts/model_3n.json > /dev/null
python3 scripts/check_json.py --schema model \
    artifacts/model_2n.json artifacts/model_3n.json
grep -q '"states": 48,' artifacts/model_2n.json
grep -q '"transitions": 86,' artifacts/model_2n.json
grep -q '"nondeterministic": 0' artifacts/model_2n.json
grep -q '"consistent": true' artifacts/model_2n.json
grep -q '"states": 488,' artifacts/model_3n.json
grep -q '"transitions": 1152,' artifacts/model_3n.json
grep -q '"consistent": true' artifacts/model_3n.json
if ./build/tools/cosmos model --inject-ignore-inval 1 \
    --out artifacts/model_planted_bug.json \
    --counterexample-out artifacts/model_counterexample.txt \
    > /dev/null; then
    echo "model smoke: planted protocol bug was NOT caught" >&2
    exit 1
fi
python3 scripts/check_json.py --schema model \
    artifacts/model_planted_bug.json
grep -q '"clean": false' artifacts/model_planted_bug.json
grep -q 'writer_and_readers' artifacts/model_planted_bug.json
if ./build/tools/cosmos fuzz \
    --replay-model artifacts/model_counterexample.txt > /dev/null; then
    echo "model smoke: counterexample did NOT reproduce in the" \
         "simulator" >&2
    exit 1
fi
echo "== model-check smoke OK (48/488-state closures, planted bug" \
     "caught and replayed)"

# Forwarding model-check: the fwd_ack handshake must close every
# forwarded space with zero violations at the pinned golden counts
# (2n1b, 3n1b, and the deeper 3n2b space). Negative leg:
# --legacy-forwarding (the pre-fix release-on-revision behavior, kept
# as a negative-testing oracle) MUST still reproduce the original
# three-hop race -- the owner's direct data reply and the home's next
# invalidation travel independent channels, and the checker has to
# find the interleaving where the invalidation wins. Two nodes cannot
# race (home, owner, and requester must be distinct parties), so the
# must-fail leg runs at --nodes 3.
./build/tools/cosmos model --forwarding \
    --out artifacts/model_2n_fwd.json > /dev/null
./build/tools/cosmos model --forwarding --nodes 3 \
    --out artifacts/model_3n_fwd.json > /dev/null
./build/tools/cosmos model --forwarding --nodes 3 --blocks 2 \
    --out artifacts/model_3n2b_fwd.json > /dev/null
python3 scripts/check_json.py --schema model \
    artifacts/model_2n_fwd.json artifacts/model_3n_fwd.json \
    artifacts/model_3n2b_fwd.json
grep -q '"states": 78,' artifacts/model_2n_fwd.json
grep -q '"transitions": 142,' artifacts/model_2n_fwd.json
grep -q '"nondeterministic": 0' artifacts/model_2n_fwd.json
grep -q '"consistent": true' artifacts/model_2n_fwd.json
grep -q '"states": 883,' artifacts/model_3n_fwd.json
grep -q '"transitions": 2149,' artifacts/model_3n_fwd.json
grep -q '"nondeterministic": 0' artifacts/model_3n_fwd.json
grep -q '"consistent": true' artifacts/model_3n_fwd.json
grep -q '"states": 276396,' artifacts/model_3n2b_fwd.json
grep -q '"transitions": 971246,' artifacts/model_3n2b_fwd.json
grep -q '"consistent": true' artifacts/model_3n2b_fwd.json
if ./build/tools/cosmos model --forwarding --legacy-forwarding \
    --nodes 3 --out artifacts/model_legacy_fwd.json \
    --counterexample-out artifacts/legacy_counterexample.txt \
    > /dev/null; then
    echo "model smoke: the legacy forwarding race was NOT caught" >&2
    exit 1
fi
python3 scripts/check_json.py --schema model \
    artifacts/model_legacy_fwd.json
grep -q '"clean": false' artifacts/model_legacy_fwd.json
grep -q 'state wait_' artifacts/model_legacy_fwd.json
grep -q 'legacy_forwarding=1' artifacts/legacy_counterexample.txt
echo "== forwarding model-check OK (78/883/276396-state closures" \
     "clean, legacy race caught)"

# Static protocol lint: the declared transition table -- the single
# source of truth the controllers dispatch through -- must analyze
# clean under every shipped variant (completeness, determinism,
# message conservation, channel discipline, forwarding asymmetry).
# Negative legs: each planted table mutation MUST trip the lint pass
# built for its bug class and fail the run -- proving the analyzer
# has teeth, not just green runs.
./build/tools/cosmos lint --out artifacts/lint_base.json > /dev/null
./build/tools/cosmos lint --forwarding --capacity 1 \
    --out artifacts/lint_fwd.json > /dev/null
./build/tools/cosmos lint --forwarding --legacy-forwarding \
    --out artifacts/lint_legacy.json > /dev/null
./build/tools/cosmos lint --policy downgrade --forwarding \
    --out artifacts/lint_downgrade.json > /dev/null
python3 scripts/check_json.py --schema lint artifacts/lint_base.json \
    artifacts/lint_fwd.json artifacts/lint_legacy.json \
    artifacts/lint_downgrade.json
grep -q '"clean": true' artifacts/lint_base.json
grep -q '"clean": true' artifacts/lint_fwd.json
grep -q '"clean": true' artifacts/lint_legacy.json
grep -q '"clean": true' artifacts/lint_downgrade.json
for kind in missing_row overlapping_rows dropped_response \
            out_of_order_consume forwarding_asymmetry; do
    if ./build/tools/cosmos lint --forwarding --mutate "$kind" \
        --out "artifacts/lint_$kind.json" > /dev/null; then
        echo "lint smoke: planted $kind mutation was NOT caught" >&2
        exit 1
    fi
    python3 scripts/check_json.py --schema lint \
        "artifacts/lint_$kind.json"
    grep -q "\"kind\": \"$kind\"" "artifacts/lint_$kind.json"
    grep -q '"clean": false' "artifacts/lint_$kind.json"
done
echo "== protocol lint OK (4 variants clean, 5 planted mutations" \
     "caught)"

# Forge / trace-ingestion smoke: a generated text trace must replay
# through the simulator byte-for-byte (gen -> run round-trip, plus a
# gzip leg when zlib was available at build time), a synthetic run
# must publish a valid cosmos-forge-v1 accuracy report, the fuzzer's
# structured-workload dimension must come back clean, and the
# negative leg: a malformed trace line MUST fail the run with its
# line number -- proving the parser actually rejects garbage instead
# of replaying it.
./build/tools/cosmos gen \
    --forge migratory=0.3,false=0.1,private=0.2,readonly=0.2,blocks=32,procs=8 \
    --accesses 20000 --out artifacts/forge_smoke.trace > /dev/null
./build/tools/cosmos run --trace-file artifacts/forge_smoke.trace \
    --nodes 8 > artifacts/forge_ingest.txt
grep -q 'ingested: 20000 accesses' artifacts/forge_ingest.txt
if grep -q 'gzip-capable' artifacts/forge_ingest.txt; then
    gzip -c artifacts/forge_smoke.trace > artifacts/forge_smoke.trace.gz
    ./build/tools/cosmos run \
        --trace-file artifacts/forge_smoke.trace.gz --nodes 8 \
        | grep -q 'ingested: 20000 accesses'
fi
printf '0 r 0x1000\n7 w not-an-address\n' > artifacts/forge_bad.trace
if ./build/tools/cosmos run --trace-file artifacts/forge_bad.trace \
    --nodes 8 > /dev/null 2> artifacts/forge_bad.txt; then
    echo "forge smoke: malformed trace line was NOT rejected" >&2
    exit 1
fi
grep -q 'forge_bad.trace:2:' artifacts/forge_bad.txt
./build/tools/cosmos run \
    --forge migratory=0.3,false=0.1,private=0.2,readonly=0.2,blocks=64,procs=8 \
    --iterations 16 --forge-out artifacts/forge_report.json > /dev/null
python3 scripts/check_json.py --schema forge artifacts/forge_report.json
./build/tools/cosmos fuzz --seeds 50 --seed 1 --forge-mix 0.5 \
    --out artifacts/fuzz_forge.json > /dev/null
python3 scripts/check_json.py --schema fuzz artifacts/fuzz_forge.json
echo "== forge smoke OK (round-trip, malformed line rejected," \
     "report valid, structured fuzz clean)"

# Release-mode perf smoke (-O2 -DNDEBUG): the golden-gated throughput
# bench replays the full Table 5/6 grid through both the batched and
# the 4-shard pipelines, fails the build on any accuracy drift from
# tests/fixtures/golden_accuracy.hh, and publishes its JSON so
# successive runs can be compared. The batched serial dsmc cell must
# also clear a generous absolute throughput floor (override with
# COSMOS_PERF_FLOOR_MPS; 0 disables) -- a regression that halves the
# batched path shows up here even when the goldens stay green.
# shellcheck disable=SC2046
cmake -B build-release $(gen_for build-release) \
    -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_predictor_throughput
mkdir -p artifacts
start=$(now_ms)
./build-release/bench/bench_predictor_throughput \
    --out artifacts/BENCH_predictor_throughput.json
echo "== release perf smoke ($(($(now_ms) - start)) ms)"
python3 scripts/check_json.py --schema bench \
    artifacts/BENCH_predictor_throughput.json
python3 - artifacts/BENCH_predictor_throughput.json <<'EOF'
import json, os, sys
doc = json.load(open(sys.argv[1]))
floor = float(os.environ.get("COSMOS_PERF_FLOOR_MPS", "18000000"))
mps = min(c["messages_per_sec"]
          for c in doc["serial_dsmc"]["cells"]
          if c["mode"] == "batched" and c["depth"] == 1)
if floor > 0 and mps < floor:
    sys.exit(f"perf floor: batched dsmc depth-1 ran at {mps:.0f} "
             f"msg/s, below the {floor:.0f} floor")
print(f"perf floor OK: batched dsmc depth-1 at {mps / 1e6:.1f} "
      f"M msg/s (floor {floor / 1e6:.1f} M)")
EOF
echo "== artifact: artifacts/BENCH_predictor_throughput.json"

# ThreadSanitizer pass over the parallel replay engine: the
# determinism + ThreadPool + trace-cache concurrency tests must run
# race-free, and so must the sharded predictor bank's two-phase
# stageChunk/applyShard pipeline (workers apply disjoint shards of
# one staged chunk concurrently).
# shellcheck disable=SC2046
cmake -B build-tsan $(gen_for build-tsan) -DCOSMOS_TSAN=ON
cmake --build build-tsan --target replay_test harness_test batch_test
start=$(now_ms)
./build-tsan/tests/replay_test
./build-tsan/tests/harness_test --gtest_filter='TraceCache.*'
./build-tsan/tests/batch_test \
    --gtest_filter='ShardedBank.*:StreamingReplay.*'
echo "== tsan replay/trace-cache/sharded-bank suites" \
     "($(($(now_ms) - start)) ms)"

# AddressSanitizer + UBSan pass over the protocol, checker, and model
# suites: the model checker snapshots/restores live controllers
# thousands of times per run, which is exactly where lifetime and
# aliasing bugs would hide. -fno-sanitize-recover makes any report
# fatal, so a passing run is a clean run.
# shellcheck disable=SC2046
cmake -B build-asan $(gen_for build-asan) -DCOSMOS_ASAN=ON
cmake --build build-asan --target proto_test check_test model_test
start=$(now_ms)
./build-asan/tests/proto_test
./build-asan/tests/check_test
./build-asan/tests/model_test
echo "== asan proto/check/model suites ($(($(now_ms) - start)) ms)"

# Static lint over the sources that host invariants (src/model,
# src/check, src/lint, src/proto): clang-tidy reads the compilation
# database the main build exports. Gated on the tool being installed,
# but never on its verdict: .clang-tidy sets WarningsAsErrors '*', so
# when clang-tidy is present ANY surviving diagnostic exits non-zero
# and fails the build here (set -e) -- the stage cannot silently
# degrade into a skip.
if command -v clang-tidy > /dev/null 2>&1; then
    start=$(now_ms)
    clang-tidy -p build --quiet \
        src/model/*.cc src/check/*.cc src/lint/*.cc src/proto/*.cc
    echo "== clang-tidy model/check/lint/proto" \
         "($(($(now_ms) - start)) ms)"
else
    echo "== clang-tidy not installed; lint stage skipped"
fi

echo "CI OK"
