#!/usr/bin/env bash
# Full local CI: configure, build (warnings as errors), test, and
# smoke-run every bench and example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCOSMOS_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
    echo "== $b"
    if [[ "$(basename "$b")" == bench_microperf ]]; then
        "$b" --benchmark_min_time=0.05 > /dev/null
    else
        "$b" > /dev/null
    fi
done
for e in build/examples/*; do
    [[ -x "$e" && -f "$e" ]] || continue
    echo "== $e"
    "$e" > /dev/null
done
./build/tools/cosmos list > /dev/null
echo "CI OK"
