#include "replay/stream.hh"

#include <vector>

#include "common/log.hh"
#include "cosmos/predictor_bank.hh"
#include "cosmos/sharded_bank.hh"
#include "obs/trace_event.hh"

namespace cosmos::replay
{

ReplayResult
replayStream(trace::RecordSource &source,
             const pred::CosmosConfig &cfg, const StreamConfig &sc,
             ThreadPool &pool, StreamStats *stats)
{
    cosmos_assert(sc.chunkRecords > 0,
                  "chunkRecords must be positive");
    const unsigned shards = std::max(sc.shards, 1u);
    StreamStats st;
    std::vector<trace::TraceRecord> chunk;
    ReplayResult out;

    if (shards == 1) {
        pred::PredictorBank bank(source.numNodes(), cfg);
        while (source.next(chunk, sc.chunkRecords) != 0) {
            COSMOS_SPAN_ARGS("replay", "chunk", "records",
                             chunk.size());
            bank.observeChunk(chunk.data(), chunk.size(),
                              sc.maxIteration, sc.batch);
            st.records += chunk.size();
            ++st.chunks;
        }
        out.accuracy = bank.accuracy();
        out.cacheArcs = bank.arcs(proto::Role::cache);
        out.directoryArcs = bank.arcs(proto::Role::directory);
        out.memory = bank.memoryStats();
    } else {
        pred::ShardedPredictorBank bank(source.numNodes(), cfg,
                                        shards);
        while (source.next(chunk, sc.chunkRecords) != 0) {
            COSMOS_SPAN_ARGS("replay", "chunk", "records",
                             chunk.size());
            bank.stageChunk(chunk.data(), chunk.size());
            pool.parallelFor(shards, [&](std::size_t s) {
                bank.applyShard(static_cast<unsigned>(s),
                                sc.maxIteration, sc.batch);
            });
            st.records += chunk.size();
            ++st.chunks;
        }
        out.accuracy = bank.accuracy();
        out.cacheArcs = bank.arcs(proto::Role::cache);
        out.directoryArcs = bank.arcs(proto::Role::directory);
        out.memory = bank.memoryStats();
    }

    if (stats != nullptr)
        *stats = st;
    return out;
}

} // namespace cosmos::replay
