#include "replay/sharding.hh"

#include "common/addr.hh"
#include "common/log.hh"

namespace cosmos::replay
{

unsigned
shardOfBlock(Addr block, unsigned shards)
{
    // One tree-wide mix (common/addr.hh): ShardedPredictorBank must
    // agree with shardByBlock on every block's shard.
    return blockShardOf(block, shards);
}

std::vector<TraceShard>
shardByBlock(const trace::Trace &t, unsigned shards)
{
    cosmos_assert(shards > 0, "shard count must be positive");
    std::vector<TraceShard> out(shards);
    for (auto &shard : out)
        shard.records.reserve(t.records.size() / shards + 1);
    for (const auto &r : t.records)
        out[shardOfBlock(r.block, shards)].records.push_back(&r);
    return out;
}

} // namespace cosmos::replay
