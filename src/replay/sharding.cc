#include "replay/sharding.hh"

#include "common/log.hh"

namespace cosmos::replay
{

unsigned
shardOfBlock(Addr block, unsigned shards)
{
    cosmos_assert(shards > 0, "shard count must be positive");
    // splitmix64 finalizer: block addresses are block-aligned, so the
    // low bits carry no entropy; mix before reducing.
    std::uint64_t x = block;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<unsigned>(x % shards);
}

std::vector<TraceShard>
shardByBlock(const trace::Trace &t, unsigned shards)
{
    cosmos_assert(shards > 0, "shard count must be positive");
    std::vector<TraceShard> out(shards);
    for (auto &shard : out)
        shard.records.reserve(t.records.size() / shards + 1);
    for (const auto &r : t.records)
        out[shardOfBlock(r.block, shards)].records.push_back(&r);
    return out;
}

} // namespace cosmos::replay
