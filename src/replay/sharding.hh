/**
 * @file
 * Block-sharded views of a message trace.
 *
 * Cosmos prediction is per cache block (§3.1): every structure a
 * predictor keeps -- MHR, PHT, the arc-statistics "last message"
 * state -- is keyed by block address, so a trace can be partitioned
 * by block and each partition replayed independently.
 *
 * Sharding invariant: all records of one block land in exactly one
 * shard, and within a shard records keep their trace order. Under
 * that invariant, replaying the shards through separate predictor
 * banks and summing the (integer) statistics is *bit-identical* to a
 * serial replay of the whole trace.
 */

#ifndef COSMOS_REPLAY_SHARDING_HH
#define COSMOS_REPLAY_SHARDING_HH

#include <vector>

#include "trace/trace.hh"

namespace cosmos::replay
{

/** One block-disjoint slice of a trace (views, not copies). */
struct TraceShard
{
    /** Records in trace order; all blocks are exclusive to this shard. */
    std::vector<const trace::TraceRecord *> records;
};

/**
 * Shard index of @p block among @p shards shards. Deterministic
 * (a fixed bit mix, no process-dependent hashing) so shard layouts
 * are reproducible across runs and builds.
 */
unsigned shardOfBlock(Addr block, unsigned shards);

/**
 * Partition @p t by block into @p shards shards (some may be empty).
 * The returned shards point into @p t, which must outlive them.
 */
std::vector<TraceShard> shardByBlock(const trace::Trace &t,
                                     unsigned shards);

} // namespace cosmos::replay

#endif // COSMOS_REPLAY_SHARDING_HH
