#include "replay/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/log.hh"

namespace cosmos::replay
{

namespace
{

/** Pool and worker index of the current thread, if it is a worker. */
thread_local const ThreadPool *tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    threads = std::max(threads, 1u);
    queues_.resize(threads);
    counters_ = std::vector<SlotCounters>(threads + 1);
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("COSMOS_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<unsigned>(std::min(v, 256L));
        cosmos_warn("ignoring invalid COSMOS_THREADS value \"", env,
                    "\"");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<ThreadPool::WorkerStats>
ThreadPool::workerStats() const
{
    std::vector<WorkerStats> out(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        out[i].tasksRun =
            counters_[i].tasksRun.load(std::memory_order_relaxed);
        out[i].steals =
            counters_[i].steals.load(std::memory_order_relaxed);
        out[i].idleWaits =
            counters_[i].idleWaits.load(std::memory_order_relaxed);
    }
    return out;
}

void
ThreadPool::submit(Task task)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (tls_pool == this) {
            queues_[tls_worker].push_back(std::move(task));
        } else {
            queues_[nextQueue_].push_back(std::move(task));
            nextQueue_ = (nextQueue_ + 1) % queues_.size();
        }
    }
    cv_.notify_one();
}

ThreadPool::Task
ThreadPool::takeTask(unsigned self, bool &stolen)
{
    stolen = false;
    // Own deque first, newest task (LIFO keeps task trees local)...
    if (self < queues_.size() && !queues_[self].empty()) {
        Task t = std::move(queues_[self].back());
        queues_[self].pop_back();
        return t;
    }
    // ... then steal the oldest task from a sibling (FIFO).
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        auto &q = queues_[(self + 1 + i) % queues_.size()];
        if (!q.empty()) {
            Task t = std::move(q.front());
            q.pop_front();
            stolen = true;
            return t;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(unsigned index)
{
    tls_pool = this;
    tls_worker = index;
    SlotCounters &mine = counters_[index];
    for (;;) {
        Task task;
        bool stolen = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if ((task = takeTask(index, stolen)) == nullptr && !stop_) {
                mine.idleWaits.fetch_add(1,
                                         std::memory_order_relaxed);
                cv_.wait(lock, [&] {
                    return stop_ ||
                           (task = takeTask(index, stolen)) != nullptr;
                });
            }
            if (!task && stop_)
                return;
        }
        if (stolen)
            mine.steals.fetch_add(1, std::memory_order_relaxed);
        // Count before running: once a task's effects are visible,
        // so is its tasksRun tick (tests sum the counters at
        // quiescence detected through the tasks' own side effects).
        mine.tasksRun.fetch_add(1, std::memory_order_relaxed);
        task();
    }
}

bool
ThreadPool::runOneTask()
{
    Task task;
    bool stolen = false;
    const unsigned self = tls_pool == this
                              ? tls_worker
                              : static_cast<unsigned>(queues_.size());
    {
        std::lock_guard<std::mutex> guard(mutex_);
        task = takeTask(self, stolen);
    }
    if (!task)
        return false;
    SlotCounters &slot = counters_[self];
    if (stolen && self < queues_.size())
        slot.steals.fetch_add(1, std::memory_order_relaxed);
    slot.tasksRun.fetch_add(1, std::memory_order_relaxed);
    task();
    return true;
}

void
ThreadPool::parallelFor(std::size_t n,
                        std::function<void(std::size_t)> fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }

    struct LoopState
    {
        std::function<void(std::size_t)> fn;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable done_cv;
        std::size_t done = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<LoopState>();
    state->fn = std::move(fn);
    state->n = n;

    auto drain = [state] {
        for (;;) {
            const std::size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= state->n)
                return;
            try {
                state->fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            std::lock_guard<std::mutex> guard(state->mutex);
            if (++state->done == state->n)
                state->done_cv.notify_all();
        }
    };

    // One helper per worker (but no more than there are iterations);
    // a helper that starts after every index is claimed exits
    // immediately.
    const std::size_t helpers = std::min<std::size_t>(size(), n - 1);
    for (std::size_t i = 0; i < helpers; ++i)
        submit(drain);

    // The calling thread participates...
    drain();

    // ... and helps with unrelated queued work while stragglers run
    // (so a nested parallelFor inside a pool task cannot deadlock).
    std::unique_lock<std::mutex> lock(state->mutex);
    while (state->done < state->n) {
        lock.unlock();
        const bool helped = runOneTask();
        lock.lock();
        if (!helped && state->done < state->n) {
            state->done_cv.wait_for(lock,
                                    std::chrono::milliseconds(1), [&] {
                                        return state->done == state->n;
                                    });
        }
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace cosmos::replay
