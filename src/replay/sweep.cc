#include "replay/sweep.hh"

#include <algorithm>

#include "common/log.hh"
#include "cosmos/predictor_bank.hh"
#include "obs/trace_event.hh"
#include "replay/sharding.hh"

namespace cosmos::replay
{

namespace
{

ReplayResult
extract(const pred::PredictorBank &bank)
{
    ReplayResult r;
    r.accuracy = bank.accuracy();
    r.cacheArcs = bank.arcs(proto::Role::cache);
    r.directoryArcs = bank.arcs(proto::Role::directory);
    r.memory = bank.memoryStats();
    return r;
}

} // namespace

void
ReplayResult::merge(const ReplayResult &other)
{
    accuracy.merge(other.accuracy);
    cacheArcs.merge(other.cacheArcs);
    directoryArcs.merge(other.directoryArcs);
    memory.merge(other.memory);
}

SweepEngine::SweepEngine(ThreadPool &pool, TraceProvider provider)
    : pool_(pool), provider_(std::move(provider))
{
}

SweepEngine::SweepEngine(ThreadPool &pool) : pool_(pool) {}

std::vector<ReplayResult>
SweepEngine::run(const std::vector<ReplayJob> &jobs)
{
    cosmos_assert(provider_,
                  "SweepEngine::run requires a trace provider");
    // When jobs already saturate the workers, shard-splitting each
    // one only adds bank setup cost; shard within jobs when cells
    // are scarcer than threads.
    const unsigned default_shards =
        jobs.size() >= pool_.size()
            ? 1
            : static_cast<unsigned>(
                  (pool_.size() + jobs.size() - 1) / jobs.size());

    std::vector<ReplayResult> results(jobs.size());
    pool_.parallelFor(jobs.size(), [&](std::size_t i) {
        COSMOS_SPAN_ARGS("replay", "cell", "job", i);
        const trace::Trace &t = provider_(jobs[i]);
        results[i] = replayTrace(t, jobs[i], default_shards);
    });
    return results;
}

ReplayResult
SweepEngine::replayTrace(const trace::Trace &t, const ReplayJob &job,
                         unsigned default_shards)
{
    unsigned shards = job.shards != 0 ? job.shards : default_shards;
    shards = std::max(shards, 1u);
    // A shard per ~64k records is the break-even floor; below that,
    // bank construction dominates.
    const unsigned useful = static_cast<unsigned>(
        t.records.size() / 65536 + 1);
    shards = std::min(shards, useful);

    if (shards == 1) {
        COSMOS_SPAN_ARGS("replay", "shard", "records",
                         t.records.size());
        pred::PredictorBank bank(t.numNodes, job.config);
        bank.reserveFromCensus(trace::moduleBlockCensus(t));
        bank.replayBatched(t, job.maxIteration);
        return extract(bank);
    }

    const auto parts = shardByBlock(t, shards);
    std::vector<ReplayResult> partial(parts.size());
    pool_.parallelFor(parts.size(), [&](std::size_t s) {
        COSMOS_SPAN_ARGS("replay", "shard", "index", s, "records",
                         parts[s].records.size());
        pred::PredictorBank bank(t.numNodes, job.config);
        bank.reserveFromCensus(
            trace::moduleBlockCensus(parts[s].records, t.numNodes));
        bank.replayBatched(parts[s].records, job.maxIteration);
        partial[s] = extract(bank);
    });

    // Deterministic reduction: fold in shard-index order.
    ReplayResult merged = std::move(partial.front());
    for (std::size_t s = 1; s < partial.size(); ++s)
        merged.merge(partial[s]);
    return merged;
}

} // namespace cosmos::replay
