/**
 * @file
 * A small work-stealing thread pool for the replay engine.
 *
 * Fixed worker count (default: COSMOS_THREADS environment variable,
 * else std::thread::hardware_concurrency). Each worker owns a deque;
 * it pops its own tasks LIFO and steals FIFO from siblings, so a
 * task tree submitted from inside a worker stays hot on that worker
 * while idle workers drain the oldest (typically largest) work.
 *
 * parallelFor() is the main entry point. The calling thread
 * participates in the loop and, while waiting for stragglers, helps
 * execute other queued tasks -- nested parallelFor from inside a
 * pool task therefore cannot deadlock.
 */

#ifndef COSMOS_REPLAY_THREAD_POOL_HH
#define COSMOS_REPLAY_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cosmos::replay
{

/** Fixed-size pool of worker threads with per-worker deques. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Utilization counters of one executor. Slots 0..size()-1 are the
     * workers; slot size() aggregates tasks run by outside threads
     * helping through parallelFor(). Across all slots, tasksRun sums
     * to exactly tasksSubmitted() once the pool is quiescent; the
     * per-slot split (and steals/idleWaits) depends on scheduling and
     * is *not* deterministic.
     */
    struct WorkerStats
    {
        std::uint64_t tasksRun = 0;
        /** Tasks taken from a sibling's deque rather than our own. */
        std::uint64_t steals = 0;
        /** Times the worker found every deque empty and blocked. */
        std::uint64_t idleWaits = 0;
    };

    /** @param threads worker count; 0 = defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains nothing: outstanding tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Queue one task. From a worker thread the task lands on that
     * worker's own deque (LIFO); from outside, deques are fed
     * round-robin.
     */
    void submit(Task task);

    /**
     * Run fn(0) .. fn(n-1) across the pool and the calling thread;
     * returns when all n calls have finished. The first exception
     * thrown by any call is rethrown here (the loop still runs to
     * completion).
     */
    void parallelFor(std::size_t n, std::function<void(std::size_t)> fn);

    /** Queue a callable and get a future for its result. */
    template <typename F>
    auto async(F f) -> std::future<decltype(f())>
    {
        using R = decltype(f());
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> future = task->get_future();
        submit([task] { (*task)(); });
        return future;
    }

    /**
     * Resolved worker count: COSMOS_THREADS when set to a positive
     * integer, else hardware_concurrency (min 1).
     */
    static unsigned defaultThreadCount();

    /** Total tasks ever handed to submit(). */
    std::uint64_t tasksSubmitted() const
    {
        return submitted_.load(std::memory_order_relaxed);
    }

    /** Snapshot of the size()+1 executor counters (see WorkerStats). */
    std::vector<WorkerStats> workerStats() const;

  private:
    /** WorkerStats with atomic fields: the external-helper slot is
     *  shared by arbitrarily many caller threads. */
    struct SlotCounters
    {
        std::atomic<std::uint64_t> tasksRun{0};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> idleWaits{0};
    };

    void workerLoop(unsigned index);

    /** Pop-or-steal one queued task and run it. False if idle. */
    bool runOneTask();

    /** Must hold mutex_. Pops from own deque, else steals; sets
     *  @p stolen when the task came from a sibling's deque. */
    Task takeTask(unsigned self, bool &stolen);

    std::vector<std::deque<Task>> queues_;
    std::vector<std::thread> threads_;
    /** size() + 1 slots; the last belongs to external helpers. */
    std::vector<SlotCounters> counters_;
    std::atomic<std::uint64_t> submitted_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    unsigned nextQueue_ = 0; ///< round-robin cursor for outside submits
};

} // namespace cosmos::replay

#endif // COSMOS_REPLAY_THREAD_POOL_HH
