/**
 * @file
 * Parallel predictor-configuration sweeps over message traces.
 *
 * The paper's evaluation replays the same traces through many Cosmos
 * configurations (Tables 5-8 are (app x depth x filter x run-length)
 * grids). Each cell is independent, and within a cell prediction is
 * per-block, so the engine parallelizes on two axes:
 *
 *  - across ReplayJobs: every grid cell runs as its own pool task;
 *  - within a job: when cells are scarcer than workers, the trace is
 *    block-sharded (replay/sharding.hh) and the shards replay through
 *    separate PredictorBanks whose statistics are then merged in
 *    shard-index order.
 *
 * All statistics are integer counters merged by addition, so sweep
 * results are bit-identical to a serial replay regardless of thread
 * or shard count.
 */

#ifndef COSMOS_REPLAY_SWEEP_HH
#define COSMOS_REPLAY_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "cosmos/accuracy.hh"
#include "cosmos/arc_stats.hh"
#include "cosmos/cosmos_predictor.hh"
#include "cosmos/memory_stats.hh"
#include "replay/thread_pool.hh"
#include "trace/trace.hh"

namespace cosmos::replay
{

/** One sweep cell: which trace, and which predictor configuration. */
struct ReplayJob
{
    std::string app;
    /** Traced iterations; -1 = workload default. */
    int iterations = -1;
    OwnerReadPolicy policy = OwnerReadPolicy::half_migratory;
    std::uint64_t seed = 0x5eedc05305ULL;
    /** Predictor configuration replayed over the trace. */
    pred::CosmosConfig config{};
    /** Replay only records with iteration <= this (Table 8 prefixes). */
    std::int32_t maxIteration = INT32_MAX;
    /** Block shards within this job; 0 = engine decides. */
    unsigned shards = 0;
};

/** Everything a sweep cell produces. */
struct ReplayResult
{
    pred::AccuracyTracker accuracy;
    pred::ArcStats cacheArcs;
    pred::ArcStats directoryArcs;
    pred::MemoryStats memory;

    /**
     * Fold another (block-disjoint) partial result into this one.
     * Addition of integer counters: associative, and commutative up
     * to iteration-vector sizing -- the engine still merges in shard
     * index order so the reduction is wholly deterministic.
     */
    void merge(const ReplayResult &other);
};

/** Maps a job to the trace it replays (must outlive the sweep). */
using TraceProvider =
    std::function<const trace::Trace &(const ReplayJob &)>;

/** Runs grids of ReplayJobs on a ThreadPool. */
class SweepEngine
{
  public:
    /** Engine whose jobs fetch traces through @p provider. */
    SweepEngine(ThreadPool &pool, TraceProvider provider);

    /** Engine used only via replayTrace() (no trace provider). */
    explicit SweepEngine(ThreadPool &pool);

    /**
     * Run every job, fetching traces through the provider; result i
     * corresponds to jobs[i]. Requires a provider.
     */
    std::vector<ReplayResult> run(const std::vector<ReplayJob> &jobs);

    /**
     * Replay one job over an already-fetched trace. With shards > 1
     * (explicit, or chosen by the engine when @p default_shards is
     * passed as 0), the replay is block-sharded across the pool.
     */
    ReplayResult replayTrace(const trace::Trace &t, const ReplayJob &job,
                             unsigned default_shards = 1);

    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool &pool_;
    TraceProvider provider_;
};

} // namespace cosmos::replay

#endif // COSMOS_REPLAY_SWEEP_HH
