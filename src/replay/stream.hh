/**
 * @file
 * Streaming replay: pull records from a trace::RecordSource in
 * chunks and feed them through the batched predictor pipeline, so a
 * replay's memory footprint is one chunk buffer plus predictor
 * tables -- constant in stream length. This is how billion-message
 * synthetic streams (forge::SynthSource lowered through
 * forge::CoherenceMessageStream) reach the predictors without ever
 * materializing a trace::Trace.
 *
 * With shards > 1 each pulled chunk is routed into per-shard buffers
 * (cosmos/sharded_bank.hh) and the shards apply in parallel on the
 * supplied pool. Chunk boundaries are barriers between pull and
 * apply only -- predictor state persists across chunks inside each
 * shard bank, so the result is bit-identical to a serial replay of
 * the whole stream, for any chunk size and any shard count.
 */

#ifndef COSMOS_REPLAY_STREAM_HH
#define COSMOS_REPLAY_STREAM_HH

#include <cstdint>

#include "cosmos/batch.hh"
#include "cosmos/cosmos_predictor.hh"
#include "replay/sweep.hh"
#include "replay/thread_pool.hh"
#include "trace/record_source.hh"

namespace cosmos::replay
{

/** How to consume a record stream. */
struct StreamConfig
{
    /** Independent predictor-bank shards; 1 = one serial bank. */
    unsigned shards = 1;

    /** Records pulled (and staged) per chunk. Large enough to
     *  amortize the per-chunk stage/route pass, small enough that
     *  the chunk buffer stays a rounding error next to the tables. */
    std::size_t chunkRecords = std::size_t{1} << 16;

    /** Batched-observe tunables, passed through to every bank. */
    pred::BatchConfig batch{};

    /** Records with iteration > maxIteration are skipped (Table 8
     *  prefix replays work on streams too). */
    std::int32_t maxIteration = INT32_MAX;
};

/** What a streaming replay consumed (artifact metadata). */
struct StreamStats
{
    std::uint64_t records = 0; ///< records pulled from the source
    std::uint64_t chunks = 0;  ///< chunks the pull loop made
};

/**
 * Replay @p source to exhaustion through Cosmos banks configured by
 * @p cfg. Statistics merge in shard-index order, so the returned
 * counters are bit-identical for any (shards, chunkRecords, batch)
 * choice -- including a materialized PredictorBank::replay of the
 * same records.
 */
ReplayResult replayStream(trace::RecordSource &source,
                          const pred::CosmosConfig &cfg,
                          const StreamConfig &sc, ThreadPool &pool,
                          StreamStats *stats = nullptr);

} // namespace cosmos::replay

#endif // COSMOS_REPLAY_STREAM_HH
