#include "model/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace cosmos::model
{

const char *
toString(Module m)
{
    return m == Module::cache ? "cache" : "directory";
}

const char *
toString(DirAbstract s)
{
    switch (s) {
      case DirAbstract::idle:        return "idle";
      case DirAbstract::shared:      return "shared";
      case DirAbstract::exclusive:   return "exclusive";
      case DirAbstract::busy_read:   return "busy_read";
      case DirAbstract::busy_write:  return "busy_write";
      case DirAbstract::busy_recall: return "busy_recall";
    }
    return "?";
}

const char *
inputName(std::uint8_t input)
{
    if (input == input_proc_read)
        return "proc_read";
    if (input == input_proc_write)
        return "proc_write";
    cosmos_assert(input < proto::num_msg_types, "bad table input ",
                  unsigned{input});
    return proto::toString(static_cast<proto::MsgType>(input));
}

namespace
{

const char *
stateName(Module m, std::uint8_t st)
{
    if (m == Module::cache)
        return proto::toString(static_cast<proto::LineState>(st));
    return toString(static_cast<DirAbstract>(st));
}

/** Inputs a module can receive, in reporting order. */
std::vector<std::uint8_t>
moduleInputs(Module m)
{
    std::vector<std::uint8_t> in;
    for (unsigned t = 0; t < proto::num_msg_types; ++t) {
        const auto mt = static_cast<proto::MsgType>(t);
        const bool cacheSide = receiverRole(mt) == proto::Role::cache;
        if (cacheSide == (m == Module::cache))
            in.push_back(static_cast<std::uint8_t>(t));
    }
    if (m == Module::cache) {
        in.push_back(input_proc_read);
        in.push_back(input_proc_write);
    }
    return in;
}

/** All declared states of a module, in enum order. */
std::vector<std::uint8_t>
moduleStates(Module m)
{
    std::vector<std::uint8_t> st;
    for (unsigned s = 0; s < 6; ++s)
        st.push_back(static_cast<std::uint8_t>(s));
    (void)m; // both modules declare six states
    return st;
}

} // namespace

std::string
TableKey::format() const
{
    std::string s = detail::concat(toString(module), " ",
                                   stateName(module, state), " x ",
                                   inputName(input));
    if (!context.empty())
        s += detail::concat(" [", context, "]");
    return s;
}

std::string
Outcome::format(Module module) const
{
    std::string s = detail::concat("-> ", stateName(module, next));
    if (!emissions.empty()) {
        s += " !";
        for (proto::MsgType t : emissions)
            s += detail::concat(" ", proto::toString(t));
    }
    return s;
}

void
TransitionTable::record(const Sample &s)
{
    TableKey key;
    key.module = s.module;
    key.state = s.pre;
    key.input = s.input;
    key.context = s.context;

    Outcome o;
    o.next = s.post;
    o.emissions = s.emissions;
    std::sort(o.emissions.begin(), o.emissions.end());
    o.emissions.erase(
        std::unique(o.emissions.begin(), o.emissions.end()),
        o.emissions.end());

    TableEntry &e = entries_[key];
    e.outcomes.insert(std::move(o));
    ++e.hits;
}

std::set<std::uint8_t>
TransitionTable::observedStates(Module m) const
{
    std::set<std::uint8_t> st;
    for (const auto &[key, entry] : entries_) {
        if (key.module != m)
            continue;
        st.insert(key.state);
        for (const Outcome &o : entry.outcomes)
            st.insert(o.next);
    }
    return st;
}

std::vector<const TableKey *>
TransitionTable::nondeterministicKeys() const
{
    std::vector<const TableKey *> keys;
    for (const auto &[key, entry] : entries_) {
        if (entry.outcomes.size() <= 1)
            continue;
        // "q" entries aggregate over the queued-request backlog;
        // their outcome legitimately depends on what was waiting.
        if (key.context.find('q') != std::string::npos)
            continue;
        keys.push_back(&key);
    }
    return keys;
}

const char *
LintFinding::toString(Kind k)
{
    switch (k) {
      case Kind::unreachable_state: return "unreachable_state";
      case Kind::dead_input:        return "dead_input";
      case Kind::nondeterministic:  return "nondeterministic";
      case Kind::forwarding_asymmetry:
        return "forwarding_asymmetry";
    }
    return "?";
}

std::vector<LintFinding>
TransitionTable::lint() const
{
    std::vector<LintFinding> findings;

    for (Module m : {Module::cache, Module::directory}) {
        const std::set<std::uint8_t> observed = observedStates(m);

        for (std::uint8_t st : moduleStates(m)) {
            if (observed.count(st))
                continue;
            findings.push_back(
                {LintFinding::Kind::unreachable_state, m,
                 detail::concat("state ", stateName(m, st),
                                " is never reached")});
        }

        // Inputs never seen module-wide get one finding; inputs seen
        // somewhere get one finding per observed state that never
        // receives them.
        std::set<std::uint8_t> observedInputs;
        for (const auto &[key, entry] : entries_)
            if (key.module == m)
                observedInputs.insert(key.input);

        for (std::uint8_t in : moduleInputs(m)) {
            if (!observedInputs.count(in)) {
                findings.push_back(
                    {LintFinding::Kind::dead_input, m,
                     detail::concat("input ", inputName(in),
                                    " is never exercised")});
                continue;
            }
            for (std::uint8_t st : observed) {
                bool seen = false;
                for (const auto &[key, entry] : entries_) {
                    if (key.module == m && key.state == st &&
                        key.input == in) {
                        seen = true;
                        break;
                    }
                }
                if (!seen) {
                    findings.push_back(
                        {LintFinding::Kind::dead_input, m,
                         detail::concat("state ", stateName(m, st),
                                        " never receives ",
                                        inputName(in))});
                }
            }
        }
    }

    // inval_ro_request sweeps are never forwarded (the home holds
    // the data while the block is shared), so no cache row handling
    // one may emit a data response. A violation here means
    // DirectoryController::forward() started marking ro-sweeps
    // `forwarded`, which the fwd_ack handshake does not cover.
    for (const auto &[key, entry] : entries_) {
        if (key.module != Module::cache ||
            key.input != static_cast<std::uint8_t>(
                             proto::MsgType::inval_ro_request)) {
            continue;
        }
        for (const Outcome &o : entry.outcomes) {
            for (proto::MsgType t : o.emissions) {
                if (t == proto::MsgType::get_ro_response ||
                    t == proto::MsgType::get_rw_response) {
                    findings.push_back(
                        {LintFinding::Kind::forwarding_asymmetry,
                         key.module,
                         detail::concat(key.format(),
                                        " emits a forwarded data "
                                        "response (",
                                        proto::toString(t), ")")});
                }
            }
        }
    }

    for (const TableKey *key : nondeterministicKeys()) {
        const TableEntry &e = entries_.at(*key);
        std::string nexts;
        for (const Outcome &o : e.outcomes) {
            if (!nexts.empty())
                nexts += ", ";
            nexts += stateName(key->module, o.next);
        }
        findings.push_back(
            {LintFinding::Kind::nondeterministic, key->module,
             detail::concat(key->format(), " has ", e.outcomes.size(),
                            " outcomes (next states: {", nexts, "})")});
    }

    return findings;
}

const char *
ConsistencyFinding::toString(Kind k)
{
    switch (k) {
      case Kind::undeclared_transition: return "undeclared_transition";
      case Kind::unreachable_reached:   return "unreachable_reached";
      case Kind::outcome_mismatch:      return "outcome_mismatch";
    }
    return "?";
}

std::vector<ConsistencyFinding>
TransitionTable::diffAgainstDeclared(
    const proto::ProtocolTable &declared) const
{
    std::vector<ConsistencyFinding> findings;
    for (const auto &[key, entry] : entries_) {
        const proto::Role role = key.module == Module::cache
                                     ? proto::Role::cache
                                     : proto::Role::directory;
        const proto::GuardBits guard =
            proto::guardFromContext(key.context);
        const proto::TransitionRow *row =
            declared.find(role, key.state, key.input, guard);
        if (!row) {
            findings.push_back(
                {ConsistencyFinding::Kind::undeclared_transition,
                 key.module,
                 detail::concat("no declared row covers ",
                                key.format())});
            continue;
        }
        if (row->unreachable) {
            findings.push_back(
                {ConsistencyFinding::Kind::unreachable_reached,
                 key.module,
                 detail::concat(key.format(),
                                " matched the declared-unreachable "
                                "marker at ",
                                row->where())});
            continue;
        }
        // A completing row serviced from the backlog folds the
        // re-served request's transition into the same sample.
        if (row->completes && (guard & proto::guard_q))
            continue;

        std::vector<proto::MsgType> want = row->emits;
        std::sort(want.begin(), want.end());
        want.erase(std::unique(want.begin(), want.end()), want.end());
        for (const Outcome &o : entry.outcomes) {
            if (o.next == row->next && o.emissions == want)
                continue;
            Outcome decl;
            decl.next = row->next;
            decl.emissions = want;
            findings.push_back(
                {ConsistencyFinding::Kind::outcome_mismatch,
                 key.module,
                 detail::concat(key.format(), " observed ",
                                o.format(key.module),
                                " but the row at ", row->where(),
                                " declares ", decl.format(key.module))});
        }
    }
    return findings;
}

std::string
TransitionTable::format() const
{
    std::ostringstream os;
    Module last = Module::directory;
    bool first = true;
    for (const auto &[key, entry] : entries_) {
        if (first || key.module != last) {
            os << (first ? "" : "\n") << toString(key.module)
               << " transitions:\n";
            last = key.module;
            first = false;
        }
        for (const Outcome &o : entry.outcomes) {
            os << "  " << std::left << std::setw(52)
               << key.format().substr(
                      std::string(toString(key.module)).size() + 1)
               << " " << o.format(key.module);
            if (entry.outcomes.size() > 1)
                os << "  (1 of " << entry.outcomes.size() << ")";
            os << "  [" << entry.hits << " hits]\n";
        }
    }
    return os.str();
}

} // namespace cosmos::model
