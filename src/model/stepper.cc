#include "model/stepper.hh"

#include "common/log.hh"

namespace cosmos::model
{

Stepper::Stepper(const ModelConfig &mc)
    : mc_(mc), cfg_(mc.machineConfig()),
      amap_(cfg_.blockBytes, cfg_.pageBytes, cfg_.numNodes),
      table_(proto::ProtocolTable::build(cfg_))
{
    mc_.validate();
    auto capture = [this](const proto::Msg &m) {
        captured_.push_back(m);
    };
    caches_.reserve(cfg_.numNodes);
    dirs_.reserve(cfg_.numNodes);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        caches_.push_back(std::make_unique<proto::CacheController>(
            n, amap_, cfg_, table_, eq_, capture));
        dirs_.push_back(std::make_unique<proto::DirectoryController>(
            n, amap_, cfg_, table_, eq_, capture));
    }
}

unsigned
Stepper::blockIdx(Addr block) const
{
    const unsigned b = static_cast<unsigned>(block / cfg_.pageBytes);
    cosmos_assert(b < mc_.numBlocks && mc_.blockAddr(b) == block,
                  "address 0x", std::hex, block,
                  " is not a modeled block");
    return b;
}

proto::Msg
Stepper::toMsg(const CompactMsg &m) const
{
    proto::Msg r;
    r.type = m.type;
    r.src = m.src;
    r.dst = m.dst;
    r.block = mc_.blockAddr(m.blockIdx);
    r.requester = m.requester == no_node ? invalid_node
                                         : NodeId{m.requester};
    r.forwarded = m.forwarded;
    r.wantWritable = m.wantWritable;
    return r;
}

CompactMsg
Stepper::fromMsg(const proto::Msg &m) const
{
    CompactMsg r;
    r.type = m.type;
    r.src = static_cast<std::uint8_t>(m.src);
    r.dst = static_cast<std::uint8_t>(m.dst);
    r.requester = m.requester == invalid_node
                      ? no_node
                      : static_cast<std::uint8_t>(m.requester);
    r.blockIdx = static_cast<std::uint8_t>(blockIdx(m.block));
    r.forwarded = m.forwarded;
    r.wantWritable = m.wantWritable;
    return r;
}

void
Stepper::load(const GlobalState &s)
{
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        cacheScratch_.lines.clear();
        for (unsigned b = 0; b < mc_.numBlocks; ++b) {
            const auto st = static_cast<proto::LineState>(s.line[n][b]);
            if (st != proto::LineState::invalid)
                cacheScratch_.lines.emplace_back(mc_.blockAddr(b), st);
        }
        cacheScratch_.invalResidue = s.invalResidue[n];
        caches_[n]->restore(cacheScratch_);

        dirScratch_.entries.clear();
        for (unsigned b = 0; b < mc_.numBlocks; ++b) {
            if (mc_.home(b) != n)
                continue;
            const DirEntryState &e = s.dir[b];
            if (e.state == proto::DirState::idle && !e.busy)
                continue;
            proto::DirEntrySnapshot es;
            es.block = mc_.blockAddr(b);
            es.state = e.state;
            es.sharers = e.sharers;
            es.owner = e.owner == no_node ? invalid_node
                                          : NodeId{e.owner};
            es.busy = e.busy;
            es.pendingAcks = e.pendingAcks;
            es.genuineUpgrade = e.genuineUpgrade;
            es.recall = e.recall;
            es.fwdData = e.fwdData;
            es.fwdAckPending = e.fwdAckPending;
            es.current = toMsg(e.current);
            for (unsigned i = 0; i < e.waiting.count; ++i)
                es.waiting.push_back(toMsg(e.waiting.items[i]));
            dirScratch_.entries.push_back(std::move(es));
        }
        dirs_[n]->restore(dirScratch_);
    }
}

void
Stepper::readBack(GlobalState &out)
{
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        for (unsigned b = 0; b < mc_.numBlocks; ++b)
            out.line[n][b] =
                static_cast<std::uint8_t>(proto::LineState::invalid);
        caches_[n]->snapshot(cacheScratch_);
        for (const auto &[block, st] : cacheScratch_.lines)
            out.line[n][blockIdx(block)] =
                static_cast<std::uint8_t>(st);
        out.invalResidue[n] =
            static_cast<std::uint8_t>(cacheScratch_.invalResidue);

        dirs_[n]->snapshot(dirScratch_);
        for (unsigned b = 0; b < mc_.numBlocks; ++b)
            if (mc_.home(b) == n)
                out.dir[b] = DirEntryState{};
        for (const proto::DirEntrySnapshot &es : dirScratch_.entries) {
            DirEntryState &e = out.dir[blockIdx(es.block)];
            e.state = es.state;
            e.sharers = static_cast<std::uint8_t>(es.sharers);
            e.owner = es.owner == invalid_node
                          ? no_node
                          : static_cast<std::uint8_t>(es.owner);
            e.busy = es.busy;
            // Normalize fields that are only meaningful while the
            // entry is mid-transaction: the live controller leaves
            // the last transaction's request behind, and carrying it
            // into the encoding would split identical protocol
            // states.
            if (es.busy) {
                e.pendingAcks =
                    static_cast<std::uint8_t>(es.pendingAcks);
                e.genuineUpgrade = es.genuineUpgrade;
                e.recall = es.recall;
                e.fwdData = es.fwdData;
                e.fwdAckPending = es.fwdAckPending;
                if (!es.recall)
                    e.current = fromMsg(es.current);
            }
            for (const proto::Msg &w : es.waiting)
                e.waiting.push(fromMsg(w));
        }
    }
}

DirAbstract
Stepper::dirAbstract(const proto::DirEntrySnapshot &e) const
{
    if (!e.busy)
        return static_cast<DirAbstract>(e.state);
    if (e.recall)
        return DirAbstract::busy_recall;
    return e.current.type == proto::MsgType::get_ro_request
               ? DirAbstract::busy_read
               : DirAbstract::busy_write;
}

proto::DirEntrySnapshot
Stepper::dirEntry(NodeId n, Addr block)
{
    dirs_[n]->snapshot(dirScratch_);
    for (const proto::DirEntrySnapshot &es : dirScratch_.entries)
        if (es.block == block)
            return es;
    return proto::DirEntrySnapshot{};
}

void
Stepper::drainInto(Sample &sample, std::vector<proto::Msg> &worklist,
                   GlobalState &work, NodeId handled)
{
    while (eq_.pending())
        eq_.runOne();
    for (const proto::Msg &m : captured_) {
        cosmos_assert(m.src == handled,
                      "message emitted by a module other than the "
                      "handled one: ",
                      m.format());
        sample.emissions.push_back(m.type);
        if (m.src == m.dst)
            worklist.push_back(m);
        else
            work.channel(m.src, m.dst).push(fromMsg(m));
    }
    captured_.clear();
}

namespace
{

/** The guard-relevant slice of a pre-handler entry snapshot, in the
 *  shape the transition table's guard predicates are declared over.
 *  DirectoryController::guardView builds the identical view from the
 *  live Entry, so the stepper and the dispatch derive the same
 *  guards. */
proto::DirGuardView
viewOf(const proto::DirEntrySnapshot &e)
{
    proto::DirGuardView v;
    v.busy = e.busy;
    v.state = static_cast<std::uint8_t>(e.state);
    v.sharers = e.sharers;
    v.pendingAcks = e.pendingAcks;
    v.genuineUpgrade = e.genuineUpgrade;
    v.recall = e.recall;
    v.fwdData = e.fwdData;
    v.fwdAckPending = e.fwdAckPending;
    v.waitingEmpty = e.waiting.empty();
    v.currentType = e.current.type;
    return v;
}

} // namespace

void
Stepper::runCascade(Result &out, std::vector<proto::Msg> &worklist,
                    GlobalState &work)
{
    std::size_t at = 0;
    while (at < worklist.size()) {
        const proto::Msg m = worklist[at++];
        Sample sample;
        if (receiverRole(m.type) == proto::Role::cache) {
            sample.module = Module::cache;
            sample.input = static_cast<std::uint8_t>(m.type);
            sample.pre = static_cast<std::uint8_t>(
                caches_[m.dst]->state(m.block));
            // The guard bits are exactly what the controller's own
            // dispatch derives (the forwarded mark and, for recalls,
            // the wanted copy kind -- message state, not cache state);
            // their canonical rendering is the sample context, so the
            // extracted rows stay deterministic and the consistency
            // diff can match samples back to declared rows.
            const proto::GuardBits guard = proto::cacheMsgGuard(m);
            sample.context = proto::guardContext(guard);
            sample.row = table_.find(proto::Role::cache, sample.pre,
                                     sample.input, guard);
            caches_[m.dst]->handleMessage(m);
            drainInto(sample, worklist, work, m.dst);
            sample.post = static_cast<std::uint8_t>(
                caches_[m.dst]->state(m.block));
        } else {
            sample.module = Module::directory;
            sample.input = static_cast<std::uint8_t>(m.type);
            const proto::DirEntrySnapshot pre = dirEntry(m.dst, m.block);
            sample.pre = static_cast<std::uint8_t>(dirAbstract(pre));
            // Same single source of truth as the cache branch: the
            // guard predicates over the directory's hidden state (ack
            // counts, the genuineUpgrade latch, forward-in-flight
            // flags, the FIFO backlog) live in dirMsgGuard.
            const proto::GuardBits guard =
                proto::dirMsgGuard(viewOf(pre), m.type, m.src);
            sample.context = proto::guardContext(guard);
            sample.row = table_.find(proto::Role::directory,
                                     sample.pre, sample.input, guard);
            dirs_[m.dst]->handleMessage(m);
            drainInto(sample, worklist, work, m.dst);
            sample.post = static_cast<std::uint8_t>(
                dirAbstract(dirEntry(m.dst, m.block)));
        }
        out.samples.push_back(std::move(sample));
    }
    worklist.clear();
}

void
Stepper::step(const GlobalState &s, const Action &a, Result &out)
{
    out.failed = false;
    out.failureMsg.clear();
    out.samples.clear();

    load(s);
    captured_.clear();

    GlobalState work = s;
    std::vector<proto::Msg> worklist;

    FailureTrap trap;
    try {
        if (a.kind == Action::Kind::deliver) {
            const CompactMsg taken =
                work.channel(a.src, a.dst).takeAt(a.depth);
            cosmos_assert(taken == a.msg,
                          "deliver action does not match the channel "
                          "contents");
            worklist.push_back(toMsg(taken));
        } else {
            const bool write = a.kind == Action::Kind::issue_write;
            Sample sample;
            sample.module = Module::cache;
            sample.input = write ? input_proc_write : input_proc_read;
            const Addr addr = mc_.blockAddr(a.blockIdx);
            sample.pre = static_cast<std::uint8_t>(
                caches_[a.node]->state(addr));
            sample.row =
                table_.find(proto::Role::cache, sample.pre,
                            sample.input, proto::guard_none);
            caches_[a.node]->access(addr, write, []() {});
            drainInto(sample, worklist, work, a.node);
            sample.post = static_cast<std::uint8_t>(
                caches_[a.node]->state(addr));
            out.samples.push_back(std::move(sample));
        }
        runCascade(out, worklist, work);
        readBack(work);
        out.next = work;
    } catch (const RecoverableError &e) {
        out.failed = true;
        out.failureMsg = detail::concat(e.what(), " (", e.file(), ":",
                                        e.line(), ")");
        // Discard leftover scheduled events so the next step starts
        // from a clean queue; running them against half-mutated
        // controllers may fail again, which is fine -- they are being
        // thrown away.
        while (eq_.pending()) {
            try {
                eq_.runOne();
            } catch (const RecoverableError &) {
            }
        }
        captured_.clear();
    }
}

} // namespace cosmos::model
