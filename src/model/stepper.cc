#include "model/stepper.hh"

#include "common/log.hh"

namespace cosmos::model
{

Stepper::Stepper(const ModelConfig &mc)
    : mc_(mc), cfg_(mc.machineConfig()),
      amap_(cfg_.blockBytes, cfg_.pageBytes, cfg_.numNodes)
{
    mc_.validate();
    auto capture = [this](const proto::Msg &m) {
        captured_.push_back(m);
    };
    caches_.reserve(cfg_.numNodes);
    dirs_.reserve(cfg_.numNodes);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        caches_.push_back(std::make_unique<proto::CacheController>(
            n, amap_, cfg_, eq_, capture));
        dirs_.push_back(std::make_unique<proto::DirectoryController>(
            n, amap_, cfg_, eq_, capture));
    }
}

unsigned
Stepper::blockIdx(Addr block) const
{
    const unsigned b = static_cast<unsigned>(block / cfg_.pageBytes);
    cosmos_assert(b < mc_.numBlocks && mc_.blockAddr(b) == block,
                  "address 0x", std::hex, block,
                  " is not a modeled block");
    return b;
}

proto::Msg
Stepper::toMsg(const CompactMsg &m) const
{
    proto::Msg r;
    r.type = m.type;
    r.src = m.src;
    r.dst = m.dst;
    r.block = mc_.blockAddr(m.blockIdx);
    r.requester = m.requester == no_node ? invalid_node
                                         : NodeId{m.requester};
    r.forwarded = m.forwarded;
    r.wantWritable = m.wantWritable;
    return r;
}

CompactMsg
Stepper::fromMsg(const proto::Msg &m) const
{
    CompactMsg r;
    r.type = m.type;
    r.src = static_cast<std::uint8_t>(m.src);
    r.dst = static_cast<std::uint8_t>(m.dst);
    r.requester = m.requester == invalid_node
                      ? no_node
                      : static_cast<std::uint8_t>(m.requester);
    r.blockIdx = static_cast<std::uint8_t>(blockIdx(m.block));
    r.forwarded = m.forwarded;
    r.wantWritable = m.wantWritable;
    return r;
}

void
Stepper::load(const GlobalState &s)
{
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        cacheScratch_.lines.clear();
        for (unsigned b = 0; b < mc_.numBlocks; ++b) {
            const auto st = static_cast<proto::LineState>(s.line[n][b]);
            if (st != proto::LineState::invalid)
                cacheScratch_.lines.emplace_back(mc_.blockAddr(b), st);
        }
        cacheScratch_.invalResidue = s.invalResidue[n];
        caches_[n]->restore(cacheScratch_);

        dirScratch_.entries.clear();
        for (unsigned b = 0; b < mc_.numBlocks; ++b) {
            if (mc_.home(b) != n)
                continue;
            const DirEntryState &e = s.dir[b];
            if (e.state == proto::DirState::idle && !e.busy)
                continue;
            proto::DirEntrySnapshot es;
            es.block = mc_.blockAddr(b);
            es.state = e.state;
            es.sharers = e.sharers;
            es.owner = e.owner == no_node ? invalid_node
                                          : NodeId{e.owner};
            es.busy = e.busy;
            es.pendingAcks = e.pendingAcks;
            es.genuineUpgrade = e.genuineUpgrade;
            es.recall = e.recall;
            es.fwdData = e.fwdData;
            es.fwdAckPending = e.fwdAckPending;
            es.current = toMsg(e.current);
            for (unsigned i = 0; i < e.waiting.count; ++i)
                es.waiting.push_back(toMsg(e.waiting.items[i]));
            dirScratch_.entries.push_back(std::move(es));
        }
        dirs_[n]->restore(dirScratch_);
    }
}

void
Stepper::readBack(GlobalState &out)
{
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        for (unsigned b = 0; b < mc_.numBlocks; ++b)
            out.line[n][b] =
                static_cast<std::uint8_t>(proto::LineState::invalid);
        caches_[n]->snapshot(cacheScratch_);
        for (const auto &[block, st] : cacheScratch_.lines)
            out.line[n][blockIdx(block)] =
                static_cast<std::uint8_t>(st);
        out.invalResidue[n] =
            static_cast<std::uint8_t>(cacheScratch_.invalResidue);

        dirs_[n]->snapshot(dirScratch_);
        for (unsigned b = 0; b < mc_.numBlocks; ++b)
            if (mc_.home(b) == n)
                out.dir[b] = DirEntryState{};
        for (const proto::DirEntrySnapshot &es : dirScratch_.entries) {
            DirEntryState &e = out.dir[blockIdx(es.block)];
            e.state = es.state;
            e.sharers = static_cast<std::uint8_t>(es.sharers);
            e.owner = es.owner == invalid_node
                          ? no_node
                          : static_cast<std::uint8_t>(es.owner);
            e.busy = es.busy;
            // Normalize fields that are only meaningful while the
            // entry is mid-transaction: the live controller leaves
            // the last transaction's request behind, and carrying it
            // into the encoding would split identical protocol
            // states.
            if (es.busy) {
                e.pendingAcks =
                    static_cast<std::uint8_t>(es.pendingAcks);
                e.genuineUpgrade = es.genuineUpgrade;
                e.recall = es.recall;
                e.fwdData = es.fwdData;
                e.fwdAckPending = es.fwdAckPending;
                if (!es.recall)
                    e.current = fromMsg(es.current);
            }
            for (const proto::Msg &w : es.waiting)
                e.waiting.push(fromMsg(w));
        }
    }
}

DirAbstract
Stepper::dirAbstract(const proto::DirEntrySnapshot &e) const
{
    if (!e.busy)
        return static_cast<DirAbstract>(e.state);
    if (e.recall)
        return DirAbstract::busy_recall;
    return e.current.type == proto::MsgType::get_ro_request
               ? DirAbstract::busy_read
               : DirAbstract::busy_write;
}

proto::DirEntrySnapshot
Stepper::dirEntry(NodeId n, Addr block)
{
    dirs_[n]->snapshot(dirScratch_);
    for (const proto::DirEntrySnapshot &es : dirScratch_.entries)
        if (es.block == block)
            return es;
    return proto::DirEntrySnapshot{};
}

void
Stepper::drainInto(Sample &sample, std::vector<proto::Msg> &worklist,
                   GlobalState &work, NodeId handled)
{
    while (eq_.pending())
        eq_.runOne();
    for (const proto::Msg &m : captured_) {
        cosmos_assert(m.src == handled,
                      "message emitted by a module other than the "
                      "handled one: ",
                      m.format());
        sample.emissions.push_back(m.type);
        if (m.src == m.dst)
            worklist.push_back(m);
        else
            work.channel(m.src, m.dst).push(fromMsg(m));
    }
    captured_.clear();
}

namespace
{

void
appendTag(std::string &ctx, const char *tag)
{
    if (!ctx.empty())
        ctx += '+';
    ctx += tag;
}

} // namespace

void
Stepper::runCascade(Result &out, std::vector<proto::Msg> &worklist,
                    GlobalState &work)
{
    std::size_t at = 0;
    while (at < worklist.size()) {
        const proto::Msg m = worklist[at++];
        Sample sample;
        if (receiverRole(m.type) == proto::Role::cache) {
            sample.module = Module::cache;
            sample.input = static_cast<std::uint8_t>(m.type);
            sample.pre = static_cast<std::uint8_t>(
                caches_[m.dst]->state(m.block));
            // The forwarded mark changes what the cache emits: a
            // marked recall adds the direct data reply, marked data
            // adds the fwd_ack receipt. The mark -- and, for recalls,
            // whether the requester wanted a writable copy, which
            // picks the reply type -- is message state, not cache
            // state, so tag both to keep rows deterministic.
            if (m.forwarded) {
                appendTag(sample.context, "fwd");
                if (m.type == proto::MsgType::inval_rw_request ||
                    m.type == proto::MsgType::downgrade_request) {
                    appendTag(sample.context,
                              m.wantWritable ? "rw" : "ro");
                }
            }
            caches_[m.dst]->handleMessage(m);
            drainInto(sample, worklist, work, m.dst);
            sample.post = static_cast<std::uint8_t>(
                caches_[m.dst]->state(m.block));
        } else {
            sample.module = Module::directory;
            sample.input = static_cast<std::uint8_t>(m.type);
            const proto::DirEntrySnapshot pre = dirEntry(m.dst, m.block);
            sample.pre = static_cast<std::uint8_t>(dirAbstract(pre));

            const std::uint64_t srcBit = std::uint64_t{1} << m.src;
            switch (m.type) {
              case proto::MsgType::get_ro_request:
              case proto::MsgType::get_rw_request:
              case proto::MsgType::upgrade_request:
                if (pre.busy) {
                    appendTag(sample.context, "queued");
                    break;
                }
                if (m.type == proto::MsgType::upgrade_request) {
                    appendTag(sample.context, (pre.sharers & srcBit)
                                                  ? "sharer"
                                                  : "nonsharer");
                }
                if (m.type != proto::MsgType::get_ro_request &&
                    pre.state == proto::DirState::shared) {
                    appendTag(sample.context,
                              (pre.sharers & ~srcBit) ? "others"
                                                      : "solo");
                }
                break;
              case proto::MsgType::inval_ro_response:
                appendTag(sample.context, pre.pendingAcks > 1
                                              ? "more_acks"
                                              : "last_ack");
                // The final ack's reply type (get_rw_response vs
                // upgrade_response) is chosen by the genuineUpgrade
                // latch, part of the directory's hidden state.
                if (pre.pendingAcks <= 1 && pre.genuineUpgrade)
                    appendTag(sample.context, "upg");
                if (pre.pendingAcks <= 1 && !pre.waiting.empty())
                    appendTag(sample.context, "q");
                break;
              case proto::MsgType::inval_rw_response:
              case proto::MsgType::downgrade_response:
                // Forwarded transfers settle differently (the owner
                // already answered the requester), and whether the
                // entry can finish depends on the fwd_ack having
                // arrived -- both are hidden directory state, so tag
                // them to keep the table rows deterministic.
                if (pre.fwdData)
                    appendTag(sample.context, "fwd");
                if (pre.fwdAckPending)
                    appendTag(sample.context, "await_ack");
                if (!pre.waiting.empty())
                    appendTag(sample.context, "q");
                break;
              case proto::MsgType::fwd_ack:
                // The ack may arrive before or after the owner's
                // revision message; only the latter order finishes
                // the transaction here.
                appendTag(sample.context, pre.pendingAcks > 0
                                              ? "await_data"
                                              : "data_done");
                if (pre.pendingAcks == 0 && !pre.waiting.empty())
                    appendTag(sample.context, "q");
                break;
              default:
                break;
            }

            dirs_[m.dst]->handleMessage(m);
            drainInto(sample, worklist, work, m.dst);
            sample.post = static_cast<std::uint8_t>(
                dirAbstract(dirEntry(m.dst, m.block)));
        }
        out.samples.push_back(std::move(sample));
    }
    worklist.clear();
}

void
Stepper::step(const GlobalState &s, const Action &a, Result &out)
{
    out.failed = false;
    out.failureMsg.clear();
    out.samples.clear();

    load(s);
    captured_.clear();

    GlobalState work = s;
    std::vector<proto::Msg> worklist;

    FailureTrap trap;
    try {
        if (a.kind == Action::Kind::deliver) {
            const CompactMsg taken =
                work.channel(a.src, a.dst).takeAt(a.depth);
            cosmos_assert(taken == a.msg,
                          "deliver action does not match the channel "
                          "contents");
            worklist.push_back(toMsg(taken));
        } else {
            const bool write = a.kind == Action::Kind::issue_write;
            Sample sample;
            sample.module = Module::cache;
            sample.input = write ? input_proc_write : input_proc_read;
            const Addr addr = mc_.blockAddr(a.blockIdx);
            sample.pre = static_cast<std::uint8_t>(
                caches_[a.node]->state(addr));
            caches_[a.node]->access(addr, write, []() {});
            drainInto(sample, worklist, work, a.node);
            sample.post = static_cast<std::uint8_t>(
                caches_[a.node]->state(addr));
            out.samples.push_back(std::move(sample));
        }
        runCascade(out, worklist, work);
        readBack(work);
        out.next = work;
    } catch (const RecoverableError &e) {
        out.failed = true;
        out.failureMsg = detail::concat(e.what(), " (", e.file(), ":",
                                        e.line(), ")");
        // Discard leftover scheduled events so the next step starts
        // from a clean queue; running them against half-mutated
        // controllers may fail again, which is fine -- they are being
        // thrown away.
        while (eq_.pending()) {
            try {
                eq_.runOne();
            } catch (const RecoverableError &) {
            }
        }
        captured_.clear();
    }
}

} // namespace cosmos::model
