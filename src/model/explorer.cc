#include "model/explorer.hh"

#include <algorithm>
#include <deque>
#include <fstream>
#include <optional>

#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/log.hh"
#include "model/stepper.hh"

namespace cosmos::model
{

namespace
{

std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr std::uint32_t no_state = 0xFFFFFFFFu;

/** One visited canonical state (the encoding lives in the arena). */
struct StateRec
{
    const std::uint8_t *enc = nullptr;
    std::uint32_t len = 0;
    std::uint32_t nextSameHash = no_state;
    std::uint32_t parent = no_state;
    std::uint32_t depth = 0;
    Action via{};
};

/**
 * Exact-dedup visited set: hash -> chain of states sharing the hash,
 * membership decided by byte comparison of the arena-stored
 * encodings.
 */
class VisitedSet
{
  public:
    /** @return (state id, true) on first insertion, (existing id,
     *  false) on a revisit. */
    std::pair<std::uint32_t, bool>
    insert(const std::vector<std::uint8_t> &enc)
    {
        const std::uint64_t h = fnv1a(enc.data(), enc.size());
        std::uint32_t *head = map_.find(h);
        if (head) {
            for (std::uint32_t id = *head; id != no_state;
                 id = recs_[id].nextSameHash) {
                const StateRec &r = recs_[id];
                if (r.len == enc.size() &&
                    std::equal(enc.begin(), enc.end(), r.enc)) {
                    return {id, false};
                }
            }
        }
        auto *mem = static_cast<std::uint8_t *>(
            arena_.allocate(enc.size(), 1));
        std::copy(enc.begin(), enc.end(), mem);
        StateRec r;
        r.enc = mem;
        r.len = static_cast<std::uint32_t>(enc.size());
        const auto id = static_cast<std::uint32_t>(recs_.size());
        if (head) {
            // Chain onto the existing hash bucket; no map insertion,
            // so `head` stays valid.
            r.nextSameHash = *head;
            *head = id;
        } else {
            map_.insert(h, id);
        }
        recs_.push_back(r);
        return {id, true};
    }

    StateRec &rec(std::uint32_t id) { return recs_[id]; }
    std::size_t size() const { return recs_.size(); }

  private:
    Arena arena_;
    FlatMap<std::uint64_t, std::uint32_t> map_{&arena_};
    std::vector<StateRec> recs_;
};

/** First safety violation of @p s, if any (fixed check order keeps
 *  reports deterministic). Mirrors check::InvariantEngine's rules on
 *  the model's explicit state. */
std::optional<check::Violation>
checkState(const GlobalState &s, const ModelConfig &mc)
{
    for (unsigned b = 0; b < mc.numBlocks; ++b) {
        std::vector<NodeId> writers;
        std::vector<NodeId> readers;
        bool transient = false;
        for (unsigned n = 0; n < mc.numNodes; ++n) {
            switch (static_cast<proto::LineState>(s.line[n][b])) {
              case proto::LineState::read_write:
                writers.push_back(static_cast<NodeId>(n));
                break;
              case proto::LineState::read_only:
                readers.push_back(static_cast<NodeId>(n));
                break;
              case proto::LineState::invalid:
                break;
              default:
                transient = true;
                break;
            }
        }

        if (writers.size() > 1) {
            check::Violation v;
            v.kind = check::ViolationKind::multiple_writers;
            v.block = mc.blockAddr(b);
            v.nodes = writers;
            v.detail = detail::concat(
                "block ", b, " is cached read_write at ",
                writers.size(), " nodes simultaneously");
            return v;
        }
        if (writers.size() == 1 && !readers.empty()) {
            check::Violation v;
            v.kind = check::ViolationKind::writer_and_readers;
            v.block = mc.blockAddr(b);
            v.nodes = writers;
            v.nodes.insert(v.nodes.end(), readers.begin(),
                           readers.end());
            v.detail = detail::concat(
                "block ", b, " has a read_write copy at node ",
                writers[0], " coexisting with ", readers.size(),
                " read_only cop", readers.size() == 1 ? "y" : "ies");
            return v;
        }

        // Directory agreement applies only at rest: entry not
        // mid-transaction, no miss outstanding on the block, nothing
        // for the block in flight.
        const DirEntryState &e = s.dir[b];
        if (e.busy || transient)
            continue;
        bool inFlight = false;
        for (unsigned src = 0; src < mc.numNodes && !inFlight; ++src) {
            for (unsigned dst = 0; dst < mc.numNodes; ++dst) {
                const MsgQueue &q = s.channel(src, dst);
                for (unsigned i = 0; i < q.count; ++i) {
                    if (q.items[i].blockIdx == b) {
                        inFlight = true;
                        break;
                    }
                }
            }
        }
        if (inFlight)
            continue;

        std::uint8_t roMask = 0;
        for (NodeId n : readers)
            roMask |= static_cast<std::uint8_t>(1u << n);

        std::string mismatch;
        switch (e.state) {
          case proto::DirState::idle:
            if (!writers.empty() || !readers.empty())
                mismatch = "entry is idle but cached copies exist";
            break;
          case proto::DirState::shared:
            if (!writers.empty())
                mismatch = "entry is shared but a read_write copy "
                           "exists";
            else if (e.sharers != roMask)
                mismatch = detail::concat(
                    "sharer bits ", unsigned{e.sharers},
                    " disagree with the read_only copies ",
                    unsigned{roMask});
            break;
          case proto::DirState::exclusive:
            if (writers.size() != 1 || e.owner != writers[0] ||
                !readers.empty()) {
                mismatch = detail::concat(
                    "entry is exclusive at node ", unsigned{e.owner},
                    " but the caches disagree");
            }
            break;
        }
        if (!mismatch.empty()) {
            check::Violation v;
            v.kind = check::ViolationKind::directory_mismatch;
            v.block = mc.blockAddr(b);
            v.nodes = writers;
            v.nodes.insert(v.nodes.end(), readers.begin(),
                           readers.end());
            v.detail = detail::concat("block ", b, ": ", mismatch);
            return v;
        }
    }

    // Deadlock: an in-progress transaction with an empty network can
    // never complete -- the ack or response it waits for does not
    // exist.
    bool networkEmpty = true;
    for (unsigned src = 0; src < mc.numNodes && networkEmpty; ++src)
        for (unsigned dst = 0; dst < mc.numNodes; ++dst)
            if (s.channel(src, dst).count != 0) {
                networkEmpty = false;
                break;
            }
    if (networkEmpty) {
        for (unsigned b = 0; b < mc.numBlocks; ++b) {
            bool stuck = s.dir[b].busy;
            std::vector<NodeId> waiting;
            for (unsigned n = 0; n < mc.numNodes; ++n) {
                const auto st =
                    static_cast<proto::LineState>(s.line[n][b]);
                if (st == proto::LineState::wait_ro ||
                    st == proto::LineState::wait_rw ||
                    st == proto::LineState::wait_upg) {
                    stuck = true;
                    waiting.push_back(static_cast<NodeId>(n));
                }
            }
            if (stuck) {
                check::Violation v;
                v.kind = check::ViolationKind::liveness;
                v.block = mc.blockAddr(b);
                v.nodes = waiting;
                v.detail = detail::concat(
                    "deadlock: block ", b,
                    " has a transaction in progress but the network "
                    "is empty");
                return v;
            }
        }
    }

    return std::nullopt;
}

/** Translate node ids of a canonical-space action through @p inv. */
Action
translateAction(const Action &a,
                const std::array<std::uint8_t, max_nodes> &inv)
{
    Action c = a;
    if (a.kind == Action::Kind::deliver) {
        c.src = inv[a.src];
        c.dst = inv[a.dst];
        c.msg.src = inv[a.msg.src];
        c.msg.dst = inv[a.msg.dst];
        if (a.msg.requester != no_node)
            c.msg.requester = inv[a.msg.requester];
    } else {
        c.node = inv[a.node];
    }
    return c;
}

/**
 * Rebuild the concrete schedule reaching state @p id (plus the
 * optional @p extra violating action) and re-execute it from the
 * initial state so the reported counterexample is executable as-is.
 */
Counterexample
buildCounterexample(const ModelConfig &mc, Stepper &stepper,
                    VisitedSet &visited, std::uint32_t id,
                    const Action *extra, check::Violation v)
{
    std::vector<Action> raw;
    for (std::uint32_t cur = id;
         visited.rec(cur).parent != no_state;
         cur = visited.rec(cur).parent) {
        raw.push_back(visited.rec(cur).via);
    }
    std::reverse(raw.begin(), raw.end());
    if (extra)
        raw.push_back(*extra);

    Counterexample ce;
    GlobalState s = Stepper::initialState();
    std::vector<std::uint8_t> enc;
    std::array<std::uint8_t, max_nodes> perm{};
    std::array<std::uint8_t, max_nodes> inv{};
    Stepper::Result r;
    for (const Action &a : raw) {
        canonicalEncoding(s, mc, enc, &perm);
        for (unsigned n = 0; n < mc.numNodes; ++n)
            inv[perm[n]] = static_cast<std::uint8_t>(n);
        const Action c = translateAction(a, inv);
        ce.schedule.push_back(c);
        stepper.step(s, c, r);
        // Record which declared rows this step dispatched through:
        // the replayable counterexample names each transition by its
        // declaration site instead of an opaque handler.
        ce.rowTrace.emplace_back();
        for (const Sample &smp : r.samples) {
            ce.rowTrace.back().push_back(
                smp.row ? detail::concat(smp.row->where(), "  ",
                                         smp.row->format())
                        : detail::concat("(undeclared) ",
                                         toString(smp.module), " ",
                                         inputName(smp.input)));
        }
        if (r.failed)
            break; // assertion counterexamples end at the failure
        s = r.next;
    }

    const std::size_t first =
        ce.schedule.size() > 8 ? ce.schedule.size() - 8 : 0;
    for (std::size_t i = first; i < ce.schedule.size(); ++i)
        v.history.push_back(detail::concat("step ", i, ": ",
                                           ce.schedule[i].format()));
    ce.violation = std::move(v);
    return ce;
}

} // namespace

ExploreResult
explore(const ExploreOptions &opt)
{
    const ModelConfig &mc = opt.mc;
    mc.validate();

    ExploreResult res;
    Stepper stepper(mc);
    VisitedSet visited;
    std::deque<std::uint32_t> frontier;

    std::vector<std::uint8_t> enc;
    canonicalEncoding(Stepper::initialState(), mc, enc);
    frontier.push_back(visited.insert(enc).first);

    std::vector<Action> actions;
    GlobalState s;
    Stepper::Result stepRes;

    const auto record = [&](std::uint32_t parentId, const Action *extra,
                            check::Violation v) {
        if (res.counterexamples.size() >= opt.maxViolations)
            return;
        v.when = visited.rec(parentId).depth + (extra ? 1 : 0);
        res.counterexamples.push_back(buildCounterexample(
            mc, stepper, visited, parentId, extra, std::move(v)));
    };

    while (!frontier.empty()) {
        const std::uint32_t id = frontier.front();
        frontier.pop_front();
        const StateRec cur = visited.rec(id); // by value: recs_ grows
        decodeState(cur.enc, cur.len, mc, s);
        res.maxDepth = std::max(res.maxDepth, unsigned{cur.depth});

        enumerateActions(s, mc, actions);
        for (const Action &a : actions) {
            stepper.step(s, a, stepRes);
            ++res.transitions;
            for (const Sample &smp : stepRes.samples)
                res.table.record(smp);

            if (stepRes.failed) {
                ++res.failedSteps;
                check::Violation v;
                v.kind = check::ViolationKind::assertion;
                v.detail = stepRes.failureMsg;
                record(id, &a, std::move(v));
                continue;
            }

            canonicalEncoding(stepRes.next, mc, enc);
            const auto [nid, fresh] = visited.insert(enc);
            if (!fresh)
                continue;
            StateRec &nr = visited.rec(nid);
            nr.parent = id;
            nr.via = a;
            nr.depth = cur.depth + 1;

            if (auto v = checkState(stepRes.next, mc)) {
                // Violating states are terminal: record, don't
                // expand, so a clean space's size is a golden number
                // and a buggy one stops at the bug's frontier.
                if (v->kind == check::ViolationKind::liveness)
                    ++res.deadlocks;
                record(nid, nullptr, std::move(*v));
                continue;
            }
            if (visited.size() > opt.maxStates) {
                res.complete = false;
                check::Violation v;
                v.kind = check::ViolationKind::liveness;
                v.detail = detail::concat(
                    "exploration exceeded the ", opt.maxStates,
                    "-state bound without closing; livelock or an "
                    "unbounded transient");
                record(nid, nullptr, std::move(v));
                res.states = visited.size();
                res.consistency =
                    res.table.diffAgainstDeclared(stepper.table());
                return res;
            }
            frontier.push_back(nid);
        }
    }

    res.states = visited.size();
    res.consistency = res.table.diffAgainstDeclared(stepper.table());
    return res;
}

std::string
formatCounterexample(const ModelConfig &mc, const Counterexample &ce)
{
    std::string out = "# cosmos-model-counterexample-v1\n";
    out += detail::concat(
        "# config nodes=", mc.numNodes, " blocks=", mc.numBlocks,
        " reorder=", mc.reorder, " policy=", toString(mc.policy),
        " forwarding=", mc.forwarding ? 1 : 0,
        " legacy_forwarding=", mc.legacyForwarding ? 1 : 0,
        " inject_ignore_inval=", mc.ignoreInvalEvery, "\n");
    out += detail::concat("# violation ",
                          check::toString(ce.violation.kind), "\n");
    out += detail::concat("# detail ", ce.violation.detail, "\n");
    std::size_t i = 0;
    for (const Action &a : ce.schedule) {
        if (a.kind == Action::Kind::deliver) {
            out += detail::concat(
                "step ", i, " deliver src=", unsigned{a.src},
                " dst=", unsigned{a.dst}, " type=",
                proto::toString(a.msg.type), " block=",
                unsigned{a.msg.blockIdx}, " depth=", unsigned{a.depth},
                "\n");
        } else {
            out += detail::concat(
                "step ", i, " issue node=", unsigned{a.node}, " op=",
                a.kind == Action::Kind::issue_write ? "write" : "read",
                " block=", unsigned{a.blockIdx}, "\n");
        }
        // Row provenance as replay-transparent comments: each handler
        // invocation of the step, named by its declaring table row.
        if (i < ce.rowTrace.size())
            for (const std::string &row : ce.rowTrace[i])
                out += detail::concat("#   row ", row, "\n");
        ++i;
    }
    return out;
}

bool
writeCounterexample(const std::string &path, const ModelConfig &mc,
                    const Counterexample &ce)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << formatCounterexample(mc, ce);
    return static_cast<bool>(f);
}

} // namespace cosmos::model
