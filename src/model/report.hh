/**
 * @file
 * Rendering of model-checking results: a human summary with the
 * extracted transition table, and the byte-stable `cosmos-model-v1`
 * JSON artifact for CI (scripts/check_json.py validates the schema).
 *
 * Byte-stability contract: two runs with the same configuration
 * produce byte-identical JSON. Table entries render in TableKey
 * order (std::map), lint findings and violations in discovery order,
 * which BFS makes deterministic.
 */

#ifndef COSMOS_MODEL_REPORT_HH
#define COSMOS_MODEL_REPORT_HH

#include <string>

#include "model/explorer.hh"

namespace cosmos::model
{

/** Multi-line human-readable summary (stats, lint, violations). */
std::string renderReport(const ModelConfig &mc,
                         const ExploreResult &res);

/** Write the `cosmos-model-v1` JSON artifact; false on I/O error. */
bool writeReportJson(const std::string &path, const ModelConfig &mc,
                     const ExploreResult &res);

} // namespace cosmos::model

#endif // COSMOS_MODEL_REPORT_HH
