/**
 * @file
 * Global protocol states for the exhaustive model checker.
 *
 * A GlobalState is the Murphi-style cross product of every
 * controller's protocol state plus the in-flight message pool, held
 * in fixed-capacity arrays so states copy, hash, and compare without
 * touching the heap. The pool is a per-(src, dst)-channel FIFO --
 * the real network's delivery contract -- and the `reorder` knob of
 * ModelConfig lets the checker additionally explore bounded
 * overtaking (delivering the i-th queued message of a channel for
 * i <= K), i.e. hypothetical networks weaker than the simulator's.
 *
 * States are serialized to a canonical byte encoding for the visited
 * set. Canonicalization quotients out node symmetry: nodes that are
 * not the home of any modeled block are interchangeable (the
 * processors are identical and the round-robin home map pins only
 * the first numBlocks nodes), so the encoder takes the
 * lexicographically smallest encoding over all permutations of the
 * non-home nodes.
 */

#ifndef COSMOS_MODEL_STATE_HH
#define COSMOS_MODEL_STATE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "proto/cache_controller.hh"
#include "proto/directory_controller.hh"
#include "proto/messages.hh"

namespace cosmos::model
{

/** Hard bounds keeping GlobalState fixed-size. */
constexpr NodeId max_nodes = 4;
constexpr unsigned max_blocks = 2;
/** Per-channel / per-entry queue capacity (generous: a node has at
 *  most one request outstanding, so real occupancy stays small). */
constexpr unsigned max_queue = 8;

/** Sentinel for "no owner" in the packed owner byte. */
constexpr std::uint8_t no_node = 0xFF;

/** Configuration of one model-checking run. */
struct ModelConfig
{
    NodeId numNodes = 2;
    unsigned numBlocks = 1;

    /** Network overtaking bound K: a delivery may skip up to K
     *  earlier messages on its channel. 0 = the simulator's strict
     *  per-channel FIFO contract. */
    unsigned reorder = 0;

    OwnerReadPolicy policy = OwnerReadPolicy::half_migratory;
    bool forwarding = false;

    /** Explore the pre-fwd_ack forwarding protocol (the negative
     *  oracle; the checker must find the three-hop race). */
    bool legacyForwarding = false;

    /** Planted lost-invalidation bug (MachineConfig::fault). */
    unsigned ignoreInvalEvery = 0;

    /** Bounds-check; calls cosmos_fatal on bad values. */
    void validate() const;

    /** The equivalent simulator configuration. */
    MachineConfig machineConfig() const;

    /** Byte address of modeled block @p b (one block per page, so
     *  homes follow the round-robin page map: home(b) = b % N). */
    Addr blockAddr(unsigned b) const;

    /** Home node of modeled block @p b. */
    NodeId home(unsigned b) const
    {
        return static_cast<NodeId>(b % numNodes);
    }

    /** First node that is not the home of any modeled block; nodes
     *  [firstSymmetricNode(), numNodes) are interchangeable. */
    NodeId firstSymmetricNode() const
    {
        return static_cast<NodeId>(
            numBlocks < numNodes ? numBlocks : numNodes);
    }
};

/** One in-flight coherence message, packed. */
struct CompactMsg
{
    proto::MsgType type{};
    std::uint8_t src = 0;
    std::uint8_t dst = 0;
    std::uint8_t requester = 0;
    std::uint8_t blockIdx = 0;
    bool forwarded = false;
    bool wantWritable = false;

    bool operator==(const CompactMsg &) const = default;
};

/** Fixed-capacity FIFO of in-flight or queued messages. */
struct MsgQueue
{
    std::uint8_t count = 0;
    std::array<CompactMsg, max_queue> items{};

    void
    push(const CompactMsg &m)
    {
        cosmos_assert(count < max_queue, "model message queue overflow");
        items[count++] = m;
    }

    /** Remove and return the message at position @p i (FIFO head is
     *  0), shifting later messages up. */
    CompactMsg
    takeAt(unsigned i)
    {
        cosmos_assert(i < count, "takeAt past queue end");
        CompactMsg m = items[i];
        for (unsigned j = i + 1; j < count; ++j)
            items[j - 1] = items[j];
        --count;
        return m;
    }

    bool
    operator==(const MsgQueue &o) const
    {
        if (count != o.count)
            return false;
        for (unsigned i = 0; i < count; ++i)
            if (!(items[i] == o.items[i]))
                return false;
        return true;
    }
};

/** One directory entry, packed (mirrors DirEntrySnapshot). */
struct DirEntryState
{
    proto::DirState state = proto::DirState::idle;
    std::uint8_t sharers = 0;
    std::uint8_t owner = no_node;
    bool busy = false;
    std::uint8_t pendingAcks = 0;
    bool genuineUpgrade = false;
    bool recall = false;
    bool fwdData = false;
    bool fwdAckPending = false;
    CompactMsg current{}; ///< meaningful only while busy && !recall
    MsgQueue waiting{};

    bool operator==(const DirEntryState &) const = default;
};

/** The whole machine + network at one model-checking step boundary. */
struct GlobalState
{
    /** Cache line state per (node, block); LineState::invalid == 0,
     *  so zero-initialization is the all-invalid initial state. */
    std::array<std::array<std::uint8_t, max_blocks>, max_nodes> line{};
    /** Fault-injection counter residue per node. */
    std::array<std::uint8_t, max_nodes> invalResidue{};
    /** Directory entry per modeled block (lives at home(b)). */
    std::array<DirEntryState, max_blocks> dir{};
    /** In-flight messages per (src, dst) channel, src != dst. */
    std::array<MsgQueue, max_nodes * max_nodes> chan{};

    MsgQueue &
    channel(unsigned src, unsigned dst)
    {
        return chan[src * max_nodes + dst];
    }

    const MsgQueue &
    channel(unsigned src, unsigned dst) const
    {
        return chan[src * max_nodes + dst];
    }
};

/** One edge of the reachability graph. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        issue_read,  ///< processor load (miss-causing only)
        issue_write, ///< processor store (miss/upgrade-causing only)
        deliver,     ///< deliver an in-flight message
    };

    Kind kind{};
    std::uint8_t node = 0;     ///< issuing node (issue_*)
    std::uint8_t blockIdx = 0; ///< issued block (issue_*)
    std::uint8_t src = 0;      ///< channel (deliver)
    std::uint8_t dst = 0;
    std::uint8_t depth = 0; ///< position in the channel (deliver)
    CompactMsg msg{};       ///< the delivered message (deliver)

    /** "node 1: R block 0" / "deliver get_ro_request 1->0 block 0". */
    std::string format() const;
};

/**
 * All enabled actions of @p s: every miss-causing processor access
 * on an idle cache (the blocking single-outstanding-access model)
 * and every deliverable in-flight message within the reorder bound.
 * Cache hits are skipped -- they move no protocol state, so they are
 * pure stutter steps.
 */
void enumerateActions(const GlobalState &s, const ModelConfig &mc,
                      std::vector<Action> &out);

/** True when nothing is in flight and no controller is mid-miss or
 *  mid-transaction. */
bool isQuiescent(const GlobalState &s, const ModelConfig &mc);

/** Serialize exactly the fields live under @p mc (deterministic). */
void encodeState(const GlobalState &s, const ModelConfig &mc,
                 std::vector<std::uint8_t> &out);

/** Inverse of encodeState. */
void decodeState(const std::uint8_t *enc, std::size_t len,
                 const ModelConfig &mc, GlobalState &out);

/** Remap every node id in @p s through @p perm (an array of
 *  mc.numNodes entries that must fix the home nodes). */
GlobalState permuteNodes(const GlobalState &s, const ModelConfig &mc,
                         const std::array<std::uint8_t, max_nodes> &perm);

/**
 * Canonical encoding of @p s: the lexicographically smallest
 * encodeState() result over all permutations of the symmetric
 * (non-home) nodes. Node-permuted states therefore canonicalize to
 * byte-identical encodings.
 */
void canonicalEncoding(const GlobalState &s, const ModelConfig &mc,
                       std::vector<std::uint8_t> &out);

/** As above, additionally reporting the minimizing permutation in
 *  @p bestPerm (perm[original node] = canonical node) -- the explorer
 *  uses it to translate canonical-space actions back to a concrete
 *  state when reconstructing counterexample schedules. */
void canonicalEncoding(const GlobalState &s, const ModelConfig &mc,
                       std::vector<std::uint8_t> &out,
                       std::array<std::uint8_t, max_nodes> *bestPerm);

} // namespace cosmos::model

#endif // COSMOS_MODEL_STATE_HH
