/**
 * @file
 * Declarative transition table extracted from the live controllers.
 *
 * The model checker's stepper records one Sample per handler
 * invocation: which module ran (cache or directory), the state of the
 * addressed block before and after the atomic step, the input that
 * triggered it, a small context tag disambiguating inputs whose
 * outcome legitimately depends on more than the (state, input) pair,
 * and the multiset of messages the module emitted. Aggregating the
 * samples of an exhaustive exploration yields the protocol's
 * transition table as actually implemented -- a projection of the
 * code, not a hand-maintained duplicate, so it cannot drift.
 *
 * The lint pass then reports:
 *  - unreachable states (declared but never observed),
 *  - dead inputs (a (state, input) pair the exploration never hit),
 *  - nondeterministic entries (one key observed with more than one
 *    (next state, emission signature) outcome).
 *
 * Entries whose context carries the "q" tag aggregate over the
 * directory's queued-request backlog, whose contents legitimately
 * vary; their nondeterminism is expected and whitelisted. Any *other*
 * nondeterministic entry is a red flag -- the planted
 * lost-invalidation bug, for instance, shows up as
 * (cache, read_only, inval_ro_request) -> {invalid, read_only}.
 */

#ifndef COSMOS_MODEL_TABLE_HH
#define COSMOS_MODEL_TABLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "proto/cache_controller.hh"
#include "proto/directory_controller.hh"
#include "proto/messages.hh"
#include "proto/transition_table.hh"

namespace cosmos::model
{

/** Which controller a sample was taken from. */
enum class Module : std::uint8_t
{
    cache,
    directory,
};

const char *toString(Module m);

/**
 * Abstract directory-entry states: the quiescent DirState triple plus
 * the in-transaction phases (what kind of transaction the entry is
 * blocked on). This is the state column of the directory's rows.
 */
enum class DirAbstract : std::uint8_t
{
    idle,
    shared,
    exclusive,
    busy_read,   ///< read transaction awaiting the owner's copy
    busy_write,  ///< write transaction awaiting invalidation acks
    busy_recall, ///< voluntary recall awaiting the owner's copy
};

const char *toString(DirAbstract s);

/** Pseudo-inputs for processor accesses (the 13 MsgType values are
 *  0..12; these extend the input alphabet). */
constexpr std::uint8_t input_proc_read = 13;
constexpr std::uint8_t input_proc_write = 14;
constexpr unsigned num_inputs = 15;

/** Printable input name ("get_ro_request", "proc_read", ...). */
const char *inputName(std::uint8_t input);

/** One observed handler invocation. */
struct Sample
{
    Module module{};
    std::uint8_t pre = 0;  ///< LineState or DirAbstract
    std::uint8_t post = 0; ///< LineState or DirAbstract
    std::uint8_t input = 0;
    std::string context;
    std::vector<proto::MsgType> emissions;
    /** The declared table row the dispatch matched (nullptr when no
     *  row covers the sample -- itself a consistency finding). Points
     *  into the stepper's ProtocolTable; valid for its lifetime. */
    const proto::TransitionRow *row = nullptr;
};

/** Key of one table row. */
struct TableKey
{
    Module module{};
    std::uint8_t state = 0;
    std::uint8_t input = 0;
    std::string context;

    auto operator<=>(const TableKey &) const = default;

    /** "cache read_only x inval_ro_request" (plus context). */
    std::string format() const;
};

/** One observed outcome of a row. */
struct Outcome
{
    std::uint8_t next = 0;
    /** Sorted distinct emitted message types; multiplicities are
     *  abstracted away (a directory invalidating two sharers emits
     *  the same signature as one invalidating a single sharer). */
    std::vector<proto::MsgType> emissions;

    auto operator<=>(const Outcome &) const = default;

    std::string format(Module module) const;
};

/** Aggregated row: every outcome ever observed for the key. */
struct TableEntry
{
    std::set<Outcome> outcomes;
    std::uint64_t hits = 0;
};

/** One lint finding over the extracted table. */
struct LintFinding
{
    enum class Kind : std::uint8_t
    {
        unreachable_state, ///< declared state never observed
        dead_input,        ///< (state, input) never exercised
        nondeterministic,  ///< key with > 1 outcome (not whitelisted)
        /** A cache handling an inval_ro_request emitted a data
         *  response. inval_ro sweeps target shared blocks, whose
         *  data the home itself holds, so they must never be
         *  forwarded three-hop -- only inval_rw/downgrade recalls
         *  are (DirectoryController::forward's asymmetry). */
        forwarding_asymmetry,
    };

    Kind kind{};
    Module module{};
    std::string detail;

    static const char *toString(Kind k);
};

/**
 * One disagreement between the extracted table and the declared
 * `proto::ProtocolTable`. The declared table is the source of truth
 * the controllers dispatch through; the extractor re-derives the
 * table from observed behaviour, so any diff means a handler body
 * does something its row does not declare (or the exploration
 * reached a row declared unreachable).
 */
struct ConsistencyFinding
{
    enum class Kind : std::uint8_t
    {
        /** A sample no declared row covers -- the dispatch itself
         *  would have trapped, so this flags find/guard drift. */
        undeclared_transition,
        /** A sample matched a declared-unreachable marker row. */
        unreachable_reached,
        /** Observed (next state, emissions) differ from the declared
         *  row's (next, emits). */
        outcome_mismatch,
    };

    Kind kind{};
    Module module{};
    std::string detail;

    static const char *toString(Kind k);
};

/** The extracted transition table. */
class TransitionTable
{
  public:
    /** Fold one stepper sample into the table. */
    void record(const Sample &s);

    const std::map<TableKey, TableEntry> &entries() const
    {
        return entries_;
    }

    /** Distinct states observed per module (pre or post). */
    std::set<std::uint8_t> observedStates(Module m) const;

    /**
     * Rows with more than one outcome whose context does not carry
     * the "q" backlog tag (those aggregate over queued requests and
     * are legitimately multi-outcome).
     */
    std::vector<const TableKey *> nondeterministicKeys() const;

    /** Run the static lint (see file comment). */
    std::vector<LintFinding> lint() const;

    /**
     * Diff every extracted entry against @p declared: re-derive the
     * guard from the entry's context tag (guardContext and
     * guardFromContext are inverses), look the row up the way the
     * controllers dispatch, and compare the declared (next, emits)
     * against every observed outcome. Completing rows serviced from
     * the "q" backlog are exempt from the outcome comparison -- the
     * directory re-serves the queued request inside the same atomic
     * step, so the sample's post state and emissions include the
     * follow-on transaction by design.
     */
    std::vector<ConsistencyFinding>
    diffAgainstDeclared(const proto::ProtocolTable &declared) const;

    /** Human-readable table rendering (one line per key/outcome). */
    std::string format() const;

  private:
    std::map<TableKey, TableEntry> entries_;
};

} // namespace cosmos::model

#endif // COSMOS_MODEL_TABLE_HH
