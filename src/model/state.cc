#include "model/state.hh"

#include <algorithm>

namespace cosmos::model
{

void
ModelConfig::validate() const
{
    if (numNodes < 2 || numNodes > max_nodes)
        cosmos_fatal("model numNodes must be in [2, ", max_nodes,
                     "], got ", numNodes);
    if (numBlocks < 1 || numBlocks > max_blocks)
        cosmos_fatal("model numBlocks must be in [1, ", max_blocks,
                     "], got ", numBlocks);
    if (reorder >= max_queue)
        cosmos_fatal("model reorder bound must be < ", max_queue,
                     ", got ", reorder);
}

MachineConfig
ModelConfig::machineConfig() const
{
    MachineConfig cfg;
    cfg.numNodes = numNodes;
    cfg.ownerReadPolicy = policy;
    cfg.forwarding = forwarding;
    cfg.legacyForwarding = legacyForwarding;
    cfg.fault.ignoreInvalEvery = ignoreInvalEvery;
    // Stache's no-replacement mode: the model has no eviction actions.
    cfg.cacheCapacityBlocks = 0;
    cfg.memoryLevelParallelism = 1;
    return cfg;
}

Addr
ModelConfig::blockAddr(unsigned b) const
{
    // One block per page so the round-robin page map spreads homes:
    // home(blockAddr(b)) == b % numNodes.
    return static_cast<Addr>(b) * MachineConfig{}.pageBytes;
}

std::string
Action::format() const
{
    switch (kind) {
      case Kind::issue_read:
        return detail::concat("node ", unsigned{node}, ": read block ",
                              unsigned{blockIdx});
      case Kind::issue_write:
        return detail::concat("node ", unsigned{node},
                              ": write block ", unsigned{blockIdx});
      case Kind::deliver:
        return detail::concat("deliver ", proto::toString(msg.type),
                              " ", unsigned{src}, "->", unsigned{dst},
                              " block ", unsigned{msg.blockIdx},
                              depth == 0 ? ""
                                         : detail::concat(" (overtakes ",
                                                          unsigned{depth},
                                                          ")"));
    }
    return "?";
}

namespace
{

/** True when node @p n has a miss outstanding on any block (the
 *  blocking processor cannot issue another access). */
bool
nodeBusy(const GlobalState &s, const ModelConfig &mc, unsigned n)
{
    for (unsigned b = 0; b < mc.numBlocks; ++b) {
        const auto st = static_cast<proto::LineState>(s.line[n][b]);
        if (st == proto::LineState::wait_ro ||
            st == proto::LineState::wait_rw ||
            st == proto::LineState::wait_upg) {
            return true;
        }
    }
    return false;
}

} // namespace

void
enumerateActions(const GlobalState &s, const ModelConfig &mc,
                 std::vector<Action> &out)
{
    out.clear();
    for (unsigned n = 0; n < mc.numNodes; ++n) {
        if (nodeBusy(s, mc, n))
            continue;
        for (unsigned b = 0; b < mc.numBlocks; ++b) {
            const auto st = static_cast<proto::LineState>(s.line[n][b]);
            // Hits move no protocol state: only misses are actions.
            if (st == proto::LineState::invalid) {
                Action a;
                a.kind = Action::Kind::issue_read;
                a.node = static_cast<std::uint8_t>(n);
                a.blockIdx = static_cast<std::uint8_t>(b);
                out.push_back(a);
            }
            if (st == proto::LineState::invalid ||
                st == proto::LineState::read_only) {
                Action a;
                a.kind = Action::Kind::issue_write;
                a.node = static_cast<std::uint8_t>(n);
                a.blockIdx = static_cast<std::uint8_t>(b);
                out.push_back(a);
            }
        }
    }
    for (unsigned src = 0; src < mc.numNodes; ++src) {
        for (unsigned dst = 0; dst < mc.numNodes; ++dst) {
            if (src == dst)
                continue;
            const MsgQueue &q = s.channel(src, dst);
            const unsigned deliverable =
                std::min<unsigned>(q.count, mc.reorder + 1);
            for (unsigned i = 0; i < deliverable; ++i) {
                Action a;
                a.kind = Action::Kind::deliver;
                a.src = static_cast<std::uint8_t>(src);
                a.dst = static_cast<std::uint8_t>(dst);
                a.depth = static_cast<std::uint8_t>(i);
                a.msg = q.items[i];
                out.push_back(a);
            }
        }
    }
}

bool
isQuiescent(const GlobalState &s, const ModelConfig &mc)
{
    for (unsigned src = 0; src < mc.numNodes; ++src)
        for (unsigned dst = 0; dst < mc.numNodes; ++dst)
            if (s.channel(src, dst).count != 0)
                return false;
    for (unsigned n = 0; n < mc.numNodes; ++n)
        if (nodeBusy(s, mc, n))
            return false;
    for (unsigned b = 0; b < mc.numBlocks; ++b)
        if (s.dir[b].busy)
            return false;
    return true;
}

namespace
{

void
encodeMsg(const CompactMsg &m, std::vector<std::uint8_t> &out)
{
    out.push_back(static_cast<std::uint8_t>(m.type));
    out.push_back(m.src);
    out.push_back(m.dst);
    out.push_back(m.requester);
    out.push_back(m.blockIdx);
    out.push_back(static_cast<std::uint8_t>(m.forwarded));
    out.push_back(static_cast<std::uint8_t>(m.wantWritable));
}

std::size_t
decodeMsg(const std::uint8_t *enc, CompactMsg &m)
{
    m.type = static_cast<proto::MsgType>(enc[0]);
    m.src = enc[1];
    m.dst = enc[2];
    m.requester = enc[3];
    m.blockIdx = enc[4];
    m.forwarded = enc[5] != 0;
    m.wantWritable = enc[6] != 0;
    return 7;
}

void
encodeQueue(const MsgQueue &q, std::vector<std::uint8_t> &out)
{
    out.push_back(q.count);
    for (unsigned i = 0; i < q.count; ++i)
        encodeMsg(q.items[i], out);
}

std::size_t
decodeQueue(const std::uint8_t *enc, MsgQueue &q)
{
    q = MsgQueue{};
    const std::uint8_t count = enc[0];
    cosmos_assert(count <= max_queue, "corrupt queue encoding");
    std::size_t at = 1;
    for (unsigned i = 0; i < count; ++i)
        at += decodeMsg(enc + at, q.items[i]);
    q.count = count;
    return at;
}

} // namespace

void
encodeState(const GlobalState &s, const ModelConfig &mc,
            std::vector<std::uint8_t> &out)
{
    out.clear();
    for (unsigned n = 0; n < mc.numNodes; ++n) {
        for (unsigned b = 0; b < mc.numBlocks; ++b)
            out.push_back(s.line[n][b]);
        out.push_back(s.invalResidue[n]);
    }
    for (unsigned b = 0; b < mc.numBlocks; ++b) {
        const DirEntryState &e = s.dir[b];
        out.push_back(static_cast<std::uint8_t>(e.state));
        out.push_back(e.sharers);
        out.push_back(e.owner);
        out.push_back(static_cast<std::uint8_t>(e.busy));
        out.push_back(e.pendingAcks);
        out.push_back(static_cast<std::uint8_t>(e.genuineUpgrade));
        out.push_back(static_cast<std::uint8_t>(e.recall));
        out.push_back(static_cast<std::uint8_t>(e.fwdData));
        out.push_back(static_cast<std::uint8_t>(e.fwdAckPending));
        encodeMsg(e.current, out);
        encodeQueue(e.waiting, out);
    }
    for (unsigned src = 0; src < mc.numNodes; ++src)
        for (unsigned dst = 0; dst < mc.numNodes; ++dst)
            if (src != dst)
                encodeQueue(s.channel(src, dst), out);
}

void
decodeState(const std::uint8_t *enc, std::size_t len,
            const ModelConfig &mc, GlobalState &out)
{
    out = GlobalState{};
    std::size_t at = 0;
    for (unsigned n = 0; n < mc.numNodes; ++n) {
        for (unsigned b = 0; b < mc.numBlocks; ++b)
            out.line[n][b] = enc[at++];
        out.invalResidue[n] = enc[at++];
    }
    for (unsigned b = 0; b < mc.numBlocks; ++b) {
        DirEntryState &e = out.dir[b];
        e.state = static_cast<proto::DirState>(enc[at++]);
        e.sharers = enc[at++];
        e.owner = enc[at++];
        e.busy = enc[at++] != 0;
        e.pendingAcks = enc[at++];
        e.genuineUpgrade = enc[at++] != 0;
        e.recall = enc[at++] != 0;
        e.fwdData = enc[at++] != 0;
        e.fwdAckPending = enc[at++] != 0;
        at += decodeMsg(enc + at, e.current);
        at += decodeQueue(enc + at, e.waiting);
    }
    for (unsigned src = 0; src < mc.numNodes; ++src)
        for (unsigned dst = 0; dst < mc.numNodes; ++dst)
            if (src != dst)
                at += decodeQueue(enc + at, out.channel(src, dst));
    cosmos_assert(at == len, "state encoding length mismatch: ", at,
                  " vs ", len);
}

namespace
{

std::uint8_t
mapNode(std::uint8_t n, const std::array<std::uint8_t, max_nodes> &perm)
{
    return n == no_node ? no_node : perm[n];
}

CompactMsg
mapMsg(const CompactMsg &m,
       const std::array<std::uint8_t, max_nodes> &perm)
{
    CompactMsg r = m;
    r.src = mapNode(m.src, perm);
    r.dst = mapNode(m.dst, perm);
    r.requester = mapNode(m.requester, perm);
    return r;
}

std::uint8_t
mapSharers(std::uint8_t sharers, const ModelConfig &mc,
           const std::array<std::uint8_t, max_nodes> &perm)
{
    std::uint8_t r = 0;
    for (unsigned n = 0; n < mc.numNodes; ++n)
        if (sharers & (1u << n))
            r |= static_cast<std::uint8_t>(1u << perm[n]);
    return r;
}

} // namespace

GlobalState
permuteNodes(const GlobalState &s, const ModelConfig &mc,
             const std::array<std::uint8_t, max_nodes> &perm)
{
    GlobalState r;
    for (unsigned n = 0; n < mc.numNodes; ++n) {
        for (unsigned b = 0; b < mc.numBlocks; ++b)
            r.line[perm[n]][b] = s.line[n][b];
        r.invalResidue[perm[n]] = s.invalResidue[n];
    }
    for (unsigned b = 0; b < mc.numBlocks; ++b) {
        DirEntryState &e = r.dir[b];
        e = s.dir[b];
        e.sharers = mapSharers(e.sharers, mc, perm);
        e.owner = mapNode(e.owner, perm);
        e.current = mapMsg(e.current, perm);
        for (unsigned i = 0; i < e.waiting.count; ++i)
            e.waiting.items[i] = mapMsg(e.waiting.items[i], perm);
    }
    for (unsigned src = 0; src < mc.numNodes; ++src) {
        for (unsigned dst = 0; dst < mc.numNodes; ++dst) {
            if (src == dst)
                continue;
            const MsgQueue &q = s.channel(src, dst);
            MsgQueue &rq = r.channel(perm[src], perm[dst]);
            rq.count = q.count;
            for (unsigned i = 0; i < q.count; ++i)
                rq.items[i] = mapMsg(q.items[i], perm);
        }
    }
    return r;
}

void
canonicalEncoding(const GlobalState &s, const ModelConfig &mc,
                  std::vector<std::uint8_t> &out,
                  std::array<std::uint8_t, max_nodes> *bestPerm)
{
    std::array<std::uint8_t, max_nodes> perm{};
    for (unsigned n = 0; n < max_nodes; ++n)
        perm[n] = static_cast<std::uint8_t>(n);

    encodeState(s, mc, out);
    if (bestPerm)
        *bestPerm = perm;

    const unsigned first = mc.firstSymmetricNode();
    if (first + 1 >= mc.numNodes)
        return; // fewer than two interchangeable nodes

    std::vector<std::uint8_t> candidate;
    candidate.reserve(out.size());
    while (std::next_permutation(perm.begin() + first,
                                 perm.begin() + mc.numNodes)) {
        encodeState(permuteNodes(s, mc, perm), mc, candidate);
        if (candidate < out) {
            out = candidate;
            if (bestPerm)
                *bestPerm = perm;
        }
    }
}

void
canonicalEncoding(const GlobalState &s, const ModelConfig &mc,
                  std::vector<std::uint8_t> &out)
{
    canonicalEncoding(s, mc, out, nullptr);
}

} // namespace cosmos::model
