/**
 * @file
 * Atomic-step executor driving the *live* protocol controllers.
 *
 * The model checker never re-implements the protocol: every
 * transition is computed by restoring a GlobalState into real
 * CacheController / DirectoryController instances (via the snapshot
 * API), applying one action, and reading the controllers back. The
 * transition relation explored is therefore the implementation's, by
 * construction -- the checker cannot drift from the code it checks.
 *
 * Step semantics (Murphi-style atomic handlers): one action delivers
 * one message (or issues one processor access); the receiving
 * handler runs to completion, including its scheduled continuations
 * (the event queue is drained after every handler). Messages the
 * handlers emit are captured instead of sent: remote ones are
 * appended to the model's per-channel FIFOs, home-node-local ones
 * (src == dst) are delivered synchronously within the same step --
 * matching Stache's local optimization, under which local messages
 * are invisible to the network. A step is thus a maximal cascade of
 * local handler executions triggered by one scheduler choice.
 *
 * Handlers run under a FailureTrap: a cosmos_assert / cosmos_panic
 * inside the protocol (e.g. an unexpected message under network
 * reordering) becomes a failed Result, not a dead process, so the
 * exploration can record the violation and continue.
 */

#ifndef COSMOS_MODEL_STEPPER_HH
#define COSMOS_MODEL_STEPPER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/addr.hh"
#include "model/state.hh"
#include "model/table.hh"
#include "sim/event_queue.hh"

namespace cosmos::model
{

/** Executes single model transitions against the live controllers. */
class Stepper
{
  public:
    explicit Stepper(const ModelConfig &mc);

    /** Outcome of one atomic step. */
    struct Result
    {
        GlobalState next{};
        /** A trapped assertion/panic fired inside a handler; next is
         *  meaningless and the state is terminal. */
        bool failed = false;
        std::string failureMsg;
        /** One sample per handler invocation in the cascade. */
        std::vector<Sample> samples;
    };

    /** The all-invalid, all-idle, empty-network initial state. */
    static GlobalState initialState() { return GlobalState{}; }

    /** Apply @p a to @p s. */
    void step(const GlobalState &s, const Action &a, Result &out);

    const ModelConfig &modelConfig() const { return mc_; }
    const MachineConfig &machineConfig() const { return cfg_; }

    /** The declared transition table the controllers dispatch
     *  through; Sample::row points into it. */
    const proto::ProtocolTable &table() const { return table_; }

  private:
    void load(const GlobalState &s);
    void readBack(GlobalState &out);
    void runCascade(Result &out, std::vector<proto::Msg> &worklist,
                    GlobalState &work);
    void drainInto(Sample &sample, std::vector<proto::Msg> &worklist,
                   GlobalState &work, NodeId handled);

    proto::Msg toMsg(const CompactMsg &m) const;
    CompactMsg fromMsg(const proto::Msg &m) const;
    unsigned blockIdx(Addr block) const;

    DirAbstract dirAbstract(const proto::DirEntrySnapshot &e) const;
    /** Find (or default) the pre-handler entry snapshot of a block. */
    proto::DirEntrySnapshot dirEntry(NodeId n, Addr block);

    ModelConfig mc_;
    MachineConfig cfg_;
    AddrMap amap_;
    /** Declared before the controllers: they keep a reference. */
    proto::ProtocolTable table_;
    sim::EventQueue eq_;
    std::vector<std::unique_ptr<proto::CacheController>> caches_;
    std::vector<std::unique_ptr<proto::DirectoryController>> dirs_;

    /** Messages captured from the controllers' send hook. */
    std::vector<proto::Msg> captured_;

    /** Scratch snapshots (reused across steps to avoid allocation). */
    proto::CacheSnapshot cacheScratch_;
    proto::DirectorySnapshot dirScratch_;
};

} // namespace cosmos::model

#endif // COSMOS_MODEL_STEPPER_HH
