/**
 * @file
 * Exhaustive BFS over the protocol's reachable global states.
 *
 * Small configurations (2-3 nodes, 1-2 blocks, bounded network
 * reordering) are explored to closure: every reachable canonical
 * state is visited exactly once, every enabled action of every state
 * is executed through the live controllers (model/stepper), and each
 * discovered state is checked against the protocol's safety
 * properties -- SWMR, directory/cache agreement, deadlock-freedom --
 * reported as the check layer's structured Violation records.
 *
 * The visited set stores canonical encodings (model/state symmetry
 * reduction) in an Arena, indexed by a FlatMap from 64-bit FNV-1a
 * hashes to chains of states sharing the hash; membership is decided
 * by byte comparison, so dedup is exact, never probabilistic.
 *
 * Violating and failed (trapped-assertion) states are terminal: they
 * are recorded with a shortest-path counterexample but not expanded,
 * so a clean run's state count is a golden number and a buggy run
 * stops at the frontier of the bug. Counterexample schedules are
 * translated back from canonical node numbering to a concrete
 * executable schedule (see canonicalEncoding's bestPerm) and verified
 * by re-execution before being reported.
 */

#ifndef COSMOS_MODEL_EXPLORER_HH
#define COSMOS_MODEL_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/violation.hh"
#include "model/state.hh"
#include "model/table.hh"

namespace cosmos::model
{

/** Knobs of one exploration. */
struct ExploreOptions
{
    ModelConfig mc;

    /** Livelock / scale bound: exceeding it aborts the exploration
     *  with a liveness violation (the protocol should close out in
     *  a bounded space at these sizes). */
    std::size_t maxStates = 1u << 20;

    /** Stop recording (not exploring) after this many violations. */
    unsigned maxViolations = 8;
};

/** A violation plus the schedule reaching it from the initial state. */
struct Counterexample
{
    check::Violation violation;
    /** Concrete actions, executable from the all-invalid initial
     *  state (canonical-space node ids already translated back). */
    std::vector<Action> schedule;
    /** Per schedule step, the declared table rows (file:line plus the
     *  row text) each handler invocation of that step dispatched
     *  through -- the provenance trail rendered as `# row` comment
     *  lines in the replayable counterexample format. */
    std::vector<std::vector<std::string>> rowTrace;
};

/** Outcome of one exploration. */
struct ExploreResult
{
    std::size_t states = 0;      ///< distinct canonical states
    std::size_t transitions = 0; ///< actions executed
    std::size_t deadlocks = 0;   ///< terminal deadlock states
    std::size_t failedSteps = 0; ///< trapped assertions/panics
    unsigned maxDepth = 0;       ///< BFS radius of the space
    bool complete = true;        ///< false if maxStates was hit

    std::vector<Counterexample> counterexamples;
    TransitionTable table;
    /** Diff of the extracted table against the declared
     *  proto::ProtocolTable the controllers dispatch through (see
     *  TransitionTable::diffAgainstDeclared). */
    std::vector<ConsistencyFinding> consistency;

    bool clean() const { return counterexamples.empty() && complete; }

    /** True when the extracted table matches the declared one. */
    bool consistent() const { return consistency.empty(); }
};

/** Run the exhaustive exploration. */
ExploreResult explore(const ExploreOptions &opt);

/** Render a counterexample as the replayable text format
 *  (`# cosmos-model-counterexample-v1`). */
std::string formatCounterexample(const ModelConfig &mc,
                                 const Counterexample &ce);

/** Write @p ce to @p path; returns false on I/O error. */
bool writeCounterexample(const std::string &path, const ModelConfig &mc,
                         const Counterexample &ce);

} // namespace cosmos::model

#endif // COSMOS_MODEL_EXPLORER_HH
