#include "model/report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hh"

namespace cosmos::model
{

namespace
{

// JSON string escaping, duplicated from check/fuzzer.cc's
// file-private helper (kept local on both sides: the two report
// writers evolve independently).
void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendViolation(std::ostream &os, const check::Violation &v)
{
    os << "{\"kind\": ";
    appendJsonString(os, check::toString(v.kind));
    os << ", \"block\": " << v.block << ", \"when\": " << v.when
       << ", \"nodes\": [";
    for (std::size_t i = 0; i < v.nodes.size(); ++i)
        os << (i ? ", " : "") << static_cast<unsigned>(v.nodes[i]);
    os << "], \"detail\": ";
    appendJsonString(os, v.detail);
    os << ", \"history\": [";
    for (std::size_t i = 0; i < v.history.size(); ++i) {
        os << (i ? ", " : "");
        appendJsonString(os, v.history[i]);
    }
    os << "]}";
}

const char *
stateName(Module m, std::uint8_t st)
{
    if (m == Module::cache)
        return proto::toString(static_cast<proto::LineState>(st));
    return toString(static_cast<DirAbstract>(st));
}

} // namespace

std::string
renderReport(const ModelConfig &mc, const ExploreResult &res)
{
    std::ostringstream os;
    os << "model check: nodes=" << mc.numNodes
       << " blocks=" << mc.numBlocks << " reorder=" << mc.reorder
       << " policy=" << toString(mc.policy)
       << " forwarding=" << (mc.forwarding ? 1 : 0);
    if (mc.legacyForwarding)
        os << " legacy_forwarding=1";
    if (mc.ignoreInvalEvery)
        os << " inject_ignore_inval=" << mc.ignoreInvalEvery;
    os << "\n";
    os << "explored " << res.states << " states, " << res.transitions
       << " transitions, depth " << res.maxDepth
       << (res.complete ? "" : " (INCOMPLETE: state bound hit)")
       << "\n";
    os << "violations: " << res.counterexamples.size()
       << ", deadlocks: " << res.deadlocks
       << ", trapped assertions: " << res.failedSteps << "\n";

    const auto lint = res.table.lint();
    os << "lint findings: " << lint.size() << "\n";
    for (const LintFinding &f : lint) {
        os << "  [" << LintFinding::toString(f.kind) << "] "
           << toString(f.module) << ": " << f.detail << "\n";
    }

    os << "declared-table consistency: "
       << (res.consistent() ? "ok" : "DIVERGED") << " ("
       << res.consistency.size() << " findings)\n";
    for (const ConsistencyFinding &f : res.consistency) {
        os << "  [" << ConsistencyFinding::toString(f.kind) << "] "
           << toString(f.module) << ": " << f.detail << "\n";
    }

    for (const Counterexample &ce : res.counterexamples) {
        os << "\nviolation: " << check::toString(ce.violation.kind)
           << " -- " << ce.violation.detail << "\n";
        os << "counterexample (" << ce.schedule.size() << " steps):\n";
        std::size_t i = 0;
        for (const Action &a : ce.schedule)
            os << "  step " << i++ << ": " << a.format() << "\n";
    }

    os << "\n" << res.table.format();
    return os.str();
}

bool
writeReportJson(const std::string &path, const ModelConfig &mc,
                const ExploreResult &res)
{
    std::ofstream os(path);
    if (!os)
        return false;

    os << "{\n  \"format\": \"cosmos-model-v1\",\n";
    os << "  \"config\": {\"nodes\": "
       << static_cast<unsigned>(mc.numNodes)
       << ", \"blocks\": " << mc.numBlocks
       << ", \"reorder\": " << mc.reorder << ", \"policy\": ";
    appendJsonString(os, toString(mc.policy));
    os << ", \"forwarding\": " << (mc.forwarding ? "true" : "false")
       << ", \"legacy_forwarding\": "
       << (mc.legacyForwarding ? "true" : "false")
       << ", \"ignore_inval_every\": " << mc.ignoreInvalEvery
       << "},\n";
    os << "  \"complete\": " << (res.complete ? "true" : "false")
       << ",\n";
    os << "  \"clean\": " << (res.clean() ? "true" : "false") << ",\n";
    os << "  \"states\": " << res.states << ",\n";
    os << "  \"transitions\": " << res.transitions << ",\n";
    os << "  \"max_depth\": " << res.maxDepth << ",\n";
    os << "  \"deadlocks\": " << res.deadlocks << ",\n";
    os << "  \"failed_steps\": " << res.failedSteps << ",\n";

    os << "  \"table\": {\"entries\": [";
    bool firstEntry = true;
    std::size_t nondet = 0;
    for (const auto &[key, entry] : res.table.entries()) {
        os << (firstEntry ? "" : ",") << "\n    {\"module\": ";
        appendJsonString(os, toString(key.module));
        os << ", \"state\": ";
        appendJsonString(os, stateName(key.module, key.state));
        os << ", \"input\": ";
        appendJsonString(os, inputName(key.input));
        os << ", \"context\": ";
        appendJsonString(os, key.context);
        os << ", \"hits\": " << entry.hits << ", \"outcomes\": [";
        bool firstOutcome = true;
        for (const Outcome &o : entry.outcomes) {
            os << (firstOutcome ? "" : ", ") << "{\"next\": ";
            appendJsonString(os, stateName(key.module, o.next));
            os << ", \"emits\": [";
            for (std::size_t i = 0; i < o.emissions.size(); ++i) {
                os << (i ? ", " : "");
                appendJsonString(os, proto::toString(o.emissions[i]));
            }
            os << "]}";
            firstOutcome = false;
        }
        os << "]}";
        firstEntry = false;
    }
    for (const TableKey *k : res.table.nondeterministicKeys()) {
        (void)k;
        ++nondet;
    }
    os << (firstEntry ? "]" : "\n  ]") << ", \"nondeterministic\": "
       << nondet << "},\n";

    os << "  \"lint\": [";
    const auto lint = res.table.lint();
    for (std::size_t i = 0; i < lint.size(); ++i) {
        os << (i ? "," : "") << "\n    {\"kind\": ";
        appendJsonString(os, LintFinding::toString(lint[i].kind));
        os << ", \"module\": ";
        appendJsonString(os, toString(lint[i].module));
        os << ", \"detail\": ";
        appendJsonString(os, lint[i].detail);
        os << "}";
    }
    os << (lint.empty() ? "]" : "\n  ]") << ",\n";

    os << "  \"consistent\": "
       << (res.consistent() ? "true" : "false") << ",\n";
    os << "  \"consistency\": [";
    for (std::size_t i = 0; i < res.consistency.size(); ++i) {
        const ConsistencyFinding &f = res.consistency[i];
        os << (i ? "," : "") << "\n    {\"kind\": ";
        appendJsonString(os, ConsistencyFinding::toString(f.kind));
        os << ", \"module\": ";
        appendJsonString(os, toString(f.module));
        os << ", \"detail\": ";
        appendJsonString(os, f.detail);
        os << "}";
    }
    os << (res.consistency.empty() ? "]" : "\n  ]") << ",\n";

    os << "  \"violations\": [";
    for (std::size_t i = 0; i < res.counterexamples.size(); ++i) {
        os << (i ? "," : "") << "\n    ";
        appendViolation(os, res.counterexamples[i].violation);
    }
    os << (res.counterexamples.empty() ? "]" : "\n  ]") << "\n}\n";
    return static_cast<bool>(os);
}

} // namespace cosmos::model
