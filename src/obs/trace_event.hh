/**
 * @file
 * Low-overhead event tracing to Chrome trace-event JSON.
 *
 * Spans (COSMOS_SPAN) and instants (COSMOS_INSTANT) record into
 * per-thread ring buffers; obs::writeTrace() collects every buffer
 * and writes a Chrome trace-event JSON file that chrome://tracing and
 * https://ui.perfetto.dev load directly.
 *
 * Cost policy (docs/ARCHITECTURE.md "Observability"):
 *
 *  - COSMOS_OBS_TRACING=OFF (the Release default): the macros expand
 *    to nothing; writeTrace() still exists and writes an empty but
 *    valid trace, so `--trace-out` never breaks.
 *  - Compiled in but not started: one load + predicted-untaken branch
 *    per site (tracingActive() checks a relaxed atomic).
 *  - Started: a span costs two steady_clock reads and one append to
 *    a thread-local ring buffer (an uncontended mutex guards each
 *    buffer so flushing from another thread is race-free; the ring
 *    drops the oldest events when full, counting the drops).
 *
 * Names and categories must be string literals (or otherwise outlive
 * the session): events store the pointers, not copies.
 */

#ifndef COSMOS_OBS_TRACE_EVENT_HH
#define COSMOS_OBS_TRACE_EVENT_HH

#include <atomic>
#include <cstdint>
#include <string>

#ifndef COSMOS_OBS_TRACING_ENABLED
#define COSMOS_OBS_TRACING_ENABLED 1
#endif

namespace cosmos::obs
{

namespace detail
{
extern std::atomic<bool> tracing_active;
}

/** True between startTracing() and stopTracing(). */
inline bool
tracingActive()
{
    return detail::tracing_active.load(std::memory_order_relaxed);
}

/** Arm the recorders and discard previously-buffered events. */
void startTracing();

/** Disarm the recorders; buffered events stay collectable. */
void stopTracing();

/** Nanoseconds since the process-wide trace epoch. */
std::uint64_t traceNowNs();

/**
 * Append one complete ("ph":"X") event to this thread's buffer.
 * @p arg_name0/1 may be null (the argument is omitted).
 */
void recordSpan(const char *cat, const char *name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, const char *arg_name0 = nullptr,
                std::uint64_t arg0 = 0,
                const char *arg_name1 = nullptr, std::uint64_t arg1 = 0);

/** Append one instant ("ph":"i") event to this thread's buffer. */
void recordInstant(const char *cat, const char *name,
                   const char *arg_name0 = nullptr,
                   std::uint64_t arg0 = 0);

/**
 * Stop tracing, write everything buffered since startTracing() as
 * Chrome trace-event JSON, and drain the buffers (a second call
 * without a new startTracing() writes an empty document). @return
 * false (with a warning) on I/O failure. Always writes a valid
 * document, even with tracing compiled out (an empty traceEvents
 * array).
 */
bool writeTrace(const std::string &path);

/** Events dropped to ring-buffer overflow since startTracing(). */
std::uint64_t droppedEvents();

/** RAII span: records [construction, destruction) when tracing is
 *  active at construction. */
class SpanScope
{
  public:
    SpanScope(const char *cat, const char *name,
              const char *arg_name0 = nullptr, std::uint64_t arg0 = 0,
              const char *arg_name1 = nullptr, std::uint64_t arg1 = 0)
    {
        if (!tracingActive())
            return;
        cat_ = cat;
        name_ = name;
        argName0_ = arg_name0;
        arg0_ = arg0;
        argName1_ = arg_name1;
        arg1_ = arg1;
        start_ = traceNowNs();
    }

    ~SpanScope()
    {
        if (name_ == nullptr)
            return;
        const std::uint64_t end = traceNowNs();
        recordSpan(cat_, name_, start_, end - start_, argName0_, arg0_,
                   argName1_, arg1_);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    const char *cat_ = nullptr;
    const char *name_ = nullptr; ///< null = inactive scope
    const char *argName0_ = nullptr;
    const char *argName1_ = nullptr;
    std::uint64_t arg0_ = 0;
    std::uint64_t arg1_ = 0;
    std::uint64_t start_ = 0;
};

} // namespace cosmos::obs

#if COSMOS_OBS_TRACING_ENABLED

#define COSMOS_OBS_CAT2(a, b) a##b
#define COSMOS_OBS_CAT(a, b) COSMOS_OBS_CAT2(a, b)

/** Span over the enclosing scope: COSMOS_SPAN("replay", "cell"). */
#define COSMOS_SPAN(cat, name)                                             \
    ::cosmos::obs::SpanScope COSMOS_OBS_CAT(cosmos_span_,                  \
                                            __LINE__)(cat, name)

/** Span with up to two named integer arguments. */
#define COSMOS_SPAN_ARGS(cat, name, ...)                                   \
    ::cosmos::obs::SpanScope COSMOS_OBS_CAT(cosmos_span_, __LINE__)(       \
        cat, name, __VA_ARGS__)

/** Zero-duration marker, with optional one named argument. */
#define COSMOS_INSTANT(cat, name, ...)                                     \
    do {                                                                   \
        if (::cosmos::obs::tracingActive())                                \
            ::cosmos::obs::recordInstant(cat, name, ##__VA_ARGS__);        \
    } while (false)

#else // !COSMOS_OBS_TRACING_ENABLED

#define COSMOS_SPAN(cat, name)                                             \
    do {                                                                   \
    } while (false)
#define COSMOS_SPAN_ARGS(cat, name, ...)                                   \
    do {                                                                   \
    } while (false)
#define COSMOS_INSTANT(cat, name, ...)                                     \
    do {                                                                   \
    } while (false)

#endif // COSMOS_OBS_TRACING_ENABLED

#endif // COSMOS_OBS_TRACE_EVENT_HH
