#include "obs/trace_event.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/log.hh"

namespace cosmos::obs
{

namespace detail
{
std::atomic<bool> tracing_active{false};
}

namespace
{

/** Events kept per thread; the ring overwrites the oldest beyond
 *  this, counting the drops. 64Ki events ~= 4 MB per thread. */
constexpr std::size_t ring_capacity = std::size_t{1} << 16;

struct Event
{
    const char *cat;
    const char *name;
    const char *k0; ///< null = no argument
    const char *k1;
    std::uint64_t ts;  ///< ns since the trace epoch
    std::uint64_t dur; ///< ns; 0 for instants
    std::uint64_t a0;
    std::uint64_t a1;
    char ph; ///< 'X' complete, 'i' instant
};

/** One thread's recorder. Appends come only from the owning thread;
 *  the mutex exists so start/flush from other threads are race-free. */
struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<Event> ring;
    std::size_t head = 0; ///< oldest element once the ring wrapped
    std::uint64_t dropped = 0;
    int tid = 0;

    void
    append(const Event &e)
    {
        std::lock_guard<std::mutex> guard(mutex);
        if (ring.size() < ring_capacity) {
            ring.push_back(e);
        } else {
            ring[head] = e;
            head = (head + 1) % ring_capacity;
            ++dropped;
        }
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> guard(mutex);
        ring.clear();
        head = 0;
        dropped = 0;
    }
};

struct BufferRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int nextTid = 1;
};

BufferRegistry &
registry()
{
    static BufferRegistry *r = new BufferRegistry; // leaked on exit:
    // thread-local buffers may flush during static destruction.
    return *r;
}

ThreadBuffer &
myBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        BufferRegistry &r = registry();
        std::lock_guard<std::mutex> guard(r.mutex);
        b->tid = r.nextTid++;
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // namespace

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

void
startTracing()
{
    epoch(); // pin the epoch before the first event
    BufferRegistry &r = registry();
    {
        std::lock_guard<std::mutex> guard(r.mutex);
        for (auto &b : r.buffers)
            b->clear();
    }
    detail::tracing_active.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    detail::tracing_active.store(false, std::memory_order_relaxed);
}

void
recordSpan(const char *cat, const char *name, std::uint64_t ts_ns,
           std::uint64_t dur_ns, const char *arg_name0,
           std::uint64_t arg0, const char *arg_name1,
           std::uint64_t arg1)
{
    myBuffer().append(Event{cat, name, arg_name0, arg_name1, ts_ns,
                            dur_ns, arg0, arg1, 'X'});
}

void
recordInstant(const char *cat, const char *name, const char *arg_name0,
              std::uint64_t arg0)
{
    myBuffer().append(
        Event{cat, name, arg_name0, nullptr, traceNowNs(), 0, arg0, 0,
              'i'});
}

std::uint64_t
droppedEvents()
{
    BufferRegistry &r = registry();
    std::lock_guard<std::mutex> guard(r.mutex);
    std::uint64_t total = 0;
    for (const auto &b : r.buffers) {
        std::lock_guard<std::mutex> bguard(b->mutex);
        total += b->dropped;
    }
    return total;
}

bool
writeTrace(const std::string &path)
{
    stopTracing();

    // Snapshot every buffer oldest-first, tagged with its tid.
    struct Tagged
    {
        Event e;
        int tid;
    };
    std::vector<Tagged> events;
    std::uint64_t dropped = 0;
    {
        BufferRegistry &r = registry();
        std::lock_guard<std::mutex> guard(r.mutex);
        for (const auto &b : r.buffers) {
            std::lock_guard<std::mutex> bguard(b->mutex);
            const std::size_t n = b->ring.size();
            for (std::size_t i = 0; i < n; ++i) {
                const Event &e =
                    b->ring[(b->head + i) % ring_capacity];
                events.push_back({e, b->tid});
            }
            dropped += b->dropped;
            // Drain: a later writeTrace() must not re-emit these.
            b->ring.clear();
            b->head = 0;
            b->dropped = 0;
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.e.ts < b.e.ts;
                     });

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        cosmos_warn("cannot write trace to ", path);
        return false;
    }

    auto us = [](std::uint64_t ns) {
        return static_cast<double>(ns) / 1000.0;
    };
    std::fprintf(f, "{\n\"traceEvents\": [");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i].e;
        std::fprintf(f,
                     "%s\n{\"name\": \"%s\", \"cat\": \"%s\", "
                     "\"ph\": \"%c\", \"ts\": %.3f, ",
                     i ? "," : "", e.name, e.cat, e.ph, us(e.ts));
        if (e.ph == 'X')
            std::fprintf(f, "\"dur\": %.3f, ", us(e.dur));
        if (e.ph == 'i')
            std::fprintf(f, "\"s\": \"t\", ");
        std::fprintf(f, "\"pid\": 1, \"tid\": %d", events[i].tid);
        if (e.k0 != nullptr || e.k1 != nullptr) {
            std::fprintf(f, ", \"args\": {");
            bool first = true;
            if (e.k0 != nullptr) {
                std::fprintf(f, "\"%s\": %llu", e.k0,
                             static_cast<unsigned long long>(e.a0));
                first = false;
            }
            if (e.k1 != nullptr)
                std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                             e.k1,
                             static_cast<unsigned long long>(e.a1));
            std::fprintf(f, "}");
        }
        std::fprintf(f, "}");
    }
    std::fprintf(f,
                 "\n],\n\"displayTimeUnit\": \"ms\",\n"
                 "\"otherData\": {\"dropped_events\": %llu}\n}\n",
                 static_cast<unsigned long long>(dropped));
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        cosmos_warn("short write of trace to ", path);
    return ok;
}

} // namespace cosmos::obs
