#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace cosmos::obs
{

namespace
{

const char *
kindName(int kind)
{
    switch (kind) {
    case 0:
        return "counter";
    case 1:
        return "gauge";
    case 2:
        return "histogram";
    default:
        return "summary";
    }
}

/**
 * Deterministic JSON number rendering: integral values print with no
 * decimal point, everything else with 9 significant digits. The only
 * property the export needs is that equal doubles render to equal
 * bytes, which any fixed format gives; this one also keeps counters
 * readable.
 */
std::string
num(double v)
{
    char buf[40];
    if (std::nearbyint(v) == v && std::fabs(v) < 9e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.9g", v);
    }
    return buf;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

Registry::Metric &
Registry::obtain(const std::string &name, Kind kind, Stability st)
{
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        auto m = std::make_unique<Metric>();
        m->kind = kind;
        m->stability = st;
        it = metrics_.emplace(name, std::move(m)).first;
    } else {
        cosmos_assert(it->second->kind == kind,
                      "metric \"", name, "\" re-registered as ",
                      kindName(static_cast<int>(kind)), ", was ",
                      kindName(static_cast<int>(it->second->kind)));
    }
    return *it->second;
}

Counter &
Registry::counter(const std::string &name, Stability st)
{
    return obtain(name, Kind::counter, st).counter;
}

Gauge &
Registry::gauge(const std::string &name, Stability st)
{
    return obtain(name, Kind::gauge, st).gauge;
}

Histogram &
Registry::histogram(const std::string &name, const Histogram &layout,
                    Stability st)
{
    Metric &m = obtain(name, Kind::histogram, st);
    if (m.histogram.bounds().empty() && m.histogram.count() == 0)
        m.histogram = layout;
    return m.histogram;
}

Distribution &
Registry::summary(const std::string &name, Stability st)
{
    return obtain(name, Kind::summary, st).summary;
}

void
Registry::merge(const Registry &other)
{
    for (const auto &[name, theirs] : other.metrics_) {
        Metric &mine = obtain(name, theirs->kind, theirs->stability);
        switch (theirs->kind) {
        case Kind::counter:
            mine.counter.add(theirs->counter.value());
            break;
        case Kind::gauge:
            mine.gauge.mergeFrom(theirs->gauge);
            break;
        case Kind::histogram:
            mine.histogram.merge(theirs->histogram);
            break;
        case Kind::summary:
            mine.summary.merge(theirs->summary);
            break;
        }
    }
}

std::string
Registry::toJson(bool include_volatile) const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"cosmos-metrics-v1\",\n  \"metrics\": {";
    bool first = true;
    for (const auto &[name, m] : metrics_) {
        if (m->stability == Stability::volatile_ && !include_volatile)
            continue;
        os << (first ? "\n" : ",\n") << "    " << quote(name)
           << ": {\"kind\": \""
           << kindName(static_cast<int>(m->kind)) << "\", ";
        switch (m->kind) {
        case Kind::counter:
            os << "\"value\": " << m->counter.value();
            break;
        case Kind::gauge:
            os << "\"value\": " << m->gauge.value()
               << ", \"high_water\": " << m->gauge.highWater();
            break;
        case Kind::histogram: {
            const Histogram &h = m->histogram;
            os << "\"count\": " << h.count() << ", \"sum\": "
               << num(h.sum()) << ", \"min\": " << num(h.min())
               << ", \"max\": " << num(h.max())
               << ", \"p50\": " << num(h.percentile(0.50))
               << ", \"p90\": " << num(h.percentile(0.90))
               << ", \"p99\": " << num(h.percentile(0.99))
               << ", \"bounds\": [";
            for (std::size_t i = 0; i < h.bounds().size(); ++i)
                os << (i ? ", " : "") << num(h.bounds()[i]);
            os << "], \"counts\": [";
            for (std::size_t i = 0; i < h.counts().size(); ++i)
                os << (i ? ", " : "") << h.counts()[i];
            os << "]";
            break;
        }
        case Kind::summary: {
            const Distribution &d = m->summary;
            os << "\"count\": " << d.count() << ", \"sum\": "
               << num(d.sum()) << ", \"min\": " << num(d.min())
               << ", \"max\": " << num(d.max())
               << ", \"mean\": " << num(d.mean())
               << ", \"stddev\": " << num(d.stddev());
            break;
        }
        }
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

bool
Registry::writeJson(const std::string &path,
                    bool include_volatile) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        cosmos_warn("cannot write metrics to ", path);
        return false;
    }
    const std::string doc = toJson(include_volatile);
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok)
        cosmos_warn("short write of metrics to ", path);
    return ok;
}

std::string
Registry::format() const
{
    std::ostringstream os;
    for (const auto &[name, m] : metrics_) {
        os << name;
        if (m->stability == Stability::volatile_)
            os << " (volatile)";
        os << " = ";
        switch (m->kind) {
        case Kind::counter:
            os << m->counter.value();
            break;
        case Kind::gauge:
            os << m->gauge.value() << " (high water "
               << m->gauge.highWater() << ")";
            break;
        case Kind::histogram: {
            const Histogram &h = m->histogram;
            os << "count " << h.count() << ", mean " << h.mean()
               << ", p50 " << h.percentile(0.50) << ", p90 "
               << h.percentile(0.90) << ", p99 "
               << h.percentile(0.99) << ", max " << h.max();
            break;
        }
        case Kind::summary: {
            const Distribution &d = m->summary;
            os << "count " << d.count() << ", mean " << d.mean()
               << ", stddev " << d.stddev() << ", min " << d.min()
               << ", max " << d.max();
            break;
        }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace cosmos::obs
