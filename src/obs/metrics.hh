/**
 * @file
 * The metrics registry: named, typed runtime metrics with a stable
 * JSON export.
 *
 * Four metric kinds cover the simulator's reporting needs:
 *
 *  - Counter    monotonically increasing uint64 (events dispatched,
 *               messages delivered, tasks stolen);
 *  - Gauge      instantaneous int64 level with a high-water mark
 *               (queue depth, messages in flight);
 *  - Histogram  fixed-bucket distribution with percentile queries
 *               (message latency, probe lengths) -- common/stats.hh;
 *  - Summary    count/mean/min/max/stddev scalar summary
 *               (table load factors) -- common/stats.hh Distribution.
 *
 * Every metric is registered under a dotted name ("net.latency",
 * "replay.pool.steals") and tagged with a Stability class:
 *
 *  - Stability::stable    a pure function of (configuration, seed) --
 *    the same discipline as the replay shard reduction. Stable
 *    metrics are what writeJson() exports, and the export is
 *    byte-identical across runs and thread counts (asserted by
 *    tests/obs_test.cc).
 *  - Stability::volatile_ scheduling- or layout-dependent (worker
 *    utilization, wall times, hash-table probe lengths). Shown in
 *    the human table and exported only on request.
 *
 * Registries are mergeable by name (counters add, gauges max their
 * high-water marks, histograms/summaries fold), so per-shard
 * registries reduce exactly like ReplayResult does.
 *
 * The registry is deliberately NOT thread-safe: hot paths keep their
 * own plain counters (or per-shard registries) and publish once at
 * the end, so instrumentation never adds synchronization to the code
 * it observes. See docs/ARCHITECTURE.md "Observability".
 */

#ifndef COSMOS_OBS_METRICS_HH
#define COSMOS_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace cosmos::obs
{

/** Determinism class of a metric (see file comment). */
enum class Stability
{
    stable,
    volatile_,
};

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Instantaneous level with a high-water mark. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_ = v;
        if (v > highWater_)
            highWater_ = v;
    }

    void add(std::int64_t delta = 1) { set(value_ + delta); }
    void sub(std::int64_t delta = 1) { value_ -= delta; }

    std::int64_t value() const { return value_; }
    std::int64_t highWater() const { return highWater_; }

    /** Shard reduction: levels add, high-water marks max. */
    void
    mergeFrom(const Gauge &other)
    {
        value_ += other.value_;
        if (other.highWater_ > highWater_)
            highWater_ = other.highWater_;
    }

  private:
    std::int64_t value_ = 0;
    std::int64_t highWater_ = 0;
};

/**
 * A named bag of metrics. Look-ups create on first use; re-looking
 * up an existing name returns the same object (the kind must match).
 */
class Registry
{
  public:
    Registry() = default;

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    Registry(Registry &&) = default;
    Registry &operator=(Registry &&) = default;

    Counter &counter(const std::string &name,
                     Stability st = Stability::stable);
    Gauge &gauge(const std::string &name,
                 Stability st = Stability::stable);

    /** First use fixes the bucket layout; later calls ignore @p
     *  layout and return the existing histogram. */
    Histogram &histogram(const std::string &name,
                         const Histogram &layout,
                         Stability st = Stability::stable);

    Distribution &summary(const std::string &name,
                          Stability st = Stability::stable);

    /** Number of registered metrics. */
    std::size_t size() const { return metrics_.size(); }

    /**
     * Fold @p other in by name: counters add, gauge values add and
     * high-water marks max, histograms and summaries merge. Metrics
     * absent here are created. Kinds must agree.
     */
    void merge(const Registry &other);

    /**
     * Stable JSON document (schema "cosmos-metrics-v1"): metrics
     * sorted by name, volatile metrics included only when asked.
     * Deterministic inputs produce byte-identical output.
     */
    std::string toJson(bool include_volatile = false) const;

    /** Write toJson() to @p path; false (with a warning) on I/O
     *  failure. */
    bool writeJson(const std::string &path,
                   bool include_volatile = false) const;

    /** Human-readable table of every metric (volatile ones marked). */
    std::string format() const;

  private:
    enum class Kind
    {
        counter,
        gauge,
        histogram,
        summary,
    };

    struct Metric
    {
        Kind kind;
        Stability stability;
        Counter counter;
        Gauge gauge;
        Histogram histogram;
        Distribution summary;
    };

    Metric &obtain(const std::string &name, Kind kind, Stability st);

    /// std::map: export iterates in name order, giving the stable
    /// JSON field order for free.
    std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

} // namespace cosmos::obs

#endif // COSMOS_OBS_METRICS_HH
