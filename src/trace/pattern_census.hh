/**
 * @file
 * Sharing-pattern census: classify every cache block of a trace into
 * the classical sharing-pattern taxonomy the paper builds on
 * (Bennett/Carter/Zwaenepoel and Weber/Gupta -- references [7, 13]):
 * read-only, producer-consumer, migratory, multi-writer, and
 * rarely-touched. §6.1 attributes each application's predictability
 * to its mix of these patterns; this module measures that mix
 * directly from the directory-side message stream, validating that
 * the workload kernels exercise the sharing structure they claim.
 */

#ifndef COSMOS_TRACE_PATTERN_CENSUS_HH
#define COSMOS_TRACE_PATTERN_CENSUS_HH

#include <cstdint>
#include <map>
#include <string>

#include "trace/trace.hh"

namespace cosmos::trace
{

/** The classical sharing-pattern classes. */
enum class SharingPattern
{
    rarely_touched,    ///< too few messages to classify
    read_only,         ///< fetched, never written
    producer_consumer, ///< one dominant writer, other readers
    migratory,         ///< ownership rotates: read then write by the
                       ///< same (changing) node
    multi_writer,      ///< several writers, no migratory discipline
                       ///< (false sharing, contended counters)
};

const char *toString(SharingPattern p);

constexpr unsigned num_sharing_patterns = 5;

/** Census result: block and message counts per pattern class. */
struct PatternCensus
{
    std::uint64_t blocks[num_sharing_patterns] = {};
    std::uint64_t messages[num_sharing_patterns] = {};
    std::uint64_t totalBlocks = 0;
    std::uint64_t totalMessages = 0;

    double blockPercent(SharingPattern p) const;
    double messagePercent(SharingPattern p) const;

    /** One line per class, "name: blocks% / messages%". */
    std::string format() const;
};

/**
 * Classify every block of @p t from its directory-side records.
 *
 * @param min_messages  blocks with fewer directory-side messages are
 *                      binned as rarely_touched
 */
PatternCensus classifyTrace(const Trace &t,
                            unsigned min_messages = 6);

/**
 * Per-block classification (block address -> pattern) -- the raw
 * form classifyTrace aggregates. Blocks with no directory-side
 * records do not appear. The forge (src/forge) scores its
 * ground-truth labels against this map.
 */
std::map<Addr, SharingPattern>
classifyBlocks(const Trace &t, unsigned min_messages = 6);

} // namespace cosmos::trace

#endif // COSMOS_TRACE_PATTERN_CENSUS_HH
