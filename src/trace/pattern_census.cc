#include "trace/pattern_census.hh"

#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace cosmos::trace
{

const char *
toString(SharingPattern p)
{
    switch (p) {
      case SharingPattern::rarely_touched:    return "rarely-touched";
      case SharingPattern::read_only:         return "read-only";
      case SharingPattern::producer_consumer: return "producer-consumer";
      case SharingPattern::migratory:         return "migratory";
      case SharingPattern::multi_writer:      return "multi-writer";
    }
    return "?";
}

double
PatternCensus::blockPercent(SharingPattern p) const
{
    return totalBlocks == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(
                         blocks[static_cast<unsigned>(p)]) /
                     static_cast<double>(totalBlocks);
}

double
PatternCensus::messagePercent(SharingPattern p) const
{
    return totalMessages == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(
                         messages[static_cast<unsigned>(p)]) /
                     static_cast<double>(totalMessages);
}

std::string
PatternCensus::format() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < num_sharing_patterns; ++i) {
        const auto p = static_cast<SharingPattern>(i);
        os << toString(p) << ": " << blockPercent(p) << "% blocks / "
           << messagePercent(p) << "% messages\n";
    }
    return os.str();
}

namespace
{

struct BlockHistory
{
    std::uint64_t messages = 0;
    std::uint64_t writes = 0; // rw fetches + upgrades
    std::uint64_t reads = 0;  // ro fetches
    std::map<NodeId, std::uint64_t> writersByCount;
    std::set<NodeId> readers;
    /** Reads later upgraded by the same node (migratory hand-offs). */
    std::uint64_t readThenUpgrade = 0;
    NodeId lastReader = invalid_node;
};

SharingPattern
classify(const BlockHistory &h, unsigned min_messages)
{
    if (h.messages < min_messages)
        return SharingPattern::rarely_touched;
    if (h.writes == 0)
        return SharingPattern::read_only;

    // Producer-consumer first: one writer dominates and someone else
    // reads. A producer that reads before writing (appbt's stencil)
    // must land here, not in migratory -- ownership never rotates.
    std::uint64_t top_writes = 0;
    NodeId top_writer = invalid_node;
    for (const auto &[node, count] : h.writersByCount) {
        if (count > top_writes) {
            top_writes = count;
            top_writer = node;
        }
    }
    const bool dominant_writer =
        static_cast<double>(top_writes) /
            static_cast<double>(h.writes) >=
        0.8;
    bool external_reader = false;
    for (NodeId r : h.readers)
        external_reader |= r != top_writer;
    if (dominant_writer && external_reader)
        return SharingPattern::producer_consumer;

    // Migratory: ownership rotates -- no dominant writer, and a
    // significant share of reads turns into an upgrade by the same
    // node (the read-modify-write hand-off).
    if (h.writersByCount.size() >= 2 && h.reads > 0 &&
        static_cast<double>(h.readThenUpgrade) /
                static_cast<double>(h.reads) >=
            0.3) {
        return SharingPattern::migratory;
    }

    return SharingPattern::multi_writer;
}

std::map<Addr, BlockHistory>
buildHistories(const Trace &t)
{
    std::map<Addr, BlockHistory> histories;
    for (const auto &r : t.records) {
        if (r.role != proto::Role::directory)
            continue;
        BlockHistory &h = histories[r.block];
        ++h.messages;
        switch (r.type) {
          case proto::MsgType::get_ro_request:
            ++h.reads;
            h.readers.insert(r.sender);
            h.lastReader = r.sender;
            break;
          case proto::MsgType::upgrade_request:
            ++h.writes;
            ++h.writersByCount[r.sender];
            if (r.sender == h.lastReader)
                ++h.readThenUpgrade;
            break;
          case proto::MsgType::get_rw_request:
            ++h.writes;
            ++h.writersByCount[r.sender];
            break;
          default:
            break;
        }
    }
    return histories;
}

} // namespace

PatternCensus
classifyTrace(const Trace &t, unsigned min_messages)
{
    PatternCensus census;
    for (const auto &[block, h] : buildHistories(t)) {
        const auto p = classify(h, min_messages);
        ++census.blocks[static_cast<unsigned>(p)];
        census.messages[static_cast<unsigned>(p)] += h.messages;
        ++census.totalBlocks;
        census.totalMessages += h.messages;
    }
    return census;
}

std::map<Addr, SharingPattern>
classifyBlocks(const Trace &t, unsigned min_messages)
{
    std::map<Addr, SharingPattern> out;
    for (const auto &[block, h] : buildHistories(t))
        out.emplace(block, classify(h, min_messages));
    return out;
}

} // namespace cosmos::trace
