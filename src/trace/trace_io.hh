/**
 * @file
 * Binary serialization of coherence-message traces, so expensive
 * simulations can be captured once and replayed through predictors.
 */

#ifndef COSMOS_TRACE_TRACE_IO_HH
#define COSMOS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace cosmos::trace
{

/** Write @p t to @p os in the cosmos binary trace format. */
void writeTrace(std::ostream &os, const Trace &t);

/** Read a trace from @p is; panics on a malformed stream. */
Trace readTrace(std::istream &is);

/** File-path convenience wrappers (fatal on I/O failure). */
void saveTrace(const std::string &path, const Trace &t);
Trace loadTrace(const std::string &path);

} // namespace cosmos::trace

#endif // COSMOS_TRACE_TRACE_IO_HH
