/**
 * @file
 * Binary serialization of coherence-message traces, so expensive
 * simulations can be captured once and replayed through predictors.
 */

#ifndef COSMOS_TRACE_TRACE_IO_HH
#define COSMOS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hh"

namespace cosmos::trace
{

/** Write @p t to @p os in the cosmos binary trace format. */
void writeTrace(std::ostream &os, const Trace &t);

/** Read a trace from @p is; panics on a malformed stream. */
Trace readTrace(std::istream &is);

/**
 * Read a trace from @p is; nullopt on a truncated, corrupt, or
 * implausible stream. The recoverable twin of readTrace() -- callers
 * holding a possibly half-written file (a shared trace cache, user
 * input) fall back to re-simulating instead of aborting.
 */
std::optional<Trace> tryReadTrace(std::istream &is);

/** File-path convenience wrappers (fatal on I/O failure). */
void saveTrace(const std::string &path, const Trace &t);
Trace loadTrace(const std::string &path);

/** Load @p path; nullopt if missing, unreadable, or malformed. */
std::optional<Trace> tryLoadTrace(const std::string &path);

/**
 * Save durably against concurrent readers: write to a temporary
 * sibling file, then atomically rename over @p path, so another
 * process loading @p path never observes a half-written trace.
 */
void saveTraceAtomic(const std::string &path, const Trace &t);

} // namespace cosmos::trace

#endif // COSMOS_TRACE_TRACE_IO_HH
