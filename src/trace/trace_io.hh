/**
 * @file
 * Binary serialization of coherence-message traces, so expensive
 * simulations can be captured once and replayed through predictors.
 */

#ifndef COSMOS_TRACE_TRACE_IO_HH
#define COSMOS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hh"

namespace cosmos::trace
{

/** Write @p t to @p os in the cosmos binary trace format. */
void writeTrace(std::ostream &os, const Trace &t);

/**
 * Where and why a trace parse failed. A truncated download and a
 * corrupt record byte produce very different offsets; reporting the
 * exact failing position turns "malformed trace" into something a
 * user can act on (compare against the file size, hexdump the spot).
 */
struct ReadDiagnostic
{
    /** Byte offset of the field whose read or validation failed
     *  (== bytes successfully consumed before it). */
    std::uint64_t offset = 0;

    /** What was wrong there; empty when no failure occurred. */
    std::string reason;

    /** `<name>: <reason> at byte offset <offset>`. */
    std::string format(const std::string &name) const;
};

/**
 * Read a trace from @p is; panics on a malformed stream. @p name
 * labels the source (file path) in the panic diagnostic, which
 * includes the byte offset of the failure.
 */
Trace readTrace(std::istream &is, const std::string &name = "<stream>");

/**
 * Read a trace from @p is; nullopt on a truncated, corrupt, or
 * implausible stream. The recoverable twin of readTrace() -- callers
 * holding a possibly half-written file (a shared trace cache, user
 * input) fall back to re-simulating instead of aborting. When
 * @p diag is non-null, a failure fills it with the byte offset and
 * reason.
 */
std::optional<Trace> tryReadTrace(std::istream &is,
                                  ReadDiagnostic *diag = nullptr);

/** File-path convenience wrappers (fatal on I/O failure). */
void saveTrace(const std::string &path, const Trace &t);
Trace loadTrace(const std::string &path);

/** Load @p path; nullopt if missing, unreadable, or malformed. */
std::optional<Trace> tryLoadTrace(const std::string &path);

/**
 * Save durably against concurrent readers: write to a temporary
 * sibling file, then atomically rename over @p path, so another
 * process loading @p path never observes a half-written trace.
 */
void saveTraceAtomic(const std::string &path, const Trace &t);

} // namespace cosmos::trace

#endif // COSMOS_TRACE_TRACE_IO_HH
