#include "trace/trace.hh"

#include <unordered_set>

#include "common/flat_map.hh"

namespace cosmos::trace
{

std::size_t
Trace::cacheRecords() const
{
    std::size_t n = 0;
    for (const auto &r : records)
        if (r.role == proto::Role::cache)
            ++n;
    return n;
}

std::size_t
Trace::directoryRecords() const
{
    return records.size() - cacheRecords();
}

std::size_t
Trace::distinctBlocks() const
{
    std::unordered_set<Addr> blocks;
    for (const auto &r : records)
        blocks.insert(r.block);
    return blocks.size();
}

std::vector<std::uint32_t>
moduleBlockCensus(const Trace &t)
{
    std::vector<std::uint32_t> census(2u * t.numNodes, 0);
    // One flat set over (node, role, block): the same key layout the
    // non-Cosmos bank uses for its last-type table.
    FlatMap<std::uint64_t, bool> seen;
    seen.reserve(t.records.size() / 8 + 8);
    for (const auto &r : t.records) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(r.receiver) << 48) |
            (static_cast<std::uint64_t>(
                 r.role == proto::Role::directory ? 1 : 0)
             << 40) |
            r.block;
        if (seen.find(key) == nullptr) {
            seen.insert(key, true);
            ++census[2u * r.receiver +
                     (r.role == proto::Role::directory ? 1 : 0)];
        }
    }
    return census;
}

std::vector<std::uint32_t>
moduleBlockCensus(const std::vector<const TraceRecord *> &records,
                  NodeId num_nodes)
{
    std::vector<std::uint32_t> census(2u * num_nodes, 0);
    FlatMap<std::uint64_t, bool> seen;
    seen.reserve(records.size() / 8 + 8);
    for (const TraceRecord *r : records) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(r->receiver) << 48) |
            (static_cast<std::uint64_t>(
                 r->role == proto::Role::directory ? 1 : 0)
             << 40) |
            r->block;
        if (seen.find(key) == nullptr) {
            seen.insert(key, true);
            ++census[2u * r->receiver +
                     (r->role == proto::Role::directory ? 1 : 0)];
        }
    }
    return census;
}

TraceRecorder::TraceRecorder(Trace &out, std::int32_t warmup_iterations)
    : out_(out), warmup_(warmup_iterations)
{
}

void
TraceRecorder::onMessage(const proto::Msg &m, proto::Role role,
                         int iteration, Tick when)
{
    if (iteration < warmup_) {
        ++dropped_;
        return;
    }
    TraceRecord r;
    r.block = m.block;
    r.when = when;
    r.receiver = m.dst;
    r.sender = m.src;
    r.type = m.type;
    r.role = role;
    r.iteration = iteration;
    out_.records.push_back(r);
}

} // namespace cosmos::trace
