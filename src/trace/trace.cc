#include "trace/trace.hh"

#include <unordered_set>

namespace cosmos::trace
{

std::size_t
Trace::cacheRecords() const
{
    std::size_t n = 0;
    for (const auto &r : records)
        if (r.role == proto::Role::cache)
            ++n;
    return n;
}

std::size_t
Trace::directoryRecords() const
{
    return records.size() - cacheRecords();
}

std::size_t
Trace::distinctBlocks() const
{
    std::unordered_set<Addr> blocks;
    for (const auto &r : records)
        blocks.insert(r.block);
    return blocks.size();
}

TraceRecorder::TraceRecorder(Trace &out, std::int32_t warmup_iterations)
    : out_(out), warmup_(warmup_iterations)
{
}

void
TraceRecorder::onMessage(const proto::Msg &m, proto::Role role,
                         int iteration, Tick when)
{
    if (iteration < warmup_) {
        ++dropped_;
        return;
    }
    TraceRecord r;
    r.block = m.block;
    r.when = when;
    r.receiver = m.dst;
    r.sender = m.src;
    r.type = m.type;
    r.role = role;
    r.iteration = iteration;
    out_.records.push_back(r);
}

} // namespace cosmos::trace
