/**
 * @file
 * Streaming sources of coherence-message records.
 *
 * A materialized trace::Trace holds every record in one vector --
 * fine for the paper's five kernels, hopeless for billion-message
 * synthetic streams. RecordSource is the record-level twin of
 * forge::TrafficSource: consumers pull TraceRecords in chunks, so a
 * replay's memory footprint is the chunk buffer plus predictor
 * tables, independent of stream length.
 *
 * Sources promise the same two invariants a materialized trace gives
 * a replayer: records of one block arrive in stream order, and the
 * stream content is a deterministic function of the source's
 * configuration -- byte-identical regardless of how the consumer
 * chunks its pulls. Under those invariants a chunked replay is
 * bit-identical to a materialized one.
 */

#ifndef COSMOS_TRACE_RECORD_SOURCE_HH
#define COSMOS_TRACE_RECORD_SOURCE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace cosmos::trace
{

/** Streaming producer of coherence-message records. */
class RecordSource
{
  public:
    virtual ~RecordSource() = default;

    /** Human-readable source name (diagnostics, artifacts). */
    virtual const std::string &name() const = 0;

    /** Nodes the stream may reference (receivers in [0, numNodes)). */
    virtual NodeId numNodes() const = 0;

    /**
     * Replace @p out with up to @p max further records.
     * @return the number produced; 0 means exhausted.
     */
    virtual std::size_t next(std::vector<TraceRecord> &out,
                             std::size_t max) = 0;
};

/**
 * A materialized trace viewed as a stream -- the bridge that lets
 * one replayer serve both worlds, and the reference the streaming
 * tests compare against. The trace must outlive the source.
 */
class TraceRecordSource : public RecordSource
{
  public:
    explicit TraceRecordSource(const Trace &t) : trace_(t) {}

    const std::string &name() const override { return trace_.app; }
    NodeId numNodes() const override { return trace_.numNodes; }

    std::size_t
    next(std::vector<TraceRecord> &out, std::size_t max) override
    {
        out.clear();
        const std::size_t n =
            std::min(max, trace_.records.size() - cursor_);
        out.insert(out.end(), trace_.records.begin() + cursor_,
                   trace_.records.begin() + cursor_ + n);
        cursor_ += n;
        return n;
    }

    /** Rewind to the beginning (repeated bench reps). */
    void rewind() { cursor_ = 0; }

  private:
    const Trace &trace_;
    std::size_t cursor_ = 0;
};

} // namespace cosmos::trace

#endif // COSMOS_TRACE_RECORD_SOURCE_HH
