#include "trace/trace_io.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

#include <unistd.h>

#include "common/log.hh"

namespace cosmos::trace
{

namespace
{

constexpr std::uint32_t trace_magic = 0xc0530501; // "cosmos" v1

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

/**
 * Checked reader over a binary stream. A failed or implausible read
 * latches ok = false; subsequent gets return zeroes, so a parse can
 * run to completion and be judged once at the end. The first failure
 * records its byte offset and reason for the caller's diagnostic.
 */
struct Reader
{
    std::istream &is;
    bool ok = true;
    std::uint64_t offset = 0; ///< bytes successfully consumed
    ReadDiagnostic diag{};

    /** Latch the first failure with the position it happened at. */
    void
    fail(const std::string &reason)
    {
        if (!ok)
            return;
        ok = false;
        diag.offset = offset;
        diag.reason = reason;
    }

    template <typename T>
    T
    get(const char *what)
    {
        T v{};
        if (!ok)
            return v;
        is.read(reinterpret_cast<char *>(&v), sizeof(v));
        if (!is) {
            fail("truncated while reading " + std::string(what) +
                 " (" + std::to_string(is.gcount()) + " of " +
                 std::to_string(sizeof(v)) + " bytes available)");
        } else {
            offset += sizeof(v);
        }
        return v;
    }

    std::string
    getString(const char *what)
    {
        const auto n = get<std::uint32_t>("length of string");
        if (!ok)
            return {};
        if (n > (1u << 20)) {
            fail("implausible " + std::string(what) + " length " +
                 std::to_string(n));
            return {};
        }
        std::string s(n, '\0');
        is.read(s.data(), n);
        if (!is) {
            fail("truncated while reading " + std::string(what) +
                 " (" + std::to_string(is.gcount()) + " of " +
                 std::to_string(n) + " bytes available)");
            return {};
        }
        offset += n;
        return s;
    }
};

void
putString(std::ostream &os, const std::string &s)
{
    put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &t)
{
    put(os, trace_magic);
    putString(os, t.app);
    put(os, t.numNodes);
    put(os, t.blockBytes);
    put(os, t.iterations);
    put(os, t.seed);
    put<std::uint64_t>(os, t.records.size());
    for (const auto &r : t.records) {
        put(os, r.block);
        put(os, r.when);
        put(os, r.receiver);
        put(os, r.sender);
        put(os, static_cast<std::uint8_t>(r.type));
        put(os, static_cast<std::uint8_t>(r.role));
        put(os, r.iteration);
    }
}

std::string
ReadDiagnostic::format(const std::string &name) const
{
    return name + ": " + (reason.empty() ? "malformed trace" : reason) +
           " at byte offset " + std::to_string(offset);
}

std::optional<Trace>
tryReadTrace(std::istream &is, ReadDiagnostic *diag)
{
    Reader in{is};
    const auto report = [&]() -> std::optional<Trace> {
        if (diag != nullptr)
            *diag = in.diag;
        return std::nullopt;
    };
    if (in.get<std::uint32_t>("magic") != trace_magic || !in.ok) {
        if (in.ok) {
            in.offset = 0; // the foreign bytes start at the top
            in.fail("bad magic (not a cosmos trace file)");
        }
        return report();
    }
    Trace t;
    t.app = in.getString("app name");
    t.numNodes = in.get<NodeId>("node count");
    t.blockBytes = in.get<unsigned>("block size");
    t.iterations = in.get<std::int32_t>("iteration count");
    t.seed = in.get<std::uint64_t>("seed");
    const auto n = in.get<std::uint64_t>("record count");
    if (!in.ok)
        return report();
    // Cap the up-front reservation: a corrupt count would otherwise
    // ask for terabytes before the record reads fail.
    t.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(n, 1u << 22)));
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t at = in.offset;
        TraceRecord r;
        r.block = in.get<Addr>("record block address");
        r.when = in.get<Tick>("record timestamp");
        r.receiver = in.get<NodeId>("record receiver");
        r.sender = in.get<NodeId>("record sender");
        r.type = static_cast<proto::MsgType>(
            in.get<std::uint8_t>("record message type"));
        r.role = static_cast<proto::Role>(
            in.get<std::uint8_t>("record role"));
        r.iteration = in.get<std::int32_t>("record iteration");
        if (!in.ok) {
            in.diag.reason = "record " + std::to_string(i) + " of " +
                             std::to_string(n) + ": " + in.diag.reason;
            return report();
        }
        if (static_cast<unsigned>(r.type) >= proto::num_msg_types ||
            static_cast<std::uint8_t>(r.role) > 1) {
            in.offset = at;
            in.fail("record " + std::to_string(i) + " of " +
                    std::to_string(n) + " has an invalid message "
                    "type or role");
            return report();
        }
        t.records.push_back(r);
    }
    return t;
}

Trace
readTrace(std::istream &is, const std::string &name)
{
    ReadDiagnostic diag;
    auto t = tryReadTrace(is, &diag);
    if (!t)
        cosmos_panic("malformed trace stream: ", diag.format(name));
    return std::move(*t);
}

void
saveTrace(const std::string &path, const Trace &t)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        cosmos_fatal("cannot open trace file for writing: ", path);
    writeTrace(os, t);
    if (!os)
        cosmos_fatal("error writing trace file: ", path);
}

void
saveTraceAtomic(const std::string &path, const Trace &t)
{
    namespace fs = std::filesystem;
    // Per-process temp name: concurrent writers race only on the
    // final rename, which is atomic (last one wins, both complete).
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            cosmos_fatal("cannot open trace file for writing: ", tmp);
        writeTrace(os, t);
        os.flush();
        if (!os)
            cosmos_fatal("error writing trace file: ", tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        cosmos_fatal("cannot rename trace file into place: ", path);
    }
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        cosmos_fatal("cannot open trace file: ", path);
    return readTrace(is, path);
}

std::optional<Trace>
tryLoadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return tryReadTrace(is);
}

} // namespace cosmos::trace
