#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/log.hh"

namespace cosmos::trace
{

namespace
{

constexpr std::uint32_t trace_magic = 0xc0530501; // "cosmos" v1

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        cosmos_panic("truncated trace stream");
    return v;
}

void
putString(std::ostream &os, const std::string &s)
{
    put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getString(std::istream &is)
{
    const auto n = get<std::uint32_t>(is);
    if (n > (1u << 20))
        cosmos_panic("implausible string length in trace: ", n);
    std::string s(n, '\0');
    is.read(s.data(), n);
    if (!is)
        cosmos_panic("truncated trace stream");
    return s;
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &t)
{
    put(os, trace_magic);
    putString(os, t.app);
    put(os, t.numNodes);
    put(os, t.blockBytes);
    put(os, t.iterations);
    put(os, t.seed);
    put<std::uint64_t>(os, t.records.size());
    for (const auto &r : t.records) {
        put(os, r.block);
        put(os, r.when);
        put(os, r.receiver);
        put(os, r.sender);
        put(os, static_cast<std::uint8_t>(r.type));
        put(os, static_cast<std::uint8_t>(r.role));
        put(os, r.iteration);
    }
}

Trace
readTrace(std::istream &is)
{
    if (get<std::uint32_t>(is) != trace_magic)
        cosmos_panic("bad trace magic");
    Trace t;
    t.app = getString(is);
    t.numNodes = get<NodeId>(is);
    t.blockBytes = get<unsigned>(is);
    t.iterations = get<std::int32_t>(is);
    t.seed = get<std::uint64_t>(is);
    const auto n = get<std::uint64_t>(is);
    t.records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceRecord r;
        r.block = get<Addr>(is);
        r.when = get<Tick>(is);
        r.receiver = get<NodeId>(is);
        r.sender = get<NodeId>(is);
        r.type = static_cast<proto::MsgType>(get<std::uint8_t>(is));
        r.role = static_cast<proto::Role>(get<std::uint8_t>(is));
        r.iteration = get<std::int32_t>(is);
        t.records.push_back(r);
    }
    return t;
}

void
saveTrace(const std::string &path, const Trace &t)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        cosmos_fatal("cannot open trace file for writing: ", path);
    writeTrace(os, t);
    if (!os)
        cosmos_fatal("error writing trace file: ", path);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        cosmos_fatal("cannot open trace file: ", path);
    return readTrace(is);
}

} // namespace cosmos::trace
