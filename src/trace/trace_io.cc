#include "trace/trace_io.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

#include <unistd.h>

#include "common/log.hh"

namespace cosmos::trace
{

namespace
{

constexpr std::uint32_t trace_magic = 0xc0530501; // "cosmos" v1

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

/**
 * Checked reader over a binary stream. A failed or implausible read
 * latches ok = false; subsequent gets return zeroes, so a parse can
 * run to completion and be judged once at the end.
 */
struct Reader
{
    std::istream &is;
    bool ok = true;

    template <typename T>
    T
    get()
    {
        T v{};
        if (!ok)
            return v;
        is.read(reinterpret_cast<char *>(&v), sizeof(v));
        if (!is)
            ok = false;
        return v;
    }

    std::string
    getString()
    {
        const auto n = get<std::uint32_t>();
        if (!ok || n > (1u << 20)) {
            ok = false;
            return {};
        }
        std::string s(n, '\0');
        is.read(s.data(), n);
        if (!is)
            ok = false;
        return s;
    }
};

void
putString(std::ostream &os, const std::string &s)
{
    put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &t)
{
    put(os, trace_magic);
    putString(os, t.app);
    put(os, t.numNodes);
    put(os, t.blockBytes);
    put(os, t.iterations);
    put(os, t.seed);
    put<std::uint64_t>(os, t.records.size());
    for (const auto &r : t.records) {
        put(os, r.block);
        put(os, r.when);
        put(os, r.receiver);
        put(os, r.sender);
        put(os, static_cast<std::uint8_t>(r.type));
        put(os, static_cast<std::uint8_t>(r.role));
        put(os, r.iteration);
    }
}

std::optional<Trace>
tryReadTrace(std::istream &is)
{
    Reader in{is};
    if (in.get<std::uint32_t>() != trace_magic || !in.ok)
        return std::nullopt;
    Trace t;
    t.app = in.getString();
    t.numNodes = in.get<NodeId>();
    t.blockBytes = in.get<unsigned>();
    t.iterations = in.get<std::int32_t>();
    t.seed = in.get<std::uint64_t>();
    const auto n = in.get<std::uint64_t>();
    if (!in.ok)
        return std::nullopt;
    // Cap the up-front reservation: a corrupt count would otherwise
    // ask for terabytes before the record reads fail.
    t.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(n, 1u << 22)));
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceRecord r;
        r.block = in.get<Addr>();
        r.when = in.get<Tick>();
        r.receiver = in.get<NodeId>();
        r.sender = in.get<NodeId>();
        r.type = static_cast<proto::MsgType>(in.get<std::uint8_t>());
        r.role = static_cast<proto::Role>(in.get<std::uint8_t>());
        r.iteration = in.get<std::int32_t>();
        if (!in.ok)
            return std::nullopt;
        if (static_cast<unsigned>(r.type) >= proto::num_msg_types ||
            static_cast<std::uint8_t>(r.role) > 1)
            return std::nullopt;
        t.records.push_back(r);
    }
    return t;
}

Trace
readTrace(std::istream &is)
{
    auto t = tryReadTrace(is);
    if (!t)
        cosmos_panic("malformed trace stream");
    return std::move(*t);
}

void
saveTrace(const std::string &path, const Trace &t)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        cosmos_fatal("cannot open trace file for writing: ", path);
    writeTrace(os, t);
    if (!os)
        cosmos_fatal("error writing trace file: ", path);
}

void
saveTraceAtomic(const std::string &path, const Trace &t)
{
    namespace fs = std::filesystem;
    // Per-process temp name: concurrent writers race only on the
    // final rename, which is atomic (last one wins, both complete).
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            cosmos_fatal("cannot open trace file for writing: ", tmp);
        writeTrace(os, t);
        os.flush();
        if (!os)
            cosmos_fatal("error writing trace file: ", tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        cosmos_fatal("cannot rename trace file into place: ", path);
    }
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        cosmos_fatal("cannot open trace file: ", path);
    return readTrace(is);
}

std::optional<Trace>
tryLoadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return tryReadTrace(is);
}

} // namespace cosmos::trace
