/**
 * @file
 * Coherence-message traces.
 *
 * The paper evaluates Cosmos offline on traces of incoming coherence
 * messages captured per cache and per directory (§5). A TraceRecorder
 * observes the machine and appends one record per remote message; the
 * resulting Trace is then replayed through predictor banks at any MHR
 * depth / filter setting without re-simulating, exactly like the
 * paper's methodology separates trace generation from prediction.
 */

#ifndef COSMOS_TRACE_TRACE_HH
#define COSMOS_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "proto/machine.hh"
#include "proto/messages.hh"

namespace cosmos::trace
{

/** One incoming coherence message as seen by its receiver. */
struct TraceRecord
{
    Addr block = 0;
    Tick when = 0;
    NodeId receiver = invalid_node;
    NodeId sender = invalid_node;
    proto::MsgType type{};
    proto::Role role{};
    std::int32_t iteration = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** A complete run's message trace plus identifying metadata. */
struct Trace
{
    std::string app;
    NodeId numNodes = 0;
    unsigned blockBytes = 0;
    std::int32_t iterations = 0;
    std::uint64_t seed = 0;
    std::vector<TraceRecord> records;

    /** Records with role == cache. */
    std::size_t cacheRecords() const;

    /** Records with role == directory. */
    std::size_t directoryRecords() const;

    /** Distinct blocks appearing in the trace. */
    std::size_t distinctBlocks() const;
};

/**
 * Distinct blocks per (node, role) module, indexed 2 * node + (0 for
 * cache, 1 for directory) -- exactly the per-predictor table sizes a
 * PredictorBank will grow to when replaying this trace. Computed once
 * outside a timed region, the census lets banks reserve their block
 * tables up front so no rehash ever lands inside a replay.
 */
std::vector<std::uint32_t> moduleBlockCensus(const Trace &t);

/** The same census over a pre-selected record slice (e.g. one block
 *  shard), so sharded replays can pre-size their banks too. */
std::vector<std::uint32_t>
moduleBlockCensus(const std::vector<const TraceRecord *> &records,
                  NodeId num_nodes);

/**
 * Machine observer that appends records to a Trace.
 *
 * Records tagged with an iteration below @p warmup_iterations are
 * dropped, mirroring the paper's exclusion of the start-up phase (§5).
 */
class TraceRecorder : public proto::MsgObserver
{
  public:
    TraceRecorder(Trace &out, std::int32_t warmup_iterations);

    void onMessage(const proto::Msg &m, proto::Role role,
                   int iteration, Tick when) override;

    std::uint64_t dropped() const { return dropped_; }

  private:
    Trace &out_;
    std::int32_t warmup_;
    std::uint64_t dropped_ = 0;
};

} // namespace cosmos::trace

#endif // COSMOS_TRACE_TRACE_HH
