/**
 * @file
 * The simulated target machine: N nodes, each with a cache controller
 * and a directory slice, connected by the fixed-latency network. This
 * is the substrate standing in for the paper's 16-node Wisconsin Wind
 * Tunnel II target (Table 3).
 *
 * Message observers (trace writers, online predictors) are notified of
 * every *remote* incoming message together with the role of the
 * receiving module -- the exact observation point Cosmos uses.
 * Home-node-local messages are invisible, matching Stache's local
 * optimization (§5.1).
 */

#ifndef COSMOS_PROTO_MACHINE_HH
#define COSMOS_PROTO_MACHINE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/addr.hh"
#include "common/config.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "proto/cache_controller.hh"
#include "proto/directory_controller.hh"
#include "proto/messages.hh"
#include "proto/transition_table.hh"
#include "sim/event_queue.hh"

namespace cosmos::net
{

/** Classify coherence messages by type for per-type latency
 *  histograms (net.latency_ticks.<type> metrics). */
template <>
struct TrafficClass<proto::Msg>
{
    static unsigned
    of(const proto::Msg &m)
    {
        return static_cast<unsigned>(m.type);
    }

    static const char *
    name(unsigned c)
    {
        return toString(static_cast<proto::MsgType>(c));
    }
};

} // namespace cosmos::net

namespace cosmos::proto
{

/** Observer of remote incoming coherence messages. */
class MsgObserver
{
  public:
    virtual ~MsgObserver() = default;

    /**
     * Called at delivery of each remote message.
     *
     * @param m         the message
     * @param role      role of the receiving module (cache/directory)
     * @param iteration application iteration tag set by the runtime
     * @param when      delivery time
     */
    virtual void onMessage(const Msg &m, Role role, int iteration,
                           Tick when) = 0;
};

/**
 * Protocol state of the whole machine at a quiescent point: one
 * snapshot per cache and per directory slice. Valid only when the
 * event queue is drained -- in-flight messages live as closures on
 * the queue and cannot be captured; the model checker (src/model)
 * keeps its message pool explicitly for exactly this reason.
 */
struct MachineSnapshot
{
    std::vector<CacheSnapshot> caches;
    std::vector<DirectorySnapshot> directories;
};

/** The whole simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::EventQueue &eventQueue() { return eq_; }
    const AddrMap &addrMap() const { return amap_; }
    const MachineConfig &config() const { return cfg_; }

    /** The declared transition table the controllers dispatch
     *  through (built once per machine from the configuration). */
    const ProtocolTable &table() const { return table_; }

    CacheController &cache(NodeId n);
    const CacheController &cache(NodeId n) const;
    DirectoryController &directory(NodeId n);
    const DirectoryController &directory(NodeId n) const;

    NodeId numNodes() const { return cfg_.numNodes; }

    /** Register an observer (not owned). */
    void addObserver(MsgObserver *obs);

    /**
     * Probe called after *every* delivered message -- local ones too,
     * unlike MsgObserver -- once the receiving controller has fully
     * handled it, so the probe sees the post-transition machine
     * state. This is the invariant checker's attachment point
     * (src/check); at most one probe is installed at a time, and
     * nullptr clears it.
     */
    using DeliveryProbe =
        std::function<void(const Msg &m, bool local, Tick when)>;

    void setDeliveryProbe(DeliveryProbe probe)
    {
        probe_ = std::move(probe);
    }

    /** The interconnect (schedule-fuzzing hooks live on it). */
    net::Network<Msg> &network() { return network_; }

    /**
     * Capture every controller's protocol state into @p out. Asserts
     * the machine is quiescent (no pending events): mid-flight
     * messages are queue closures and would be silently lost.
     */
    void snapshot(MachineSnapshot &out) const;

    /** Restore a quiescent snapshot taken by snapshot(). */
    void restore(const MachineSnapshot &s);

    /** Tag subsequent messages with application iteration @p it. */
    void setIteration(int it) { iteration_ = it; }
    int iteration() const { return iteration_; }

    const net::NetworkStats &networkStats() const
    {
        return network_.stats();
    }

    /** Messages delivered (local + remote), by type. */
    const std::array<std::uint64_t, num_msg_types> &
    deliveredByType() const
    {
        return deliveredByType_;
    }

    /**
     * Publish the whole machine's observability surface into @p reg:
     * event-queue counters ("sim.*"), interconnect counters and
     * per-type latency histograms ("net.*"), and protocol activity
     * summed over nodes ("proto.*"). Everything published here is a
     * pure function of (configuration, seed).
     */
    void publishMetrics(obs::Registry &reg) const;

  private:
    void deliver(const Msg &m, bool local);

    MachineConfig cfg_;
    AddrMap amap_;
    /** Declared before the controllers: they keep a reference. */
    ProtocolTable table_;
    sim::EventQueue eq_;
    net::Network<Msg> network_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<DirectoryController>> directories_;
    std::vector<MsgObserver *> observers_;
    DeliveryProbe probe_;
    std::array<std::uint64_t, num_msg_types> deliveredByType_{};
    int iteration_ = 0;
};

} // namespace cosmos::proto

#endif // COSMOS_PROTO_MACHINE_HH
