/**
 * @file
 * The coherence message vocabulary of the simulated protocol.
 *
 * This is exactly the paper's Table 1 message set for a full-map,
 * write-invalidate directory protocol, plus the downgrade pair the
 * paper introduces with Figure 8:
 *
 *   get_ro_request / get_ro_response      read-only (shared) fetch
 *   get_rw_request / get_rw_response      read-write (exclusive) fetch
 *   upgrade_request / upgrade_response    shared -> exclusive upgrade
 *   inval_ro_request / inval_ro_response  invalidate a shared copy
 *   inval_rw_request / inval_rw_response  invalidate + return an
 *                                         exclusive copy
 *   downgrade_request / downgrade_response exclusive -> shared
 *
 * One extension beyond the paper: fwd_ack, the requester-to-home
 * acknowledgment that closes a three-hop forwarded transfer (§2.1
 * forwarding). The former owner's direct data reply and the home's
 * next invalidation travel on independent channels, so the home must
 * keep the directory entry busy until the requester confirms the data
 * arrived; fwd_ack is that confirmation.
 */

#ifndef COSMOS_PROTO_MESSAGES_HH
#define COSMOS_PROTO_MESSAGES_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cosmos::proto
{

/** Coherence message types (paper Table 1 + downgrade pair). */
enum class MsgType : std::uint8_t
{
    get_ro_request,
    get_ro_response,
    get_rw_request,
    get_rw_response,
    upgrade_request,
    upgrade_response,
    inval_ro_request,
    inval_ro_response,
    inval_rw_request,
    inval_rw_response,
    downgrade_request,
    downgrade_response,
    /** Requester -> home: the forwarded three-hop data arrived; the
     *  home may release the directory entry. */
    fwd_ack,
};

/** Number of distinct message types. */
constexpr unsigned num_msg_types = 13;

/**
 * Which module receives a message of a given type.
 *
 * Requests from caches and invalidation/downgrade responses arrive at
 * a directory; everything the directory emits arrives at a cache. This
 * is the role split the paper uses when it reports cache-side vs
 * directory-side prediction accuracy (Table 5).
 */
enum class Role : std::uint8_t
{
    cache,
    directory,
};

/** Role of the module that *receives* a message of type @p t. */
Role receiverRole(MsgType t);

/** True for *_request types, false for *_response types. */
bool isRequest(MsgType t);

/** Printable name, matching the paper's spelling. */
const char *toString(MsgType t);

/** Printable role name. */
const char *toString(Role r);

/** Parse a message-type name (exact match); panics on unknown name. */
MsgType msgTypeFromString(const std::string &name);

/**
 * One coherence message in flight.
 *
 * @c requester carries the node on whose behalf a forwarded request
 * (inval_*_request / downgrade_request) was issued; it equals @c src
 * for direct requests.
 */
struct Msg
{
    MsgType type{};
    NodeId src = invalid_node;
    NodeId dst = invalid_node;
    Addr block = 0;
    NodeId requester = invalid_node;
    /** Forwarding protocol (SGI-Origin style, §2.1): this recall asks
     *  the owner to respond *directly* to @c requester. */
    bool forwarded = false;
    /** In a forwarded recall: the requester wants a writable copy. */
    bool wantWritable = false;

    /** Render "type src->dst block=0x... " for debugging. */
    std::string format() const;
};

} // namespace cosmos::proto

#endif // COSMOS_PROTO_MESSAGES_HH
