#include "proto/invariants.hh"

#include <map>
#include <sstream>

namespace cosmos::proto
{

namespace
{

struct BlockView
{
    std::uint64_t roHolders = 0;
    std::uint64_t rwHolders = 0;
    bool transient = false;
};

std::string
hexBlock(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

std::vector<std::string>
checkCoherence(const Machine &machine)
{
    std::vector<std::string> violations;
    const NodeId n = machine.numNodes();

    // Gather every cache's view of every block.
    std::map<Addr, BlockView> views;
    for (NodeId c = 0; c < n; ++c) {
        machine.cache(c).forEachLine([&](Addr block, LineState st) {
            BlockView &v = views[block];
            switch (st) {
              case LineState::invalid:
                break;
              case LineState::read_only:
                v.roHolders |= std::uint64_t{1} << c;
                break;
              case LineState::read_write:
                v.rwHolders |= std::uint64_t{1} << c;
                break;
              default:
                v.transient = true;
                break;
            }
        });
    }

    // Single-writer / multiple-reader.
    for (const auto &[block, v] : views) {
        if (v.transient)
            continue;
        if (std::popcount(v.rwHolders) > 1)
            violations.push_back("block " + hexBlock(block) +
                                 " has multiple writers");
        if (v.rwHolders != 0 && v.roHolders != 0)
            violations.push_back("block " + hexBlock(block) +
                                 " has a writer and readers");
    }

    // Every valid cached block must be known to its home directory.
    for (const auto &[block, v] : views) {
        if (v.transient || (v.roHolders == 0 && v.rwHolders == 0))
            continue;
        const NodeId home = machine.addrMap().home(block);
        bool known = false;
        machine.directory(home).forEachEntry(
            [&](Addr b, DirState st, std::uint64_t, NodeId) {
                known |= b == block && st != DirState::idle;
            });
        if (!known)
            violations.push_back("block " + hexBlock(block) +
                                 " is cached but unknown to its home "
                                 "directory");
    }

    // Directory bookkeeping must match cache states.
    for (NodeId d = 0; d < n; ++d) {
        machine.directory(d).forEachEntry(
            [&](Addr block, DirState st, std::uint64_t sharers,
                NodeId owner) {
                if (machine.directory(d).busy(block))
                    return; // mid-transaction: skip
                auto it = views.find(block);
                const BlockView v =
                    it == views.end() ? BlockView{} : it->second;
                if (v.transient)
                    return;
                switch (st) {
                  case DirState::idle:
                    if (v.roHolders || v.rwHolders)
                        violations.push_back(
                            "dir says idle but block " + hexBlock(block) +
                            " is cached");
                    break;
                  case DirState::shared:
                    if (v.rwHolders)
                        violations.push_back(
                            "dir says shared but block " +
                            hexBlock(block) + " has a writer");
                    if (machine.config().cacheCapacityBlocks != 0) {
                        // Silent drops make the directory's sharer
                        // list a superset of the real holders.
                        if ((v.roHolders & ~sharers) != 0)
                            violations.push_back(
                                "dir sharer set misses a holder of "
                                "block " +
                                hexBlock(block));
                    } else if (v.roHolders != sharers) {
                        violations.push_back(
                            "dir sharer set mismatch for block " +
                            hexBlock(block));
                    }
                    break;
                  case DirState::exclusive:
                    if (v.rwHolders != (std::uint64_t{1} << owner))
                        violations.push_back(
                            "dir owner mismatch for block " +
                            hexBlock(block));
                    if (v.roHolders)
                        violations.push_back(
                            "dir says exclusive but block " +
                            hexBlock(block) + " has readers");
                    break;
                }
            });
    }

    return violations;
}

} // namespace cosmos::proto
