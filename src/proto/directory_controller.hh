/**
 * @file
 * Per-node directory controller (full-map, write-invalidate).
 *
 * Each node is the home of the pages Stache allocated to it
 * round-robin (§5.1) and keeps one directory entry per block of those
 * pages. An entry records whether the block is idle, shared by a set
 * of caches, or exclusive in one cache (§2.1). Requests for a block
 * whose entry is mid-transaction are queued and served in arrival
 * order, which serializes racing requests exactly like Stache's
 * software handlers.
 *
 * The half-migratory optimization (§5.1) is implemented here: on a
 * read miss to an exclusive block the directory asks the owner to
 * *invalidate* its copy (inval_rw_request). The DASH-style alternative
 * (downgrade_request, owner keeps a shared copy) is selectable via
 * MachineConfig::ownerReadPolicy for the §6.1 ablation.
 */

#ifndef COSMOS_PROTO_DIRECTORY_CONTROLLER_HH
#define COSMOS_PROTO_DIRECTORY_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/addr.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "proto/messages.hh"
#include "proto/transition_table.hh"
#include "sim/event_queue.hh"

namespace cosmos::proto
{

/** Quiescent directory-entry states (paper §2.1). */
enum class DirState : std::uint8_t
{
    idle,      ///< no cached copies
    shared,    ///< >= 1 read-only copies
    exclusive, ///< exactly one writable copy
};

const char *toString(DirState s);

/**
 * Hook through which a predictor-driven accelerator (§4) steers the
 * directory's speculative choices. The directory consults the hook at
 * well-defined decision points; every action it can request moves the
 * protocol between legal states, so mis-speculation needs no rollback
 * (§4.3's first recovery class -- the cost is extra misses/messages).
 */
class DirectorySpeculation
{
  public:
    virtual ~DirectorySpeculation() = default;

    /**
     * A get_ro_request from @p requester is about to be answered
     * while no other cache would keep a copy. Return true to grant
     * an *exclusive* copy instead of a shared one (the §4.1
     * read-modify-write action).
     */
    virtual bool grantExclusiveOnRead(Addr block, NodeId requester) = 0;

    /**
     * A recall of @p block held exclusive at @p owner is about to be
     * sent on behalf of @p requester, and MachineConfig::
     * forwardingPredicted asks the predictor to arbitrate the
     * transfer shape. Return true to forward (owner answers the
     * requester directly, three hops), false to fall back to the
     * four-hop home reply. Both shapes are legal protocol, so a wrong
     * answer costs only latency (§4.3's first recovery class).
     */
    virtual bool
    forwardOwnerTransfer(Addr block, NodeId owner, NodeId requester,
                         bool wantWritable)
    {
        (void)block;
        (void)owner;
        (void)requester;
        (void)wantWritable;
        return true;
    }
};

/**
 * Protocol-relevant state of one directory entry at a delivery
 * boundary, including the in-transaction fields (busy flag, the
 * request being served, outstanding acks, queued requests). Entries
 * are sorted by block inside a DirectorySnapshot so equal states
 * produce byte-equal snapshots.
 */
struct DirEntrySnapshot
{
    Addr block = 0;
    DirState state = DirState::idle;
    std::uint64_t sharers = 0;
    NodeId owner = invalid_node;
    bool busy = false;
    unsigned pendingAcks = 0;
    bool genuineUpgrade = false;
    bool recall = false;
    bool fwdData = false;
    bool fwdAckPending = false;
    Msg current{};
    std::vector<Msg> waiting;
};

/** Whole-directory snapshot (stats excluded; see CacheSnapshot). */
struct DirectorySnapshot
{
    std::vector<DirEntrySnapshot> entries;
};

/** Counters a directory keeps for reporting and tests. */
struct DirectoryStats
{
    std::uint64_t requests = 0;
    /** Requests that arrived mid-transaction and had to wait behind
     *  the busy entry -- the protocol's retry pressure (this
     *  directory queues instead of NACKing). */
    std::uint64_t queued = 0;
    std::uint64_t invalsSent = 0;
    std::uint64_t downgradesSent = 0;
    std::uint64_t upgradePromotions = 0;
    std::uint64_t exclusiveGrants = 0; ///< speculative RMW grants
    std::uint64_t recalls = 0;         ///< voluntary owner recalls
    /** Recalls sent as three-hop forwards (owner answers the
     *  requester directly). */
    std::uint64_t forwardsSent = 0;
    /** Forward-eligible recalls the speculation hook demoted to
     *  four-hop home replies (forwardingPredicted gating). */
    std::uint64_t forwardsSuppressed = 0;
    /** fwd_ack messages received closing three-hop transfers. */
    std::uint64_t fwdAcks = 0;
    /** Entry-state transitions, counted by the state entered
     *  (index = DirState). */
    std::array<std::uint64_t, 3> stateEntries{};
};

/**
 * One node's directory slice.
 *
 * The Machine routes every directory-role message for blocks homed at
 * this node into handleMessage().
 */
class DirectoryController
{
  public:
    using SendFn = std::function<void(const Msg &)>;

    /** @p table is the declared protocol table the controller
     *  dispatches through; it must outlive the controller and match
     *  @p cfg (Machine and the model stepper each own one). */
    DirectoryController(NodeId node, const AddrMap &amap,
                        const MachineConfig &cfg,
                        const ProtocolTable &table, sim::EventQueue &eq,
                        SendFn send);

    /** Deliver a protocol message addressed to this directory. */
    void handleMessage(const Msg &m);

    /** Install (or clear) the speculation hook; not owned. */
    void setSpeculation(DirectorySpeculation *spec)
    {
        speculation_ = spec;
    }

    /**
     * Voluntarily recall the exclusive owner's copy of @p block so
     * the data sits at home before a predicted remote read arrives
     * (producer-initiated hand-off, §4.1). A no-op unless the block
     * is exclusive and quiescent.
     *
     * @return true if a recall transaction was started.
     */
    bool voluntaryRecall(Addr block);

    /** State query for tests and invariant checks. */
    DirState state(Addr block) const;

    /** Sharer bitmask (valid in shared state). */
    std::uint64_t sharers(Addr block) const;

    /** Owner (valid in exclusive state). */
    NodeId owner(Addr block) const;

    /** True if a transaction is in flight for @p block. */
    bool busy(Addr block) const;

    NodeId node() const { return node_; }
    const DirectoryStats &stats() const { return stats_; }

    /** Enumerate all known entries (invariant checking support). */
    void forEachEntry(const std::function<void(
                          Addr, DirState, std::uint64_t, NodeId)> &fn)
        const;

    /** Capture the protocol state into @p out (stats excluded). */
    void snapshot(DirectorySnapshot &out) const;

    /** Replace the protocol state with @p s (stats untouched). */
    void restore(const DirectorySnapshot &s);

  private:
    struct Entry
    {
        DirState state = DirState::idle;
        std::uint64_t sharers = 0;
        NodeId owner = invalid_node;

        bool busy = false;
        std::deque<Msg> waiting;
        Msg current{};
        unsigned pendingAcks = 0;
        /// current is an upgrade from a live sharer (answer with
        /// upgrade_response rather than get_rw_response).
        bool genuineUpgrade = false;
        /// in-flight transaction is a voluntary owner recall with no
        /// requester to answer.
        bool recall = false;
        /// the in-flight recall was forwarded: the former owner
        /// answers the requester directly and the home only settles
        /// state on the revision message.
        bool fwdData = false;
        /// still awaiting the requester's fwd_ack; the entry must not
        /// finish() until it arrives.
        bool fwdAckPending = false;
    };

    Entry &entry(Addr block);
    /** The guard-relevant slice of @p e, in the shape the transition
     *  table's guard predicates are declared over. The model stepper
     *  builds the identical view from a DirEntrySnapshot, so the two
     *  always derive the same guards. */
    static DirGuardView guardView(const Entry &e);

    // Named action fragments the transition table's rows reference
    // (ActionId::dir_*). handleMessage() looks the row up and runs
    // the action it names; stray-message asserts stay inside the
    // bodies so trapped reorder-mode failures keep their messages.
    /** inval_ro_response bookkeeping; answers the writer on the last
     *  ack. */
    void onInvalAck(Entry &e, const Msg &m);
    /** inval_rw_response: settle a recall/write/forwarded transfer. */
    void onRevision(Entry &e, const Msg &m);
    /** downgrade_response: owner kept a shared copy (DASH policy). */
    void onDowngradeAck(Entry &e, const Msg &m);
    /** fwd_ack from the requester closing a three-hop transfer. */
    void onFwdAck(Entry &e, const Msg &m);

    /** Transition @p e, keeping the per-state transition census. */
    void enter(Entry &e, DirState st);
    void serve(const Msg &m);
    void serveRead(Entry &e, const Msg &m);
    void serveWrite(Entry &e, const Msg &m, bool genuine_upgrade);
    void finish(Addr block);
    /**
     * Send a response and complete the block's transaction. The
     * entry stays busy until the response has actually left, so a
     * queued request's invalidations can never overtake it on the
     * directory-to-cache channel.
     */
    void respondAndFinish(MsgType t, NodeId dst, Addr block,
                          bool from_memory);
    void forward(MsgType t, NodeId dst, Addr block, NodeId requester,
                 bool want_writable);

    NodeId node_;
    const AddrMap &amap_;
    const MachineConfig &cfg_;
    const ProtocolTable &table_;
    sim::EventQueue &eq_;
    SendFn sendFn_;

    std::unordered_map<Addr, Entry> entries_;
    DirectoryStats stats_;
    DirectorySpeculation *speculation_ = nullptr;
};

} // namespace cosmos::proto

#endif // COSMOS_PROTO_DIRECTORY_CONTROLLER_HH
