#include "proto/directory_controller.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/log.hh"

namespace cosmos::proto
{

namespace
{

std::uint64_t
bit(NodeId n)
{
    return std::uint64_t{1} << n;
}

} // namespace

const char *
toString(DirState s)
{
    switch (s) {
      case DirState::idle:      return "idle";
      case DirState::shared:    return "shared";
      case DirState::exclusive: return "exclusive";
    }
    return "?";
}

DirectoryController::DirectoryController(NodeId node, const AddrMap &amap,
                                         const MachineConfig &cfg,
                                         const ProtocolTable &table,
                                         sim::EventQueue &eq, SendFn send)
    : node_(node), amap_(amap), cfg_(cfg), table_(table), eq_(eq),
      sendFn_(std::move(send))
{
    cosmos_assert(cfg.numNodes <= 64,
                  "full-map sharer bitmask supports at most 64 nodes");
}

DirGuardView
DirectoryController::guardView(const Entry &e)
{
    DirGuardView v;
    v.busy = e.busy;
    v.state = static_cast<std::uint8_t>(e.state);
    v.sharers = e.sharers;
    v.pendingAcks = e.pendingAcks;
    v.genuineUpgrade = e.genuineUpgrade;
    v.recall = e.recall;
    v.fwdData = e.fwdData;
    v.fwdAckPending = e.fwdAckPending;
    v.waitingEmpty = e.waiting.empty();
    v.currentType = e.current.type;
    return v;
}

DirectoryController::Entry &
DirectoryController::entry(Addr block)
{
    cosmos_assert(amap_.home(block) == node_, "block 0x", std::hex, block,
                  " is not homed at this directory");
    return entries_[block];
}

void
DirectoryController::enter(Entry &e, DirState st)
{
    if (e.state != st)
        ++stats_.stateEntries[static_cast<std::size_t>(st)];
    e.state = st;
}

DirState
DirectoryController::state(Addr block) const
{
    auto it = entries_.find(block);
    return it == entries_.end() ? DirState::idle : it->second.state;
}

std::uint64_t
DirectoryController::sharers(Addr block) const
{
    auto it = entries_.find(block);
    return it == entries_.end() ? 0 : it->second.sharers;
}

NodeId
DirectoryController::owner(Addr block) const
{
    auto it = entries_.find(block);
    return it == entries_.end() ? invalid_node : it->second.owner;
}

bool
DirectoryController::busy(Addr block) const
{
    auto it = entries_.find(block);
    return it != entries_.end() && it->second.busy;
}

void
DirectoryController::forEachEntry(
    const std::function<void(Addr, DirState, std::uint64_t, NodeId)> &fn)
    const
{
    for (const auto &[block, e] : entries_)
        fn(block, e.state, e.sharers, e.owner);
}

void
DirectoryController::snapshot(DirectorySnapshot &out) const
{
    out.entries.clear();
    out.entries.reserve(entries_.size());
    for (const auto &[block, e] : entries_) {
        // Idle quiescent entries are indistinguishable from absent
        // ones (state() and busy() default them); dropping them keeps
        // snapshots of equal states byte-equal.
        if (e.state == DirState::idle && !e.busy)
            continue;
        DirEntrySnapshot s;
        s.block = block;
        s.state = e.state;
        s.sharers = e.sharers;
        s.owner = e.owner;
        s.busy = e.busy;
        s.pendingAcks = e.pendingAcks;
        s.genuineUpgrade = e.genuineUpgrade;
        s.recall = e.recall;
        s.fwdData = e.fwdData;
        s.fwdAckPending = e.fwdAckPending;
        s.current = e.current;
        s.waiting.assign(e.waiting.begin(), e.waiting.end());
        out.entries.push_back(std::move(s));
    }
    std::sort(out.entries.begin(), out.entries.end(),
              [](const DirEntrySnapshot &a, const DirEntrySnapshot &b) {
                  return a.block < b.block;
              });
}

void
DirectoryController::restore(const DirectorySnapshot &s)
{
    entries_.clear();
    for (const DirEntrySnapshot &es : s.entries) {
        Entry &e = entry(es.block);
        e.state = es.state;
        e.sharers = es.sharers;
        e.owner = es.owner;
        e.busy = es.busy;
        e.pendingAcks = es.pendingAcks;
        e.genuineUpgrade = es.genuineUpgrade;
        e.recall = es.recall;
        e.fwdData = es.fwdData;
        e.fwdAckPending = es.fwdAckPending;
        e.current = es.current;
        e.waiting.assign(es.waiting.begin(), es.waiting.end());
    }
}

void
DirectoryController::respondAndFinish(MsgType t, NodeId dst, Addr block,
                                      bool from_memory)
{
    Msg m;
    m.type = t;
    m.src = node_;
    m.dst = dst;
    m.block = block;
    m.requester = dst;
    const Tick delay = cfg_.protocolOccupancy +
                       (from_memory ? cfg_.memoryLatency : 0);
    eq_.scheduleAfter(delay, [this, m]() {
        sendFn_(m);
        finish(m.block);
    });
}

void
DirectoryController::forward(MsgType t, NodeId dst, Addr block,
                             NodeId requester, bool want_writable)
{
    Msg m;
    m.type = t;
    m.src = node_;
    m.dst = dst;
    m.block = block;
    m.requester = requester;
    // Voluntary recalls (requester == owner) are never forwarded:
    // there is no third party to answer. inval_ro_request sweeps are
    // never forwarded either -- the home itself holds the data while
    // the block is shared, so the requester is answered from home
    // (the transition-table lint asserts this asymmetry).
    bool fwd = cfg_.forwarding && requester != dst &&
               (t == MsgType::inval_rw_request ||
                t == MsgType::downgrade_request);
    if (fwd && cfg_.forwardingPredicted && speculation_ &&
        !speculation_->forwardOwnerTransfer(block, dst, requester,
                                            want_writable)) {
        // Predictor expects someone other than the requester to need
        // the block next: keep the data flowing through home.
        ++stats_.forwardsSuppressed;
        fwd = false;
    }
    Entry &e = entry(block);
    e.fwdData = fwd;
    // The fwd_ack handshake closes the forwarded transfer; the legacy
    // (pre-fix) protocol skips it and releases the entry on the
    // owner's revision message alone -- the original race.
    e.fwdAckPending = fwd && !cfg_.legacyForwarding;
    if (fwd)
        ++stats_.forwardsSent;
    m.forwarded = fwd;
    m.wantWritable = want_writable;
    eq_.scheduleAfter(cfg_.protocolOccupancy,
                      [this, m]() { sendFn_(m); });
}

void
DirectoryController::handleMessage(const Msg &m)
{
    // Dispatch picks the declared row for the entry's abstract phase,
    // the message type, and the guard bits derived from the entry; a
    // stray response or a message no row covers panics inside
    // dispatch() with the offending (phase, input, guard) triple.
    Entry &e = entry(m.block);
    const DirGuardView view = guardView(e);
    const TransitionRow &row = table_.dispatch(
        Role::directory, static_cast<std::uint8_t>(dirPhaseOf(view)),
        static_cast<std::uint8_t>(m.type),
        dirMsgGuard(view, m.type, m.src), node_);

    switch (row.action) {
      case ActionId::dir_queue_request:
        ++stats_.requests;
        ++stats_.queued;
        e.waiting.push_back(m);
        break;

      case ActionId::dir_serve_read:
      case ActionId::dir_serve_write:
      case ActionId::dir_serve_upgrade:
      case ActionId::dir_promote_upgrade:
        ++stats_.requests;
        e.busy = true;
        serve(m);
        break;

      case ActionId::dir_inval_ack:
        onInvalAck(e, m);
        break;
      case ActionId::dir_revision:
        onRevision(e, m);
        break;
      case ActionId::dir_downgrade_ack:
        onDowngradeAck(e, m);
        break;
      case ActionId::dir_fwd_ack:
        onFwdAck(e, m);
        break;

      default:
        cosmos_panic("directory ", node_, " cannot run action ",
                     toString(row.action), " for ", m.format());
    }
}

void
DirectoryController::onInvalAck(Entry &e, const Msg &m)
{
    cosmos_assert(e.busy && e.pendingAcks > 0,
                  "stray inval_ro_response at directory ", node_);
    e.sharers &= ~bit(m.src);
    if (--e.pendingAcks == 0) {
        // All shared copies gone; grant exclusivity.
        const Msg &req = e.current;
        enter(e, DirState::exclusive);
        e.sharers = 0;
        e.owner = req.src;
        respondAndFinish(e.genuineUpgrade ? MsgType::upgrade_response
                                          : MsgType::get_rw_response,
                         req.src, m.block, !e.genuineUpgrade);
    }
}

void
DirectoryController::onRevision(Entry &e, const Msg &m)
{
    cosmos_assert(e.busy && e.pendingAcks == 1,
                  "stray inval_rw_response at directory ", node_);
    e.pendingAcks = 0;
    if (e.recall) {
        // Voluntary recall completed: the data is home, nobody
        // holds a copy, and there is no requester to answer.
        e.recall = false;
        enter(e, DirState::idle);
        e.sharers = 0;
        e.owner = invalid_node;
        finish(m.block);
        return;
    }
    const Msg &req = e.current;
    if (e.fwdData) {
        // The former owner already answered the requester
        // directly (three-hop transfer); just settle the state.
        if (req.type == MsgType::get_ro_request) {
            enter(e, DirState::shared);
            e.sharers = bit(req.src);
            e.owner = invalid_node;
        } else {
            enter(e, DirState::exclusive);
            e.sharers = 0;
            e.owner = req.src;
        }
        if (e.fwdAckPending) {
            // Stay busy until the requester's fwd_ack confirms
            // the forwarded data arrived; releasing now would let
            // a queued request's invalidation race the owner's
            // direct reply to the requester.
            return;
        }
        e.fwdData = false;
        finish(m.block);
        return;
    }
    if (req.type == MsgType::get_ro_request) {
        if (speculation_ &&
            speculation_->grantExclusiveOnRead(m.block, req.src)) {
            // Predicted read-modify-write: hand the reader an
            // exclusive copy (§4.1).
            ++stats_.exclusiveGrants;
            enter(e, DirState::exclusive);
            e.sharers = 0;
            e.owner = req.src;
            respondAndFinish(MsgType::get_rw_response, req.src,
                             m.block, false);
            return;
        }
        // Half-migratory: former owner invalidated; only the
        // reader holds a copy now.
        enter(e, DirState::shared);
        e.sharers = bit(req.src);
        e.owner = invalid_node;
        respondAndFinish(MsgType::get_ro_response, req.src, m.block,
                         false);
    } else {
        enter(e, DirState::exclusive);
        e.sharers = 0;
        e.owner = req.src;
        respondAndFinish(MsgType::get_rw_response, req.src, m.block,
                         false);
    }
}

void
DirectoryController::onDowngradeAck(Entry &e, const Msg &m)
{
    cosmos_assert(e.busy && e.pendingAcks == 1,
                  "stray downgrade_response at directory ", node_);
    cosmos_assert(e.current.type == MsgType::get_ro_request,
                  "downgrade_response outside a read transaction");
    e.pendingAcks = 0;
    const Msg &req = e.current;
    enter(e, DirState::shared);
    e.sharers = bit(m.src) | bit(req.src);
    e.owner = invalid_node;
    if (e.fwdData) {
        // Former owner already sent the data to the reader.
        if (e.fwdAckPending)
            return; // wait for the reader's fwd_ack
        e.fwdData = false;
        finish(m.block);
        return;
    }
    respondAndFinish(MsgType::get_ro_response, req.src, m.block,
                     false);
}

void
DirectoryController::onFwdAck(Entry &e, const Msg &m)
{
    cosmos_assert(e.busy && e.fwdAckPending,
                  "stray fwd_ack at directory ", node_);
    cosmos_assert(m.src == e.current.src, "fwd_ack from node ", m.src,
                  " but the transaction's requester is ",
                  e.current.src);
    ++stats_.fwdAcks;
    e.fwdAckPending = false;
    if (e.pendingAcks == 0) {
        // The owner's revision message already settled the entry;
        // the ack was the last outstanding leg.
        e.fwdData = false;
        finish(m.block);
    }
    // Otherwise the ack overtook the owner's revision message
    // (independent channels); the inval_rw_response /
    // downgrade_response handler will settle state and finish.
}

void
DirectoryController::serve(const Msg &m)
{
    Entry &e = entry(m.block);
    cosmos_assert(e.busy, "serve() without busy entry");
    e.current = m;
    e.genuineUpgrade = false;
    e.pendingAcks = 0;
    e.fwdData = false;
    e.fwdAckPending = false;

    // Backlogged requests were dispatched as dir_queue_request on
    // arrival; re-dispatch against the quiescent entry state to pick
    // the serving row (the entry is busy on this request's own
    // behalf, so the queued guard no longer applies). Arrival-time
    // serves re-dispatch to the same row they arrived on.
    DirGuardView view = guardView(e);
    view.busy = false;
    const TransitionRow &row = table_.dispatch(
        Role::directory, static_cast<std::uint8_t>(dirPhaseOf(view)),
        static_cast<std::uint8_t>(m.type),
        dirMsgGuard(view, m.type, m.src), node_);

    switch (row.action) {
      case ActionId::dir_serve_read:
        serveRead(e, m);
        break;
      case ActionId::dir_serve_write:
        serveWrite(e, m, false);
        break;
      case ActionId::dir_serve_upgrade:
        serveWrite(e, m, true);
        break;
      case ActionId::dir_promote_upgrade:
        // The requester's shared copy was invalidated while this
        // upgrade was in flight; promote to a full write fetch.
        ++stats_.upgradePromotions;
        serveWrite(e, m, false);
        break;
      default:
        cosmos_panic("serve() on non-request ", m.format());
    }
}

void
DirectoryController::serveRead(Entry &e, const Msg &m)
{
    switch (e.state) {
      case DirState::idle:
        if (speculation_ &&
            speculation_->grantExclusiveOnRead(m.block, m.src)) {
            // Predicted read-modify-write on an idle block (§4.1).
            ++stats_.exclusiveGrants;
            enter(e, DirState::exclusive);
            e.owner = m.src;
            respondAndFinish(MsgType::get_rw_response, m.src, m.block,
                             true);
            break;
        }
        enter(e, DirState::shared);
        e.sharers = bit(m.src);
        respondAndFinish(MsgType::get_ro_response, m.src, m.block,
                         true);
        break;

      case DirState::shared:
        e.sharers |= bit(m.src);
        respondAndFinish(MsgType::get_ro_response, m.src, m.block,
                         true);
        break;

      case DirState::exclusive:
        cosmos_assert(e.owner != m.src,
                      "owner read-missed its own exclusive block");
        if (cfg_.ownerReadPolicy == OwnerReadPolicy::half_migratory) {
            ++stats_.invalsSent;
            e.pendingAcks = 1;
            forward(MsgType::inval_rw_request, e.owner, m.block,
                    m.src, false);
        } else {
            ++stats_.downgradesSent;
            e.pendingAcks = 1;
            forward(MsgType::downgrade_request, e.owner, m.block,
                    m.src, false);
        }
        break;
    }
}

void
DirectoryController::serveWrite(Entry &e, const Msg &m,
                                bool genuine_upgrade)
{
    e.genuineUpgrade = genuine_upgrade;
    switch (e.state) {
      case DirState::idle:
        enter(e, DirState::exclusive);
        e.owner = m.src;
        respondAndFinish(MsgType::get_rw_response, m.src, m.block,
                         true);
        break;

      case DirState::shared: {
        // A get_rw_request from a node still in the sharer list
        // means the cache silently dropped its copy (replacement
        // mode): the stale sharer bit is simply cleared.
        cosmos_assert(genuine_upgrade || !(e.sharers & bit(m.src)) ||
                          cfg_.cacheCapacityBlocks != 0,
                      "get_rw_request from a live sharer");
        e.sharers &= genuine_upgrade ? ~std::uint64_t{0}
                                     : ~bit(m.src);
        const std::uint64_t others = e.sharers & ~bit(m.src);
        if (others == 0) {
            // Upgrade with no other sharers: grant immediately.
            enter(e, DirState::exclusive);
            e.sharers = 0;
            e.owner = m.src;
            respondAndFinish(genuine_upgrade
                                 ? MsgType::upgrade_response
                                 : MsgType::get_rw_response,
                             m.src, m.block, !genuine_upgrade);
            break;
        }
        for (NodeId n = 0; n < cfg_.numNodes; ++n) {
            if (others & bit(n)) {
                ++stats_.invalsSent;
                ++e.pendingAcks;
                forward(MsgType::inval_ro_request, n, m.block, m.src,
                        false);
            }
        }
        break;
      }

      case DirState::exclusive:
        cosmos_assert(e.owner != m.src,
                      "owner write-missed its own exclusive block");
        ++stats_.invalsSent;
        e.pendingAcks = 1;
        forward(MsgType::inval_rw_request, e.owner, m.block, m.src,
                true);
        break;
    }
}

bool
DirectoryController::voluntaryRecall(Addr block)
{
    auto it = entries_.find(block);
    if (it == entries_.end())
        return false;
    Entry &e = it->second;
    if (e.busy || e.state != DirState::exclusive)
        return false;
    e.busy = true;
    e.recall = true;
    e.pendingAcks = 1;
    ++stats_.recalls;
    ++stats_.invalsSent;
    forward(MsgType::inval_rw_request, e.owner, block, e.owner,
            false);
    return true;
}

void
DirectoryController::finish(Addr block)
{
    Entry &e = entry(block);
    cosmos_assert(e.busy, "finish() on idle entry");
    cosmos_assert(!e.fwdAckPending,
                  "finish() while a fwd_ack is outstanding");
    if (e.waiting.empty()) {
        e.busy = false;
        return;
    }
    Msg next = e.waiting.front();
    e.waiting.pop_front();
    // Stay busy; serve the queued request after the handler occupancy.
    eq_.scheduleAfter(cfg_.protocolOccupancy,
                      [this, next]() { serve(next); });
}

} // namespace cosmos::proto
