/**
 * @file
 * Whole-machine coherence invariant checking.
 *
 * At quiescent points (no transaction in flight) the directories'
 * bookkeeping must exactly match the caches' line states, and the
 * single-writer / multiple-reader property must hold. Tests call this
 * between iterations; violations indicate protocol bugs.
 */

#ifndef COSMOS_PROTO_INVARIANTS_HH
#define COSMOS_PROTO_INVARIANTS_HH

#include <string>
#include <vector>

#include "proto/machine.hh"

namespace cosmos::proto
{

/**
 * Check all coherence invariants.
 *
 * @return a list of human-readable violations; empty means the
 *         machine state is coherent.
 */
std::vector<std::string> checkCoherence(const Machine &machine);

} // namespace cosmos::proto

#endif // COSMOS_PROTO_INVARIANTS_HH
