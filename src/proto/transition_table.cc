#include "proto/transition_table.hh"

#include <algorithm>

#include "common/log.hh"
#include "proto/cache_controller.hh"

namespace cosmos::proto
{

const char *
toString(DirPhase p)
{
    switch (p) {
      case DirPhase::idle:        return "idle";
      case DirPhase::shared:      return "shared";
      case DirPhase::exclusive:   return "exclusive";
      case DirPhase::busy_read:   return "busy_read";
      case DirPhase::busy_write:  return "busy_write";
      case DirPhase::busy_recall: return "busy_recall";
    }
    return "?";
}

const char *
tableInputName(std::uint8_t input)
{
    if (input == input_proc_read)
        return "proc_read";
    if (input == input_proc_write)
        return "proc_write";
    cosmos_assert(input < num_msg_types, "bad table input ",
                  unsigned{input});
    return toString(static_cast<MsgType>(input));
}

namespace
{

struct GuardTag
{
    GuardBits bit;
    const char *name;
};

/** Canonical rendering order; must match the append order of the
 *  model stepper's context tags so guardContext() reproduces a
 *  stepper context string byte-for-byte. */
constexpr GuardTag guard_tags[] = {
    {guard_queued, "queued"},
    {guard_sharer, "sharer"},
    {guard_nonsharer, "nonsharer"},
    {guard_others, "others"},
    {guard_solo, "solo"},
    {guard_more_acks, "more_acks"},
    {guard_last_ack, "last_ack"},
    {guard_upg, "upg"},
    {guard_fwd, "fwd"},
    {guard_rw, "rw"},
    {guard_ro, "ro"},
    {guard_await_ack, "await_ack"},
    {guard_await_data, "await_data"},
    {guard_data_done, "data_done"},
    {guard_q, "q"},
};

} // namespace

std::string
guardContext(GuardBits g)
{
    std::string s;
    for (const GuardTag &t : guard_tags) {
        if (!(g & t.bit))
            continue;
        if (!s.empty())
            s += '+';
        s += t.name;
    }
    return s;
}

GuardBits
guardFromContext(const std::string &context)
{
    GuardBits g = guard_none;
    std::size_t at = 0;
    while (at < context.size()) {
        std::size_t end = context.find('+', at);
        if (end == std::string::npos)
            end = context.size();
        const std::string tag = context.substr(at, end - at);
        bool known = false;
        for (const GuardTag &t : guard_tags) {
            if (tag == t.name) {
                g |= t.bit;
                known = true;
                break;
            }
        }
        cosmos_assert(known, "unknown guard tag '", tag, "'");
        at = end + 1;
    }
    return g;
}

GuardBits
cacheMsgGuard(const Msg &m)
{
    GuardBits g = guard_none;
    if (!m.forwarded)
        return g;
    g |= guard_fwd;
    if (m.type == MsgType::inval_rw_request ||
        m.type == MsgType::downgrade_request) {
        g |= m.wantWritable ? guard_rw : guard_ro;
    }
    return g;
}

GuardBits
dirMsgGuard(const DirGuardView &v, MsgType t, NodeId src)
{
    GuardBits g = guard_none;
    const std::uint64_t srcBit = std::uint64_t{1} << src;
    switch (t) {
      case MsgType::get_ro_request:
      case MsgType::get_rw_request:
      case MsgType::upgrade_request:
        if (v.busy) {
            g |= guard_queued;
            break;
        }
        if (t == MsgType::upgrade_request)
            g |= (v.sharers & srcBit) ? guard_sharer : guard_nonsharer;
        if (t != MsgType::get_ro_request &&
            v.state == static_cast<std::uint8_t>(DirPhase::shared)) {
            g |= (v.sharers & ~srcBit) ? guard_others : guard_solo;
        }
        break;
      case MsgType::inval_ro_response:
        g |= v.pendingAcks > 1 ? guard_more_acks : guard_last_ack;
        if (v.pendingAcks <= 1 && v.genuineUpgrade)
            g |= guard_upg;
        if (v.pendingAcks <= 1 && !v.waitingEmpty)
            g |= guard_q;
        break;
      case MsgType::inval_rw_response:
      case MsgType::downgrade_response:
        if (v.fwdData)
            g |= guard_fwd;
        if (v.fwdAckPending)
            g |= guard_await_ack;
        if (!v.waitingEmpty)
            g |= guard_q;
        break;
      case MsgType::fwd_ack:
        g |= v.pendingAcks > 0 ? guard_await_data : guard_data_done;
        if (v.pendingAcks == 0 && !v.waitingEmpty)
            g |= guard_q;
        break;
      default:
        break;
    }
    return g;
}

DirPhase
dirPhaseOf(const DirGuardView &v)
{
    if (!v.busy)
        return static_cast<DirPhase>(v.state);
    if (v.recall)
        return DirPhase::busy_recall;
    return v.currentType == MsgType::get_ro_request
               ? DirPhase::busy_read
               : DirPhase::busy_write;
}

const char *
toString(Via v)
{
    switch (v) {
      case Via::proc:      return "proc";
      case Via::home:      return "home";
      case Via::owner:     return "owner";
      case Via::requester: return "requester";
      case Via::sharer:    return "sharer";
      case Via::any_cache: return "any_cache";
    }
    return "?";
}

bool
singleChannel(Via v)
{
    return v == Via::home || v == Via::owner || v == Via::requester;
}

const char *
toString(ActionId a)
{
    switch (a) {
      case ActionId::none:                     return "none";
      case ActionId::cache_load_hit:           return "cache_load_hit";
      case ActionId::cache_store_hit:          return "cache_store_hit";
      case ActionId::cache_begin_read_miss:
        return "cache_begin_read_miss";
      case ActionId::cache_begin_write_miss:
        return "cache_begin_write_miss";
      case ActionId::cache_begin_upgrade:      return "cache_begin_upgrade";
      case ActionId::cache_accept_ro:          return "cache_accept_ro";
      case ActionId::cache_accept_rw:          return "cache_accept_rw";
      case ActionId::cache_accept_upgrade:     return "cache_accept_upgrade";
      case ActionId::cache_invalidate_shared:
        return "cache_invalidate_shared";
      case ActionId::cache_demote_upgrade:     return "cache_demote_upgrade";
      case ActionId::cache_ack_stale_inval:    return "cache_ack_stale_inval";
      case ActionId::cache_surrender_exclusive:
        return "cache_surrender_exclusive";
      case ActionId::cache_downgrade_line:     return "cache_downgrade_line";
      case ActionId::dir_queue_request:        return "dir_queue_request";
      case ActionId::dir_serve_read:           return "dir_serve_read";
      case ActionId::dir_serve_write:          return "dir_serve_write";
      case ActionId::dir_serve_upgrade:        return "dir_serve_upgrade";
      case ActionId::dir_promote_upgrade:      return "dir_promote_upgrade";
      case ActionId::dir_inval_ack:            return "dir_inval_ack";
      case ActionId::dir_revision:             return "dir_revision";
      case ActionId::dir_downgrade_ack:        return "dir_downgrade_ack";
      case ActionId::dir_fwd_ack:              return "dir_fwd_ack";
    }
    return "?";
}

std::string
TransitionRow::where() const
{
    return detail::concat("src/proto/transition_table.cc:", line);
}

std::string
TransitionRow::format() const
{
    std::string s = detail::concat(toString(role), " ",
                                   ProtocolTable::stateName(role, state),
                                   " x ", tableInputName(input));
    if (guard != guard_none)
        s += detail::concat(" [", guardContext(guard), "]");
    if (unreachable)
        return s + " : unreachable";
    s += detail::concat(" -> ",
                        ProtocolTable::stateName(role, next));
    if (!emits.empty()) {
        s += " !";
        for (MsgType t : emits)
            s += detail::concat(" ", proto::toString(t));
    }
    return s;
}

namespace
{

constexpr unsigned f_allow_q = 1;
constexpr unsigned f_completes = 2;
constexpr unsigned f_delegates = 4;

/** Collects rows; a disabled (config-gated-off) row is dropped and
 *  the scratch row returned so call sites stay uniform. */
struct TableBuilder
{
    std::vector<TransitionRow> rows;
    TransitionRow scratch;

    TransitionRow &push(int line, bool enabled, Role role,
                        std::uint8_t state, std::uint8_t input,
                        GuardBits guard, ActionId action,
                        std::uint8_t next,
                        std::initializer_list<MsgType> emits, Via via,
                        unsigned flags = 0, std::uint16_t clears = 0)
    {
        if (!enabled) {
            scratch = TransitionRow{};
            return scratch;
        }
        TransitionRow r;
        r.role = role;
        r.state = state;
        r.input = input;
        r.guard = guard;
        r.action = action;
        r.next = next;
        r.emits.assign(emits.begin(), emits.end());
        std::sort(r.emits.begin(), r.emits.end());
        r.emits.erase(std::unique(r.emits.begin(), r.emits.end()),
                      r.emits.end());
        r.via = via;
        r.allowQ = (flags & f_allow_q) != 0;
        r.completes = (flags & f_completes) != 0;
        r.delegatesData = (flags & f_delegates) != 0;
        r.clears = clears;
        r.line = line;
        rows.push_back(std::move(r));
        return rows.back();
    }

    TransitionRow &gap(int line, bool enabled, Role role,
                       std::uint8_t state, std::uint8_t input, Via via)
    {
        if (!enabled) {
            scratch = TransitionRow{};
            return scratch;
        }
        TransitionRow r;
        r.role = role;
        r.state = state;
        r.input = input;
        r.action = ActionId::none;
        r.next = state;
        r.via = via;
        r.unreachable = true;
        r.line = line;
        rows.push_back(std::move(r));
        return rows.back();
    }
};

constexpr unsigned num_states = 6;

unsigned
bucketIndex(Role role, std::uint8_t state, std::uint8_t input)
{
    return (role == Role::directory
                ? num_states * num_table_inputs
                : 0u) +
           state * num_table_inputs + input;
}

} // namespace

ProtocolTable
ProtocolTable::build(const MachineConfig &cfg)
{
    const bool cap = cfg.cacheCapacityBlocks != 0;
    const bool fwd = cfg.forwarding;
    // The fwd_ack handshake is what distinguishes the fixed protocol
    // from the --legacy-forwarding oracle; rows gated on `ack` exist
    // only in the fixed protocol.
    const bool ack = fwd && !cfg.legacyForwarding;
    const bool half =
        cfg.ownerReadPolicy == OwnerReadPolicy::half_migratory;
    const bool dash = !half;

    constexpr Role C = Role::cache;
    constexpr Role D = Role::directory;
    const auto ls = [](LineState s) {
        return static_cast<std::uint8_t>(s);
    };
    const auto ph = [](DirPhase p) {
        return static_cast<std::uint8_t>(p);
    };
    const auto in = [](MsgType t) {
        return static_cast<std::uint8_t>(t);
    };
    const std::uint16_t clears_inval_ro = static_cast<std::uint16_t>(
        1u << in(MsgType::inval_ro_request));

    using enum MsgType;
    TableBuilder b;

#define ROW(cond, ...) b.push(__LINE__, (cond), __VA_ARGS__)
#define GAP(cond, ...) b.gap(__LINE__, (cond), __VA_ARGS__)

    // ---------------- cache: invalid ----------------
    ROW(true, C, ls(LineState::invalid), input_proc_read, guard_none,
        ActionId::cache_begin_read_miss, ls(LineState::wait_ro),
        {get_ro_request}, Via::proc);
    ROW(true, C, ls(LineState::invalid), input_proc_write, guard_none,
        ActionId::cache_begin_write_miss, ls(LineState::wait_rw),
        {get_rw_request}, Via::proc);
    // With replacement the directory's sharer list can be stale: an
    // invalidation may target a silently dropped line.
    ROW(cap, C, ls(LineState::invalid), in(inval_ro_request), guard_none,
        ActionId::cache_ack_stale_inval, ls(LineState::invalid),
        {inval_ro_response}, Via::home);
    GAP(!cap, C, ls(LineState::invalid), in(inval_ro_request), Via::home);
    GAP(true, C, ls(LineState::invalid), in(get_ro_response), Via::home);
    GAP(true, C, ls(LineState::invalid), in(get_rw_response), Via::home);
    GAP(true, C, ls(LineState::invalid), in(upgrade_response), Via::home);
    GAP(true, C, ls(LineState::invalid), in(inval_rw_request), Via::home);
    GAP(true, C, ls(LineState::invalid), in(downgrade_request), Via::home);

    // ---------------- cache: read_only ----------------
    ROW(true, C, ls(LineState::read_only), input_proc_read, guard_none,
        ActionId::cache_load_hit, ls(LineState::read_only), {},
        Via::proc);
    ROW(true, C, ls(LineState::read_only), input_proc_write, guard_none,
        ActionId::cache_begin_upgrade, ls(LineState::wait_upg),
        {upgrade_request}, Via::proc);
    ROW(true, C, ls(LineState::read_only), in(inval_ro_request),
        guard_none, ActionId::cache_invalidate_shared,
        ls(LineState::invalid), {inval_ro_response}, Via::home);
    GAP(true, C, ls(LineState::read_only), in(get_ro_response), Via::home);
    GAP(true, C, ls(LineState::read_only), in(get_rw_response), Via::home);
    GAP(true, C, ls(LineState::read_only), in(upgrade_response), Via::home);
    GAP(true, C, ls(LineState::read_only), in(inval_rw_request), Via::home);
    GAP(true, C, ls(LineState::read_only), in(downgrade_request),
        Via::home);

    // ---------------- cache: read_write ----------------
    ROW(true, C, ls(LineState::read_write), input_proc_read, guard_none,
        ActionId::cache_load_hit, ls(LineState::read_write), {},
        Via::proc);
    ROW(true, C, ls(LineState::read_write), input_proc_write, guard_none,
        ActionId::cache_store_hit, ls(LineState::read_write), {},
        Via::proc);
    ROW(true, C, ls(LineState::read_write), in(inval_rw_request),
        guard_none, ActionId::cache_surrender_exclusive,
        ls(LineState::invalid), {inval_rw_response}, Via::home);
    // Forwarded recalls add the direct three-hop data reply; which
    // response the requester gets is the recall's wantWritable bit.
    ROW(fwd, C, ls(LineState::read_write), in(inval_rw_request),
        guard_fwd | guard_rw, ActionId::cache_surrender_exclusive,
        ls(LineState::invalid), {get_rw_response, inval_rw_response},
        Via::home);
    ROW(fwd, C, ls(LineState::read_write), in(inval_rw_request),
        guard_fwd | guard_ro, ActionId::cache_surrender_exclusive,
        ls(LineState::invalid), {get_ro_response, inval_rw_response},
        Via::home);
    ROW(true, C, ls(LineState::read_write), in(downgrade_request),
        guard_none, ActionId::cache_downgrade_line,
        ls(LineState::read_only), {downgrade_response}, Via::home);
    ROW(fwd, C, ls(LineState::read_write), in(downgrade_request),
        guard_fwd | guard_ro, ActionId::cache_downgrade_line,
        ls(LineState::read_only), {get_ro_response, downgrade_response},
        Via::home);
    GAP(true, C, ls(LineState::read_write), in(get_ro_response), Via::home);
    GAP(true, C, ls(LineState::read_write), in(get_rw_response), Via::home);
    GAP(true, C, ls(LineState::read_write), in(upgrade_response),
        Via::home);
    GAP(true, C, ls(LineState::read_write), in(inval_ro_request),
        Via::home);

    // ---------------- cache: wait_ro ----------------
    ROW(true, C, ls(LineState::wait_ro), in(get_ro_response), guard_none,
        ActionId::cache_accept_ro, ls(LineState::read_only), {},
        Via::home, f_completes);
    // Forwarded three-hop data: acknowledge home so the directory
    // entry (still busy, queueing later requests) can be released.
    ROW(ack, C, ls(LineState::wait_ro), in(get_ro_response), guard_fwd,
        ActionId::cache_accept_ro, ls(LineState::read_only), {fwd_ack},
        Via::owner, f_completes);
    // The directory may answer a read with an exclusive copy when it
    // predicts a read-modify-write (§4.1).
    ROW(true, C, ls(LineState::wait_ro), in(get_rw_response), guard_none,
        ActionId::cache_accept_rw, ls(LineState::read_write), {},
        Via::home, f_completes);
    ROW(cap, C, ls(LineState::wait_ro), in(inval_ro_request), guard_none,
        ActionId::cache_ack_stale_inval, ls(LineState::wait_ro),
        {inval_ro_response}, Via::home);
    // Without replacement a wait_ro line cannot receive an
    // invalidation -- this is exactly the row the legacy-forwarding
    // race violates (the model checker's counterexample lands here).
    GAP(!cap, C, ls(LineState::wait_ro), in(inval_ro_request), Via::home);
    GAP(true, C, ls(LineState::wait_ro), in(upgrade_response), Via::home);
    GAP(true, C, ls(LineState::wait_ro), in(inval_rw_request), Via::home);
    GAP(true, C, ls(LineState::wait_ro), in(downgrade_request), Via::home);
    GAP(true, C, ls(LineState::wait_ro), input_proc_read, Via::proc);
    GAP(true, C, ls(LineState::wait_ro), input_proc_write, Via::proc);

    // ---------------- cache: wait_rw ----------------
    ROW(true, C, ls(LineState::wait_rw), in(get_rw_response), guard_none,
        ActionId::cache_accept_rw, ls(LineState::read_write), {},
        Via::home, f_completes);
    ROW(ack, C, ls(LineState::wait_rw), in(get_rw_response), guard_fwd,
        ActionId::cache_accept_rw, ls(LineState::read_write), {fwd_ack},
        Via::owner, f_completes, clears_inval_ro);
    ROW(cap, C, ls(LineState::wait_rw), in(inval_ro_request), guard_none,
        ActionId::cache_ack_stale_inval, ls(LineState::wait_rw),
        {inval_ro_response}, Via::home);
    GAP(!cap, C, ls(LineState::wait_rw), in(inval_ro_request), Via::home);
    GAP(true, C, ls(LineState::wait_rw), in(get_ro_response), Via::home);
    GAP(true, C, ls(LineState::wait_rw), in(upgrade_response), Via::home);
    GAP(true, C, ls(LineState::wait_rw), in(inval_rw_request), Via::home);
    GAP(true, C, ls(LineState::wait_rw), in(downgrade_request), Via::home);
    GAP(true, C, ls(LineState::wait_rw), input_proc_read, Via::proc);
    GAP(true, C, ls(LineState::wait_rw), input_proc_write, Via::proc);

    // ---------------- cache: wait_upg ----------------
    ROW(true, C, ls(LineState::wait_upg), in(get_rw_response),
        guard_none, ActionId::cache_accept_rw,
        ls(LineState::read_write), {}, Via::home, f_completes);
    ROW(ack, C, ls(LineState::wait_upg), in(get_rw_response), guard_fwd,
        ActionId::cache_accept_rw, ls(LineState::read_write), {fwd_ack},
        Via::owner, f_completes, clears_inval_ro);
    ROW(true, C, ls(LineState::wait_upg), in(upgrade_response),
        guard_none, ActionId::cache_accept_upgrade,
        ls(LineState::read_write), {}, Via::home, f_completes);
    // Our shared copy is swept while the upgrade waits; drop to
    // wait_rw so the directory's promoted get_rw_response is accepted.
    ROW(true, C, ls(LineState::wait_upg), in(inval_ro_request),
        guard_none, ActionId::cache_demote_upgrade,
        ls(LineState::wait_rw), {inval_ro_response}, Via::home);
    GAP(true, C, ls(LineState::wait_upg), in(get_ro_response), Via::home);
    GAP(true, C, ls(LineState::wait_upg), in(inval_rw_request), Via::home);
    GAP(true, C, ls(LineState::wait_upg), in(downgrade_request),
        Via::home);
    GAP(true, C, ls(LineState::wait_upg), input_proc_read, Via::proc);
    GAP(true, C, ls(LineState::wait_upg), input_proc_write, Via::proc);

    // ---------------- directory: idle ----------------
    ROW(true, D, ph(DirPhase::idle), in(get_ro_request), guard_none,
        ActionId::dir_serve_read, ph(DirPhase::shared),
        {get_ro_response}, Via::any_cache, f_completes);
    ROW(true, D, ph(DirPhase::idle), in(get_rw_request), guard_none,
        ActionId::dir_serve_write, ph(DirPhase::exclusive),
        {get_rw_response}, Via::any_cache, f_completes);
    ROW(true, D, ph(DirPhase::idle), in(upgrade_request),
        guard_nonsharer, ActionId::dir_promote_upgrade,
        ph(DirPhase::exclusive), {get_rw_response}, Via::any_cache,
        f_completes);
    GAP(true, D, ph(DirPhase::idle), in(inval_ro_response), Via::sharer);
    GAP(true, D, ph(DirPhase::idle), in(inval_rw_response), Via::owner);
    GAP(true, D, ph(DirPhase::idle), in(downgrade_response), Via::owner);
    GAP(true, D, ph(DirPhase::idle), in(fwd_ack), Via::requester);

    // ---------------- directory: shared ----------------
    ROW(true, D, ph(DirPhase::shared), in(get_ro_request), guard_none,
        ActionId::dir_serve_read, ph(DirPhase::shared),
        {get_ro_response}, Via::any_cache, f_completes);
    ROW(true, D, ph(DirPhase::shared), in(get_rw_request), guard_others,
        ActionId::dir_serve_write, ph(DirPhase::busy_write),
        {inval_ro_request}, Via::any_cache);
    // Only under replacement: a get_rw from the sole (stale) sharer.
    ROW(cap, D, ph(DirPhase::shared), in(get_rw_request), guard_solo,
        ActionId::dir_serve_write, ph(DirPhase::exclusive),
        {get_rw_response}, Via::any_cache, f_completes);
    ROW(true, D, ph(DirPhase::shared), in(upgrade_request),
        guard_sharer | guard_others, ActionId::dir_serve_upgrade,
        ph(DirPhase::busy_write), {inval_ro_request}, Via::any_cache);
    ROW(true, D, ph(DirPhase::shared), in(upgrade_request),
        guard_sharer | guard_solo, ActionId::dir_serve_upgrade,
        ph(DirPhase::exclusive), {upgrade_response}, Via::any_cache,
        f_completes);
    // The requester's copy was invalidated while its upgrade was in
    // flight: promote to a full write fetch.
    ROW(true, D, ph(DirPhase::shared), in(upgrade_request),
        guard_nonsharer | guard_others, ActionId::dir_promote_upgrade,
        ph(DirPhase::busy_write), {inval_ro_request}, Via::any_cache);
    GAP(true, D, ph(DirPhase::shared), in(inval_ro_response),
        Via::sharer);
    GAP(true, D, ph(DirPhase::shared), in(inval_rw_response), Via::owner);
    GAP(true, D, ph(DirPhase::shared), in(downgrade_response),
        Via::owner);
    GAP(true, D, ph(DirPhase::shared), in(fwd_ack), Via::requester);

    // ---------------- directory: exclusive ----------------
    ROW(half, D, ph(DirPhase::exclusive), in(get_ro_request), guard_none,
        ActionId::dir_serve_read, ph(DirPhase::busy_read),
        {inval_rw_request}, Via::any_cache);
    ROW(dash, D, ph(DirPhase::exclusive), in(get_ro_request), guard_none,
        ActionId::dir_serve_read, ph(DirPhase::busy_read),
        {downgrade_request}, Via::any_cache);
    ROW(true, D, ph(DirPhase::exclusive), in(get_rw_request), guard_none,
        ActionId::dir_serve_write, ph(DirPhase::busy_write),
        {inval_rw_request}, Via::any_cache);
    ROW(true, D, ph(DirPhase::exclusive), in(upgrade_request),
        guard_nonsharer, ActionId::dir_promote_upgrade,
        ph(DirPhase::busy_write), {inval_rw_request}, Via::any_cache);
    GAP(true, D, ph(DirPhase::exclusive), in(inval_ro_response),
        Via::sharer);
    GAP(true, D, ph(DirPhase::exclusive), in(inval_rw_response),
        Via::owner);
    GAP(true, D, ph(DirPhase::exclusive), in(downgrade_response),
        Via::owner);
    GAP(true, D, ph(DirPhase::exclusive), in(fwd_ack), Via::requester);

    // ------------- directory: busy request queueing -------------
    for (DirPhase p : {DirPhase::busy_read, DirPhase::busy_write,
                       DirPhase::busy_recall}) {
        for (MsgType rq :
             {get_ro_request, get_rw_request, upgrade_request}) {
            ROW(true, D, ph(p), in(rq), guard_queued,
                ActionId::dir_queue_request, ph(p), {}, Via::any_cache);
        }
    }

    // ---------------- directory: busy_read ----------------
    ROW(half, D, ph(DirPhase::busy_read), in(inval_rw_response),
        guard_none, ActionId::dir_revision, ph(DirPhase::shared),
        {get_ro_response}, Via::owner, f_allow_q | f_completes);
    ROW(half && fwd, D, ph(DirPhase::busy_read), in(inval_rw_response),
        guard_fwd, ActionId::dir_revision, ph(DirPhase::shared), {},
        Via::owner, f_allow_q | f_completes | f_delegates);
    ROW(half && ack, D, ph(DirPhase::busy_read), in(inval_rw_response),
        guard_fwd | guard_await_ack, ActionId::dir_revision,
        ph(DirPhase::busy_read), {}, Via::owner,
        f_allow_q | f_delegates);
    GAP(dash, D, ph(DirPhase::busy_read), in(inval_rw_response),
        Via::owner);
    ROW(dash, D, ph(DirPhase::busy_read), in(downgrade_response),
        guard_none, ActionId::dir_downgrade_ack, ph(DirPhase::shared),
        {get_ro_response}, Via::owner, f_allow_q | f_completes);
    ROW(dash && fwd, D, ph(DirPhase::busy_read), in(downgrade_response),
        guard_fwd, ActionId::dir_downgrade_ack, ph(DirPhase::shared),
        {}, Via::owner, f_allow_q | f_completes | f_delegates);
    ROW(dash && ack, D, ph(DirPhase::busy_read), in(downgrade_response),
        guard_fwd | guard_await_ack, ActionId::dir_downgrade_ack,
        ph(DirPhase::busy_read), {}, Via::owner,
        f_allow_q | f_delegates);
    GAP(half, D, ph(DirPhase::busy_read), in(downgrade_response),
        Via::owner);
    ROW(ack, D, ph(DirPhase::busy_read), in(fwd_ack), guard_await_data,
        ActionId::dir_fwd_ack, ph(DirPhase::busy_read), {},
        Via::requester);
    ROW(ack, D, ph(DirPhase::busy_read), in(fwd_ack), guard_data_done,
        ActionId::dir_fwd_ack, ph(DirPhase::shared), {}, Via::requester,
        f_allow_q | f_completes);
    GAP(!ack, D, ph(DirPhase::busy_read), in(fwd_ack), Via::requester);
    GAP(true, D, ph(DirPhase::busy_read), in(inval_ro_response),
        Via::sharer);

    // ---------------- directory: busy_write ----------------
    ROW(true, D, ph(DirPhase::busy_write), in(inval_ro_response),
        guard_more_acks, ActionId::dir_inval_ack,
        ph(DirPhase::busy_write), {}, Via::sharer);
    ROW(true, D, ph(DirPhase::busy_write), in(inval_ro_response),
        guard_last_ack, ActionId::dir_inval_ack,
        ph(DirPhase::exclusive), {get_rw_response}, Via::sharer,
        f_allow_q | f_completes);
    ROW(true, D, ph(DirPhase::busy_write), in(inval_ro_response),
        guard_last_ack | guard_upg, ActionId::dir_inval_ack,
        ph(DirPhase::exclusive), {upgrade_response}, Via::sharer,
        f_allow_q | f_completes);
    ROW(true, D, ph(DirPhase::busy_write), in(inval_rw_response),
        guard_none, ActionId::dir_revision, ph(DirPhase::exclusive),
        {get_rw_response}, Via::owner, f_allow_q | f_completes);
    ROW(fwd, D, ph(DirPhase::busy_write), in(inval_rw_response),
        guard_fwd, ActionId::dir_revision, ph(DirPhase::exclusive), {},
        Via::owner, f_allow_q | f_completes | f_delegates);
    ROW(ack, D, ph(DirPhase::busy_write), in(inval_rw_response),
        guard_fwd | guard_await_ack, ActionId::dir_revision,
        ph(DirPhase::busy_write), {}, Via::owner,
        f_allow_q | f_delegates);
    ROW(ack, D, ph(DirPhase::busy_write), in(fwd_ack), guard_await_data,
        ActionId::dir_fwd_ack, ph(DirPhase::busy_write), {},
        Via::requester);
    ROW(ack, D, ph(DirPhase::busy_write), in(fwd_ack), guard_data_done,
        ActionId::dir_fwd_ack, ph(DirPhase::exclusive), {},
        Via::requester, f_allow_q | f_completes);
    GAP(!ack, D, ph(DirPhase::busy_write), in(fwd_ack), Via::requester);
    GAP(true, D, ph(DirPhase::busy_write), in(downgrade_response),
        Via::owner);

    // ---------------- directory: busy_recall ----------------
    ROW(true, D, ph(DirPhase::busy_recall), in(inval_rw_response),
        guard_none, ActionId::dir_revision, ph(DirPhase::idle), {},
        Via::owner, f_allow_q | f_completes);
    GAP(true, D, ph(DirPhase::busy_recall), in(inval_ro_response),
        Via::sharer);
    GAP(true, D, ph(DirPhase::busy_recall), in(downgrade_response),
        Via::owner);
    GAP(true, D, ph(DirPhase::busy_recall), in(fwd_ack), Via::requester);

#undef ROW
#undef GAP

    ProtocolTable t;
    t.cfg_ = cfg;
    t.rows_ = std::move(b.rows);
    t.reindex();
    return t;
}

void
ProtocolTable::reindex()
{
    index_.assign(2 * num_states * num_table_inputs, {});
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const TransitionRow &r = rows_[i];
        cosmos_assert(r.state < num_states &&
                          r.input < num_table_inputs,
                      "table row out of range: ", r.format());
        index_[bucketIndex(r.role, r.state, r.input)].push_back(
            static_cast<std::uint16_t>(i));
    }
}

const TransitionRow *
ProtocolTable::find(Role role, std::uint8_t state, std::uint8_t input,
                    GuardBits guard) const
{
    if (state >= num_states || input >= num_table_inputs)
        return nullptr;
    const TransitionRow *unreachable_marker = nullptr;
    for (std::uint16_t i : index_[bucketIndex(role, state, input)]) {
        const TransitionRow &r = rows_[i];
        if (r.unreachable) {
            unreachable_marker = &r;
            continue;
        }
        if (guard == r.guard ||
            (r.allowQ && guard == (r.guard | guard_q))) {
            return &r;
        }
    }
    return unreachable_marker;
}

const TransitionRow &
ProtocolTable::dispatch(Role role, std::uint8_t state,
                        std::uint8_t input, GuardBits guard,
                        NodeId node) const
{
    const TransitionRow *r = find(role, state, input, guard);
    if (r == nullptr) {
        const std::string g =
            guard == guard_none
                ? std::string{}
                : detail::concat(" [", guardContext(guard), "]");
        cosmos_panic("no declared transition row for ", toString(role),
                     " node ", node, " handling ",
                     tableInputName(input), " in state ",
                     stateName(role, state), g);
    }
    if (r->unreachable) {
        cosmos_panic("declared-unreachable transition: ",
                     toString(role), " node ", node, " handling ",
                     tableInputName(input), " in state ",
                     stateName(role, state), " (", r->where(), ")");
    }
    return *r;
}

const char *
ProtocolTable::stateName(Role role, std::uint8_t state)
{
    if (role == Role::cache)
        return toString(static_cast<LineState>(state));
    return toString(static_cast<DirPhase>(state));
}

} // namespace cosmos::proto
