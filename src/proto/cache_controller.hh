/**
 * @file
 * Per-node cache controller of the Stache-like directory protocol.
 *
 * A cache block is in one of three quiescent states (invalid,
 * read-only, read-write -- paper §2.1) or one of three transient
 * states while a miss is outstanding. The attached processor is a
 * blocking, single-outstanding-access processor (the WWT II target
 * model), so at most one miss is in flight per cache at a time;
 * external invalidations and downgrades may still arrive for any
 * block at any time.
 *
 * Stache never replaces remote cache pages (§5.1), so lines are only
 * removed by invalidation -- a property the predictor relies on for
 * persistent history.
 */

#ifndef COSMOS_PROTO_CACHE_CONTROLLER_HH
#define COSMOS_PROTO_CACHE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/addr.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "proto/messages.hh"
#include "proto/transition_table.hh"
#include "sim/event_queue.hh"

namespace cosmos::proto
{

/** Cache-line states (quiescent + transient). */
enum class LineState : std::uint8_t
{
    invalid,
    read_only,
    read_write,
    wait_ro,  ///< get_ro_request outstanding
    wait_rw,  ///< get_rw_request outstanding
    wait_upg, ///< upgrade_request outstanding
};

const char *toString(LineState s);

/** Counters a cache keeps for reporting and tests. */
struct CacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadHits = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalsReceived = 0;
    std::uint64_t downgradesReceived = 0;
    std::uint64_t evictions = 0;      ///< silent read-only drops
    std::uint64_t staleInvals = 0;    ///< invals for dropped lines
    /** Line-state transitions, counted by the state entered
     *  (index = LineState). Entries into transient states measure
     *  miss traffic; entries into `invalid` are invalidations and
     *  evictions. */
    std::array<std::uint64_t, 6> stateEntries{};
};

/**
 * Protocol-relevant state of one cache controller at a delivery
 * boundary: the non-invalid lines (sorted by block, so two snapshots
 * of the same state compare equal) and the fault-injection residue.
 * Statistics are deliberately excluded -- they are observability, not
 * protocol state, and folding monotone counters into snapshots would
 * make equal protocol states compare unequal.
 *
 * Snapshots write into a caller-owned object so repeated
 * snapshot/restore cycles (the model checker takes one per explored
 * transition) reuse the vector's capacity instead of reallocating.
 */
struct CacheSnapshot
{
    std::vector<std::pair<Addr, LineState>> lines;
    /** ignoredInvalTick_ counter (mod fault.ignoreInvalEvery). */
    unsigned invalResidue = 0;
};

/**
 * One node's cache controller.
 *
 * The owning Machine supplies the outbound message path and the event
 * queue; the Processor supplies accesses via access().
 */
class CacheController
{
  public:
    using SendFn = std::function<void(const Msg &)>;
    using DoneFn = std::function<void()>;

    /** @p table is the declared protocol table the controller
     *  dispatches through; it must outlive the controller and match
     *  @p cfg (Machine and the model stepper each own one). */
    CacheController(NodeId node, const AddrMap &amap,
                    const MachineConfig &cfg,
                    const ProtocolTable &table, sim::EventQueue &eq,
                    SendFn send);

    /**
     * Issue a processor load or store to byte address @p a.
     *
     * On a hit @p done fires after the cache hit latency; on a miss
     * it fires when the protocol response arrives. Misses to
     * *different* blocks may overlap (non-blocking cache); issuing
     * an access to a block with a miss already outstanding is the
     * caller's error -- processors stall on transient blocks.
     */
    void access(Addr a, bool write, DoneFn done);

    /** True if a miss is outstanding for the block of @p a. */
    bool pendingOn(Addr a) const;

    /** Deliver a protocol message addressed to this cache. */
    void handleMessage(const Msg &m);

    /** Quiescent-state query (transient states report themselves). */
    LineState state(Addr a) const;

    /** True if any miss is outstanding. */
    bool busy() const { return !pending_.empty(); }

    /** Number of outstanding misses. */
    std::size_t outstanding() const { return pending_.size(); }

    NodeId node() const { return node_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Enumerate blocks in a given state (invariant checking support).
     */
    void forEachLine(
        const std::function<void(Addr, LineState)> &fn) const;

    /** Capture the protocol state into @p out (stats excluded). */
    void snapshot(CacheSnapshot &out) const;

    /**
     * Replace the protocol state with @p s. Lines in a transient
     * (wait_*) state get a fresh MSHR whose completion callback is
     * @p on_complete (a no-op when empty) -- the model checker's
     * stepper has no processor to wake, it derives progress from the
     * line states themselves. Stats are left untouched.
     */
    void restore(const CacheSnapshot &s, DoneFn on_complete = {});

  private:
    // Named action fragments the transition table's rows reference
    // (ActionId::cache_*). handleMessage()/access() look the row up
    // and run the action it names; the actions never decide *whether*
    // they apply -- the table did.
    /** Complete an outstanding miss with the arrived data; sends the
     *  fwd_ack receipt when the data was forwarded three-hop. */
    void acceptData(const Msg &m, LineState final_state);
    /** read_only x inval_ro_request (fault injection lives here). */
    void invalidateShared(const Msg &m);
    /** wait_upg x inval_ro_request: drop to wait_rw. */
    void demoteUpgrade(const Msg &m);
    /** Stale invalidation for a silently dropped line: just ack. */
    void ackStaleInval(const Msg &m);
    /** read_write x inval_rw_request (incl. forwarded data reply). */
    void surrenderExclusive(const Msg &m);
    /** read_write x downgrade_request (incl. forwarded data reply). */
    void downgradeLine(const Msg &m);

    void complete(Addr block, LineState final_state);
    void send(MsgType t, NodeId dst, Addr block,
              bool forwarded = false);
    /** Transition @p block, keeping the valid-line census. */
    void setState(Addr block, LineState st);
    /** Silently drop a read-only victim to respect the capacity. */
    void evictForCapacity(Addr incoming_block);

    NodeId node_;
    const AddrMap &amap_;
    const MachineConfig &cfg_;
    const ProtocolTable &table_;
    sim::EventQueue &eq_;
    SendFn sendFn_;

    std::unordered_map<Addr, LineState> lines_;
    std::size_t validLines_ = 0;
    /** Counts inval_ro_requests for FaultInjection::ignoreInvalEvery. */
    unsigned ignoredInvalTick_ = 0;
    /** Outstanding misses: block -> completion callback (an MSHR). */
    std::unordered_map<Addr, DoneFn> pending_;
    CacheStats stats_;
};

} // namespace cosmos::proto

#endif // COSMOS_PROTO_CACHE_CONTROLLER_HH
