/**
 * @file
 * The declarative protocol transition table: the source of truth the
 * cache and directory controllers dispatch through.
 *
 * Each TransitionRow binds `(role, state, input, guard)` to a named
 * action, a declared next state, and the declared emission signature.
 * The controllers in cache_controller.cc / directory_controller.cc no
 * longer decide *what* to do -- they look the row up here and run the
 * action it names; the handler bodies are reduced to those named
 * action functions. PR 5's model-checker extraction
 * (model/table.{hh,cc}) is thereby inverted: instead of deriving the
 * table from execution, the model checker re-derives it and diffs it
 * against this declared one (TransitionTable::diffAgainstDeclared).
 *
 * Rows carry provenance (__LINE__ of the declaring entry in
 * transition_table.cc) so lint findings and model-checker
 * counterexamples can point at the declaration, plus the static
 * annotations `cosmos lint` (src/lint) needs:
 *
 *   unreachable   the (state, input) pair cannot occur in a run; the
 *                 model checker's reached set cross-validates this.
 *   completes     the row finishes a transaction (cache miss done, or
 *                 directory entry released) -- outstanding responses
 *                 of that transaction cannot still be in flight after
 *                 it, which the channel-discipline pass relies on.
 *   delegatesData the row closes a request whose data response was
 *                 sent by a third party (three-hop forwarding), so
 *                 message-conservation is satisfied without this row
 *                 emitting the response itself.
 *   clears        input-type bitmask of declared serialization
 *                 assumptions: inputs that provably cannot be pending
 *                 once this row fires, exempting them from the
 *                 channel-discipline check. Cross-validated
 *                 dynamically: if the assumption were wrong the model
 *                 checker would reach the (next-state, input) pair and
 *                 the consistency diff would flag it.
 *
 * Guards are small orthogonal predicates over module-local hidden
 * state (directory ack counts, FIFO backlog, the forwarded mark on a
 * message). Their '+'-joined rendering reproduces the model stepper's
 * context tags byte-for-byte, which is what lets the consistency diff
 * match extracted samples to declared rows.
 */

#ifndef COSMOS_PROTO_TRANSITION_TABLE_HH
#define COSMOS_PROTO_TRANSITION_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "proto/messages.hh"

namespace cosmos::proto
{

/**
 * Abstract directory phase a table row keys on. Quiescent values
 * (idle/shared/exclusive) coincide numerically with proto::DirState;
 * busy entries are split by what the transaction waits for, exactly
 * the abstraction the model checker uses (model::DirAbstract mirrors
 * this enum value-for-value).
 */
enum class DirPhase : std::uint8_t
{
    idle,
    shared,
    exclusive,
    /** Busy on a read miss to an exclusive block (owner recall). */
    busy_read,
    /** Busy on a write/upgrade (invalidation sweep or owner recall). */
    busy_write,
    /** Busy on a voluntary recall (no requester to answer). */
    busy_recall,
};

constexpr unsigned num_cache_states = 6;
constexpr unsigned num_dir_phases = 6;

const char *toString(DirPhase p);

/** Table inputs: the 13 message types plus the two processor ops. */
constexpr std::uint8_t input_proc_read = num_msg_types;
constexpr std::uint8_t input_proc_write = num_msg_types + 1;
constexpr unsigned num_table_inputs = num_msg_types + 2;

/** Printable input name ("get_ro_request", "proc_read", ...). */
const char *tableInputName(std::uint8_t input);

/**
 * Guard predicates, one bit each. The canonical rendering order in
 * guardContext() matches the append order of the model stepper's
 * context tags, so `guardContext(bits)` reproduces a stepper context
 * string exactly and `guardFromContext` inverts it.
 */
using GuardBits = std::uint32_t;
constexpr GuardBits guard_none = 0;
/** Directory entry busy: the request joins the FIFO backlog. */
constexpr GuardBits guard_queued = 1u << 0;
/** upgrade_request source is (is not) in the sharer set. */
constexpr GuardBits guard_sharer = 1u << 1;
constexpr GuardBits guard_nonsharer = 1u << 2;
/** Shared-state write: sharers other than the requester do (not) exist. */
constexpr GuardBits guard_others = 1u << 3;
constexpr GuardBits guard_solo = 1u << 4;
/** inval_ro_response: more acks outstanding / this is the last one. */
constexpr GuardBits guard_more_acks = 1u << 5;
constexpr GuardBits guard_last_ack = 1u << 6;
/** Final ack answers a genuine upgrade (upgrade_response reply). */
constexpr GuardBits guard_upg = 1u << 7;
/** Message carries the forwarded mark / entry has a forward in flight. */
constexpr GuardBits guard_fwd = 1u << 8;
/** Forwarded recall: requester wants a writable (rw) or shared (ro) copy. */
constexpr GuardBits guard_rw = 1u << 9;
constexpr GuardBits guard_ro = 1u << 10;
/** Forwarded settle: the requester's fwd_ack has not arrived yet. */
constexpr GuardBits guard_await_ack = 1u << 11;
/** fwd_ack arrived before (after) the owner's revision message. */
constexpr GuardBits guard_await_data = 1u << 12;
constexpr GuardBits guard_data_done = 1u << 13;
/** The directory backlog is non-empty when the transaction finishes. */
constexpr GuardBits guard_q = 1u << 14;

/** Render guard bits as the canonical '+'-joined context string. */
std::string guardContext(GuardBits g);

/** Parse a stepper context string back to guard bits; panics on an
 *  unknown tag. */
GuardBits guardFromContext(const std::string &context);

/** Guard bits a cache derives from an incoming message (the forwarded
 *  mark and, for recalls, the wanted copy kind). */
GuardBits cacheMsgGuard(const Msg &m);

/**
 * The slice of directory-entry state guards are evaluated over.
 * Buildable both from the live Entry (directory_controller.cc) and
 * from a DirEntrySnapshot (model stepper), so the two always agree.
 */
struct DirGuardView
{
    bool busy = false;
    /** Quiescent DirState value (idle/shared/exclusive). */
    std::uint8_t state = 0;
    std::uint64_t sharers = 0;
    unsigned pendingAcks = 0;
    bool genuineUpgrade = false;
    bool recall = false;
    bool fwdData = false;
    bool fwdAckPending = false;
    bool waitingEmpty = true;
    MsgType currentType{};
};

/** Guard bits the directory derives for message @p t from @p src. */
GuardBits dirMsgGuard(const DirGuardView &v, MsgType t, NodeId src);

/** Abstract phase of a directory entry (model::DirAbstract mirror). */
DirPhase dirPhaseOf(const DirGuardView &v);

/**
 * Which channel (sender class) a row's input arrives on. The
 * protocol's FIFO assumption holds per (src, dst) pair, so the
 * channel-discipline lint only trusts ordering between rows whose
 * inputs share a single concrete channel.
 */
enum class Via : std::uint8_t
{
    /** Processor-initiated, not a network channel. */
    proc,
    /** From the block's home directory. */
    home,
    /** From the current exclusive owner (recall responses, forwarded
     *  data). */
    owner,
    /** From the requester of the in-flight transaction (fwd_ack). */
    requester,
    /** From any member of the sharer set (invalidation acks). */
    sharer,
    /** From any cache (directory-side requests). */
    any_cache,
};

const char *toString(Via v);

/** True when the via names one concrete FIFO channel (ordering between
 *  two such inputs is guaranteed); false for sharer/any_cache fans. */
bool singleChannel(Via v);

/** Named handler fragments the rows reference. The controllers own the
 *  implementations; the enum is the table's vocabulary. */
enum class ActionId : std::uint8_t
{
    /** Marker for declared-unreachable rows; never executed. */
    none,

    // Cache actions.
    cache_load_hit,
    cache_store_hit,
    cache_begin_read_miss,
    cache_begin_write_miss,
    cache_begin_upgrade,
    cache_accept_ro,
    cache_accept_rw,
    cache_accept_upgrade,
    cache_invalidate_shared,
    cache_demote_upgrade,
    cache_ack_stale_inval,
    cache_surrender_exclusive,
    cache_downgrade_line,

    // Directory actions.
    dir_queue_request,
    dir_serve_read,
    dir_serve_write,
    dir_serve_upgrade,
    dir_promote_upgrade,
    dir_inval_ack,
    dir_revision,
    dir_downgrade_ack,
    dir_fwd_ack,
};

const char *toString(ActionId a);

/** One declared transition: (role, state, input, guard) -> action. */
struct TransitionRow
{
    Role role = Role::cache;
    std::uint8_t state = 0;
    std::uint8_t input = 0;
    GuardBits guard = guard_none;
    ActionId action = ActionId::none;
    std::uint8_t next = 0;
    /** Declared emission signature (sorted, deduplicated; multiplicity
     *  abstracted away, matching the extractor's Outcome). */
    std::vector<MsgType> emits;
    Via via = Via::home;
    /** The pair cannot occur; dispatch() panics if it does. */
    bool unreachable = false;
    /** The row also matches with guard_q set (backlog service makes
     *  next state and emissions dynamic; the consistency diff skips
     *  the outcome compare for such samples). */
    bool allowQ = false;
    /** Finishes a transaction; see file header. */
    bool completes = false;
    /** Data response delivered by a third party; see file header. */
    bool delegatesData = false;
    /** Bitmask (1 << input) of declared-impossible pending inputs. */
    std::uint16_t clears = 0;
    /** __LINE__ of the declaring entry in transition_table.cc. */
    int line = 0;

    /** Provenance, "src/proto/transition_table.cc:NN". */
    std::string where() const;

    /** "cache read_only x inval_ro_request -> invalid ! inval_ro_response" */
    std::string format() const;
};

/**
 * The full declared table for one machine configuration. Rows are
 * config-gated at build time (forwarding / legacy / owner-read policy
 * / capacity), so the table describes exactly the protocol the
 * controllers run under that configuration.
 */
class ProtocolTable
{
public:
    /** Build the declared Stache table for @p cfg. */
    static ProtocolTable build(const MachineConfig &cfg);

    const std::vector<TransitionRow> &rows() const { return rows_; }

    /** Mutable row access for lint's planted-mutation harness; call
     *  reindex() after editing. */
    std::vector<TransitionRow> &mutableRows() { return rows_; }

    /** Rebuild the (role, state, input) dispatch index. */
    void reindex();

    /**
     * Look up the row matching a concrete dispatch. Returns the
     * unreachable marker if the pair is declared unreachable, or
     * nullptr when nothing matches (a table gap -- dispatch() turns
     * both into a panic).
     */
    const TransitionRow *find(Role role, std::uint8_t state,
                              std::uint8_t input, GuardBits guard) const;

    /** find(), but panics (RecoverableError under a FailureTrap) when
     *  no live row matches -- the controllers' dispatch entry point. */
    const TransitionRow &dispatch(Role role, std::uint8_t state,
                                  std::uint8_t input, GuardBits guard,
                                  NodeId node) const;

    const MachineConfig &config() const { return cfg_; }

    /** State name for a role ("wait_ro" / "busy_write" ...). */
    static const char *stateName(Role role, std::uint8_t state);

private:
    ProtocolTable() = default;

    MachineConfig cfg_{};
    std::vector<TransitionRow> rows_;
    /** Bucket per (role, state, input) holding row indices. */
    std::vector<std::vector<std::uint16_t>> index_;
};

} // namespace cosmos::proto

#endif // COSMOS_PROTO_TRANSITION_TABLE_HH
