#include "proto/messages.hh"

#include <sstream>

#include "common/log.hh"

namespace cosmos::proto
{

Role
receiverRole(MsgType t)
{
    switch (t) {
      case MsgType::get_ro_request:
      case MsgType::get_rw_request:
      case MsgType::upgrade_request:
      case MsgType::inval_ro_response:
      case MsgType::inval_rw_response:
      case MsgType::downgrade_response:
      case MsgType::fwd_ack:
        return Role::directory;
      case MsgType::get_ro_response:
      case MsgType::get_rw_response:
      case MsgType::upgrade_response:
      case MsgType::inval_ro_request:
      case MsgType::inval_rw_request:
      case MsgType::downgrade_request:
        return Role::cache;
    }
    cosmos_panic("bad MsgType ", static_cast<int>(t));
}

bool
isRequest(MsgType t)
{
    switch (t) {
      case MsgType::get_ro_request:
      case MsgType::get_rw_request:
      case MsgType::upgrade_request:
      case MsgType::inval_ro_request:
      case MsgType::inval_rw_request:
      case MsgType::downgrade_request:
        return true;
      default:
        return false;
    }
}

const char *
toString(MsgType t)
{
    switch (t) {
      case MsgType::get_ro_request:     return "get_ro_request";
      case MsgType::get_ro_response:    return "get_ro_response";
      case MsgType::get_rw_request:     return "get_rw_request";
      case MsgType::get_rw_response:    return "get_rw_response";
      case MsgType::upgrade_request:    return "upgrade_request";
      case MsgType::upgrade_response:   return "upgrade_response";
      case MsgType::inval_ro_request:   return "inval_ro_request";
      case MsgType::inval_ro_response:  return "inval_ro_response";
      case MsgType::inval_rw_request:   return "inval_rw_request";
      case MsgType::inval_rw_response:  return "inval_rw_response";
      case MsgType::downgrade_request:  return "downgrade_request";
      case MsgType::downgrade_response: return "downgrade_response";
      case MsgType::fwd_ack:            return "fwd_ack";
    }
    return "?";
}

const char *
toString(Role r)
{
    return r == Role::cache ? "cache" : "directory";
}

MsgType
msgTypeFromString(const std::string &name)
{
    for (unsigned i = 0; i < num_msg_types; ++i) {
        auto t = static_cast<MsgType>(i);
        if (name == toString(t))
            return t;
    }
    cosmos_panic("unknown message type name '", name, "'");
}

std::string
Msg::format() const
{
    std::ostringstream os;
    os << toString(type) << " " << src << "->" << dst << " block=0x"
       << std::hex << block;
    if (requester != invalid_node && requester != src)
        os << std::dec << " for=" << requester;
    return os.str();
}

} // namespace cosmos::proto
