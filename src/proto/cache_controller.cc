#include "proto/cache_controller.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace cosmos::proto
{

const char *
toString(LineState s)
{
    switch (s) {
      case LineState::invalid:    return "invalid";
      case LineState::read_only:  return "read_only";
      case LineState::read_write: return "read_write";
      case LineState::wait_ro:    return "wait_ro";
      case LineState::wait_rw:    return "wait_rw";
      case LineState::wait_upg:   return "wait_upg";
    }
    return "?";
}

CacheController::CacheController(NodeId node, const AddrMap &amap,
                                 const MachineConfig &cfg,
                                 sim::EventQueue &eq, SendFn send)
    : node_(node), amap_(amap), cfg_(cfg), eq_(eq),
      sendFn_(std::move(send))
{
}

LineState
CacheController::state(Addr a) const
{
    auto it = lines_.find(amap_.blockBase(a));
    return it == lines_.end() ? LineState::invalid : it->second;
}

void
CacheController::setState(Addr block, LineState st)
{
    const LineState old = state(block);
    const auto counted = [](LineState s) {
        return s == LineState::read_only || s == LineState::read_write;
    };
    if (counted(old) && !counted(st))
        --validLines_;
    else if (!counted(old) && counted(st))
        ++validLines_;
    if (old != st)
        ++stats_.stateEntries[static_cast<std::size_t>(st)];
    if (st == LineState::invalid)
        lines_.erase(block);
    else
        lines_[block] = st;
}

void
CacheController::evictForCapacity(Addr incoming_block)
{
    if (cfg_.cacheCapacityBlocks == 0 ||
        validLines_ < cfg_.cacheCapacityBlocks) {
        return;
    }
    // Drop the first quiescent read-only line that is not the block
    // being fetched. Read-write lines are never dropped (a clean
    // victim needs no writeback message). If everything is
    // read-write the capacity is soft-exceeded.
    for (const auto &[block, st] : lines_) {
        if (block != incoming_block && st == LineState::read_only) {
            setState(block, LineState::invalid);
            ++stats_.evictions;
            return;
        }
    }
}

void
CacheController::forEachLine(
    const std::function<void(Addr, LineState)> &fn) const
{
    for (const auto &[block, st] : lines_)
        fn(block, st);
}

void
CacheController::snapshot(CacheSnapshot &out) const
{
    out.lines.clear();
    out.lines.reserve(lines_.size());
    for (const auto &[block, st] : lines_)
        out.lines.emplace_back(block, st);
    std::sort(out.lines.begin(), out.lines.end());
    out.invalResidue = cfg_.fault.ignoreInvalEvery == 0
                           ? 0
                           : ignoredInvalTick_ %
                                 cfg_.fault.ignoreInvalEvery;
}

void
CacheController::restore(const CacheSnapshot &s, DoneFn on_complete)
{
    lines_.clear();
    pending_.clear();
    validLines_ = 0;
    ignoredInvalTick_ = s.invalResidue;
    if (!on_complete)
        on_complete = []() {};
    for (const auto &[block, st] : s.lines) {
        cosmos_assert(st != LineState::invalid,
                      "snapshot carries an invalid line");
        lines_[block] = st;
        if (st == LineState::read_only || st == LineState::read_write)
            ++validLines_;
        else
            pending_.emplace(block, on_complete);
    }
}

void
CacheController::send(MsgType t, NodeId dst, Addr block,
                      bool forwarded)
{
    Msg m;
    m.type = t;
    m.src = node_;
    m.dst = dst;
    m.block = block;
    m.requester = node_;
    m.forwarded = forwarded;
    sendFn_(m);
}

bool
CacheController::pendingOn(Addr a) const
{
    return pending_.count(amap_.blockBase(a)) != 0;
}

void
CacheController::access(Addr a, bool write, DoneFn done)
{
    const Addr block = amap_.blockBase(a);
    cosmos_assert(!pending_.count(block), "node ", node_,
                  " issued an access to a block with a miss already "
                  "outstanding");
    LineState st = state(block);

    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;

    const bool hit = write ? (st == LineState::read_write)
                           : (st == LineState::read_only ||
                              st == LineState::read_write);
    if (hit) {
        if (write)
            ++stats_.storeHits;
        else
            ++stats_.loadHits;
        eq_.scheduleAfter(cfg_.cacheHitLatency, std::move(done));
        return;
    }

    cosmos_assert(st == LineState::invalid || st == LineState::read_only,
                  "access to block in transient state ", toString(st));

    pending_.emplace(block, std::move(done));
    const NodeId home = amap_.home(block);

    if (!write) {
        ++stats_.readMisses;
        evictForCapacity(block);
        setState(block, LineState::wait_ro);
        send(MsgType::get_ro_request, home, block);
    } else if (st == LineState::invalid) {
        ++stats_.writeMisses;
        evictForCapacity(block);
        setState(block, LineState::wait_rw);
        send(MsgType::get_rw_request, home, block);
    } else {
        ++stats_.upgrades;
        setState(block, LineState::wait_upg);
        send(MsgType::upgrade_request, home, block);
    }
}

void
CacheController::complete(Addr block, LineState final_state)
{
    setState(block, final_state);
    auto it = pending_.find(block);
    cosmos_assert(it != pending_.end(),
                  "response with no pending access");
    DoneFn done = std::move(it->second);
    pending_.erase(it);
    done();
}

void
CacheController::handleMessage(const Msg &m)
{
    const Addr block = m.block;
    const LineState st = state(block);

    switch (m.type) {
      case MsgType::get_ro_response:
        cosmos_assert(pending_.count(block) &&
                          st == LineState::wait_ro,
                      "unexpected get_ro_response at node ", node_);
        // Forwarded three-hop data came straight from the former
        // owner; tell home it arrived so the directory entry can be
        // released (it queues later requests until then).
        if (m.forwarded)
            send(MsgType::fwd_ack, amap_.home(block), block);
        complete(block, LineState::read_only);
        break;

      case MsgType::get_rw_response:
        // Answers a get_rw_request, an upgrade_request that raced
        // with an invalidation of our shared copy (the directory
        // promotes such upgrades to full read-write fetches), or a
        // get_ro_request the directory answered *exclusive* because
        // it predicted a read-modify-write (§4.1).
        cosmos_assert(pending_.count(block) &&
                          (st == LineState::wait_rw ||
                           st == LineState::wait_upg ||
                           st == LineState::wait_ro),
                      "unexpected get_rw_response at node ", node_);
        if (m.forwarded)
            send(MsgType::fwd_ack, amap_.home(block), block);
        complete(block, LineState::read_write);
        break;

      case MsgType::upgrade_response:
        cosmos_assert(pending_.count(block) &&
                          st == LineState::wait_upg,
                      "unexpected upgrade_response at node ", node_);
        complete(block, LineState::read_write);
        break;

      case MsgType::inval_ro_request:
        ++stats_.invalsReceived;
        if (st == LineState::read_only) {
            // Fault injection (checker exercise): pretend to lose
            // every Nth invalidation -- ack home but keep the copy.
            if (cfg_.fault.ignoreInvalEvery != 0 &&
                ++ignoredInvalTick_ % cfg_.fault.ignoreInvalEvery == 0) {
                send(MsgType::inval_ro_response, m.src, block);
                break;
            }
            setState(block, LineState::invalid);
        } else if (st == LineState::wait_upg) {
            // Our shared copy is invalidated while our upgrade is
            // queued at the directory; the directory will answer the
            // upgrade with get_rw_response. Drop to wait_rw so that
            // response is accepted.
            setState(block, LineState::wait_rw);
        } else if (st == LineState::invalid &&
                   cfg_.cacheCapacityBlocks != 0) {
            // With replacement, the directory's sharer list can be
            // stale: we silently dropped this copy. Acknowledge.
            ++stats_.staleInvals;
        } else if ((st == LineState::wait_ro ||
                    st == LineState::wait_rw) &&
                   cfg_.cacheCapacityBlocks != 0) {
            // Stale inval crossing our re-fetch of a dropped block:
            // the directory serialized another writer first, so our
            // queued request will be answered afterwards. Just ack.
            ++stats_.staleInvals;
        } else {
            cosmos_panic("inval_ro_request for block in state ",
                         toString(st), " at node ", node_);
        }
        send(MsgType::inval_ro_response, m.src, block);
        break;

      case MsgType::inval_rw_request:
        ++stats_.invalsReceived;
        cosmos_assert(st == LineState::read_write,
                      "inval_rw_request for block in state ",
                      toString(st), " at node ", node_);
        setState(block, LineState::invalid);
        if (m.forwarded) {
            // Three-hop transfer: hand the data straight to the
            // requester, plus a revision message home. The response
            // is marked forwarded so the requester acknowledges home
            // (the legacy oracle omits the mark, and with it the
            // fwd_ack -- reproducing the original race).
            send(m.wantWritable ? MsgType::get_rw_response
                                : MsgType::get_ro_response,
                 m.requester, block, !cfg_.legacyForwarding);
        }
        send(MsgType::inval_rw_response, m.src, block);
        break;

      case MsgType::downgrade_request:
        ++stats_.downgradesReceived;
        cosmos_assert(st == LineState::read_write,
                      "downgrade_request for block in state ",
                      toString(st), " at node ", node_);
        setState(block, LineState::read_only);
        if (m.forwarded)
            send(MsgType::get_ro_response, m.requester, block,
                 !cfg_.legacyForwarding);
        send(MsgType::downgrade_response, m.src, block);
        break;

      default:
        cosmos_panic("cache ", node_, " received ", m.format());
    }
}

} // namespace cosmos::proto
