#include "proto/cache_controller.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace cosmos::proto
{

const char *
toString(LineState s)
{
    switch (s) {
      case LineState::invalid:    return "invalid";
      case LineState::read_only:  return "read_only";
      case LineState::read_write: return "read_write";
      case LineState::wait_ro:    return "wait_ro";
      case LineState::wait_rw:    return "wait_rw";
      case LineState::wait_upg:   return "wait_upg";
    }
    return "?";
}

CacheController::CacheController(NodeId node, const AddrMap &amap,
                                 const MachineConfig &cfg,
                                 const ProtocolTable &table,
                                 sim::EventQueue &eq, SendFn send)
    : node_(node), amap_(amap), cfg_(cfg), table_(table), eq_(eq),
      sendFn_(std::move(send))
{
}

LineState
CacheController::state(Addr a) const
{
    auto it = lines_.find(amap_.blockBase(a));
    return it == lines_.end() ? LineState::invalid : it->second;
}

void
CacheController::setState(Addr block, LineState st)
{
    const LineState old = state(block);
    const auto counted = [](LineState s) {
        return s == LineState::read_only || s == LineState::read_write;
    };
    if (counted(old) && !counted(st))
        --validLines_;
    else if (!counted(old) && counted(st))
        ++validLines_;
    if (old != st)
        ++stats_.stateEntries[static_cast<std::size_t>(st)];
    if (st == LineState::invalid)
        lines_.erase(block);
    else
        lines_[block] = st;
}

void
CacheController::evictForCapacity(Addr incoming_block)
{
    if (cfg_.cacheCapacityBlocks == 0 ||
        validLines_ < cfg_.cacheCapacityBlocks) {
        return;
    }
    // Drop the first quiescent read-only line that is not the block
    // being fetched. Read-write lines are never dropped (a clean
    // victim needs no writeback message). If everything is
    // read-write the capacity is soft-exceeded.
    for (const auto &[block, st] : lines_) {
        if (block != incoming_block && st == LineState::read_only) {
            setState(block, LineState::invalid);
            ++stats_.evictions;
            return;
        }
    }
}

void
CacheController::forEachLine(
    const std::function<void(Addr, LineState)> &fn) const
{
    for (const auto &[block, st] : lines_)
        fn(block, st);
}

void
CacheController::snapshot(CacheSnapshot &out) const
{
    out.lines.clear();
    out.lines.reserve(lines_.size());
    for (const auto &[block, st] : lines_)
        out.lines.emplace_back(block, st);
    std::sort(out.lines.begin(), out.lines.end());
    out.invalResidue = cfg_.fault.ignoreInvalEvery == 0
                           ? 0
                           : ignoredInvalTick_ %
                                 cfg_.fault.ignoreInvalEvery;
}

void
CacheController::restore(const CacheSnapshot &s, DoneFn on_complete)
{
    lines_.clear();
    pending_.clear();
    validLines_ = 0;
    ignoredInvalTick_ = s.invalResidue;
    if (!on_complete)
        on_complete = []() {};
    for (const auto &[block, st] : s.lines) {
        cosmos_assert(st != LineState::invalid,
                      "snapshot carries an invalid line");
        lines_[block] = st;
        if (st == LineState::read_only || st == LineState::read_write)
            ++validLines_;
        else
            pending_.emplace(block, on_complete);
    }
}

void
CacheController::send(MsgType t, NodeId dst, Addr block,
                      bool forwarded)
{
    Msg m;
    m.type = t;
    m.src = node_;
    m.dst = dst;
    m.block = block;
    m.requester = node_;
    m.forwarded = forwarded;
    sendFn_(m);
}

bool
CacheController::pendingOn(Addr a) const
{
    return pending_.count(amap_.blockBase(a)) != 0;
}

void
CacheController::access(Addr a, bool write, DoneFn done)
{
    const Addr block = amap_.blockBase(a);
    const LineState st = state(block);
    // Accesses to transient blocks (processors stall on those; an
    // access here is the caller's error) hit the wait-state rows'
    // declared-unreachable proc entries and panic in dispatch().
    const TransitionRow &row = table_.dispatch(
        Role::cache, static_cast<std::uint8_t>(st),
        write ? input_proc_write : input_proc_read, guard_none, node_);

    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;

    const NodeId home = amap_.home(block);
    switch (row.action) {
      case ActionId::cache_load_hit:
      case ActionId::cache_store_hit:
        if (write)
            ++stats_.storeHits;
        else
            ++stats_.loadHits;
        eq_.scheduleAfter(cfg_.cacheHitLatency, std::move(done));
        break;

      case ActionId::cache_begin_read_miss:
        pending_.emplace(block, std::move(done));
        ++stats_.readMisses;
        evictForCapacity(block);
        setState(block, LineState::wait_ro);
        send(MsgType::get_ro_request, home, block);
        break;

      case ActionId::cache_begin_write_miss:
        pending_.emplace(block, std::move(done));
        ++stats_.writeMisses;
        evictForCapacity(block);
        setState(block, LineState::wait_rw);
        send(MsgType::get_rw_request, home, block);
        break;

      case ActionId::cache_begin_upgrade:
        pending_.emplace(block, std::move(done));
        ++stats_.upgrades;
        setState(block, LineState::wait_upg);
        send(MsgType::upgrade_request, home, block);
        break;

      default:
        cosmos_panic("cache ", node_, " cannot run action ",
                     toString(row.action), " for a processor access");
    }
}

void
CacheController::complete(Addr block, LineState final_state)
{
    setState(block, final_state);
    auto it = pending_.find(block);
    cosmos_assert(it != pending_.end(),
                  "response with no pending access");
    DoneFn done = std::move(it->second);
    pending_.erase(it);
    done();
}

void
CacheController::handleMessage(const Msg &m)
{
    // Dispatch picks the declared row for the current line state,
    // the message type, and the guard bits derived from the message;
    // a stray response or a message no row covers panics inside
    // dispatch() with the offending (state, input, guard) triple.
    const TransitionRow &row = table_.dispatch(
        Role::cache, static_cast<std::uint8_t>(state(m.block)),
        static_cast<std::uint8_t>(m.type), cacheMsgGuard(m), node_);

    switch (row.action) {
      case ActionId::cache_accept_ro:
        acceptData(m, LineState::read_only);
        break;
      case ActionId::cache_accept_rw:
        acceptData(m, LineState::read_write);
        break;
      case ActionId::cache_accept_upgrade:
        complete(m.block, LineState::read_write);
        break;
      case ActionId::cache_invalidate_shared:
        invalidateShared(m);
        break;
      case ActionId::cache_demote_upgrade:
        demoteUpgrade(m);
        break;
      case ActionId::cache_ack_stale_inval:
        ackStaleInval(m);
        break;
      case ActionId::cache_surrender_exclusive:
        surrenderExclusive(m);
        break;
      case ActionId::cache_downgrade_line:
        downgradeLine(m);
        break;
      default:
        cosmos_panic("cache ", node_, " cannot run action ",
                     toString(row.action), " for ", m.format());
    }
}

void
CacheController::acceptData(const Msg &m, LineState final_state)
{
    // Forwarded three-hop data came straight from the former owner;
    // tell home it arrived so the directory entry can be released
    // (it queues later requests until then).
    if (m.forwarded)
        send(MsgType::fwd_ack, amap_.home(m.block), m.block);
    complete(m.block, final_state);
}

void
CacheController::invalidateShared(const Msg &m)
{
    ++stats_.invalsReceived;
    // Fault injection (checker exercise): pretend to lose every Nth
    // invalidation -- ack home but keep the copy.
    if (cfg_.fault.ignoreInvalEvery != 0 &&
        ++ignoredInvalTick_ % cfg_.fault.ignoreInvalEvery == 0) {
        send(MsgType::inval_ro_response, m.src, m.block);
        return;
    }
    setState(m.block, LineState::invalid);
    send(MsgType::inval_ro_response, m.src, m.block);
}

void
CacheController::demoteUpgrade(const Msg &m)
{
    // Our shared copy is invalidated while our upgrade is queued at
    // the directory; the directory will answer the upgrade with
    // get_rw_response. Drop to wait_rw so that response is accepted.
    ++stats_.invalsReceived;
    setState(m.block, LineState::wait_rw);
    send(MsgType::inval_ro_response, m.src, m.block);
}

void
CacheController::ackStaleInval(const Msg &m)
{
    // With replacement, the directory's sharer list can be stale: we
    // silently dropped this copy (possibly re-fetching it already --
    // the directory serialized another writer first, so a queued
    // request of ours is answered afterwards). Just acknowledge.
    ++stats_.invalsReceived;
    ++stats_.staleInvals;
    send(MsgType::inval_ro_response, m.src, m.block);
}

void
CacheController::surrenderExclusive(const Msg &m)
{
    ++stats_.invalsReceived;
    setState(m.block, LineState::invalid);
    if (m.forwarded) {
        // Three-hop transfer: hand the data straight to the
        // requester, plus a revision message home. The response is
        // marked forwarded so the requester acknowledges home (the
        // legacy oracle omits the mark, and with it the fwd_ack --
        // reproducing the original race).
        send(m.wantWritable ? MsgType::get_rw_response
                            : MsgType::get_ro_response,
             m.requester, m.block, !cfg_.legacyForwarding);
    }
    send(MsgType::inval_rw_response, m.src, m.block);
}

void
CacheController::downgradeLine(const Msg &m)
{
    ++stats_.downgradesReceived;
    setState(m.block, LineState::read_only);
    if (m.forwarded)
        send(MsgType::get_ro_response, m.requester, m.block,
             !cfg_.legacyForwarding);
    send(MsgType::downgrade_response, m.src, m.block);
}

} // namespace cosmos::proto
