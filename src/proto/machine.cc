#include "proto/machine.hh"

#include "common/log.hh"

namespace cosmos::proto
{

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), amap_(cfg.blockBytes, cfg.pageBytes, cfg.numNodes),
      network_(eq_, cfg.numNodes, cfg.networkLatency,
               cfg.networkInterfaceLatency)
{
    cfg_.validate();
    // Each node keeps a handful of events in flight (network hops,
    // controller occupancy, processor steps); pre-sizing the heap
    // keeps the first iterations from growing it repeatedly.
    eq_.reserve(std::size_t{64} * cfg_.numNodes);
    auto send = [this](const Msg &m) {
        network_.send(m.src, m.dst, m);
    };
    caches_.reserve(cfg_.numNodes);
    directories_.reserve(cfg_.numNodes);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        caches_.push_back(std::make_unique<CacheController>(
            n, amap_, cfg_, eq_, send));
        directories_.push_back(std::make_unique<DirectoryController>(
            n, amap_, cfg_, eq_, send));
        network_.attach(n, [this](const Msg &m, bool local) {
            deliver(m, local);
        });
    }
}

CacheController &
Machine::cache(NodeId n)
{
    cosmos_assert(n < caches_.size(), "bad node ", n);
    return *caches_[n];
}

const CacheController &
Machine::cache(NodeId n) const
{
    cosmos_assert(n < caches_.size(), "bad node ", n);
    return *caches_[n];
}

DirectoryController &
Machine::directory(NodeId n)
{
    cosmos_assert(n < directories_.size(), "bad node ", n);
    return *directories_[n];
}

const DirectoryController &
Machine::directory(NodeId n) const
{
    cosmos_assert(n < directories_.size(), "bad node ", n);
    return *directories_[n];
}

void
Machine::addObserver(MsgObserver *obs)
{
    observers_.push_back(obs);
}

void
Machine::deliver(const Msg &m, bool local)
{
    const Role role = receiverRole(m.type);
    if (!local) {
        for (auto *obs : observers_)
            obs->onMessage(m, role, iteration_, eq_.now());
    }
    if (role == Role::cache)
        caches_[m.dst]->handleMessage(m);
    else
        directories_[m.dst]->handleMessage(m);
}

} // namespace cosmos::proto
