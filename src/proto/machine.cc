#include "proto/machine.hh"

#include "common/log.hh"

namespace cosmos::proto
{

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), amap_(cfg.blockBytes, cfg.pageBytes, cfg.numNodes),
      table_(ProtocolTable::build(cfg)),
      network_(eq_, cfg.numNodes, cfg.networkLatency,
               cfg.networkInterfaceLatency)
{
    cfg_.validate();
    // Each node keeps a handful of events in flight (network hops,
    // controller occupancy, processor steps); pre-sizing the heap
    // keeps the first iterations from growing it repeatedly.
    eq_.reserve(std::size_t{64} * cfg_.numNodes);
    auto send = [this](const Msg &m) {
        network_.send(m.src, m.dst, m);
    };
    caches_.reserve(cfg_.numNodes);
    directories_.reserve(cfg_.numNodes);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        caches_.push_back(std::make_unique<CacheController>(
            n, amap_, cfg_, table_, eq_, send));
        directories_.push_back(std::make_unique<DirectoryController>(
            n, amap_, cfg_, table_, eq_, send));
        network_.attach(n, [this](const Msg &m, bool local) {
            deliver(m, local);
        });
    }
}

CacheController &
Machine::cache(NodeId n)
{
    cosmos_assert(n < caches_.size(), "bad node ", n);
    return *caches_[n];
}

const CacheController &
Machine::cache(NodeId n) const
{
    cosmos_assert(n < caches_.size(), "bad node ", n);
    return *caches_[n];
}

DirectoryController &
Machine::directory(NodeId n)
{
    cosmos_assert(n < directories_.size(), "bad node ", n);
    return *directories_[n];
}

const DirectoryController &
Machine::directory(NodeId n) const
{
    cosmos_assert(n < directories_.size(), "bad node ", n);
    return *directories_[n];
}

void
Machine::addObserver(MsgObserver *obs)
{
    observers_.push_back(obs);
}

void
Machine::snapshot(MachineSnapshot &out) const
{
    cosmos_assert(eq_.pending() == 0,
                  "machine snapshot requires a drained event queue (",
                  eq_.pending(), " events in flight)");
    out.caches.resize(caches_.size());
    out.directories.resize(directories_.size());
    for (std::size_t n = 0; n < caches_.size(); ++n) {
        caches_[n]->snapshot(out.caches[n]);
        directories_[n]->snapshot(out.directories[n]);
    }
}

void
Machine::restore(const MachineSnapshot &s)
{
    cosmos_assert(s.caches.size() == caches_.size() &&
                      s.directories.size() == directories_.size(),
                  "snapshot is for a machine with a different node "
                  "count");
    cosmos_assert(eq_.pending() == 0,
                  "machine restore requires a drained event queue");
    for (std::size_t n = 0; n < caches_.size(); ++n) {
        caches_[n]->restore(s.caches[n]);
        directories_[n]->restore(s.directories[n]);
    }
}

void
Machine::deliver(const Msg &m, bool local)
{
    const Role role = receiverRole(m.type);
    ++deliveredByType_[static_cast<std::size_t>(m.type)];
    if (!local) {
        for (auto *obs : observers_)
            obs->onMessage(m, role, iteration_, eq_.now());
    }
    if (role == Role::cache)
        caches_[m.dst]->handleMessage(m);
    else
        directories_[m.dst]->handleMessage(m);
    if (probe_)
        probe_(m, local, eq_.now());
}

void
Machine::publishMetrics(obs::Registry &reg) const
{
    eq_.publishMetrics(reg, "sim");
    network_.publishMetrics(reg, "net");

    for (unsigned t = 0; t < num_msg_types; ++t) {
        if (deliveredByType_[t] == 0)
            continue;
        reg.counter(std::string("proto.delivered.") +
                    toString(static_cast<MsgType>(t)))
            .add(deliveredByType_[t]);
    }

    CacheStats c{};
    DirectoryStats d{};
    for (NodeId n = 0; n < numNodes(); ++n) {
        const CacheStats &cs = caches_[n]->stats();
        c.loads += cs.loads;
        c.stores += cs.stores;
        c.loadHits += cs.loadHits;
        c.storeHits += cs.storeHits;
        c.readMisses += cs.readMisses;
        c.writeMisses += cs.writeMisses;
        c.upgrades += cs.upgrades;
        c.invalsReceived += cs.invalsReceived;
        c.downgradesReceived += cs.downgradesReceived;
        c.evictions += cs.evictions;
        c.staleInvals += cs.staleInvals;
        for (std::size_t s = 0; s < c.stateEntries.size(); ++s)
            c.stateEntries[s] += cs.stateEntries[s];
        const DirectoryStats &ds = directories_[n]->stats();
        d.requests += ds.requests;
        d.queued += ds.queued;
        d.invalsSent += ds.invalsSent;
        d.downgradesSent += ds.downgradesSent;
        d.upgradePromotions += ds.upgradePromotions;
        d.exclusiveGrants += ds.exclusiveGrants;
        d.recalls += ds.recalls;
        for (std::size_t s = 0; s < d.stateEntries.size(); ++s)
            d.stateEntries[s] += ds.stateEntries[s];
    }

    reg.counter("proto.cache.loads").add(c.loads);
    reg.counter("proto.cache.stores").add(c.stores);
    reg.counter("proto.cache.load_hits").add(c.loadHits);
    reg.counter("proto.cache.store_hits").add(c.storeHits);
    reg.counter("proto.cache.read_misses").add(c.readMisses);
    reg.counter("proto.cache.write_misses").add(c.writeMisses);
    reg.counter("proto.cache.upgrades").add(c.upgrades);
    reg.counter("proto.cache.invals_received").add(c.invalsReceived);
    reg.counter("proto.cache.downgrades_received")
        .add(c.downgradesReceived);
    reg.counter("proto.cache.evictions").add(c.evictions);
    reg.counter("proto.cache.stale_invals").add(c.staleInvals);
    for (std::size_t s = 0; s < c.stateEntries.size(); ++s) {
        reg.counter(std::string("proto.cache.transitions_to.") +
                    toString(static_cast<LineState>(s)))
            .add(c.stateEntries[s]);
    }

    reg.counter("proto.dir.requests").add(d.requests);
    reg.counter("proto.dir.queued_retries").add(d.queued);
    reg.counter("proto.dir.invals_sent").add(d.invalsSent);
    reg.counter("proto.dir.downgrades_sent").add(d.downgradesSent);
    reg.counter("proto.dir.upgrade_promotions")
        .add(d.upgradePromotions);
    reg.counter("proto.dir.exclusive_grants").add(d.exclusiveGrants);
    reg.counter("proto.dir.recalls").add(d.recalls);
    for (std::size_t s = 0; s < d.stateEntries.size(); ++s) {
        reg.counter(std::string("proto.dir.transitions_to.") +
                    toString(static_cast<DirState>(s)))
            .add(d.stateEntries[s]);
    }
}

} // namespace cosmos::proto
