/**
 * @file
 * Deterministic discrete-event simulation core.
 *
 * This is the substrate standing in for the Wisconsin Wind Tunnel II:
 * every timed behaviour in the simulated machine (network delivery,
 * protocol occupancy, memory latency, processor progress) is an event
 * on this queue. Events at equal ticks fire in schedule order, which
 * makes whole-machine runs bit-reproducible.
 */

#ifndef COSMOS_SIM_EVENT_QUEUE_HH
#define COSMOS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace cosmos::sim
{

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A time-ordered queue of callback events.
 *
 * Ties at the same tick break by schedule order (FIFO), so a run is a
 * pure function of the schedule calls made into it.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleAfter(Tick delay, EventFn fn);

    /** Pre-size the backing heap for @p n pending events. */
    void reserve(std::size_t n);

    /** Fire the earliest event. @return false if the queue was empty. */
    bool runOne();

    /**
     * Run until the queue drains or @p max_events fire.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /** Number of events currently pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** High-water mark of pending events (queue depth). */
    std::size_t maxPending() const { return maxPending_; }

    /** Publish execution counters under "<prefix>." (e.g.
     *  "sim.events_executed"). All values are deterministic. */
    void publishMetrics(obs::Registry &reg,
                        const std::string &prefix = "sim") const;

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** priority_queue with its backing vector exposed, so runOne()
     *  can move the callback out of top() and reserve() can pre-size
     *  the storage. The comparator never reads `fn`, so a moved-from
     *  callback cannot perturb heap order. */
    struct Heap : std::priority_queue<Entry, std::vector<Entry>, Later>
    {
        using std::priority_queue<Entry, std::vector<Entry>,
                                  Later>::c;
    };

    Heap heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t maxPending_ = 0;
};

} // namespace cosmos::sim

#endif // COSMOS_SIM_EVENT_QUEUE_HH
