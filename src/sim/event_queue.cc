#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"
#include "obs/trace_event.hh"

namespace cosmos::sim
{

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    cosmos_assert(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    if (heap_.size() > maxPending_)
        maxPending_ = heap_.size();
}

void
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::reserve(std::size_t n)
{
    heap_.c.reserve(n);
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // top() is const&, but moving the callback out is safe: the
    // comparator orders on (when, seq) only, and pop() runs before
    // anything can observe the moved-from fn.
    Entry &top = const_cast<Entry &>(heap_.top());
    now_ = top.when;
    EventFn fn = std::move(top.fn);
    heap_.pop();
    ++executed_;
    fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    COSMOS_SPAN("sim", "EventQueue::run");
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

void
EventQueue::publishMetrics(obs::Registry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + ".events_executed").add(executed_);
    auto &depth = reg.gauge(prefix + ".queue_depth");
    depth.set(static_cast<std::int64_t>(maxPending_));
    depth.set(static_cast<std::int64_t>(pending()));
}

} // namespace cosmos::sim
