#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"

namespace cosmos::sim
{

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    cosmos_assert(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Tick delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top returns const&; move out via const_cast is
    // not worth it -- copy the (small) function object instead.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace cosmos::sim
