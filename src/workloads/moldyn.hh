/**
 * @file
 * moldyn: miniature CHARMM-style molecular dynamics kernel (Table 4).
 *
 * Molecules sit in a periodic box, owned by the processor of their
 * initial spatial tile. An interaction list of molecule pairs within
 * a cut-off radius is rebuilt every `rebuildEvery` iterations. Each
 * iteration:
 *
 *  1. every processor reads the coordinates of its remote interaction
 *     partners (producer-consumer; the paper measures ~4.9 consumers
 *     per coordinates block),
 *  2. every processor adds its private force contributions to the
 *     shared force array inside per-molecule critical sections
 *     (migratory sharing -- the paper's
 *     <get_ro_response, upgrade_response, inval_rw_response> cache
 *     signature), and
 *  3. owners integrate: read then write their own coordinates, which
 *     produces the same producer signature as appbt's.
 */

#ifndef COSMOS_WORKLOADS_MOLDYN_HH
#define COSMOS_WORKLOADS_MOLDYN_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** moldyn sizing knobs. */
struct MoldynParams
{
    unsigned molecules = 400;
    double cutoff = 0.16;    ///< interaction radius (unit box)
    double dt = 0.004;
    double temperature = 0.15; ///< Maxwellian velocity scale
    unsigned rebuildEvery = 10;
    unsigned tilesX = 4; ///< ownership tiles
    unsigned tilesY = 4;
    int iterations = 40;
    int warmupIterations = 2;
    /** Rarely-touched shared blocks (e.g., per-molecule metadata). */
    unsigned sparseBlocks = 14000;
    unsigned sparseTouchesPerIter = 560;
};

/** The moldyn kernel. */
class Moldyn : public Workload
{
  public:
    explicit Moldyn(const MoldynParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;
    std::string statsSummary() const override;

    /** Measured mean consumers per coordinates block (paper: 4.9). */
    double meanConsumers() const;

  private:
    struct Molecule
    {
        double x = 0.0, y = 0.0;
        double vx = 0.0, vy = 0.0;
        double fx = 0.0, fy = 0.0;
        NodeId owner = 0;
    };

    void rebuildPairs();

    MoldynParams p_;
    Info info_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;

    std::vector<Molecule> mol_;
    std::vector<std::pair<unsigned, unsigned>> pairs_;
    Addr coordBase_ = 0;
    Addr forceBase_ = 0;
    Addr sparseBase_ = 0;

    double consumerSamples_ = 0.0;
    double consumerTotal_ = 0.0;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_MOLDYN_HH
