#include "workloads/barnes.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "common/log.hh"

namespace cosmos::wl
{

Barnes::Barnes(const BarnesParams &params) : p_(params)
{
    info_.name = "barnes";
    info_.description =
        "Barnes-Hut N-body; octree rebuilt (and re-addressed) each "
        "iteration";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

Barnes::~Barnes() = default;

void
Barnes::setup(const AddrMap &amap, NodeId num_procs, std::uint64_t seed)
{
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0xba12e5ULL);

    bodies_.resize(p_.nbodies);
    for (auto &b : bodies_) {
        for (int d = 0; d < 3; ++d) {
            b.pos[d] = rng_->nextDouble(0.05, 0.95);
            b.vel[d] = 0.05 * rng_->nextGaussian();
        }
        b.mass = 1.0 / p_.nbodies;
    }

    Allocator alloc(amap);
    bodyBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.nbodies) * amap.blockBytes(),
        "bodies");
    cellPoolBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.cellPoolBlocks) * amap.blockBytes(),
        "cell_pool");
}

std::uint64_t
Barnes::mortonKey(const std::array<double, 3> &p) const
{
    // Interleave 16 bits per dimension.
    auto quantize = [](double v) {
        v = std::clamp(v, 0.0, 0.999999);
        return static_cast<std::uint64_t>(v * 65536.0);
    };
    std::uint64_t key = 0;
    const std::uint64_t q[3] = {quantize(p[0]), quantize(p[1]),
                                quantize(p[2])};
    for (int bit = 15; bit >= 0; --bit) {
        for (int d = 0; d < 3; ++d)
            key = (key << 1) | ((q[d] >> bit) & 1);
    }
    return key;
}

unsigned
Barnes::slotFor(const std::array<double, 3> &center, unsigned depth)
{
    // Key a cell by its quantized center and depth. Cells of stable
    // tree regions keep their pool block across rebuilds; when a
    // subtree's split points move, its cells land on fresh blocks --
    // the paper's "logical nodes move to different memory addresses"
    // effect, but proportional to how much of the tree changed.
    auto q = [&](double v) {
        return static_cast<std::uint64_t>(
            std::clamp(v, 0.0, 0.999999) * (1u << 18));
    };
    const std::uint64_t key =
        (q(center[0]) * 0x100000001b3ULL ^ q(center[1])) *
            0x100000001b3ULL ^
        (q(center[2]) * 31 + depth);
    auto it = cellSlots_.find(key);
    if (it != cellSlots_.end())
        return it->second;
    cosmos_assert(nextSlot_ < p_.cellPoolBlocks,
                  "barnes cell pool exhausted");
    const unsigned slot = nextSlot_++;
    cellSlots_.emplace(key, slot);
    return slot;
}

int
Barnes::newCell(const std::array<double, 3> &center, double half,
                unsigned depth, NodeId owner)
{
    cosmos_assert(cells_.size() < p_.cellPoolBlocks,
                  "barnes cell pool exhausted");
    Cell c;
    c.center = center;
    c.half = half;
    c.depth = depth;
    c.owner = owner;
    c.child.fill(-1);
    c.slot = slotFor(center, depth);
    cells_.push_back(std::move(c));
    return static_cast<int>(cells_.size()) - 1;
}

void
Barnes::insertBody(int cell, unsigned body)
{
    Cell &c = cells_[cell];
    if (c.leaf) {
        if (c.bodies.empty() || c.depth >= p_.maxDepth) {
            c.bodies.push_back(body);
            return;
        }
        // Split: push the resident body down, then retry.
        std::vector<unsigned> residents = std::move(c.bodies);
        c.bodies.clear();
        c.leaf = false;
        residents.push_back(body);
        for (unsigned b : residents)
            insertBody(cell, b);
        return;
    }
    // Internal: descend into the octant of the body's position.
    const auto &pos = bodies_[body].pos;
    unsigned oct = 0;
    for (int d = 0; d < 3; ++d)
        if (pos[d] >= c.center[d])
            oct |= 1u << d;
    if (c.child[oct] < 0) {
        std::array<double, 3> ctr = c.center;
        const double h = c.half / 2.0;
        for (int d = 0; d < 3; ++d)
            ctr[d] += (oct & (1u << d)) ? h : -h;
        // Re-read c after potential reallocation in newCell.
        const int idx =
            newCell(ctr, h, c.depth + 1, bodies_[body].owner);
        cells_[cell].child[oct] = idx;
    }
    insertBody(cells_[cell].child[oct], body);
}

void
Barnes::rebuildTree()
{
    cells_.clear();

    // Costzones-style partitioning: contiguous Morton ranges.
    std::vector<unsigned> order(p_.nbodies);
    std::iota(order.begin(), order.end(), 0u);
    std::vector<std::uint64_t> keys(p_.nbodies);
    for (unsigned b = 0; b < p_.nbodies; ++b)
        keys[b] = mortonKey(bodies_[b].pos);
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) { return keys[a] < keys[b]; });
    for (unsigned rank = 0; rank < p_.nbodies; ++rank) {
        bodies_[order[rank]].owner = static_cast<NodeId>(
            static_cast<std::uint64_t>(rank) * numProcs_ / p_.nbodies);
    }

    // Root covers the unit cube; insert in Morton order so the pool
    // index of each logical cell depends on current body positions.
    const int root = newCell({0.5, 0.5, 0.5}, 0.5, 0,
                             bodies_[order[0]].owner);
    for (unsigned rank = 0; rank < p_.nbodies; ++rank)
        insertBody(root, order[rank]);

    computeMass(root);
}

void
Barnes::computeMass(int cell)
{
    Cell &c = cells_[cell];
    if (c.leaf) {
        c.mass = 0.0;
        c.com = {0.0, 0.0, 0.0};
        for (unsigned b : c.bodies) {
            c.mass += bodies_[b].mass;
            for (int d = 0; d < 3; ++d)
                c.com[d] += bodies_[b].mass * bodies_[b].pos[d];
        }
        if (c.mass > 0.0)
            for (int d = 0; d < 3; ++d)
                c.com[d] /= c.mass;
        return;
    }
    c.mass = 0.0;
    c.com = {0.0, 0.0, 0.0};
    for (int ch : c.child) {
        if (ch < 0)
            continue;
        computeMass(ch);
        const Cell &k = cells_[ch];
        c.mass += k.mass;
        for (int d = 0; d < 3; ++d)
            c.com[d] += k.mass * k.com[d];
    }
    if (c.mass > 0.0)
        for (int d = 0; d < 3; ++d)
            c.com[d] /= c.mass;
}

void
Barnes::traverse(unsigned body, std::vector<int> &cells_used,
                 std::vector<unsigned> &bodies_used)
{
    Body &b = bodies_[body];
    b.force = {0.0, 0.0, 0.0};
    std::vector<int> stack{0};
    while (!stack.empty()) {
        const int ci = stack.back();
        stack.pop_back();
        const Cell &c = cells_[ci];
        if (c.mass <= 0.0)
            continue;
        double d2 = p_.softening * p_.softening;
        for (int d = 0; d < 3; ++d) {
            const double dx = c.com[d] - b.pos[d];
            d2 += dx * dx;
        }
        const double dist = std::sqrt(d2);
        if (c.leaf) {
            for (unsigned other : c.bodies) {
                if (other == body)
                    continue;
                bodies_used.push_back(other);
                double r2 = p_.softening * p_.softening;
                for (int d = 0; d < 3; ++d) {
                    const double dx =
                        bodies_[other].pos[d] - b.pos[d];
                    r2 += dx * dx;
                }
                const double inv = 1.0 / (r2 * std::sqrt(r2));
                for (int d = 0; d < 3; ++d)
                    b.force[d] += bodies_[other].mass * inv *
                                  (bodies_[other].pos[d] - b.pos[d]);
            }
            continue;
        }
        if (2.0 * c.half / dist < p_.theta) {
            // Far enough: use the cell's multipole.
            cells_used.push_back(ci);
            const double inv = 1.0 / (d2 * dist);
            for (int d = 0; d < 3; ++d)
                b.force[d] +=
                    c.mass * inv * (c.com[d] - b.pos[d]);
            continue;
        }
        for (int ch : c.child)
            if (ch >= 0)
                stack.push_back(ch);
    }
}

void
Barnes::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    cosmos_assert(amap_, "setup() not called");
    (void)iter;
    const unsigned block = amap_->blockBytes();

    rebuildTree();

    // --- Tree-build / mass phase: each cell's owner reads a couple
    // of children and writes the cell's center of mass.
    std::vector<std::vector<runtime::Op>> pre(numProcs_);
    for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
        const Cell &c = cells_[ci];
        const NodeId owner = c.owner;
        const Addr cell_addr =
            cellPoolBase_ + static_cast<Addr>(c.slot) * block;
        pre[owner].push_back(
            {runtime::Op::Kind::read, cell_addr, 0, 0});
        pre[owner].push_back(
            {runtime::Op::Kind::write, cell_addr, 0, 0});
    }
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + proc * 13);
        for (const auto &op : pre[proc]) {
            if (op.kind == runtime::Op::Kind::read)
                prog.read(op.addr);
            else
                prog.write(op.addr);
        }
        // Body position publish: the owner updates its bodies.
        for (unsigned b = 0; b < p_.nbodies; ++b) {
            if (bodies_[b].owner != proc)
                continue;
            const Addr a = bodyBase_ + static_cast<Addr>(b) * block;
            prog.read(a).write(a);
        }
    }
    builder.barrier();

    // --- Force phase: per-processor read sets from real traversals.
    // Processors advance in waves of four (the load-balanced work
    // distribution de-facto synchronizes them), which keeps each
    // block's reader arrival order quantized and recurring.
    std::uint64_t visits = 0;
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        if (proc > 0 && proc % 4 == 0)
            builder.barrier();
        std::vector<int> cells_used;
        std::vector<unsigned> bodies_used;
        for (unsigned b = 0; b < p_.nbodies; ++b)
            if (bodies_[b].owner == proc)
                traverse(b, cells_used, bodies_used);

        auto prog = builder.proc(proc);
        // Fixed per-processor stagger: inter-iteration order noise
        // comes only from the discrete walk-order choices and from
        // tree changes, so per-block patterns recur and deeper
        // history pays off (the paper's rising barnes row).
        prog.think(1 + proc * 13);
        std::unordered_set<Addr> seen;
        std::vector<Addr> reads;
        for (int ci : cells_used) {
            const Addr a = cellPoolBase_ +
                           static_cast<Addr>(cells_[ci].slot) * block;
            if (seen.insert(a).second)
                reads.push_back(a);
        }
        for (unsigned ob : bodies_used) {
            if (bodies_[ob].owner == proc)
                continue;
            const Addr a = bodyBase_ + static_cast<Addr>(ob) * block;
            if (seen.insert(a).second)
                reads.push_back(a);
        }
        // Each processor's walk order is one of a few recurring
        // interleavings: ambiguous for a depth-1 predictor, largely
        // learnable with deeper history (§3.5).
        std::sort(reads.begin(), reads.end());
        choiceOrder(reads, 0xba12e5ULL + proc,
                    static_cast<unsigned>(rng_->nextBelow(4)));
        // Irregular extra traversal visits (opening-criterion
        // borderline cases flip as bodies drift): reads no history
        // depth can anticipate.
        const unsigned extras = static_cast<unsigned>(reads.size() / 6);
        for (unsigned k = 0; k < extras; ++k) {
            const bool pick_cell = rng_->nextBool(0.6);
            if (pick_cell && !cells_.empty()) {
                const auto &c = cells_[rng_->nextBelow(cells_.size())];
                const Addr a = cellPoolBase_ +
                               static_cast<Addr>(c.slot) * block;
                if (seen.insert(a).second)
                    reads.push_back(a);
            } else {
                const unsigned b = static_cast<unsigned>(
                    rng_->nextBelow(p_.nbodies));
                const Addr a =
                    bodyBase_ + static_cast<Addr>(b) * block;
                if (bodies_[b].owner != proc && seen.insert(a).second)
                    reads.push_back(a);
            }
        }
        for (Addr a : reads)
            prog.read(a);
        visits += seen.size();

        // Write back the force/velocity update for owned bodies.
        for (unsigned b = 0; b < p_.nbodies; ++b) {
            if (bodies_[b].owner != proc)
                continue;
            prog.write(bodyBase_ + static_cast<Addr>(b) * block);
        }
    }
    builder.barrier();

    // --- Host physics: advance positions with the computed forces.
    for (auto &b : bodies_) {
        for (int d = 0; d < 3; ++d) {
            b.vel[d] += p_.dt * b.force[d];
            b.pos[d] += p_.dt * b.vel[d];
            if (b.pos[d] < 0.02 || b.pos[d] > 0.98) {
                b.vel[d] = -b.vel[d];
                b.pos[d] = std::clamp(b.pos[d], 0.02, 0.98);
            }
        }
    }

    meanCells_ += static_cast<double>(cells_.size());
    meanVisits_ += static_cast<double>(visits);
    ++iterationsRun_;
}

std::string
Barnes::statsSummary() const
{
    std::ostringstream os;
    const double n = iterationsRun_ ? iterationsRun_ : 1;
    os << "bodies=" << p_.nbodies
       << " mean_cells=" << meanCells_ / n
       << " mean_remote_reads_per_iter=" << meanVisits_ / n;
    return os.str();
}

} // namespace cosmos::wl
