/**
 * @file
 * Parameterized micro-workloads exercising the canonical sharing
 * patterns of the paper in isolation: producer-consumer (§3.1,
 * Figure 2), migratory (Figure 8b), read-modify-write, and false
 * sharing. Tests use them to pin down exact message signatures;
 * the Figure 8 bench uses them to show directed predictors and
 * Cosmos capturing the same triggers.
 */

#ifndef COSMOS_WORKLOADS_MICRO_HH
#define COSMOS_WORKLOADS_MICRO_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** Producer-consumer: one producer writes, N consumers read. */
struct ProducerConsumerParams
{
    unsigned blocks = 8;
    unsigned consumers = 1;
    /** Producer reads before writing (appbt-style) or writes blind
     *  (dsmc-style; half-migratory helps). */
    bool producerReadsFirst = true;
    int iterations = 30;
    int warmupIterations = 1;
};

class ProducerConsumerMicro : public Workload
{
  public:
    explicit ProducerConsumerMicro(
        const ProducerConsumerParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;

  private:
    ProducerConsumerParams p_;
    Info info_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;
    Addr base_ = 0;
};

/** Migratory: blocks visit processors in rotation, RMW under lock. */
struct MigratoryParams
{
    unsigned blocks = 8;
    unsigned rotation = 4; ///< number of processors in the rotation
    int iterations = 30;
    int warmupIterations = 1;
};

class MigratoryMicro : public Workload
{
  public:
    explicit MigratoryMicro(const MigratoryParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;

  private:
    MigratoryParams p_;
    Info info_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;
    Addr base_ = 0;
};

/**
 * Read-modify-write: a single remote processor reads then immediately
 * upgrades the same blocks every iteration -- the trigger signature
 * of the reply-exclusive directed optimization (§4.1).
 */
struct RmwParams
{
    unsigned blocks = 8;
    int iterations = 30;
    int warmupIterations = 1;
};

class RmwMicro : public Workload
{
  public:
    explicit RmwMicro(const RmwParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;

  private:
    RmwParams p_;
    Info info_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;
    Addr base_ = 0;
};

/** False sharing: two processors RMW disjoint halves of each block. */
struct FalseSharingParams
{
    unsigned blocks = 8;
    int iterations = 30;
    int warmupIterations = 1;
};

class FalseSharingMicro : public Workload
{
  public:
    explicit FalseSharingMicro(const FalseSharingParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;

  private:
    FalseSharingParams p_;
    Info info_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;
    Addr base_ = 0;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_MICRO_HH
