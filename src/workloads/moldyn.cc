#include "workloads/moldyn.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_set>

#include "common/log.hh"

namespace cosmos::wl
{

Moldyn::Moldyn(const MoldynParams &params) : p_(params)
{
    info_.name = "moldyn";
    info_.description =
        "cut-off molecular dynamics; migratory force reduction plus "
        "multi-consumer coordinate reads";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
Moldyn::setup(const AddrMap &amap, NodeId num_procs, std::uint64_t seed)
{
    cosmos_assert(num_procs == p_.tilesX * p_.tilesY,
                  "moldyn needs ", p_.tilesX * p_.tilesY,
                  " processors, got ", num_procs);
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0x301d9aULL);

    mol_.resize(p_.molecules);
    for (auto &m : mol_) {
        m.x = rng_->nextDouble();
        m.y = rng_->nextDouble();
        m.vx = p_.temperature * rng_->nextGaussian();
        m.vy = p_.temperature * rng_->nextGaussian();
        const unsigned tx = std::min(
            static_cast<unsigned>(m.x * p_.tilesX), p_.tilesX - 1);
        const unsigned ty = std::min(
            static_cast<unsigned>(m.y * p_.tilesY), p_.tilesY - 1);
        m.owner = static_cast<NodeId>(ty * p_.tilesX + tx);
    }

    Allocator alloc(amap);
    coordBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.molecules) * amap.blockBytes(),
        "coordinates");
    forceBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.molecules) * amap.blockBytes(),
        "forces");
    sparseBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.sparseBlocks) * amap.blockBytes(),
        "metadata");

    rebuildPairs();
}

void
Moldyn::rebuildPairs()
{
    pairs_.clear();
    for (unsigned i = 0; i < p_.molecules; ++i) {
        for (unsigned j = i + 1; j < p_.molecules; ++j) {
            // Minimum-image distance in the periodic unit box.
            double dx = std::fabs(mol_[i].x - mol_[j].x);
            double dy = std::fabs(mol_[i].y - mol_[j].y);
            dx = std::min(dx, 1.0 - dx);
            dy = std::min(dy, 1.0 - dy);
            if (dx * dx + dy * dy <= p_.cutoff * p_.cutoff)
                pairs_.emplace_back(i, j);
        }
    }

    // Sample the consumer count per coordinates block: processors
    // with a partner of molecule j, excluding j's owner.
    std::vector<std::set<NodeId>> readers(p_.molecules);
    for (const auto &[i, j] : pairs_) {
        readers[j].insert(mol_[i].owner);
        readers[i].insert(mol_[j].owner);
    }
    for (unsigned m = 0; m < p_.molecules; ++m) {
        std::size_t consumers = readers[m].size();
        if (readers[m].count(mol_[m].owner))
            --consumers;
        if (!readers[m].empty()) {
            consumerTotal_ += static_cast<double>(consumers);
            consumerSamples_ += 1.0;
        }
    }
}

void
Moldyn::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    cosmos_assert(amap_, "setup() not called");
    if (iter > 0 && p_.rebuildEvery > 0 &&
        static_cast<unsigned>(iter) % p_.rebuildEvery == 0) {
        rebuildPairs();
    }

    const unsigned block = amap_->blockBytes();
    auto coord = [&](unsigned m) {
        return coordBase_ + static_cast<Addr>(m) * block;
    };
    auto force = [&](unsigned m) {
        return forceBase_ + static_cast<Addr>(m) * block;
    };

    // Per-processor remote partner reads and force-element updates,
    // deduplicated per iteration (private accumulation then a single
    // add-to-shared per element, like the real code, §6.1).
    std::vector<std::unordered_set<unsigned>> remote_reads(numProcs_);
    std::vector<std::unordered_set<unsigned>> force_updates(numProcs_);
    for (const auto &[i, j] : pairs_) {
        const NodeId pi = mol_[i].owner;
        const NodeId pj = mol_[j].owner;
        // The pair is computed by owner(i); it needs j's coordinates
        // and contributes to both force elements.
        if (pj != pi)
            remote_reads[pi].insert(j);
        force_updates[pi].insert(i);
        force_updates[pi].insert(j);
        // owner(j) also reads i for its own half of the interaction.
        if (pi != pj) {
            remote_reads[pj].insert(i);
            force_updates[pj].insert(i);
            force_updates[pj].insert(j);
        }
    }

    // --- Phase 1: coordinate reads (consumers). The interaction
    // list is walked in a fixed order between rebuilds (like the
    // real code), so the directory sees stable reader sequences.
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + proc * 20);
        std::vector<unsigned> order(remote_reads[proc].begin(),
                                    remote_reads[proc].end());
        std::sort(order.begin(), order.end());
        for (unsigned m : order)
            prog.read(coord(m));
        // A sprinkle of extra reads (neighbour-list slack touches
        // molecules just outside the cut-off): content noise that no
        // history depth can anticipate, keeping moldyn's accuracy
        // flat across depths like the paper's row.
        for (unsigned k = 0; k < p_.molecules / 16; ++k) {
            const unsigned m = static_cast<unsigned>(
                rng_->nextBelow(p_.molecules));
            if (mol_[m].owner != proc)
                prog.read(coord(m));
        }
    }
    builder.barrier();

    // --- Phase 2: force reduction in per-molecule critical sections
    // (migratory). Lock id = molecule id; fixed walk order keeps the
    // lock hand-off rotation mostly stable between rebuilds.
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + proc * 20);
        std::vector<unsigned> order(force_updates[proc].begin(),
                                    force_updates[proc].end());
        std::sort(order.begin(), order.end());
        for (unsigned m : order) {
            prog.lockAcq(m);
            prog.read(force(m)).write(force(m));
            prog.unlock(m);
        }
    }
    builder.barrier();

    // --- Phase 3: integration; owners publish new coordinates.
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        for (unsigned m = 0; m < p_.molecules; ++m) {
            if (mol_[m].owner != proc)
                continue;
            prog.read(force(m));
            prog.read(coord(m)).write(coord(m));
        }
    }
    emitSparseTouches(builder, *rng_, sparseBase_, p_.sparseBlocks,
                      p_.sparseTouchesPerIter, numProcs_, block);
    builder.barrier();

    // --- Host physics: Lennard-Jones-ish pair forces, then Verlet.
    for (auto &m : mol_) {
        m.fx = 0.0;
        m.fy = 0.0;
    }
    for (const auto &[i, j] : pairs_) {
        double dx = mol_[j].x - mol_[i].x;
        double dy = mol_[j].y - mol_[i].y;
        if (dx > 0.5) dx -= 1.0;
        if (dx < -0.5) dx += 1.0;
        if (dy > 0.5) dy -= 1.0;
        if (dy < -0.5) dy += 1.0;
        const double r2 = dx * dx + dy * dy + 1e-6;
        const double inv2 = (p_.cutoff * p_.cutoff) / r2;
        const double mag = (inv2 * inv2 - inv2) / r2;
        mol_[i].fx -= mag * dx;
        mol_[i].fy -= mag * dy;
        mol_[j].fx += mag * dx;
        mol_[j].fy += mag * dy;
    }
    for (auto &m : mol_) {
        m.vx += p_.dt * m.fx;
        m.vy += p_.dt * m.fy;
        // Clamp runaway velocities to keep the box stable.
        m.vx = std::clamp(m.vx, -2.0, 2.0);
        m.vy = std::clamp(m.vy, -2.0, 2.0);
        m.x += p_.dt * m.vx;
        m.y += p_.dt * m.vy;
        m.x -= std::floor(m.x);
        m.y -= std::floor(m.y);
    }
}

double
Moldyn::meanConsumers() const
{
    return consumerSamples_ == 0.0 ? 0.0
                                   : consumerTotal_ / consumerSamples_;
}

std::string
Moldyn::statsSummary() const
{
    std::ostringstream os;
    os << "molecules=" << p_.molecules << " pairs=" << pairs_.size()
       << " mean_consumers_per_coord_block=" << meanConsumers();
    return os.str();
}

} // namespace cosmos::wl
