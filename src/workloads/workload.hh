/**
 * @file
 * Workload kernel interface and registry.
 *
 * Each of the paper's five applications (Table 4) is implemented as a
 * miniature kernel that performs its real computation on the host and
 * emits, per iteration, the shared-memory access skeleton of that
 * computation as per-processor programs. DESIGN.md §2 documents why
 * this substitution preserves the sharing patterns the predictor
 * sees.
 */

#ifndef COSMOS_WORKLOADS_WORKLOAD_HH
#define COSMOS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/addr.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "runtime/program.hh"
#include "workloads/allocator.hh"

namespace cosmos::wl
{

/** A workload kernel generating per-iteration access programs. */
class Workload
{
  public:
    struct Info
    {
        std::string name;
        std::string description;
        /** Default number of traced iterations. */
        int iterations = 40;
        /** Leading iterations excluded from traces (start-up, §5). */
        int warmupIterations = 2;
    };

    virtual ~Workload() = default;

    virtual const Info &info() const = 0;

    /**
     * Allocate shared data and initialize host state.
     * Must be called exactly once before emitIteration().
     */
    virtual void setup(const AddrMap &amap, NodeId num_procs,
                       std::uint64_t seed) = 0;

    /**
     * Advance the host computation one iteration and append this
     * iteration's accesses to @p builder.
     */
    virtual void emitIteration(int iter,
                               runtime::ProgramBuilder &builder) = 0;

    /** Optional sharing-structure summary (consumer counts, etc.). */
    virtual std::string statsSummary() const { return ""; }
};

/**
 * Reorder @p items into one of a small set of fixed permutations.
 *
 * Applying the permutation selected by @p choice (deterministically
 * derived from @p salt) models event orders that are ambiguous with
 * one tuple of history -- several successors are possible after any
 * element -- yet fully learnable with deeper history, because the
 * same few interleavings recur (the paper's §3.5 mechanism).
 */
template <typename T>
void
choiceOrder(std::vector<T> &items, std::uint64_t salt, unsigned choice)
{
    Rng rng(salt * 0x9e3779b97f4a7c15ULL + choice + 1);
    rng.shuffle(items);
}

/**
 * Emit reads of rarely-touched shared blocks.
 *
 * Real applications expose large shared regions most of whose blocks
 * are referenced only a handful of times (diagnostics, rarely-hit
 * table entries). Such blocks earn Message History Registers but few
 * Pattern History Tables -- the reason dsmc's PHT/MHR ratio in the
 * paper's Table 7 sits *below one* and falls with depth. Each call
 * reads @p per_iter randomly chosen blocks of the region from
 * randomly chosen processors.
 */
void emitSparseTouches(runtime::ProgramBuilder &builder, Rng &rng,
                       Addr base, std::size_t region_blocks,
                       std::size_t per_iter, NodeId num_procs,
                       unsigned block_bytes);

/** Construct a registered workload by name; fatal on unknown name. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Names of the five paper applications, in the paper's order. */
std::vector<std::string> paperWorkloads();

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_WORKLOAD_HH
