#include "workloads/appbt.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace cosmos::wl
{

AppBt::AppBt(const AppBtParams &params) : p_(params)
{
    info_.name = "appbt";
    info_.description =
        "3-D stencil CFD; producer-consumer along sub-block faces";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

unsigned
AppBt::cellIndex(unsigned x, unsigned y, unsigned z) const
{
    return (z * p_.ny + y) * p_.nx + x;
}

NodeId
AppBt::ownerOf(unsigned x, unsigned y) const
{
    const unsigned sx = p_.nx / p_.px;
    const unsigned sy = p_.ny / p_.py;
    return static_cast<NodeId>((y / sy) * p_.px + (x / sx));
}

void
AppBt::setup(const AddrMap &amap, NodeId num_procs, std::uint64_t seed)
{
    cosmos_assert(num_procs == p_.px * p_.py,
                  "appbt needs px*py = ", p_.px * p_.py,
                  " processors, got ", num_procs);
    cosmos_assert(p_.nx % p_.px == 0 && p_.ny % p_.py == 0,
                  "grid must divide evenly among processors");
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0xa99b70ULL);
    alloc_ = std::make_unique<Allocator>(amap);

    const unsigned cells = p_.nx * p_.ny * p_.nz;
    gridBase_ = alloc_->allocate(
        static_cast<std::size_t>(cells) * amap.blockBytes(), "u");
    // Residual arrays with two processors' elements per block: the
    // deliberate false sharing of §6.1. Array k pairs processor p
    // with processor p ^ (1 << k) (wrapped), so different arrays
    // create different false-sharing partners.
    falseShareBase_.clear();
    for (unsigned a = 0; a < p_.falseShareArrays; ++a) {
        falseShareBase_.push_back(alloc_->allocate(
            static_cast<std::size_t>(num_procs) *
                (amap.blockBytes() / 2),
            "residual" + std::to_string(a)));
    }

    sparseBase_ = alloc_->allocate(
        static_cast<std::size_t>(p_.sparseBlocks) * amap.blockBytes(),
        "sparse");

    boundary_.assign(num_procs, {});
    ghosts_.assign(num_procs, {});
    interior_.assign(num_procs, {});
    const unsigned sx = p_.nx / p_.px;
    const unsigned sy = p_.ny / p_.py;
    for (NodeId proc = 0; proc < num_procs; ++proc) {
        const unsigned x0 = (proc % p_.px) * sx;
        const unsigned y0 = (proc / p_.px) * sy;
        for (unsigned z = 0; z < p_.nz; ++z) {
            for (unsigned y = y0; y < y0 + sy; ++y) {
                for (unsigned x = x0; x < x0 + sx; ++x) {
                    const bool edge = x == x0 || x == x0 + sx - 1 ||
                                      y == y0 || y == y0 + sy - 1;
                    (edge ? boundary_ : interior_)[proc].push_back(
                        cellIndex(x, y, z));
                }
            }
            // Ghost layer: the neighbors' cells facing this sub-block.
            for (unsigned y = y0; y < y0 + sy; ++y) {
                if (x0 > 0)
                    ghosts_[proc].push_back(cellIndex(x0 - 1, y, z));
                if (x0 + sx < p_.nx)
                    ghosts_[proc].push_back(cellIndex(x0 + sx, y, z));
            }
            for (unsigned x = x0; x < x0 + sx; ++x) {
                if (y0 > 0)
                    ghosts_[proc].push_back(cellIndex(x, y0 - 1, z));
                if (y0 + sy < p_.ny)
                    ghosts_[proc].push_back(cellIndex(x, y0 + sy, z));
            }
        }
    }
}

void
AppBt::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    cosmos_assert(amap_, "setup() not called");
    (void)iter;
    const unsigned block = amap_->blockBytes();

    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);

        // Small per-processor skew so request arrival orders vary
        // between iterations like real timing noise.
        prog.think(1 + rng_->nextBelow(300));

        // Producer sweep: read-modify-write own boundary cells, in a
        // freshly shuffled order.
        std::vector<unsigned> order = boundary_[proc];
        rng_->shuffle(order);
        for (unsigned c : order) {
            const Addr a = gridBase_ + static_cast<Addr>(c) * block;
            prog.read(a).write(a);
        }

        // A few interior (private) cells: silent after first touch.
        for (unsigned i = 0;
             i < p_.interiorTouches && i < interior_[proc].size();
             ++i) {
            const unsigned c =
                interior_[proc][rng_->nextBelow(
                    interior_[proc].size())];
            const Addr a = gridBase_ + static_cast<Addr>(c) * block;
            prog.read(a).write(a);
        }

        // False-shared residual updates, visited in a per-iteration
        // random order so the directory sees oscillating
        // upgrade/invalidate interleavings between block partners.
        std::vector<unsigned> fs_order(falseShareBase_.size());
        for (unsigned k = 0; k < fs_order.size(); ++k)
            fs_order[k] = k;
        for (unsigned round = 0; round < p_.falseShareRounds;
             ++round) {
            rng_->shuffle(fs_order);
            for (unsigned k : fs_order) {
                const Addr a = Allocator::stridedElem(
                    falseShareBase_[k], proc, block / 2);
                prog.read(a).write(a);
            }
        }
    }

    builder.barrier();

    // Consumer sweep: read the neighbors' ghost layers; a consumer
    // occasionally writes a ghost cell back (flux correction) and a
    // boundary cell is occasionally read by one extra processor,
    // both of which perturb the per-block signature like the noise
    // the paper's Figure 6 arcs show.
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + rng_->nextBelow(300));
        std::vector<unsigned> order = ghosts_[proc];
        rng_->shuffle(order);
        for (unsigned c : order) {
            const Addr a = gridBase_ + static_cast<Addr>(c) * block;
            prog.read(a);
            if (rng_->nextBool(p_.consumerWriteProb))
                prog.write(a);
        }
        if (!boundary_.empty()) {
            // Extra reader: peek at a random other processor's
            // boundary cells.
            const NodeId other = static_cast<NodeId>(
                rng_->nextBelow(numProcs_));
            if (other != proc) {
                for (unsigned c : boundary_[other]) {
                    if (rng_->nextBool(p_.extraReaderProb))
                        prog.read(gridBase_ +
                                  static_cast<Addr>(c) * block);
                }
            }
        }
    }

    emitSparseTouches(builder, *rng_, sparseBase_, p_.sparseBlocks,
                      p_.sparseTouchesPerIter, numProcs_, block);
    builder.barrier();
}

std::string
AppBt::statsSummary() const
{
    std::size_t boundary = 0, ghosts = 0;
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        boundary += boundary_[proc].size();
        ghosts += ghosts_[proc].size();
    }
    std::ostringstream os;
    os << "grid=" << p_.nx << "x" << p_.ny << "x" << p_.nz
       << " boundary_cells=" << boundary << " ghost_reads=" << ghosts
       << " consumers_per_cell~1";
    return os.str();
}

} // namespace cosmos::wl
