/**
 * @file
 * barnes: miniature SPLASH-2 Barnes-Hut N-body kernel (Table 4).
 *
 * Bodies move under real (softened, theta-approximated) gravity; the
 * octree is rebuilt from scratch every iteration with bodies inserted
 * in Morton order of their *current* positions and partitioned
 * costzones-style (contiguous Morton ranges per processor). Octree
 * cells are allocated from a sequential pool in creation order, so as
 * bodies move, a given pool address hosts a *different* logical tree
 * node from one iteration to the next -- the address reassignment the
 * paper identifies as the reason for barnes' comparatively low
 * prediction accuracy (§6.1).
 */

#ifndef COSMOS_WORKLOADS_BARNES_HH
#define COSMOS_WORKLOADS_BARNES_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** barnes sizing knobs. */
struct BarnesParams
{
    unsigned nbodies = 128;
    double theta = 0.25;  ///< opening criterion
    double dt = 0.005;    ///< integration step
    double softening = 0.05;
    int iterations = 25;
    int warmupIterations = 2;
    unsigned maxDepth = 12;
    unsigned cellPoolBlocks = 4096;
};

/** The barnes kernel. */
class Barnes : public Workload
{
  public:
    explicit Barnes(const BarnesParams &params = {});
    ~Barnes() override;

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;
    std::string statsSummary() const override;

  private:
    struct Body
    {
        std::array<double, 3> pos{};
        std::array<double, 3> vel{};
        std::array<double, 3> force{};
        double mass = 1.0;
        NodeId owner = 0;
    };

    struct Cell
    {
        std::array<double, 3> center{};
        double half = 0.5; ///< half edge length
        std::array<double, 3> com{};
        double mass = 0.0;
        std::array<int, 8> child{};
        std::vector<unsigned> bodies; ///< non-empty only at leaves
        bool leaf = true;
        NodeId owner = 0;
        unsigned depth = 0;
        unsigned slot = 0; ///< pool block index of this cell
    };

    void rebuildTree();
    void insertBody(int cell, unsigned body);
    int newCell(const std::array<double, 3> &center, double half,
                unsigned depth, NodeId owner);
    /** Pool slot for a cell: stable for unchanged tree regions,
     *  newly assigned when subtrees move (partial address churn). */
    unsigned slotFor(const std::array<double, 3> &center,
                     unsigned depth);
    void computeMass(int cell);
    void traverse(unsigned body, std::vector<int> &cells_used,
                  std::vector<unsigned> &bodies_used);
    std::uint64_t mortonKey(const std::array<double, 3> &p) const;

    BarnesParams p_;
    Info info_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;

    std::vector<Body> bodies_;
    std::vector<Cell> cells_;
    /** Persistent (spatial key -> pool slot) map across rebuilds. */
    std::unordered_map<std::uint64_t, unsigned> cellSlots_;
    unsigned nextSlot_ = 0;

    Addr bodyBase_ = 0;
    Addr cellPoolBase_ = 0;

    // Rolling stats for statsSummary().
    double meanCells_ = 0.0;
    double meanVisits_ = 0.0;
    int iterationsRun_ = 0;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_BARNES_HH
