#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/appbt.hh"
#include "workloads/barnes.hh"
#include "workloads/dsmc.hh"
#include "workloads/micro.hh"
#include "workloads/moldyn.hh"
#include "workloads/unstructured.hh"

namespace cosmos::wl
{

void
emitSparseTouches(runtime::ProgramBuilder &builder, Rng &rng,
                  Addr base, std::size_t region_blocks,
                  std::size_t per_iter, NodeId num_procs,
                  unsigned block_bytes)
{
    for (std::size_t k = 0; k < per_iter; ++k) {
        const std::size_t blk = rng.nextBelow(region_blocks);
        const NodeId proc =
            static_cast<NodeId>(rng.nextBelow(num_procs));
        builder.proc(proc).read(base +
                                static_cast<Addr>(blk) * block_bytes);
    }
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "appbt")
        return std::make_unique<AppBt>();
    if (name == "barnes")
        return std::make_unique<Barnes>();
    if (name == "dsmc")
        return std::make_unique<Dsmc>();
    if (name == "moldyn")
        return std::make_unique<Moldyn>();
    if (name == "unstructured")
        return std::make_unique<Unstructured>();
    if (name == "micro_producer_consumer")
        return std::make_unique<ProducerConsumerMicro>();
    if (name == "micro_migratory")
        return std::make_unique<MigratoryMicro>();
    if (name == "micro_rmw")
        return std::make_unique<RmwMicro>();
    if (name == "micro_false_sharing")
        return std::make_unique<FalseSharingMicro>();
    cosmos_fatal("unknown workload '", name, "'");
}

std::vector<std::string>
paperWorkloads()
{
    return {"appbt", "barnes", "dsmc", "moldyn", "unstructured"};
}

} // namespace cosmos::wl
