/**
 * @file
 * appbt: miniature NAS APPBT kernel (Table 4).
 *
 * A 3-D grid of cells is partitioned into PX x PY columns of
 * sub-blocks, one per processor. Each iteration every processor
 * updates its own cells -- reading then writing each boundary cell
 * (the producer's read-before-write is what makes the half-migratory
 * optimization *hurt* appbt, §6.1) -- and then reads the ghost layer
 * owned by its neighbors (the consumers). Two small per-processor
 * arrays are deliberately laid out two-elements-per-block to
 * reproduce the false sharing the paper blames for the low-accuracy
 * upgrade_request -> inval_ro_response arc at the directory
 * (Figure 6).
 */

#ifndef COSMOS_WORKLOADS_APPBT_HH
#define COSMOS_WORKLOADS_APPBT_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** appbt sizing knobs. */
struct AppBtParams
{
    unsigned nx = 16; ///< grid cells in x
    unsigned ny = 16; ///< grid cells in y
    unsigned nz = 2;  ///< grid cells in z
    unsigned px = 4;  ///< processor grid in x
    unsigned py = 4;  ///< processor grid in y
    int iterations = 40;
    int warmupIterations = 2;
    /** Interior (private) cells touched per processor per iteration:
     *  silent after first touch but keep the access stream honest. */
    unsigned interiorTouches = 8;
    /** Number of deliberately false-shared residual arrays. */
    unsigned falseShareArrays = 4;
    /** RMW rounds over the false-shared arrays per iteration. */
    unsigned falseShareRounds = 2;
    /** Probability a consumer also writes a ghost cell it read
     *  (boundary flux correction), perturbing the block signature. */
    double consumerWriteProb = 0.10;
    /** Probability a boundary cell is read by a second, non-adjacent
     *  processor in a given iteration (e.g., corner exchanges). */
    double extraReaderProb = 0.05;
    /** Rarely-touched shared blocks (Table 7's sub-one PHT/MHR
     *  contributions come from such blocks). */
    unsigned sparseBlocks = 2000;
    unsigned sparseTouchesPerIter = 80;
};

/** The appbt kernel. */
class AppBt : public Workload
{
  public:
    explicit AppBt(const AppBtParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;
    std::string statsSummary() const override;

  private:
    unsigned cellIndex(unsigned x, unsigned y, unsigned z) const;
    NodeId ownerOf(unsigned x, unsigned y) const;

    AppBtParams p_;
    Info info_;
    std::unique_ptr<Allocator> alloc_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;

    Addr gridBase_ = 0;
    Addr sparseBase_ = 0;
    std::vector<Addr> falseShareBase_;

    /** Per proc: own boundary cell indices and ghost cell indices. */
    std::vector<std::vector<unsigned>> boundary_;
    std::vector<std::vector<unsigned>> ghosts_;
    std::vector<std::vector<unsigned>> interior_;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_APPBT_HH
