/**
 * @file
 * Page-granular shared-memory allocator for workload kernels.
 *
 * Regions are carved out of the simulated address space sequentially
 * at page granularity; because Stache homes pages round-robin
 * (AddrMap::home), consecutive pages of a region land on consecutive
 * nodes, like the paper's §5.1 allocation.
 */

#ifndef COSMOS_WORKLOADS_ALLOCATOR_HH
#define COSMOS_WORKLOADS_ALLOCATOR_HH

#include <string>
#include <vector>

#include "common/addr.hh"
#include "common/types.hh"

namespace cosmos::wl
{

/** Sequential page-granular allocator. */
class Allocator
{
  public:
    struct Region
    {
        std::string label;
        Addr base = 0;
        std::size_t bytes = 0;
    };

    explicit Allocator(const AddrMap &amap);

    /**
     * Allocate a page-aligned region of at least @p bytes.
     * @return the region base address.
     */
    Addr allocate(std::size_t bytes, const std::string &label);

    /**
     * Address of element @p idx of an array at @p base with one
     * element per cache block (the kernels' default layout, which
     * avoids unintended false sharing).
     */
    Addr blockElem(Addr base, std::size_t idx) const;

    /** Address of byte-strided element (used to *create* false
     *  sharing deliberately). */
    static Addr
    stridedElem(Addr base, std::size_t idx, std::size_t stride)
    {
        return base + idx * stride;
    }

    const std::vector<Region> &regions() const { return regions_; }
    std::size_t bytesAllocated() const;

  private:
    const AddrMap &amap_;
    Addr next_ = 0;
    std::vector<Region> regions_;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_ALLOCATOR_HH
