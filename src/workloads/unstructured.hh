/**
 * @file
 * unstructured: miniature unstructured-mesh CFD kernel (Table 4).
 *
 * A static mesh (random points, k-nearest-neighbour edges) is
 * partitioned with a recursive coordinate bisection partitioner, like
 * the real application. Every iteration runs two loops over the same
 * data:
 *
 *  - an edge loop that updates both endpoints of every cross-partition
 *    edge inside per-node critical sections (migratory sharing), and
 *  - a node loop where each owner recomputes its boundary nodes
 *    (reading then writing them -- the producer is itself a consumer)
 *    and reads its neighbours' nodes (~2.6 consumers per block).
 *
 * The same blocks therefore oscillate between migratory and
 * producer-consumer signatures inside one iteration, which is why
 * unstructured needs MHR depth: the paper's accuracy climbs from 74%
 * at depth 1 to 92% at depth 4 (§6.1).
 */

#ifndef COSMOS_WORKLOADS_UNSTRUCTURED_HH
#define COSMOS_WORKLOADS_UNSTRUCTURED_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** unstructured sizing knobs. */
struct UnstructuredParams
{
    unsigned meshNodes = 500;
    unsigned neighborsPerNode = 5; ///< k for the kNN edge build
    /** Probability a cross edge is processed in a given iteration
     *  (adaptive computation skips converged regions). */
    double edgeActiveProb = 0.7;
    int iterations = 40;
    int warmupIterations = 2;
    /** Rarely-touched shared blocks (e.g., face metadata). */
    unsigned sparseBlocks = 900;
    unsigned sparseTouchesPerIter = 36;
};

/** The unstructured kernel. */
class Unstructured : public Workload
{
  public:
    explicit Unstructured(const UnstructuredParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;
    std::string statsSummary() const override;

    /** Measured mean consumers per boundary node (paper: 2.6). */
    double meanConsumers() const;

    /** Mesh nodes assigned to each processor by the RCB partitioner. */
    std::vector<std::size_t> partitionSizes() const;

  private:
    void buildMesh();
    void partition();

    UnstructuredParams p_;
    Info info_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;

    std::vector<double> px_, py_;
    std::vector<std::pair<unsigned, unsigned>> edges_;
    std::vector<NodeId> owner_;
    Addr nodeBase_ = 0;
    Addr sparseBase_ = 0;

    /** Cross-partition edges, assigned to the lower-id endpoint's
     *  owner for the migratory edge loop. */
    std::vector<std::pair<unsigned, unsigned>> crossEdges_;
    /** Per proc: owned boundary nodes. */
    std::vector<std::vector<unsigned>> boundaryNodes_;
    /** Per proc: remote neighbour nodes it reads in the node loop. */
    std::vector<std::vector<unsigned>> remoteReads_;
    double meanConsumers_ = 0.0;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_UNSTRUCTURED_HH
