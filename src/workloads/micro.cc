#include "workloads/micro.hh"

#include "common/log.hh"

namespace cosmos::wl
{

// --- ProducerConsumerMicro --------------------------------------------

ProducerConsumerMicro::ProducerConsumerMicro(
    const ProducerConsumerParams &params)
    : p_(params)
{
    info_.name = "micro_producer_consumer";
    info_.description = "one producer, N consumers";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
ProducerConsumerMicro::setup(const AddrMap &amap, NodeId num_procs,
                             std::uint64_t seed)
{
    (void)seed;
    cosmos_assert(num_procs >= p_.consumers + 1,
                  "need producer + ", p_.consumers, " consumers");
    amap_ = &amap;
    numProcs_ = num_procs;
    Allocator alloc(amap);
    // Home the shared region at the last node so the producer's and
    // consumers' coherence traffic is remote (and observable).
    alloc.allocate(
        static_cast<std::size_t>(num_procs - 1) * amap.pageBytes(),
        "padding");
    base_ = alloc.allocate(
        static_cast<std::size_t>(p_.blocks) * amap.blockBytes(),
        "shared");
}

void
ProducerConsumerMicro::emitIteration(int iter,
                                     runtime::ProgramBuilder &builder)
{
    (void)iter;
    const unsigned block = amap_->blockBytes();
    auto producer = builder.proc(0);
    for (unsigned b = 0; b < p_.blocks; ++b) {
        const Addr a = base_ + static_cast<Addr>(b) * block;
        if (p_.producerReadsFirst)
            producer.read(a);
        producer.write(a);
    }
    builder.barrier();
    for (unsigned c = 1; c <= p_.consumers; ++c) {
        auto consumer = builder.proc(static_cast<NodeId>(c));
        for (unsigned b = 0; b < p_.blocks; ++b)
            consumer.read(base_ + static_cast<Addr>(b) * block);
    }
    builder.barrier();
}

// --- MigratoryMicro ----------------------------------------------------

MigratoryMicro::MigratoryMicro(const MigratoryParams &params) : p_(params)
{
    info_.name = "micro_migratory";
    info_.description = "blocks rotate through processors under locks";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
MigratoryMicro::setup(const AddrMap &amap, NodeId num_procs,
                      std::uint64_t seed)
{
    (void)seed;
    cosmos_assert(num_procs >= p_.rotation, "need ", p_.rotation,
                  " processors");
    amap_ = &amap;
    numProcs_ = num_procs;
    Allocator alloc(amap);
    // Home the shared region at the last node so every participant's
    // coherence traffic is remote (and observable).
    alloc.allocate(
        static_cast<std::size_t>(num_procs - 1) * amap.pageBytes(),
        "padding");
    base_ = alloc.allocate(
        static_cast<std::size_t>(p_.blocks) * amap.blockBytes(),
        "migratory");
}

void
MigratoryMicro::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    (void)iter;
    const unsigned block = amap_->blockBytes();
    // A deterministic rotation in fixed order every iteration,
    // serialized by barriers so the hand-off order is exact: the
    // global per-block sender sequence is a pure cycle that a
    // depth-1 predictor can learn completely.
    for (unsigned step = 0; step < p_.rotation; ++step) {
        const NodeId proc = static_cast<NodeId>(step % p_.rotation);
        auto prog = builder.proc(proc);
        for (unsigned b = 0; b < p_.blocks; ++b) {
            const Addr a = base_ + static_cast<Addr>(b) * block;
            const LockId l = static_cast<LockId>(b);
            prog.lockAcq(l);
            prog.read(a).write(a);
            prog.unlock(l);
        }
        builder.barrier();
    }
}

// --- RmwMicro ------------------------------------------------------------

RmwMicro::RmwMicro(const RmwParams &params) : p_(params)
{
    info_.name = "micro_rmw";
    info_.description = "read-modify-write from an alternating pair";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
RmwMicro::setup(const AddrMap &amap, NodeId num_procs,
                std::uint64_t seed)
{
    (void)seed;
    cosmos_assert(num_procs >= 2, "need at least two processors");
    amap_ = &amap;
    numProcs_ = num_procs;
    Allocator alloc(amap);
    base_ = alloc.allocate(
        static_cast<std::size_t>(p_.blocks) * amap.blockBytes(), "rmw");
}

void
RmwMicro::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    const unsigned block = amap_->blockBytes();
    // Two processors alternate; each does read -> write, so the
    // directory repeatedly sees get_ro_request then upgrade_request
    // from the same node.
    const NodeId proc = static_cast<NodeId>(iter % 2);
    auto prog = builder.proc(proc);
    for (unsigned b = 0; b < p_.blocks; ++b) {
        const Addr a = base_ + static_cast<Addr>(b) * block;
        prog.read(a).write(a);
    }
    builder.barrier();
}

// --- FalseSharingMicro -----------------------------------------------------

FalseSharingMicro::FalseSharingMicro(const FalseSharingParams &params)
    : p_(params)
{
    info_.name = "micro_false_sharing";
    info_.description = "two processors RMW halves of each block";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
FalseSharingMicro::setup(const AddrMap &amap, NodeId num_procs,
                         std::uint64_t seed)
{
    cosmos_assert(num_procs >= 2, "need at least two processors");
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0xfa15e5ULL);
    Allocator alloc(amap);
    // Home the shared region at the last node so every participant's
    // coherence traffic is remote (and observable).
    alloc.allocate(
        static_cast<std::size_t>(num_procs - 1) * amap.pageBytes(),
        "padding");
    base_ = alloc.allocate(
        static_cast<std::size_t>(p_.blocks) * amap.blockBytes(),
        "false_shared");
}

void
FalseSharingMicro::emitIteration(int iter,
                                 runtime::ProgramBuilder &builder)
{
    (void)iter;
    const unsigned block = amap_->blockBytes();
    for (NodeId proc = 0; proc < 2; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + rng_->nextBelow(500));
        for (unsigned b = 0; b < p_.blocks; ++b) {
            const Addr a = base_ + static_cast<Addr>(b) * block +
                           proc * (block / 2);
            prog.read(a).write(a);
        }
    }
    builder.barrier();
}

} // namespace cosmos::wl
