#include "workloads/dsmc.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace cosmos::wl
{

Dsmc::Dsmc(const DsmcParams &params) : p_(params)
{
    info_.name = "dsmc";
    info_.description =
        "Monte Carlo particle simulation; producer-consumer transfer "
        "buffers under a slowly-stabilizing flow";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

NodeId
Dsmc::tileOf(double x, double y) const
{
    const double tx = static_cast<double>(p_.cellsX) / p_.procsX;
    const double ty = static_cast<double>(p_.cellsY) / p_.procsY;
    unsigned px = static_cast<unsigned>(x / tx);
    unsigned py = static_cast<unsigned>(y / ty);
    px = std::min(px, p_.procsX - 1);
    py = std::min(py, p_.procsY - 1);
    return static_cast<NodeId>(py * p_.procsX + px);
}

Addr
Dsmc::pairBufferBlock(NodeId src, NodeId dst, unsigned blk) const
{
    const std::size_t pair =
        static_cast<std::size_t>(src) * numProcs_ + dst;
    return pairBase_ +
           (pair * p_.pairBufferBlocks + blk) * amap_->blockBytes();
}

Addr
Dsmc::sharedBlock(NodeId dst, unsigned blk) const
{
    return sharedBase_ +
           (static_cast<std::size_t>(dst) * p_.sharedBlocks + blk) *
               amap_->blockBytes();
}

void
Dsmc::setup(const AddrMap &amap, NodeId num_procs, std::uint64_t seed)
{
    cosmos_assert(num_procs == p_.procsX * p_.procsY,
                  "dsmc needs ", p_.procsX * p_.procsY,
                  " processors, got ", num_procs);
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0xd53c0ULL);

    particles_.resize(p_.particles);
    for (auto &pt : particles_) {
        pt.x = rng_->nextDouble(0.0, p_.cellsX);
        pt.y = rng_->nextDouble(0.0, p_.cellsY);
        pt.vx = p_.thermalNoise * rng_->nextGaussian();
        pt.vy = p_.thermalNoise * rng_->nextGaussian();
    }

    Allocator alloc(amap);
    cellBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.cellsX) * p_.cellsY *
            amap.blockBytes(),
        "cells");
    pairBase_ = alloc.allocate(static_cast<std::size_t>(numProcs_) *
                                   numProcs_ * p_.pairBufferBlocks *
                                   amap.blockBytes(),
                               "pair_buffers");
    sharedBase_ = alloc.allocate(
        static_cast<std::size_t>(numProcs_) * p_.sharedBlocks *
            amap.blockBytes(),
        "shared_buffers");
    emaMigrants_.assign(
        static_cast<std::size_t>(numProcs_) * numProcs_, 0.0);
    sparseBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.sparseBlocks) * amap.blockBytes(),
        "field_stats");
}

void
Dsmc::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    cosmos_assert(amap_, "setup() not called");

    // --- Host physics: relax velocities toward the drift field and
    // move particles (reflecting walls).
    const double maxx = static_cast<double>(p_.cellsX);
    const double maxy = static_cast<double>(p_.cellsY);
    std::vector<NodeId> before(particles_.size());
    for (std::size_t i = 0; i < particles_.size(); ++i) {
        auto &pt = particles_[i];
        before[i] = tileOf(pt.x, pt.y);
        pt.vx += p_.relaxRate * (p_.drift[0] - pt.vx) +
                 0.02 * rng_->nextGaussian();
        pt.vy += p_.relaxRate * (p_.drift[1] - pt.vy) +
                 0.02 * rng_->nextGaussian();
        pt.x += pt.vx;
        pt.y += pt.vy;
        if (pt.x < 0.0 || pt.x >= maxx) {
            pt.vx = -pt.vx;
            pt.x = std::clamp(pt.x, 0.0, maxx - 1e-9);
        }
        if (pt.y < 0.0 || pt.y >= maxy) {
            pt.vy = -pt.vy;
            pt.y = std::clamp(pt.y, 0.0, maxy - 1e-9);
        }
    }

    // Count migrants per (src, dst) processor pair.
    std::vector<unsigned> migrants(
        static_cast<std::size_t>(numProcs_) * numProcs_, 0);
    for (std::size_t i = 0; i < particles_.size(); ++i) {
        const NodeId src = before[i];
        const NodeId dst = tileOf(particles_[i].x, particles_[i].y);
        if (src != dst) {
            ++migrants[static_cast<std::size_t>(src) * numProcs_ + dst];
            ++totalMigrants_;
        }
    }

    // --- Collision phase: owners update their own cells (private
    // after first touch; kept for an honest access stream).
    const unsigned block = amap_->blockBytes();
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + rng_->nextBelow(300));
        const unsigned tx = p_.cellsX / p_.procsX;
        const unsigned ty = p_.cellsY / p_.procsY;
        const unsigned x0 = (proc % p_.procsX) * tx;
        const unsigned y0 = (proc / p_.procsX) * ty;
        // Touch a sample of own cells.
        for (unsigned k = 0; k < 4; ++k) {
            const unsigned cx = x0 + rng_->nextBelow(tx);
            const unsigned cy = y0 + rng_->nextBelow(ty);
            const Addr a =
                cellBase_ +
                static_cast<Addr>(cy * p_.cellsX + cx) * block;
            prog.read(a).write(a);
        }
    }

    // --- Producer phase. Each migrant batch needs some buffer
    // blocks; a fixed fraction goes through the (src, dst) pair
    // buffer (single producer, fully deterministic signature) and
    // the rest through the destination's *shared* buffer, whose slot
    // assignment follows producer arrival order. With one tuple of
    // history the shared blocks' senders look random; with stable
    // migrant counts (the late, drift-dominated flow) deeper history
    // learns every interleaving (§3.5).
    // Blocks written for each destination; the flag marks *partial*
    // blocks (a batch's tail that is not full), which the consumer
    // must write back with a drained-count update. Partial blocks
    // are common while the flow is still developing and rare once
    // batch sizes stabilize, so the consumer's read-modify-write
    // signature fades over the run -- the Table 8 refs%% decline.
    std::vector<std::vector<std::pair<Addr, bool>>> consumed(
        numProcs_);
    // Per destination: (src, shared blocks wanted), in arrival order.
    std::vector<std::vector<std::pair<NodeId, unsigned>>> arrivals(
        numProcs_);
    std::vector<std::vector<std::pair<NodeId, unsigned>>> pair_use(
        numProcs_);
    std::vector<bool> partial_batch(
        static_cast<std::size_t>(numProcs_) * numProcs_, false);
    for (NodeId src = 0; src < numProcs_; ++src) {
        for (NodeId dst = 0; dst < numProcs_; ++dst) {
            const std::size_t flow =
                static_cast<std::size_t>(src) * numProcs_ + dst;
            // Buffer provisioning tracks the smoothed flow: noisy
            // while the drift field develops, frozen at steady state.
            emaMigrants_[flow] = 0.85 * emaMigrants_[flow] +
                                 0.15 * migrants[flow];
            const unsigned m = static_cast<unsigned>(
                emaMigrants_[flow] + 0.5);
            if (m == 0)
                continue;
            const unsigned blocks_needed =
                (m + p_.particlesPerBlock - 1) / p_.particlesPerBlock;
            unsigned shared = static_cast<unsigned>(
                blocks_needed * p_.sharedFraction + 0.5);
            unsigned in_pair = std::min(blocks_needed - shared,
                                        p_.pairBufferBlocks);
            shared = blocks_needed - in_pair;
            const bool partial = m % p_.particlesPerBlock != 0;
            if (in_pair > 0)
                pair_use[dst].emplace_back(src, in_pair);
            if (shared > 0)
                arrivals[dst].emplace_back(src, shared);
            partial_batch[static_cast<std::size_t>(src) * numProcs_ +
                          dst] = partial;
        }
    }
    // Pair-buffer writes (deterministic slots); the batch tail is
    // partial when the migrant count does not fill it.
    for (NodeId dst = 0; dst < numProcs_; ++dst) {
        for (const auto &[src, blocks] : pair_use[dst]) {
            auto prog = builder.proc(src);
            const bool partial = partial_batch
                [static_cast<std::size_t>(src) * numProcs_ + dst];
            for (unsigned b = 0; b < blocks; ++b) {
                const Addr a = pairBufferBlock(src, dst, b);
                prog.write(a);
                consumed[dst].emplace_back(
                    a, partial && b + 1 == blocks);
            }
        }
    }
    // Shared-buffer writes: arrival order determines slot
    // assignment. Producers arrive in one of two interleavings that
    // alternate with the pipelined compute/communicate phases: a
    // depth-1 predictor sees an ambiguous successor at every order-
    // dependent transition, while deeper history identifies the
    // phase and pins the whole interleaving down (§3.5). A small
    // residual perturbation keeps even deep history short of
    // perfect, like the paper's 92-93%% plateau.
    for (NodeId dst = 0; dst < numProcs_; ++dst) {
        std::sort(arrivals[dst].begin(), arrivals[dst].end());
        choiceOrder(arrivals[dst], 0xd53c0ULL + dst,
                    static_cast<unsigned>(iter) % 2);
        if (arrivals[dst].size() > 1 && rng_->nextBool(0.06)) {
            const std::size_t i =
                1 + rng_->nextBelow(arrivals[dst].size() - 1);
            std::swap(arrivals[dst][i - 1], arrivals[dst][i]);
        }
        unsigned slot = 0;
        for (const auto &[src, blocks] : arrivals[dst]) {
            auto prog = builder.proc(src);
            const bool partial = partial_batch
                [static_cast<std::size_t>(src) * numProcs_ + dst];
            for (unsigned b = 0; b < blocks; ++b) {
                const Addr a =
                    sharedBlock(dst, slot++ % p_.sharedBlocks);
                prog.write(a);
                consumed[dst].emplace_back(
                    a, partial && b + 1 == blocks);
                ++totalShared_;
            }
        }
    }
    builder.barrier();

    // --- Consumer phase: each destination reads every buffer block
    // written for it; partial blocks also get their drained-count
    // written back.
    for (NodeId dst = 0; dst < numProcs_; ++dst) {
        auto prog = builder.proc(dst);
        prog.think(1 + rng_->nextBelow(300));
        for (const auto &[a, write_back] : consumed[dst]) {
            prog.read(a);
            if (write_back)
                prog.write(a);
        }
    }
    emitSparseTouches(builder, *rng_, sparseBase_, p_.sparseBlocks,
                      p_.sparseTouchesPerIter, numProcs_, block);
    builder.barrier();

    ++iterationsRun_;
}

std::string
Dsmc::statsSummary() const
{
    std::ostringstream os;
    const double n = iterationsRun_ ? iterationsRun_ : 1;
    os << "particles=" << p_.particles
       << " migrants_per_iter=" << static_cast<double>(totalMigrants_) / n
       << " shared_blocks_per_iter="
       << static_cast<double>(totalShared_) / n;
    return os.str();
}

} // namespace cosmos::wl
