#include "workloads/unstructured.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace cosmos::wl
{

Unstructured::Unstructured(const UnstructuredParams &params) : p_(params)
{
    info_.name = "unstructured";
    info_.description =
        "unstructured-mesh solver; migratory and producer-consumer "
        "phases over the same blocks";
    info_.iterations = p_.iterations;
    info_.warmupIterations = p_.warmupIterations;
}

void
Unstructured::buildMesh()
{
    px_.resize(p_.meshNodes);
    py_.resize(p_.meshNodes);
    for (unsigned i = 0; i < p_.meshNodes; ++i) {
        px_[i] = rng_->nextDouble();
        py_[i] = rng_->nextDouble();
    }

    // k-nearest-neighbour edges, deduplicated.
    std::set<std::pair<unsigned, unsigned>> edge_set;
    for (unsigned i = 0; i < p_.meshNodes; ++i) {
        std::vector<std::pair<double, unsigned>> dist;
        dist.reserve(p_.meshNodes - 1);
        for (unsigned j = 0; j < p_.meshNodes; ++j) {
            if (i == j)
                continue;
            const double dx = px_[i] - px_[j];
            const double dy = py_[i] - py_[j];
            dist.emplace_back(dx * dx + dy * dy, j);
        }
        std::partial_sort(dist.begin(),
                          dist.begin() + p_.neighborsPerNode,
                          dist.end());
        for (unsigned k = 0; k < p_.neighborsPerNode; ++k) {
            const unsigned j = dist[k].second;
            edge_set.emplace(std::min(i, j), std::max(i, j));
        }
    }
    edges_.assign(edge_set.begin(), edge_set.end());
}

void
Unstructured::partition()
{
    // Recursive coordinate bisection: split the index set by median
    // along the wider axis until one part per processor.
    owner_.assign(p_.meshNodes, 0);
    struct Part
    {
        std::vector<unsigned> nodes;
        NodeId firstProc;
        NodeId numProcs;
    };
    std::vector<Part> work;
    {
        std::vector<unsigned> all(p_.meshNodes);
        std::iota(all.begin(), all.end(), 0u);
        work.push_back({std::move(all), 0, numProcs_});
    }
    while (!work.empty()) {
        Part part = std::move(work.back());
        work.pop_back();
        if (part.numProcs == 1) {
            for (unsigned n : part.nodes)
                owner_[n] = part.firstProc;
            continue;
        }
        double minx = 1.0, maxx = 0.0, miny = 1.0, maxy = 0.0;
        for (unsigned n : part.nodes) {
            minx = std::min(minx, px_[n]);
            maxx = std::max(maxx, px_[n]);
            miny = std::min(miny, py_[n]);
            maxy = std::max(maxy, py_[n]);
        }
        const bool split_x = (maxx - minx) >= (maxy - miny);
        std::sort(part.nodes.begin(), part.nodes.end(),
                  [&](unsigned a, unsigned b) {
                      return split_x ? px_[a] < px_[b]
                                     : py_[a] < py_[b];
                  });
        const NodeId left_procs = part.numProcs / 2;
        const std::size_t cut = part.nodes.size() * left_procs /
                                part.numProcs;
        Part left{{part.nodes.begin(),
                   part.nodes.begin() + static_cast<long>(cut)},
                  part.firstProc, left_procs};
        Part right{{part.nodes.begin() + static_cast<long>(cut),
                    part.nodes.end()},
                   static_cast<NodeId>(part.firstProc + left_procs),
                   static_cast<NodeId>(part.numProcs - left_procs)};
        work.push_back(std::move(left));
        work.push_back(std::move(right));
    }
}

void
Unstructured::setup(const AddrMap &amap, NodeId num_procs,
                    std::uint64_t seed)
{
    amap_ = &amap;
    numProcs_ = num_procs;
    rng_ = std::make_unique<Rng>(seed ^ 0x0257a0c7ULL);

    buildMesh();
    partition();

    Allocator alloc(amap);
    nodeBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.meshNodes) * amap.blockBytes(),
        "node_values");
    sparseBase_ = alloc.allocate(
        static_cast<std::size_t>(p_.sparseBlocks) * amap.blockBytes(),
        "face_metadata");

    // Classify edges and boundary nodes.
    crossEdges_.clear();
    std::vector<std::set<NodeId>> readers(p_.meshNodes);
    std::vector<std::set<unsigned>> boundary_set(numProcs_);
    std::vector<std::set<unsigned>> remote_set(numProcs_);
    for (const auto &[u, v] : edges_) {
        if (owner_[u] == owner_[v])
            continue;
        crossEdges_.emplace_back(u, v);
        readers[u].insert(owner_[v]);
        readers[v].insert(owner_[u]);
        boundary_set[owner_[u]].insert(u);
        boundary_set[owner_[v]].insert(v);
        remote_set[owner_[u]].insert(v);
        remote_set[owner_[v]].insert(u);
    }
    boundaryNodes_.assign(numProcs_, {});
    remoteReads_.assign(numProcs_, {});
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        boundaryNodes_[proc].assign(boundary_set[proc].begin(),
                                    boundary_set[proc].end());
        remoteReads_[proc].assign(remote_set[proc].begin(),
                                  remote_set[proc].end());
    }

    double total = 0.0, samples = 0.0;
    for (unsigned n = 0; n < p_.meshNodes; ++n) {
        if (!readers[n].empty()) {
            total += static_cast<double>(readers[n].size());
            samples += 1.0;
        }
    }
    meanConsumers_ = samples == 0.0 ? 0.0 : total / samples;
}

void
Unstructured::emitIteration(int iter, runtime::ProgramBuilder &builder)
{
    cosmos_assert(amap_, "setup() not called");
    (void)iter;
    const unsigned block = amap_->blockBytes();
    auto node_addr = [&](unsigned n) {
        return nodeBase_ + static_cast<Addr>(n) * block;
    };

    // --- Phase A: edge loop. The owner of the lower endpoint updates
    // both endpoint values inside critical sections (migratory).
    std::vector<std::vector<std::pair<unsigned, unsigned>>> edges_by(
        numProcs_);
    for (const auto &e : crossEdges_)
        edges_by[owner_[e.first]].push_back(e);
    // Both endpoint owners walk the cross edges ("each processor
    // updates both node values", §6.1), giving every boundary block
    // several migratory visitors per iteration whose order depends
    // on lock hand-off timing.
    std::vector<std::vector<std::pair<unsigned, unsigned>>> edges_rev(
        numProcs_);
    for (const auto &e : crossEdges_)
        edges_rev[owner_[e.second]].push_back(e);
    for (int sweep = 0; sweep < 2; ++sweep) {
        const auto &assignment = sweep == 0 ? edges_by : edges_rev;
        for (NodeId proc = 0; proc < numProcs_; ++proc) {
            auto prog = builder.proc(proc);
            prog.think(1 + rng_->nextBelow(400));
            auto order = assignment[proc];
            rng_->shuffle(order);
            for (const auto &[u, v] : order) {
                if (!rng_->nextBool(p_.edgeActiveProb))
                    continue;
                prog.lockAcq(u);
                prog.read(node_addr(u)).write(node_addr(u));
                prog.unlock(u);
                prog.lockAcq(v);
                prog.read(node_addr(v)).write(node_addr(v));
                prog.unlock(v);
            }
        }
        builder.barrier();
    }

    // --- Phase B: node loop. Owners recompute boundary nodes
    // (read-modify-write: the producer consumes its own data), then
    // read remote neighbours.
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + rng_->nextBelow(400));
        auto order = boundaryNodes_[proc];
        rng_->shuffle(order);
        for (unsigned n : order)
            prog.read(node_addr(n)).write(node_addr(n));
    }
    builder.barrier();
    for (NodeId proc = 0; proc < numProcs_; ++proc) {
        auto prog = builder.proc(proc);
        prog.think(1 + rng_->nextBelow(400));
        auto order = remoteReads_[proc];
        rng_->shuffle(order);
        for (unsigned n : order)
            prog.read(node_addr(n));
    }
    emitSparseTouches(builder, *rng_, sparseBase_, p_.sparseBlocks,
                      p_.sparseTouchesPerIter, numProcs_, block);
    builder.barrier();
}

double
Unstructured::meanConsumers() const
{
    return meanConsumers_;
}

std::vector<std::size_t>
Unstructured::partitionSizes() const
{
    std::vector<std::size_t> sizes(numProcs_, 0);
    for (NodeId owner : owner_)
        ++sizes[owner];
    return sizes;
}

std::string
Unstructured::statsSummary() const
{
    std::ostringstream os;
    os << "mesh_nodes=" << p_.meshNodes << " edges=" << edges_.size()
       << " cross_edges=" << crossEdges_.size()
       << " mean_consumers_per_boundary_node=" << meanConsumers_;
    return os.str();
}

} // namespace cosmos::wl
