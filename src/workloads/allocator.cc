#include "workloads/allocator.hh"

#include "common/log.hh"

namespace cosmos::wl
{

Allocator::Allocator(const AddrMap &amap) : amap_(amap)
{
}

Addr
Allocator::allocate(std::size_t bytes, const std::string &label)
{
    cosmos_assert(bytes > 0, "zero-byte allocation '", label, "'");
    const Addr base = next_;
    const std::size_t page = amap_.pageBytes();
    const std::size_t rounded = (bytes + page - 1) / page * page;
    next_ += rounded;
    regions_.push_back({label, base, rounded});
    return base;
}

Addr
Allocator::blockElem(Addr base, std::size_t idx) const
{
    return base + idx * amap_.blockBytes();
}

std::size_t
Allocator::bytesAllocated() const
{
    std::size_t n = 0;
    for (const auto &r : regions_)
        n += r.bytes;
    return n;
}

} // namespace cosmos::wl
