/**
 * @file
 * dsmc: miniature discrete-simulation Monte Carlo kernel (Table 4).
 *
 * Particles live in a Cartesian grid of cells partitioned into
 * per-processor tiles. Each iteration particles move; a particle that
 * crosses into another processor's tile is communicated through a
 * per-(source, destination) shared buffer: the producer *writes* the
 * buffer blocks without reading them first (which is why the
 * half-migratory optimization helps dsmc, §6.1) and the consumer
 * reads each block and then writes it to mark it consumed -- yielding
 * exactly the Table 8 transitions at cache and directory.
 *
 * Particle velocities relax slowly toward a global drift field, so
 * which buffers (and how many blocks of each) are exercised keeps
 * shifting for a long time before stabilizing: dsmc is the paper's
 * slowest application to reach steady-state prediction accuracy
 * (~300 iterations, §6.2 and Table 8). Overflow traffic beyond a
 * pair buffer's capacity lands in a per-destination shared buffer
 * that multiple producers compete for, reproducing the oscillating
 * patterns the paper says need history or filters.
 */

#ifndef COSMOS_WORKLOADS_DSMC_HH
#define COSMOS_WORKLOADS_DSMC_HH

#include <array>
#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace cosmos::wl
{

/** dsmc sizing knobs. */
struct DsmcParams
{
    unsigned cellsX = 16; ///< grid cells in x
    unsigned cellsY = 16; ///< grid cells in y
    unsigned procsX = 4;  ///< processor tiles in x
    unsigned procsY = 4;  ///< processor tiles in y
    unsigned particles = 1500;
    /** Blocks per (src, dst) pair buffer. */
    unsigned pairBufferBlocks = 4;
    /** Particle records per buffer block. */
    unsigned particlesPerBlock = 2;
    /** Blocks per per-destination shared buffer. */
    unsigned sharedBlocks = 4;
    /** Fraction of migrant blocks routed through the destination's
     *  shared buffer, where slot assignment follows producer arrival
     *  order: unpredictable with one tuple of history, learnable
     *  with more (the paper's §3.5 out-of-order mechanism). */
    double sharedFraction = 0.45;
    /** Per-iteration velocity relaxation toward the drift field;
     *  1/rate iterations is the flow's time constant. */
    double relaxRate = 0.01;
    double thermalNoise = 0.5;
    std::array<double, 2> drift = {0.55, 0.18};
    int iterations = 600;
    int warmupIterations = 2;
    /** Rarely-touched field-statistics blocks. */
    unsigned sparseBlocks = 2500;
    unsigned sparseTouchesPerIter = 50;
};

/** The dsmc kernel. */
class Dsmc : public Workload
{
  public:
    explicit Dsmc(const DsmcParams &params = {});

    const Info &info() const override { return info_; }
    void setup(const AddrMap &amap, NodeId num_procs,
               std::uint64_t seed) override;
    void emitIteration(int iter,
                       runtime::ProgramBuilder &builder) override;
    std::string statsSummary() const override;

  private:
    struct Particle
    {
        double x = 0.0, y = 0.0;
        double vx = 0.0, vy = 0.0;
    };

    NodeId tileOf(double x, double y) const;
    Addr pairBufferBlock(NodeId src, NodeId dst, unsigned blk) const;
    Addr sharedBlock(NodeId dst, unsigned blk) const;

    DsmcParams p_;
    Info info_;
    std::unique_ptr<Rng> rng_;
    const AddrMap *amap_ = nullptr;
    NodeId numProcs_ = 0;

    std::vector<Particle> particles_;
    Addr cellBase_ = 0;
    Addr pairBase_ = 0;
    Addr sharedBase_ = 0;
    Addr sparseBase_ = 0;

    /** Smoothed migrant counts per (src, dst): buffer provisioning
     *  follows average flow, so the set of exercised blocks shifts
     *  while the flow develops and freezes once it stabilizes. */
    std::vector<double> emaMigrants_;

    std::uint64_t totalMigrants_ = 0;
    std::uint64_t totalShared_ = 0;
    int iterationsRun_ = 0;
};

} // namespace cosmos::wl

#endif // COSMOS_WORKLOADS_DSMC_HH
