#include "accel/speculation.hh"

#include <sstream>
#include <unordered_map>

#include "cosmos/predictor_bank.hh"

namespace cosmos::accel
{

double
SpeculationReport::coverage() const
{
    return references == 0 ? 0.0
                           : static_cast<double>(correct + wrong) /
                                 static_cast<double>(references);
}

double
SpeculationReport::actionAccuracy() const
{
    const std::uint64_t acted = correct + wrong;
    return acted == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(acted);
}

double
SpeculationReport::estimatedSpeedupPercent(double f, double r) const
{
    if (references == 0)
        return 0.0;
    const double n = static_cast<double>(references);
    const double uncovered =
        static_cast<double>(references - correct - wrong);
    const double rel_time = (static_cast<double>(correct) * f +
                             uncovered * 1.0 +
                             static_cast<double>(wrong) * (1.0 + r)) /
                            n;
    return (1.0 / rel_time - 1.0) * 100.0;
}

std::string
SpeculationReport::format() const
{
    std::ostringstream os;
    os << "references=" << references << " actioned=" << actioned
       << " correct=" << correct << " wrong=" << wrong << "\n";
    for (const auto &[action, tally] : byAction) {
        os << "  " << toString(action) << ": taken=" << tally.taken
           << " correct=" << tally.correct << " wrong=" << tally.wrong
           << "\n";
    }
    os << "  recovery: none=" << recovery.none
       << " discard=" << recovery.discardFutureState
       << " rollback=" << recovery.checkpointRollback << "\n";
    return os.str();
}

SpeculationReport
evaluateSpeculation(const trace::Trace &t, const pred::CosmosConfig &cfg)
{
    pred::PredictorBank bank(t.numNodes, cfg);
    SpeculationReport rep;

    // Last message type per (receiver, role, block): action planning
    // needs the trigger message (§4.2).
    std::unordered_map<std::uint64_t, proto::MsgType> last_type;
    auto key = [](const trace::TraceRecord &r) {
        return (static_cast<std::uint64_t>(r.receiver) << 48) |
               (static_cast<std::uint64_t>(
                    r.role == proto::Role::directory ? 1 : 0)
                << 40) |
               r.block;
    };

    for (const auto &r : t.records) {
        auto &predictor = bank.predictor(r.receiver, r.role);
        const auto prediction = predictor.predict(r.block);
        const auto lt = last_type.find(key(r));

        if (prediction && lt != last_type.end()) {
            ++rep.references;
            const PlannedAction plan =
                planAction(r.role, r.receiver, lt->second, *prediction);
            if (plan.action != Action::none) {
                ++rep.actioned;
                ActionTally &tally = rep.byAction[plan.action];
                ++tally.taken;
                const bool hit =
                    prediction->sender == r.sender &&
                    prediction->type == r.type;
                if (hit) {
                    ++rep.correct;
                    ++tally.correct;
                } else {
                    ++rep.wrong;
                    ++tally.wrong;
                }
                switch (plan.recovery) {
                  case Recovery::none:
                    ++rep.recovery.none;
                    break;
                  case Recovery::discard_future_state:
                    ++rep.recovery.discardFutureState;
                    break;
                  case Recovery::checkpoint_rollback:
                    ++rep.recovery.checkpointRollback;
                    break;
                }
            }
        } else if (lt != last_type.end()) {
            // Lookup possible but no stored prediction yet.
            ++rep.references;
        }

        last_type[key(r)] = r.type;
        bank.observe(r);
    }
    return rep;
}

} // namespace cosmos::accel
