/**
 * @file
 * Mapping predicted coherence messages to protocol actions (§4.1,
 * Table 2) and classifying each action's mis-prediction recovery
 * requirement (§4.3).
 */

#ifndef COSMOS_ACCEL_ACTION_MAP_HH
#define COSMOS_ACCEL_ACTION_MAP_HH

#include <string>

#include "cosmos/tuple.hh"
#include "proto/messages.hh"

namespace cosmos::accel
{

/** Speculative protocol actions a module can trigger (§4.1). */
enum class Action
{
    none,
    /**
     * Directory: a read is predicted to be followed by a write from
     * the same node (read-modify-write); answer the read with an
     * exclusive copy.
     */
    reply_exclusive,
    /**
     * Cache: an invalidation of this block is predicted; replace the
     * block to the directory early (dynamic self-invalidation).
     */
    self_invalidate,
    /**
     * Cache: a read by another node is predicted; downgrade the block
     * and push data home early.
     */
    early_downgrade,
    /**
     * Directory: a read miss from a specific node is predicted;
     * forward data to that node before its request arrives
     * (producer-initiated communication).
     */
    forward_data,
    /**
     * Cache: a data response for this block is predicted (the local
     * processor will miss on it); prefetch it now.
     */
    prefetch,
};

/** Recovery requirement classes of §4.3. */
enum class Recovery
{
    /** Action moves the protocol between two legal states: no
     *  recovery needed (at worst an extra miss). */
    none,
    /** Future protocol state is buffered and discarded on a
     *  mis-prediction, never exposed to the processor. */
    discard_future_state,
    /** Processor and protocol both speculate; mis-prediction requires
     *  checkpoint rollback. */
    checkpoint_rollback,
};

/** A chosen action plus its recovery classification. */
struct PlannedAction
{
    Action action = Action::none;
    Recovery recovery = Recovery::none;
};

const char *toString(Action a);
const char *toString(Recovery r);

/**
 * Decide the speculative action a module takes given a prediction.
 *
 * @param role       role of the predicting module
 * @param self       node the predictor sits beside
 * @param last_type  type of the message that triggered the prediction
 * @param predicted  the predicted next incoming message
 */
PlannedAction planAction(proto::Role role, NodeId self,
                         proto::MsgType last_type,
                         const pred::MsgTuple &predicted);

} // namespace cosmos::accel

#endif // COSMOS_ACCEL_ACTION_MAP_HH
