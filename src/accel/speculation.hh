/**
 * @file
 * Trace-driven evaluation of prediction-triggered speculation.
 *
 * The paper stops short of integrating Cosmos into a timing protocol
 * (§1) and instead offers the §4.4 execution model. This evaluator
 * takes the same step the model does, but with measured quantities:
 * it replays a trace through a Cosmos bank, plans the §4.1 action for
 * every prediction, verifies each against the next actual message,
 * and folds the tallies into the model:
 *
 *   relative time = ( correct*f + uncovered*1 + wrong*(1 + r) ) / N
 *
 * With full coverage (every message actioned) this reduces exactly to
 * the paper's 1 / (p*f + (1-p)*(1+r)).
 */

#ifndef COSMOS_ACCEL_SPECULATION_HH
#define COSMOS_ACCEL_SPECULATION_HH

#include <cstdint>
#include <map>
#include <string>

#include "accel/action_map.hh"
#include "cosmos/cosmos_predictor.hh"
#include "trace/trace.hh"

namespace cosmos::accel
{

/** Outcome counts for one action kind. */
struct ActionTally
{
    std::uint64_t taken = 0;
    std::uint64_t correct = 0;
    std::uint64_t wrong = 0;
};

/** Recovery-class exposure of a run. */
struct RecoveryTally
{
    std::uint64_t none = 0;
    std::uint64_t discardFutureState = 0;
    std::uint64_t checkpointRollback = 0;
};

/** Results of evaluating speculation over one trace. */
struct SpeculationReport
{
    std::uint64_t references = 0;   ///< counted predictor lookups
    std::uint64_t actioned = 0;     ///< lookups that planned an action
    std::uint64_t correct = 0;      ///< actions the next message confirmed
    std::uint64_t wrong = 0;        ///< actions that mis-sped

    std::map<Action, ActionTally> byAction;
    RecoveryTally recovery;

    /** Fraction of references with a confirmed action. */
    double coverage() const;

    /** Accuracy among actioned references. */
    double actionAccuracy() const;

    /**
     * Model speedup percentage for residual-delay fraction @p f on
     * confirmed actions and penalty @p r on wrong ones.
     */
    double estimatedSpeedupPercent(double f, double r) const;

    /** Multi-line human-readable rendering. */
    std::string format() const;
};

/** Replay @p t through a Cosmos bank of configuration @p cfg. */
SpeculationReport evaluateSpeculation(const trace::Trace &t,
                                      const pred::CosmosConfig &cfg);

} // namespace cosmos::accel

#endif // COSMOS_ACCEL_SPECULATION_HH
