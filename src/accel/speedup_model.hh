/**
 * @file
 * The paper's analytic execution model (§4.4, Figure 5).
 *
 * If performance is determined purely by the number of coherence
 * messages on the critical path, the speedup from prediction is
 *
 *   time(no prediction) / time(prediction)
 *       = 1 / (p*f + (1 - p)*(1 + r))
 *
 * where p is prediction accuracy, f the fraction of delay remaining
 * on correctly predicted messages (f = 0: fully overlapped), and r
 * the mis-prediction penalty (r = 0.5: a mis-predicted message costs
 * 1.5x a normal one).
 */

#ifndef COSMOS_ACCEL_SPEEDUP_MODEL_HH
#define COSMOS_ACCEL_SPEEDUP_MODEL_HH

#include <vector>

namespace cosmos::accel
{

/** Inputs of the §4.4 model. */
struct SpeedupParams
{
    double p = 0.8; ///< prediction accuracy in [0, 1]
    double f = 0.3; ///< residual delay fraction on correct predictions
    double r = 1.0; ///< mis-prediction penalty
};

/** Relative execution time with prediction (1.0 = no change). */
double relativeTime(const SpeedupParams &params);

/** Speedup factor: 1 / relativeTime. */
double speedup(const SpeedupParams &params);

/** Speedup as a percentage improvement (paper's "56%" example). */
double speedupPercent(const SpeedupParams &params);

/** One (f, speedup) sample of a Figure 5 curve. */
struct SpeedupPoint
{
    double f;
    double speedupPercent;
};

/**
 * A Figure 5 curve: sweep f over [0, 1] at fixed p and r.
 *
 * @param p      prediction accuracy (the figure uses 0.8)
 * @param r      mis-prediction penalty of this curve
 * @param steps  number of samples (inclusive of endpoints)
 */
std::vector<SpeedupPoint> figure5Curve(double p, double r,
                                       unsigned steps = 11);

} // namespace cosmos::accel

#endif // COSMOS_ACCEL_SPEEDUP_MODEL_HH
