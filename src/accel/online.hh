/**
 * @file
 * Live predictor-driven protocol acceleration -- the paper's "next
 * step" (§8): Cosmos predictors run *beside* the directories while
 * the machine executes, and their predictions trigger §4.1 actions
 * through the DirectorySpeculation hook:
 *
 *  - reply-exclusive: a read predicted to be followed by an upgrade
 *    from the same node is answered with an exclusive copy, removing
 *    the upgrade transaction from the critical path;
 *  - voluntary recall: when the predictor expects the next message
 *    for an exclusively-held block to be a read by another node, the
 *    owner's copy is recalled home early, so the eventual read is
 *    served from memory without the three-hop owner round trip;
 *  - forwarding gate: under --forwarding with forwardingPredicted,
 *    each owner recall consults the predictor before marking the
 *    recall forwarded -- predictable blocks take the three-hop
 *    direct path, unpredictable ones the plain home reply.
 *
 * All three actions move the protocol between legal states, so a
 * wrong prediction costs only extra misses/messages (§4.3, class 1).
 */

#ifndef COSMOS_ACCEL_ONLINE_HH
#define COSMOS_ACCEL_ONLINE_HH

#include <cstdint>
#include <unordered_map>

#include "cosmos/predictor_bank.hh"
#include "proto/machine.hh"

namespace cosmos::accel
{

/** Knobs of the online accelerator. */
struct OnlineOptions
{
    /** Configuration of the per-directory Cosmos predictors. The
     *  filter matters here: speculation should not flip on one
     *  noisy message. */
    pred::CosmosConfig predictor{2, 1};
    bool enableReplyExclusive = true;
    bool enableVoluntaryRecall = true;
    /**
     * Answer the directory's forwardOwnerTransfer queries (only
     * issued when MachineConfig::forwardingPredicted is set): forward
     * the owner's data three-hop when the block's directory-side
     * traffic has been predictable lately, reply through home when it
     * has not. Off = always forward, the static §2.1 behavior.
     */
    bool enableForwardGate = false;
    /**
     * Act only when the block's recent prediction streak reaches
     * this length (0 = act on any prediction). §4.2's timing
     * concern: acting on an unproven prediction wastes work on
     * unpredictable blocks, so gating trades coverage for action
     * accuracy.
     */
    unsigned minConfidence = 0;
};

/** Outcome counters of the accelerator itself. */
struct OnlineStats
{
    std::uint64_t rmwQueries = 0;  ///< grantExclusiveOnRead calls
    std::uint64_t rmwGrants = 0;   ///< ... answered "grant"
    std::uint64_t recallTriggers = 0; ///< predictions suggesting recall
    std::uint64_t recallsStarted = 0; ///< accepted by the directory
    std::uint64_t gatedByConfidence = 0; ///< actions suppressed
    std::uint64_t fwdQueries = 0;  ///< forwardOwnerTransfer calls
    std::uint64_t fwdGranted = 0;  ///< ... answered "forward 3-hop"
};

/**
 * Attaches Cosmos predictors to a live machine and converts their
 * predictions into speculative directory actions.
 *
 * Construct after the machine; the constructor registers the object
 * as a message observer and as every directory's speculation hook.
 * The accelerator must outlive the machine's use.
 */
class OnlineAccelerator : public proto::MsgObserver,
                          public proto::DirectorySpeculation
{
  public:
    OnlineAccelerator(proto::Machine &machine,
                      const OnlineOptions &options);

    // proto::MsgObserver
    void onMessage(const proto::Msg &m, proto::Role role,
                   int iteration, Tick when) override;

    // proto::DirectorySpeculation
    bool grantExclusiveOnRead(Addr block, NodeId requester) override;
    bool forwardOwnerTransfer(Addr block, NodeId owner,
                              NodeId requester,
                              bool wantWritable) override;

    const OnlineStats &stats() const { return stats_; }
    const pred::PredictorBank &bank() const { return bank_; }

  private:
    /** Recent per-(directory, block) prediction streak length. */
    std::uint8_t &confidence(NodeId dir, Addr block);
    bool confident(NodeId dir, Addr block);

    proto::Machine &machine_;
    OnlineOptions options_;
    pred::PredictorBank bank_;
    OnlineStats stats_;
    std::unordered_map<std::uint64_t, std::uint8_t> confidence_;
};

} // namespace cosmos::accel

#endif // COSMOS_ACCEL_ONLINE_HH
