#include "accel/action_map.hh"

namespace cosmos::accel
{

using proto::MsgType;
using proto::Role;

const char *
toString(Action a)
{
    switch (a) {
      case Action::none:            return "none";
      case Action::reply_exclusive: return "reply_exclusive";
      case Action::self_invalidate: return "self_invalidate";
      case Action::early_downgrade: return "early_downgrade";
      case Action::forward_data:    return "forward_data";
      case Action::prefetch:        return "prefetch";
    }
    return "?";
}

const char *
toString(Recovery r)
{
    switch (r) {
      case Recovery::none:                 return "none";
      case Recovery::discard_future_state: return "discard_future_state";
      case Recovery::checkpoint_rollback:  return "checkpoint_rollback";
    }
    return "?";
}

PlannedAction
planAction(Role role, NodeId self, MsgType last_type,
           const pred::MsgTuple &predicted)
{
    (void)self;
    if (role == Role::directory) {
        switch (predicted.type) {
          case MsgType::upgrade_request:
            // Read-modify-write: if the node that just read is
            // predicted to upgrade, grant exclusive on the read.
            if (last_type == MsgType::get_ro_request)
                return {Action::reply_exclusive,
                        Recovery::discard_future_state};
            return {Action::none, Recovery::none};
          case MsgType::get_ro_request:
          case MsgType::get_rw_request:
            // A miss from a known node is coming: push the data.
            return {Action::forward_data,
                    Recovery::discard_future_state};
          default:
            return {Action::none, Recovery::none};
        }
    }

    // Cache-side predictions.
    switch (predicted.type) {
      case MsgType::inval_rw_request:
      case MsgType::inval_ro_request:
        // Our copy will be invalidated: self-invalidate early
        // (dynamic self-invalidation; legal-state move).
        return {Action::self_invalidate, Recovery::none};
      case MsgType::downgrade_request:
        return {Action::early_downgrade, Recovery::none};
      case MsgType::get_ro_response:
      case MsgType::get_rw_response:
      case MsgType::upgrade_response:
        // The local processor is about to miss on this block.
        return {Action::prefetch, Recovery::checkpoint_rollback};
      default:
        return {Action::none, Recovery::none};
    }
}

} // namespace cosmos::accel
