#include "accel/speedup_model.hh"

#include "common/log.hh"

namespace cosmos::accel
{

double
relativeTime(const SpeedupParams &params)
{
    cosmos_assert(params.p >= 0.0 && params.p <= 1.0,
                  "accuracy must be in [0, 1]");
    cosmos_assert(params.f >= 0.0, "f must be non-negative");
    cosmos_assert(params.r >= 0.0, "r must be non-negative");
    return params.p * params.f + (1.0 - params.p) * (1.0 + params.r);
}

double
speedup(const SpeedupParams &params)
{
    const double t = relativeTime(params);
    cosmos_assert(t > 0.0, "degenerate model: zero relative time");
    return 1.0 / t;
}

double
speedupPercent(const SpeedupParams &params)
{
    return (speedup(params) - 1.0) * 100.0;
}

std::vector<SpeedupPoint>
figure5Curve(double p, double r, unsigned steps)
{
    cosmos_assert(steps >= 2, "curve needs at least two samples");
    std::vector<SpeedupPoint> curve;
    curve.reserve(steps);
    for (unsigned i = 0; i < steps; ++i) {
        const double f =
            static_cast<double>(i) / static_cast<double>(steps - 1);
        curve.push_back(
            {f, speedupPercent(SpeedupParams{p, f, r})});
    }
    return curve;
}

} // namespace cosmos::accel
