#include "accel/online.hh"

namespace cosmos::accel
{

OnlineAccelerator::OnlineAccelerator(proto::Machine &machine,
                                     const OnlineOptions &options)
    : machine_(machine), options_(options),
      bank_(machine.numNodes(), options.predictor)
{
    machine_.addObserver(this);
    for (NodeId n = 0; n < machine_.numNodes(); ++n)
        machine_.directory(n).setSpeculation(this);
}

std::uint8_t &
OnlineAccelerator::confidence(NodeId dir, Addr block)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(dir) << 48) | block;
    return confidence_[key];
}

bool
OnlineAccelerator::confident(NodeId dir, Addr block)
{
    if (options_.minConfidence == 0)
        return true;
    if (confidence(dir, block) >= options_.minConfidence)
        return true;
    ++stats_.gatedByConfidence;
    return false;
}

void
OnlineAccelerator::onMessage(const proto::Msg &m, proto::Role role,
                             int iteration, Tick when)
{
    (void)when;
    trace::TraceRecord r;
    r.block = m.block;
    r.receiver = m.dst;
    r.sender = m.src;
    r.type = m.type;
    r.role = role;
    r.iteration = iteration;

    if (role == proto::Role::directory) {
        // Track the block's recent streak before folding the message
        // into the predictor.
        const auto before =
            bank_.predictor(m.dst, role).predict(m.block);
        std::uint8_t &conf = confidence(m.dst, m.block);
        if (before && before->sender == m.src &&
            before->type == m.type) {
            if (conf < 8)
                ++conf;
        } else {
            conf = 0;
        }
    }
    bank_.observe(r);

    if (!options_.enableVoluntaryRecall ||
        role != proto::Role::directory) {
        return;
    }

    // §4.2 trigger: right after any directory-side message for the
    // block, if the predicted next message is a read by a node other
    // than the current owner, pull the data home now.
    auto &dir = machine_.directory(m.dst);
    const auto prediction =
        bank_.predictor(m.dst, proto::Role::directory)
            .predict(m.block);
    if (!prediction ||
        prediction->type != proto::MsgType::get_ro_request) {
        return;
    }
    const NodeId owner = dir.owner(m.block);
    if (owner == invalid_node || owner == prediction->sender)
        return;
    if (!confident(m.dst, m.block))
        return;
    ++stats_.recallTriggers;
    if (dir.voluntaryRecall(m.block))
        ++stats_.recallsStarted;
}

bool
OnlineAccelerator::forwardOwnerTransfer(Addr block, NodeId owner,
                                        NodeId requester,
                                        bool wantWritable)
{
    (void)owner;
    (void)requester;
    (void)wantWritable;
    if (!options_.enableForwardGate)
        return true;
    ++stats_.fwdQueries;
    // Delivery probes run before handlers, so the confidence streak
    // already includes the triggering request: it survived only if
    // the predictor anticipated that request -- sender (the
    // requester) and type both matched. A predictable block keeps
    // the three-hop fast path; an unpredictable one falls back to
    // the home reply, whose extra hop buys the directory a serialized
    // view of the hand-off.
    const NodeId home = machine_.addrMap().home(block);
    const bool fwd = confident(home, block);
    if (fwd)
        ++stats_.fwdGranted;
    return fwd;
}

bool
OnlineAccelerator::grantExclusiveOnRead(Addr block, NodeId requester)
{
    if (!options_.enableReplyExclusive)
        return false;
    ++stats_.rmwQueries;
    const NodeId home = machine_.addrMap().home(block);
    const auto prediction =
        bank_.predictor(home, proto::Role::directory).predict(block);
    const bool grant =
        prediction &&
        prediction->type == proto::MsgType::upgrade_request &&
        prediction->sender == requester &&
        confident(home, block);
    if (grant)
        ++stats_.rmwGrants;
    return grant;
}

} // namespace cosmos::accel
