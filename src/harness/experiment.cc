#include "harness/experiment.hh"

#include "common/log.hh"
#include "proto/invariants.hh"
#include "proto/machine.hh"
#include "runtime/processor.hh"
#include "trace/trace.hh"

namespace cosmos::harness
{

RunResult
runWorkload(const RunConfig &cfg)
{
    auto workload = wl::makeWorkload(cfg.app);
    return runWorkload(cfg, *workload);
}

ProtocolTotals
collectTotals(const proto::Machine &machine)
{
    ProtocolTotals t;
    for (NodeId n = 0; n < machine.numNodes(); ++n) {
        const auto &c = machine.cache(n).stats();
        t.loads += c.loads;
        t.stores += c.stores;
        t.readMisses += c.readMisses;
        t.writeMisses += c.writeMisses;
        t.upgrades += c.upgrades;
        t.evictions += c.evictions;
        t.staleInvals += c.staleInvals;
        const auto &d = machine.directory(n).stats();
        t.invalsSent += d.invalsSent;
        t.exclusiveGrants += d.exclusiveGrants;
        t.recalls += d.recalls;
        t.forwardsSent += d.forwardsSent;
        t.forwardsSuppressed += d.forwardsSuppressed;
        t.fwdAcks += d.fwdAcks;
    }
    return t;
}

RunResult
runWorkload(const RunConfig &cfg, wl::Workload &workload)
{
    proto::Machine machine(cfg.machine);
    runtime::Runtime rt(machine);

    workload.setup(machine.addrMap(), machine.numNodes(), cfg.seed);
    const auto &info = workload.info();
    const int iterations =
        cfg.iterations >= 0 ? cfg.iterations : info.iterations;
    const int warmup = cfg.warmupIterations >= 0
                           ? cfg.warmupIterations
                           : info.warmupIterations;
    cosmos_assert(warmup <= iterations,
                  "warm-up exceeds iteration count");

    RunResult result;
    result.trace.app = info.name;
    result.trace.numNodes = machine.numNodes();
    result.trace.blockBytes = cfg.machine.blockBytes;
    result.trace.iterations = iterations;
    result.trace.seed = cfg.seed;

    trace::TraceRecorder recorder(result.trace, warmup);
    machine.addObserver(&recorder);

    for (int iter = 0; iter < iterations; ++iter) {
        machine.setIteration(iter);
        runtime::ProgramBuilder builder(machine.numNodes());
        workload.emitIteration(iter, builder);
        rt.runPrograms(builder.take());
        if (cfg.checkInvariants) {
            const auto violations = proto::checkCoherence(machine);
            if (!violations.empty()) {
                cosmos_panic("coherence violation after iteration ",
                             iter, " of ", info.name, ": ",
                             violations.front(), " (",
                             violations.size(), " total)");
            }
        }
    }

    result.workloadStats = workload.statsSummary();
    result.network = machine.networkStats();
    result.totals = collectTotals(machine);
    result.finalTime = machine.eventQueue().now();
    result.events = machine.eventQueue().executed();
    if (cfg.metrics != nullptr)
        machine.publishMetrics(*cfg.metrics);
    return result;
}

} // namespace cosmos::harness
