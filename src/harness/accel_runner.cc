#include "harness/accel_runner.hh"

#include "common/log.hh"
#include "proto/invariants.hh"
#include "runtime/processor.hh"

namespace cosmos::harness
{

AcceleratedRunResult
runAccelerated(const RunConfig &cfg, const accel::OnlineOptions &opts)
{
    auto workload = wl::makeWorkload(cfg.app);
    return runAccelerated(cfg, *workload, opts);
}

AcceleratedRunResult
runAccelerated(const RunConfig &cfg, wl::Workload &workload,
               const accel::OnlineOptions &opts)
{
    proto::Machine machine(cfg.machine);
    runtime::Runtime rt(machine);
    accel::OnlineAccelerator accelerator(machine, opts);

    workload.setup(machine.addrMap(), machine.numNodes(), cfg.seed);
    const auto &info = workload.info();
    const int iterations =
        cfg.iterations >= 0 ? cfg.iterations : info.iterations;
    const int warmup = cfg.warmupIterations >= 0
                           ? cfg.warmupIterations
                           : info.warmupIterations;
    cosmos_assert(warmup <= iterations,
                  "warm-up exceeds iteration count");

    AcceleratedRunResult result;
    result.run.trace.app = info.name;
    result.run.trace.numNodes = machine.numNodes();
    result.run.trace.blockBytes = cfg.machine.blockBytes;
    result.run.trace.iterations = iterations;
    result.run.trace.seed = cfg.seed;

    trace::TraceRecorder recorder(result.run.trace, warmup);
    machine.addObserver(&recorder);

    for (int iter = 0; iter < iterations; ++iter) {
        machine.setIteration(iter);
        runtime::ProgramBuilder builder(machine.numNodes());
        workload.emitIteration(iter, builder);
        rt.runPrograms(builder.take());
        if (cfg.checkInvariants) {
            const auto violations = proto::checkCoherence(machine);
            if (!violations.empty()) {
                cosmos_panic("coherence violation after iteration ",
                             iter, " of accelerated ", info.name,
                             ": ", violations.front());
            }
        }
    }

    result.run.workloadStats = workload.statsSummary();
    result.run.network = machine.networkStats();
    result.run.totals = collectTotals(machine);
    result.run.finalTime = machine.eventQueue().now();
    result.run.events = machine.eventQueue().executed();
    result.accel = accelerator.stats();
    result.predictorAccuracyPercent =
        accelerator.bank().accuracy().overall().percent();
    return result;
}

} // namespace cosmos::harness
