/**
 * @file
 * Figure artifacts: render measured signature graphs (the Figures 6/7
 * view) as Graphviz dot, and tabular results as CSV, so the paper's
 * figures can be regenerated graphically from a run.
 */

#ifndef COSMOS_HARNESS_FIGURES_HH
#define COSMOS_HARNESS_FIGURES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "cosmos/arc_stats.hh"

namespace cosmos::harness
{

/**
 * Emit a Graphviz digraph of the dominant message signature.
 *
 * Nodes are message types; each arc is labelled "hit%/ref%" exactly
 * like the paper's Figures 6/7, and dominant arcs (>= the threshold
 * share of references) are drawn bold.
 *
 * @param arcs              measured transition statistics
 * @param title             graph label (e.g. "moldyn at the cache")
 * @param os                output stream
 * @param min_ref_percent   drop arcs below this share
 * @param bold_ref_percent  draw arcs at/above this share in bold
 */
void writeSignatureDot(const pred::ArcStats &arcs,
                       const std::string &title, std::ostream &os,
                       double min_ref_percent = 2.0,
                       double bold_ref_percent = 10.0);

/** Write a header row plus data rows as RFC-4180-ish CSV. */
void writeCsv(std::ostream &os,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows);

/**
 * Convenience: write signature dot files for one application run
 * (cache + directory) into @p directory; returns the file paths.
 */
std::vector<std::string> dumpSignatureDots(
    const std::string &app, const pred::ArcStats &cache_arcs,
    const pred::ArcStats &dir_arcs, const std::string &directory);

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_FIGURES_HH
