#include "harness/trace_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/log.hh"
#include "trace/trace_io.hh"

namespace cosmos::harness
{

namespace
{

/**
 * One cache slot. The once-flag serializes *per key*: two workers
 * asking for the same trace never simulate it twice (the second
 * blocks until the first finishes), while requests for different
 * keys simulate fully in parallel -- the map mutex is never held
 * across a simulation.
 */
struct CacheEntry
{
    std::once_flag once;
    trace::Trace trace;
};

std::mutex cache_mutex;
// node-based map: CacheEntry references stay valid across inserts.
std::map<std::string, CacheEntry> cache;

std::string
cacheKey(const std::string &app, int iterations, OwnerReadPolicy policy,
         std::uint64_t seed)
{
    // Same format the old ostringstream produced (lowercase hex seed,
    // no leading zeros) so on-disk COSMOS_TRACE_CACHE entries stay
    // valid, but one snprintf instead of a stream: this runs under
    // the cache map mutex on every fetch.
    char suffix[48];
    std::snprintf(suffix, sizeof(suffix), "_it%d_%s_s%llx", iterations,
                  policy == OwnerReadPolicy::half_migratory ? "hm"
                                                            : "dg",
                  static_cast<unsigned long long>(seed));
    return app + suffix;
}

} // namespace

const trace::Trace &
cachedTrace(const std::string &app, int iterations,
            OwnerReadPolicy policy, std::uint64_t seed)
{
    const std::string key = cacheKey(app, iterations, policy, seed);
    CacheEntry *entry;
    {
        std::lock_guard<std::mutex> guard(cache_mutex);
        entry = &cache[key];
    }

    std::call_once(entry->once, [&] {
        // Disk cache, if configured. A corrupt or half-written file
        // (another process died mid-write, stale format) is not
        // fatal: fall back to re-simulating.
        const char *dir = std::getenv("COSMOS_TRACE_CACHE");
        std::string path;
        if (dir) {
            std::filesystem::create_directories(dir);
            path = std::string(dir) + "/" + key + ".trace";
            if (auto loaded = trace::tryLoadTrace(path)) {
                entry->trace = std::move(*loaded);
                return;
            }
            if (std::filesystem::exists(path))
                cosmos_warn("corrupt trace cache file ", path,
                            "; re-simulating");
        }

        RunConfig cfg;
        cfg.app = app;
        cfg.iterations = iterations;
        cfg.seed = seed;
        cfg.machine.ownerReadPolicy = policy;
        // Invariants are covered by the test suite; skip them on the
        // (much longer) bench runs.
        cfg.checkInvariants = false;
        RunResult result = runWorkload(cfg);

        if (dir)
            trace::saveTraceAtomic(path, result.trace);
        entry->trace = std::move(result.trace);
    });
    return entry->trace;
}

void
clearTraceCache()
{
    std::lock_guard<std::mutex> guard(cache_mutex);
    cache.clear();
}

} // namespace cosmos::harness
