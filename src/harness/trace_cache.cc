#include "harness/trace_cache.hh"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>

#include "common/log.hh"
#include "trace/trace_io.hh"

namespace cosmos::harness
{

namespace
{

std::mutex cache_mutex;
std::map<std::string, trace::Trace> cache;

std::string
cacheKey(const std::string &app, int iterations, OwnerReadPolicy policy,
         std::uint64_t seed)
{
    std::ostringstream os;
    os << app << "_it" << iterations << "_"
       << (policy == OwnerReadPolicy::half_migratory ? "hm" : "dg")
       << "_s" << std::hex << seed;
    return os.str();
}

} // namespace

const trace::Trace &
cachedTrace(const std::string &app, int iterations,
            OwnerReadPolicy policy, std::uint64_t seed)
{
    const std::string key = cacheKey(app, iterations, policy, seed);
    std::lock_guard<std::mutex> guard(cache_mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    // Disk cache, if configured.
    const char *dir = std::getenv("COSMOS_TRACE_CACHE");
    std::string path;
    if (dir) {
        std::filesystem::create_directories(dir);
        path = std::string(dir) + "/" + key + ".trace";
        if (std::filesystem::exists(path)) {
            auto [pos, inserted] =
                cache.emplace(key, trace::loadTrace(path));
            cosmos_assert(inserted, "duplicate trace cache key");
            return pos->second;
        }
    }

    RunConfig cfg;
    cfg.app = app;
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg.machine.ownerReadPolicy = policy;
    // Invariants are covered by the test suite; skip them on the
    // (much longer) bench runs.
    cfg.checkInvariants = false;
    RunResult result = runWorkload(cfg);

    if (dir)
        trace::saveTrace(path, result.trace);

    auto [pos, inserted] = cache.emplace(key, std::move(result.trace));
    cosmos_assert(inserted, "duplicate trace cache key");
    return pos->second;
}

void
clearTraceCache()
{
    std::lock_guard<std::mutex> guard(cache_mutex);
    cache.clear();
}

} // namespace cosmos::harness
