/**
 * @file
 * End-to-end experiment driver: build the target machine, run a
 * workload kernel on it, and capture the coherence-message trace the
 * predictor evaluations consume. This is the reproduction of the
 * paper's methodology pipeline (§5): WWT II simulation -> Stache
 * message traces -> offline Cosmos evaluation.
 */

#ifndef COSMOS_HARNESS_EXPERIMENT_HH
#define COSMOS_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "net/network_stats.hh"
#include "obs/metrics.hh"
#include "proto/machine.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace cosmos::harness
{

/** What to simulate. */
struct RunConfig
{
    std::string app;
    MachineConfig machine{};
    /** Traced iterations; -1 uses the workload's default. */
    int iterations = -1;
    /** Override the workload's warm-up; -1 uses its default. */
    int warmupIterations = -1;
    std::uint64_t seed = 0x5eedc05305ULL;
    /** Check whole-machine coherence invariants between iterations. */
    bool checkInvariants = true;
    /**
     * When set, the machine publishes its observability surface
     * (sim.*, net.*, proto.* -- see proto::Machine::publishMetrics)
     * here after the run, before the machine is torn down.
     */
    obs::Registry *metrics = nullptr;
};

/** Whole-machine protocol activity totals, summed over nodes. */
struct ProtocolTotals
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalsSent = 0;
    std::uint64_t exclusiveGrants = 0;
    std::uint64_t recalls = 0;
    std::uint64_t evictions = 0;
    std::uint64_t staleInvals = 0;
    /** Owner recalls sent with the forwarded mark (three-hop). */
    std::uint64_t forwardsSent = 0;
    /** Recalls the speculation hook demoted to home replies. */
    std::uint64_t forwardsSuppressed = 0;
    /** fwd_ack receipts the directories consumed. */
    std::uint64_t fwdAcks = 0;
};

/** What came out. */
struct RunResult
{
    trace::Trace trace;
    std::string workloadStats;
    net::NetworkStats network;
    ProtocolTotals totals;
    Tick finalTime = 0;
    std::uint64_t events = 0;
};

/** Sum protocol counters over a machine's caches and directories. */
ProtocolTotals collectTotals(const proto::Machine &machine);

/** Run the named workload (RunConfig::app) on a fresh machine. */
RunResult runWorkload(const RunConfig &cfg);

/** Run a caller-constructed workload instance. */
RunResult runWorkload(const RunConfig &cfg, wl::Workload &workload);

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_EXPERIMENT_HH
