/**
 * @file
 * Drive any forge::TrafficSource through the simulated machine.
 *
 * The twin of harness::runWorkload for the trace front door: instead
 * of a workload kernel emitting per-iteration programs, accesses are
 * pulled from a source in chunks, projected onto per-processor
 * programs (preserving each processor's order), and executed with a
 * global barrier between chunks. The captured coherence-message
 * trace is the same artifact a kernel run produces, so predictors,
 * census, sweeps, and benches consume it unchanged.
 */

#ifndef COSMOS_HARNESS_TRAFFIC_HH
#define COSMOS_HARNESS_TRAFFIC_HH

#include <functional>

#include "common/config.hh"
#include "forge/traffic_source.hh"
#include "harness/experiment.hh"

namespace cosmos::harness
{

/** How to replay a traffic stream. */
struct TrafficConfig
{
    MachineConfig machine{};

    /**
     * Accesses pulled per iteration (one barrier-delimited chunk).
     * Within a chunk processors run concurrently, like the source
     * machine the trace was captured on.
     */
    std::size_t opsPerIteration = 2048;

    /**
     * Iteration cap; -1 runs a bounded source to exhaustion.
     * Unbounded sources (the forge) require a cap.
     */
    int maxIterations = -1;

    /** Leading iterations excluded from the trace (§5 warm-up).
     *  External captures usually already exclude start-up, so the
     *  default keeps every record. */
    int warmupIterations = 0;

    /** Check whole-machine coherence invariants between chunks. */
    bool checkInvariants = false;

    /** Optional observability export (see RunConfig::metrics). */
    obs::Registry *metrics = nullptr;

    /**
     * Per-chunk trace drain. When set, the records captured during
     * each chunk are handed to the sink after the chunk's barrier
     * and dropped -- the returned RunResult's trace carries metadata
     * only (records stays empty), so an arbitrarily long source runs
     * in constant memory. Records arrive in trace order, at most one
     * chunk's worth per call.
     */
    std::function<void(const std::vector<trace::TraceRecord> &)>
        recordSink;
};

/**
 * Replay @p source through a fresh machine.
 *
 * Fatal (with the source's file:line diagnostic) when the source
 * fails mid-stream -- a malformed trace line is a hard error, never
 * a silently truncated run.
 */
RunResult runTraffic(const TrafficConfig &cfg,
                     forge::TrafficSource &source);

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_TRAFFIC_HH
