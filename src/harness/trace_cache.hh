/**
 * @file
 * Process-wide trace cache.
 *
 * The paper evaluates many predictor configurations over the *same*
 * traces (Tables 5-8 all reuse one set of runs). Simulation is the
 * expensive step, so benches fetch traces through this cache: each
 * distinct (app, iterations, policy, seed) is simulated once per
 * process and optionally persisted to the directory named by the
 * COSMOS_TRACE_CACHE environment variable for reuse across binaries.
 *
 * cachedTrace is thread-safe: a per-key once-flag guarantees one
 * simulation per key even under concurrent fetches, and distinct
 * keys simulate in parallel. Disk persistence is write-temp+rename,
 * so concurrent binaries never read a half-written trace; a corrupt
 * cache file falls back to re-simulation instead of aborting.
 */

#ifndef COSMOS_HARNESS_TRACE_CACHE_HH
#define COSMOS_HARNESS_TRACE_CACHE_HH

#include <string>

#include "harness/experiment.hh"
#include "trace/trace.hh"

namespace cosmos::harness
{

/**
 * Fetch (simulating on first use) the trace of a standard paper run.
 *
 * @param app         workload name ("appbt", ... )
 * @param iterations  traced iterations; -1 = workload default
 * @param policy      owner-read policy of the protocol
 * @param seed        simulation seed
 */
const trace::Trace &cachedTrace(
    const std::string &app, int iterations = -1,
    OwnerReadPolicy policy = OwnerReadPolicy::half_migratory,
    std::uint64_t seed = 0x5eedc05305ULL);

/**
 * Drop all in-memory cached traces (tests use this). Not safe
 * concurrently with in-flight cachedTrace calls, whose references
 * it would invalidate.
 */
void clearTraceCache();

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_TRACE_CACHE_HH
