/**
 * @file
 * One-call parallel sweeps over the standard paper traces.
 *
 * runSweep() glues the replay subsystem to the process-wide trace
 * cache: jobs fetch their traces through harness::cachedTrace (so
 * the five simulations run at most once, concurrently on first use)
 * and replay through a replay::SweepEngine. Results are in job
 * order and bit-identical to a serial replay of each cell.
 */

#ifndef COSMOS_HARNESS_SWEEP_HH
#define COSMOS_HARNESS_SWEEP_HH

#include <vector>

#include "obs/metrics.hh"
#include "replay/sweep.hh"

namespace cosmos::harness
{

/** Knobs of one runSweep call. */
struct SweepOptions
{
    /**
     * Worker threads; 0 resolves via COSMOS_THREADS, then
     * hardware_concurrency (replay::ThreadPool::defaultThreadCount).
     */
    unsigned threads = 0;

    /**
     * When set, runSweep publishes execution observability here:
     * pool counters (tasks submitted / run / steals / idle waits),
     * all tagged volatile -- they depend on the pool size and on
     * scheduling, never on the simulated results.
     */
    obs::Registry *metrics = nullptr;
};

/**
 * Run every job on a fresh thread pool; result i belongs to jobs[i].
 * Traces are fetched (simulating on first use) through cachedTrace.
 */
std::vector<replay::ReplayResult> runSweep(
    const std::vector<replay::ReplayJob> &jobs,
    const SweepOptions &opts = {});

/**
 * Publish one sweep's results into @p reg as stable metrics: per
 * cell (named "sweep.<app>.d<depth>.f<filter>[.i<maxIter>]",
 * deduplicated with a job-order suffix on collision), prediction
 * hits/lookups overall and per side, cold misses, and the Table 7
 * MHR/PHT entry counts. Everything here reduces deterministically,
 * so the JSON export is byte-identical across thread counts.
 */
void publishSweepMetrics(const std::vector<replay::ReplayJob> &jobs,
                         const std::vector<replay::ReplayResult> &results,
                         obs::Registry &reg);

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_SWEEP_HH
