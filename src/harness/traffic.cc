#include "harness/traffic.hh"

#include "common/log.hh"
#include "proto/invariants.hh"
#include "proto/machine.hh"
#include "runtime/processor.hh"
#include "trace/trace.hh"

namespace cosmos::harness
{

RunResult
runTraffic(const TrafficConfig &cfg, forge::TrafficSource &source)
{
    cosmos_assert(cfg.opsPerIteration > 0,
                  "opsPerIteration must be positive");
    cosmos_assert(source.bounded() || cfg.maxIterations >= 0,
                  "an unbounded source needs --iterations");
    cosmos_assert(cfg.machine.numNodes >= source.numProcs(),
                  "source references ", source.numProcs(),
                  " processors but the machine has ",
                  cfg.machine.numNodes, " nodes");

    proto::Machine machine(cfg.machine);
    runtime::Runtime rt(machine);

    RunResult result;
    result.trace.app = source.name();
    result.trace.numNodes = machine.numNodes();
    result.trace.blockBytes = cfg.machine.blockBytes;
    result.trace.seed = cfg.machine.seed;

    trace::TraceRecorder recorder(result.trace,
                                  cfg.warmupIterations);
    machine.addObserver(&recorder);

    std::vector<forge::Access> chunk;
    int iter = 0;
    while (cfg.maxIterations < 0 || iter < cfg.maxIterations) {
        if (source.next(chunk, cfg.opsPerIteration) == 0)
            break;
        machine.setIteration(iter);
        runtime::ProgramBuilder builder(machine.numNodes());
        for (const forge::Access &a : chunk) {
            if (a.write)
                builder.proc(a.proc).write(a.addr);
            else
                builder.proc(a.proc).read(a.addr);
        }
        builder.barrier();
        rt.runPrograms(builder.take());
        if (cfg.checkInvariants) {
            const auto violations = proto::checkCoherence(machine);
            if (!violations.empty()) {
                cosmos_panic("coherence violation after chunk ", iter,
                             " of ", source.name(), ": ",
                             violations.front(), " (",
                             violations.size(), " total)");
            }
        }
        if (cfg.recordSink) {
            cfg.recordSink(result.trace.records);
            result.trace.records.clear();
        }
        ++iter;
    }
    if (source.failed())
        cosmos_fatal("traffic source failed: ", source.error());

    result.trace.iterations = iter;
    result.network = machine.networkStats();
    result.totals = collectTotals(machine);
    result.finalTime = machine.eventQueue().now();
    result.events = machine.eventQueue().executed();
    if (cfg.metrics != nullptr)
        machine.publishMetrics(*cfg.metrics);
    return result;
}

} // namespace cosmos::harness
