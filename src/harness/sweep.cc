#include "harness/sweep.hh"

#include "harness/trace_cache.hh"

namespace cosmos::harness
{

std::vector<replay::ReplayResult>
runSweep(const std::vector<replay::ReplayJob> &jobs,
         const SweepOptions &opts)
{
    replay::ThreadPool pool(opts.threads);
    replay::SweepEngine engine(
        pool, [](const replay::ReplayJob &job) -> const trace::Trace & {
            return cachedTrace(job.app, job.iterations, job.policy,
                               job.seed);
        });
    return engine.run(jobs);
}

} // namespace cosmos::harness
