#include "harness/sweep.hh"

#include <set>

#include "common/log.hh"
#include "harness/trace_cache.hh"

namespace cosmos::harness
{

namespace
{

void
publishPoolMetrics(const replay::ThreadPool &pool, obs::Registry &reg)
{
    // Task count depends on parallelFor chunking, i.e. on the pool
    // size -- volatile like the rest of the execution counters.
    reg.counter("replay.pool.tasks_submitted",
                obs::Stability::volatile_)
        .add(pool.tasksSubmitted());
    const auto stats = pool.workerStats();
    auto &tasks = reg.summary("replay.pool.worker.tasks_run",
                              obs::Stability::volatile_);
    auto &steals = reg.counter("replay.pool.steals",
                               obs::Stability::volatile_);
    auto &idles = reg.counter("replay.pool.idle_waits",
                              obs::Stability::volatile_);
    for (const auto &w : stats) {
        tasks.sample(static_cast<double>(w.tasksRun));
        steals.add(w.steals);
        idles.add(w.idleWaits);
    }
}

std::string
cellName(const replay::ReplayJob &job)
{
    std::string n = "sweep." + job.app + ".d" +
                    std::to_string(job.config.depth) + ".f" +
                    std::to_string(job.config.filterMax);
    if (job.config.maxPhtPerBlock != 0)
        n += ".p" + std::to_string(job.config.maxPhtPerBlock);
    if (job.maxIteration != INT32_MAX)
        n += ".i" + std::to_string(job.maxIteration);
    if (job.policy != OwnerReadPolicy::half_migratory)
        n += ".dash";
    return n;
}

} // namespace

std::vector<replay::ReplayResult>
runSweep(const std::vector<replay::ReplayJob> &jobs,
         const SweepOptions &opts)
{
    replay::ThreadPool pool(opts.threads);
    replay::SweepEngine engine(
        pool, [](const replay::ReplayJob &job) -> const trace::Trace & {
            return cachedTrace(job.app, job.iterations, job.policy,
                               job.seed);
        });
    auto results = engine.run(jobs);
    if (opts.metrics != nullptr)
        publishPoolMetrics(pool, *opts.metrics);
    return results;
}

void
publishSweepMetrics(const std::vector<replay::ReplayJob> &jobs,
                    const std::vector<replay::ReplayResult> &results,
                    obs::Registry &reg)
{
    cosmos_assert(jobs.size() == results.size(),
                  "jobs/results size mismatch");
    reg.counter("sweep.cells").add(jobs.size());

    std::set<std::string> used;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string base = cellName(jobs[i]);
        // Two jobs can legitimately share a configuration (e.g. a
        // shard-count study); keep their cells distinct by job index.
        if (!used.insert(base).second)
            base += ".job" + std::to_string(i);
        const replay::ReplayResult &r = results[i];

        reg.counter(base + ".lookups").add(r.accuracy.overall().total);
        reg.counter(base + ".hits").add(r.accuracy.overall().hits);
        reg.counter(base + ".cache.lookups")
            .add(r.accuracy.cacheSide().total);
        reg.counter(base + ".cache.hits")
            .add(r.accuracy.cacheSide().hits);
        reg.counter(base + ".dir.lookups")
            .add(r.accuracy.directorySide().total);
        reg.counter(base + ".dir.hits")
            .add(r.accuracy.directorySide().hits);
        reg.counter(base + ".cold_misses")
            .add(r.accuracy.coldMisses());
        reg.counter(base + ".mhr_entries").add(r.memory.mhrEntries);
        reg.counter(base + ".pht_entries").add(r.memory.phtEntries);
    }
}

} // namespace cosmos::harness
