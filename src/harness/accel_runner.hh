/**
 * @file
 * Experiment driver for predictor-accelerated runs: the same pipeline
 * as runWorkload(), but with an OnlineAccelerator attached to the
 * machine, so Cosmos predictions steer the directory live.
 */

#ifndef COSMOS_HARNESS_ACCEL_RUNNER_HH
#define COSMOS_HARNESS_ACCEL_RUNNER_HH

#include "accel/online.hh"
#include "harness/experiment.hh"

namespace cosmos::harness
{

/** Result of an accelerated run. */
struct AcceleratedRunResult
{
    RunResult run;
    accel::OnlineStats accel;
    /** Accuracy of the live predictors over the (accelerated)
     *  message stream. */
    double predictorAccuracyPercent = 0.0;
};

/** Run the named workload with the online accelerator attached. */
AcceleratedRunResult runAccelerated(const RunConfig &cfg,
                                    const accel::OnlineOptions &opts);

/** Run a caller-constructed workload with the accelerator attached. */
AcceleratedRunResult runAccelerated(const RunConfig &cfg,
                                    wl::Workload &workload,
                                    const accel::OnlineOptions &opts);

} // namespace cosmos::harness

#endif // COSMOS_HARNESS_ACCEL_RUNNER_HH
