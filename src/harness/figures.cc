#include "harness/figures.hh"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace cosmos::harness
{

void
writeSignatureDot(const pred::ArcStats &arcs, const std::string &title,
                  std::ostream &os, double min_ref_percent,
                  double bold_ref_percent)
{
    const auto dominant = arcs.dominantArcs(min_ref_percent);

    os << "digraph signature {\n";
    os << "    label=\"" << title << "\";\n";
    os << "    rankdir=LR;\n";
    os << "    node [shape=box, fontname=\"Helvetica\"];\n";

    std::set<proto::MsgType> nodes;
    for (const auto &arc : dominant) {
        nodes.insert(arc.from);
        nodes.insert(arc.to);
    }
    for (auto t : nodes)
        os << "    \"" << proto::toString(t) << "\";\n";

    for (const auto &arc : dominant) {
        os << "    \"" << proto::toString(arc.from) << "\" -> \""
           << proto::toString(arc.to) << "\" [label=\""
           << static_cast<int>(arc.hitPercent + 0.5) << "/"
           << static_cast<int>(arc.refPercent + 0.5) << "\"";
        if (arc.refPercent >= bold_ref_percent)
            os << ", style=bold";
        os << "];\n";
    }
    os << "}\n";
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
writeCsv(std::ostream &os, const std::vector<std::string> &header,
         const std::vector<std::vector<std::string>> &rows)
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << csvEscape(row[i]);
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : rows) {
        cosmos_assert(row.size() == header.size(),
                      "CSV row width mismatch");
        emit(row);
    }
}

std::vector<std::string>
dumpSignatureDots(const std::string &app,
                  const pred::ArcStats &cache_arcs,
                  const pred::ArcStats &dir_arcs,
                  const std::string &directory)
{
    std::filesystem::create_directories(directory);
    std::vector<std::string> paths;
    const struct
    {
        const pred::ArcStats &arcs;
        const char *role;
    } sides[] = {{cache_arcs, "cache"}, {dir_arcs, "directory"}};
    for (const auto &side : sides) {
        const std::string path =
            directory + "/" + app + "_" + side.role + ".dot";
        std::ofstream os(path);
        if (!os)
            cosmos_fatal("cannot write figure file ", path);
        writeSignatureDot(side.arcs,
                          app + " at the " + side.role, os);
        paths.push_back(path);
    }
    return paths;
}

} // namespace cosmos::harness
