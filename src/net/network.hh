/**
 * @file
 * Point-to-point interconnect model.
 *
 * The paper's evaluation notes that Cosmos' accuracy is largely
 * insensitive to network latency (§5), so the network is a simple
 * fixed-latency, in-order-per-channel model: a message from src to dst
 * arrives after NI + wire + NI delay, and never overtakes an earlier
 * message on the same (src, dst) channel. Same-node "messages" (the
 * Stache home-node optimization, §5.1) are delivered after one tick
 * and are flagged local so the machine can exclude them from traces.
 */

#ifndef COSMOS_NET_NETWORK_HH
#define COSMOS_NET_NETWORK_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "net/network_stats.hh"
#include "sim/event_queue.hh"

namespace cosmos::net
{

/**
 * Customization point mapping a payload to a small traffic-class
 * index for per-class latency histograms. The primary template puts
 * everything in one unnamed class; payload owners (proto specializes
 * this for Msg) provide a real classification.
 */
template <typename Payload>
struct TrafficClass
{
    static unsigned of(const Payload &) { return 0; }
    static const char *name(unsigned) { return "all"; }
};

/**
 * Fixed-latency point-to-point network carrying @p Payload messages.
 *
 * Each destination node attaches one handler; the handler receives the
 * payload plus an is_local flag (true when src == dst, i.e. the
 * message never crossed the interconnect).
 */
template <typename Payload>
class Network
{
  public:
    using Handler = std::function<void(const Payload &, bool is_local)>;

    Network(sim::EventQueue &eq, NodeId num_nodes, Tick wire_latency,
            Tick ni_latency)
        : eq_(eq), numNodes_(num_nodes), wireLatency_(wire_latency),
          niLatency_(ni_latency), handlers_(num_nodes)
    {
    }

    /** Register the single delivery handler for node @p node. */
    void
    attach(NodeId node, Handler handler)
    {
        cosmos_assert(node < numNodes_, "attach to bad node ", node);
        handlers_[node] = std::move(handler);
    }

    /**
     * Extra delivery delay for a remote message, consulted per send.
     * Returning varying (e.g. seeded-random) delays permutes the
     * *global* interleaving of deliveries while the per-(src, dst)
     * channel stays FIFO -- exactly the schedule freedom a real
     * interconnect has, and the axis the protocol fuzzer explores.
     */
    using JitterFn = std::function<Tick(NodeId src, NodeId dst,
                                        const Payload &payload)>;

    /** Install (or clear, with nullptr) the delivery-jitter hook. */
    void setDeliveryJitter(JitterFn fn) { jitter_ = std::move(fn); }

    /**
     * Send @p payload from @p src to @p dst.
     *
     * Remote messages incur NI + wire + NI latency and stay ordered
     * per (src, dst) channel. Local messages (src == dst) are
     * delivered on the next tick.
     */
    void
    send(NodeId src, NodeId dst, Payload payload)
    {
        cosmos_assert(src < numNodes_ && dst < numNodes_,
                      "send between bad nodes ", src, "->", dst);
        const bool local = (src == dst);
        Tick arrive;
        if (local) {
            arrive = eq_.now() + 1;
            stats_.localMessages++;
        } else {
            arrive = eq_.now() + 2 * niLatency_ + wireLatency_;
            if (jitter_)
                arrive += jitter_(src, dst, payload);
            auto &last = lastArrival_[channelKey(src, dst)];
            arrive = std::max(arrive, last + 1);
            last = arrive;
            stats_.recordRemote(TrafficClass<Payload>::of(payload),
                                arrive - eq_.now());
        }
        stats_.recordInFlightSend();
        eq_.scheduleAt(arrive,
                       [this, dst, local, p = std::move(payload)]() {
                           cosmos_assert(handlers_[dst],
                                         "no handler on node ", dst);
                           stats_.recordDelivered();
                           handlers_[dst](p, local);
                       });
    }

    /** Publish interconnect metrics under "<prefix>." using the
     *  payload's TrafficClass names for per-class histograms. */
    void
    publishMetrics(obs::Registry &reg,
                   const std::string &prefix = "net") const
    {
        stats_.publishMetrics(reg, prefix,
                              &TrafficClass<Payload>::name);
    }

    const NetworkStats &stats() const { return stats_; }
    NodeId numNodes() const { return numNodes_; }
    Tick wireLatency() const { return wireLatency_; }

  private:
    static std::uint32_t
    channelKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint32_t>(src) << 16) | dst;
    }

    sim::EventQueue &eq_;
    NodeId numNodes_;
    Tick wireLatency_;
    Tick niLatency_;
    std::vector<Handler> handlers_;
    JitterFn jitter_;
    std::unordered_map<std::uint32_t, Tick> lastArrival_;
    NetworkStats stats_;
};

} // namespace cosmos::net

#endif // COSMOS_NET_NETWORK_HH
