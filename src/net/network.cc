#include "net/network_stats.hh"

#include <sstream>

namespace cosmos::net
{

Histogram
NetworkStats::latencyLayout()
{
    // Remote latency is 2*NI + wire plus channel-FIFO backpressure;
    // powers of two from 1 to 2048 ticks cover the paper's Table 3
    // machine with headroom for congested channels.
    return Histogram::exponential(1.0, 2.0, 12);
}

void
NetworkStats::recordRemote(unsigned cls, Tick lat)
{
    remoteMessages++;
    totalLatency += lat;
    if (latency.bounds().empty())
        latency = latencyLayout();
    latency.record(static_cast<double>(lat));
    if (latencyByClass.size() <= cls)
        latencyByClass.resize(cls + 1, latencyLayout());
    latencyByClass[cls].record(static_cast<double>(lat));
}

void
NetworkStats::publishMetrics(obs::Registry &reg,
                             const std::string &prefix,
                             const char *(*class_name)(unsigned)) const
{
    reg.counter(prefix + ".remote_messages").add(remoteMessages);
    reg.counter(prefix + ".local_messages").add(localMessages);
    reg.counter(prefix + ".total_latency_ticks").add(totalLatency);
    auto &inflight = reg.gauge(prefix + ".in_flight");
    inflight.set(maxInFlight);
    inflight.set(inFlight);
    reg.histogram(prefix + ".latency_ticks", latencyLayout())
        .merge(latency);
    if (class_name != nullptr) {
        for (unsigned c = 0; c < latencyByClass.size(); ++c) {
            if (latencyByClass[c].count() == 0)
                continue;
            reg.histogram(prefix + ".latency_ticks." + class_name(c),
                          latencyLayout())
                .merge(latencyByClass[c]);
        }
    }
}

double
NetworkStats::meanLatency() const
{
    return remoteMessages == 0
               ? 0.0
               : static_cast<double>(totalLatency) /
                     static_cast<double>(remoteMessages);
}

std::string
NetworkStats::format() const
{
    std::ostringstream os;
    os << "remote=" << remoteMessages << " local=" << localMessages
       << " mean_latency=" << meanLatency() << "ns";
    if (latency.count() > 0) {
        os << " p50=" << latency.percentile(0.5)
           << " p99=" << latency.percentile(0.99);
    }
    return os.str();
}

} // namespace cosmos::net
