#include "net/network_stats.hh"

#include <sstream>

namespace cosmos::net
{

double
NetworkStats::meanLatency() const
{
    return remoteMessages == 0
               ? 0.0
               : static_cast<double>(totalLatency) /
                     static_cast<double>(remoteMessages);
}

std::string
NetworkStats::format() const
{
    std::ostringstream os;
    os << "remote=" << remoteMessages << " local=" << localMessages
       << " mean_latency=" << meanLatency() << "ns";
    return os.str();
}

} // namespace cosmos::net
