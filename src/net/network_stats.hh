/**
 * @file
 * Aggregate interconnect statistics.
 */

#ifndef COSMOS_NET_NETWORK_STATS_HH
#define COSMOS_NET_NETWORK_STATS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cosmos::net
{

/** Counters kept by Network, independent of payload type. */
struct NetworkStats
{
    std::uint64_t remoteMessages = 0;
    std::uint64_t localMessages = 0;
    Tick totalLatency = 0;

    /** Mean end-to-end latency of remote messages, in ticks. */
    double meanLatency() const;

    /** Human-readable one-liner. */
    std::string format() const;
};

} // namespace cosmos::net

#endif // COSMOS_NET_NETWORK_STATS_HH
