/**
 * @file
 * Aggregate interconnect statistics.
 */

#ifndef COSMOS_NET_NETWORK_STATS_HH
#define COSMOS_NET_NETWORK_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/metrics.hh"

namespace cosmos::net
{

/**
 * Counters kept by Network, independent of payload type.
 *
 * Latency histograms bucket end-to-end remote delivery latency in
 * ticks, overall and per traffic class (the payload's TrafficClass
 * specialization names the classes -- for proto::Msg, the message
 * type). Everything here is a pure function of the simulated run, so
 * the published metrics are stable across hosts and thread counts.
 */
struct NetworkStats
{
    std::uint64_t remoteMessages = 0;
    std::uint64_t localMessages = 0;
    Tick totalLatency = 0;

    /** End-to-end remote latency, all classes, in ticks. */
    Histogram latency;
    /** Same, split by traffic class; index = TrafficClass::of(). */
    std::vector<Histogram> latencyByClass;

    /** Messages sent but not yet delivered (local + remote). */
    std::int64_t inFlight = 0;
    std::int64_t maxInFlight = 0;

    /** Record one remote send of class @p cls arriving @p lat ticks
     *  after issue. */
    void recordRemote(unsigned cls, Tick lat);

    /** Track the send side of the in-flight level. */
    void
    recordInFlightSend()
    {
        ++inFlight;
        if (inFlight > maxInFlight)
            maxInFlight = inFlight;
    }

    /** Track the delivery side of the in-flight level. */
    void recordDelivered() { --inFlight; }

    /**
     * Publish under "<prefix>." (counters, in-flight gauge, latency
     * histograms). @p class_name maps a class index to its metric
     * name suffix; null publishes only the overall histogram.
     */
    void publishMetrics(obs::Registry &reg, const std::string &prefix,
                        const char *(*class_name)(unsigned) =
                            nullptr) const;

    /** Mean end-to-end latency of remote messages, in ticks. */
    double meanLatency() const;

    /** Human-readable one-liner. */
    std::string format() const;

  private:
    /** The tick-latency bucket layout shared by every histogram. */
    static Histogram latencyLayout();
};

} // namespace cosmos::net

#endif // COSMOS_NET_NETWORK_STATS_HH
