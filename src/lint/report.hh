/**
 * @file
 * Rendering of `cosmos lint` results: a human summary and the
 * byte-stable `cosmos-lint-v1` JSON artifact for CI
 * (scripts/check_json.py validates the schema).
 *
 * Byte-stability contract: two runs with the same configuration and
 * mutation produce byte-identical JSON (findings render in pass
 * order, rows in table order).
 */

#ifndef COSMOS_LINT_REPORT_HH
#define COSMOS_LINT_REPORT_HH

#include <string>
#include <vector>

#include "lint/analyzer.hh"
#include "lint/mutate.hh"

namespace cosmos::lint
{

/** Multi-line human-readable summary. */
std::string renderReport(const proto::ProtocolTable &table,
                         const std::vector<Finding> &findings,
                         MutationKind mutation);

/** The `cosmos-lint-v1` JSON document (returned, not written: the
 *  CLI decides between stdout and a file). */
std::string renderJson(const proto::ProtocolTable &table,
                       const std::vector<Finding> &findings,
                       MutationKind mutation);

} // namespace cosmos::lint

#endif // COSMOS_LINT_REPORT_HH
