/**
 * @file
 * `cosmos lint`: static analysis over the declared protocol
 * transition table (src/proto/transition_table.*). No execution is
 * involved -- every pass is a pure function of the table rows, which
 * is what lets CI prove each pass's teeth by planting a table
 * mutation (lint/mutate.hh) and requiring the run to fail.
 *
 * Passes:
 *  - completeness (missing_row): every (state, input) pair a role can
 *    face is covered by a live row or a declared-unreachable marker.
 *  - determinism (overlapping_rows): within one (role, state, input)
 *    bucket no two live rows can match the same guard bits (the
 *    allowQ relaxation counts as matching guard|q).
 *  - message conservation (dropped_response): every consumed request
 *    leads -- possibly through the transaction's continuation rows --
 *    to a row that emits the matching response or delegates the data
 *    to a third party (three-hop forwarding).
 *  - channel discipline (out_of_order_consume): an input that can
 *    arrive in a row's pre-state must still be consumable in its next
 *    state, unless the row completes the transaction, declares the
 *    input cleared, or shares the input's single FIFO channel (the
 *    sender serializes its own stream).
 *  - forwarding asymmetry (forwarding_asymmetry): only forwarded
 *    inval_rw/downgrade recalls may make a cache emit a data
 *    response; inval_ro sweeps target shared blocks whose data the
 *    home itself holds, so they are never forwarded.
 */

#ifndef COSMOS_LINT_ANALYZER_HH
#define COSMOS_LINT_ANALYZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "proto/transition_table.hh"

namespace cosmos::lint
{

/** Provenance of one table row a finding points at. */
struct RowRef
{
    /** "src/proto/transition_table.cc:NN" */
    std::string where;
    /** TransitionRow::format() rendering. */
    std::string row;
};

/** One static-analysis finding. */
struct Finding
{
    enum class Kind : std::uint8_t
    {
        missing_row,
        overlapping_rows,
        dropped_response,
        out_of_order_consume,
        forwarding_asymmetry,
    };

    Kind kind{};
    proto::Role role = proto::Role::cache;
    std::string detail;
    /** Declaring rows involved (empty for missing_row: there is no
     *  row to point at, the hole itself is the finding). */
    std::vector<RowRef> rows;

    static const char *toString(Kind k);
};

/** Run all five passes; findings in pass order, deterministic. */
std::vector<Finding> analyze(const proto::ProtocolTable &table);

} // namespace cosmos::lint

#endif // COSMOS_LINT_ANALYZER_HH
