#include "lint/mutate.hh"

#include <algorithm>

#include "common/log.hh"
#include "proto/cache_controller.hh"

namespace cosmos::lint
{

using proto::GuardBits;
using proto::LineState;
using proto::MsgType;
using proto::ProtocolTable;
using proto::Role;
using proto::TransitionRow;

const char *
toString(MutationKind k)
{
    switch (k) {
      case MutationKind::none:                 return "none";
      case MutationKind::missing_row:          return "missing_row";
      case MutationKind::overlapping_rows:     return "overlapping_rows";
      case MutationKind::dropped_response:     return "dropped_response";
      case MutationKind::out_of_order_consume:
        return "out_of_order_consume";
      case MutationKind::forwarding_asymmetry:
        return "forwarding_asymmetry";
    }
    return "?";
}

bool
parseMutation(std::string_view name, MutationKind &out)
{
    for (MutationKind k :
         {MutationKind::none, MutationKind::missing_row,
          MutationKind::overlapping_rows, MutationKind::dropped_response,
          MutationKind::out_of_order_consume,
          MutationKind::forwarding_asymmetry}) {
        if (name == toString(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

namespace
{

/** The one live row matching (role, state, input, guard); panics if
 *  absent -- mutations target configuration-independent rows. */
TransitionRow &
rowAt(ProtocolTable &t, Role role, std::uint8_t state,
      std::uint8_t input, GuardBits guard)
{
    for (TransitionRow &r : t.mutableRows()) {
        if (!r.unreachable && r.role == role && r.state == state &&
            r.input == input && r.guard == guard) {
            return r;
        }
    }
    cosmos_panic("mutation target row not found: ",
                 proto::toString(role), " ",
                 ProtocolTable::stateName(role, state), " x ",
                 proto::tableInputName(input));
}

constexpr std::uint8_t
ls(LineState s)
{
    return static_cast<std::uint8_t>(s);
}

constexpr std::uint8_t
ph(proto::DirPhase p)
{
    return static_cast<std::uint8_t>(p);
}

constexpr std::uint8_t
in(MsgType t)
{
    return static_cast<std::uint8_t>(t);
}

} // namespace

std::string
applyMutation(ProtocolTable &table, MutationKind kind)
{
    switch (kind) {
      case MutationKind::none:
        return "no mutation";

      case MutationKind::missing_row: {
        // Drop the wait_upg demotion row: an upgrade racing an
        // invalidation sweep would have no handler at all.
        const TransitionRow target =
            rowAt(table, Role::cache, ls(LineState::wait_upg),
                  in(MsgType::inval_ro_request), proto::guard_none);
        auto &rows = table.mutableRows();
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [&](const TransitionRow &r) {
                                      return r.line == target.line;
                                  }),
                   rows.end());
        table.reindex();
        return detail::concat("removed row ", target.format());
      }

      case MutationKind::overlapping_rows: {
        // Duplicate the shared-line invalidation row with a
        // contradictory next state: dispatch becomes order-dependent.
        TransitionRow dup =
            rowAt(table, Role::cache, ls(LineState::read_only),
                  in(MsgType::inval_ro_request), proto::guard_none);
        dup.next = ls(LineState::read_only);
        table.mutableRows().push_back(dup);
        table.reindex();
        return detail::concat("duplicated row ", dup.format(),
                              " with next state read_only");
      }

      case MutationKind::dropped_response: {
        // The last invalidation ack no longer answers the writer:
        // the upgrade/write transaction ends without a response.
        TransitionRow &r =
            rowAt(table, Role::directory,
                  ph(proto::DirPhase::busy_write),
                  in(MsgType::inval_ro_response), proto::guard_last_ack);
        r.emits.clear();
        return detail::concat("cleared the emissions of ", r.format());
      }

      case MutationKind::out_of_order_consume: {
        // Leave busy_write while invalidation acks are still in
        // flight: the remaining acks arrive in a state with no row.
        TransitionRow &r =
            rowAt(table, Role::directory,
                  ph(proto::DirPhase::busy_write),
                  in(MsgType::inval_ro_response),
                  proto::guard_more_acks);
        r.next = ph(proto::DirPhase::exclusive);
        return detail::concat("redirected ", r.format(),
                              " into exclusive with acks outstanding");
      }

      case MutationKind::forwarding_asymmetry: {
        // Make a shared-line invalidation hand out data three-hop:
        // inval_ro sweeps must never be forwarded.
        TransitionRow &r =
            rowAt(table, Role::cache, ls(LineState::read_only),
                  in(MsgType::inval_ro_request), proto::guard_none);
        r.emits.push_back(MsgType::get_ro_response);
        std::sort(r.emits.begin(), r.emits.end());
        return detail::concat("added get_ro_response to ", r.format());
      }
    }
    cosmos_panic("unhandled mutation kind");
}

} // namespace cosmos::lint
