#include "lint/analyzer.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/log.hh"

namespace cosmos::lint
{

using proto::ActionId;
using proto::MsgType;
using proto::ProtocolTable;
using proto::Role;
using proto::TransitionRow;

const char *
Finding::toString(Kind k)
{
    switch (k) {
      case Kind::missing_row:          return "missing_row";
      case Kind::overlapping_rows:     return "overlapping_rows";
      case Kind::dropped_response:     return "dropped_response";
      case Kind::out_of_order_consume: return "out_of_order_consume";
      case Kind::forwarding_asymmetry:
        return "forwarding_asymmetry";
    }
    return "?";
}

namespace
{

RowRef
refOf(const TransitionRow &r)
{
    return RowRef{r.where(), r.format()};
}

/** The inputs a role can ever face (the other role's messages never
 *  reach it -- Machine routes by receiverRole). */
std::vector<std::uint8_t>
inputsOf(Role role)
{
    const auto in = [](MsgType t) {
        return static_cast<std::uint8_t>(t);
    };
    if (role == Role::cache) {
        return {in(MsgType::get_ro_response),
                in(MsgType::get_rw_response),
                in(MsgType::upgrade_response),
                in(MsgType::inval_ro_request),
                in(MsgType::inval_rw_request),
                in(MsgType::downgrade_request),
                proto::input_proc_read,
                proto::input_proc_write};
    }
    return {in(MsgType::get_ro_request),  in(MsgType::get_rw_request),
            in(MsgType::upgrade_request), in(MsgType::inval_ro_response),
            in(MsgType::inval_rw_response),
            in(MsgType::downgrade_response), in(MsgType::fwd_ack)};
}

/** Responses that legitimately answer a consumed request. */
std::vector<MsgType>
responsesFor(MsgType request)
{
    switch (request) {
      case MsgType::get_ro_request:
        // The directory may answer a read with an exclusive copy when
        // it predicts a read-modify-write (§4.1).
        return {MsgType::get_ro_response, MsgType::get_rw_response};
      case MsgType::get_rw_request:
        return {MsgType::get_rw_response};
      case MsgType::upgrade_request:
        // Promoted upgrades (requester's copy swept mid-flight) are
        // answered with a full data response.
        return {MsgType::upgrade_response, MsgType::get_rw_response};
      case MsgType::inval_ro_request:
        return {MsgType::inval_ro_response};
      case MsgType::inval_rw_request:
        return {MsgType::inval_rw_response};
      case MsgType::downgrade_request:
        return {MsgType::downgrade_response};
      default:
        return {};
    }
}

bool
isRequest(std::uint8_t input)
{
    return input < proto::num_msg_types &&
           !responsesFor(static_cast<MsgType>(input)).empty();
}

/** Live rows of one (role, state, input) bucket, in table order. */
std::vector<const TransitionRow *>
liveRowsAt(const ProtocolTable &t, Role role, std::uint8_t state,
           std::uint8_t input)
{
    std::vector<const TransitionRow *> out;
    for (const TransitionRow &r : t.rows()) {
        if (!r.unreachable && r.role == role && r.state == state &&
            r.input == input) {
            out.push_back(&r);
        }
    }
    return out;
}

// ------------------------- completeness -------------------------

void
checkCompleteness(const ProtocolTable &t, std::vector<Finding> &out)
{
    std::set<std::tuple<Role, std::uint8_t, std::uint8_t>> covered;
    for (const TransitionRow &r : t.rows())
        covered.insert({r.role, r.state, r.input});

    for (Role role : {Role::cache, Role::directory}) {
        const unsigned states = role == Role::cache
                                    ? proto::num_cache_states
                                    : proto::num_dir_phases;
        for (std::uint8_t s = 0; s < states; ++s) {
            for (std::uint8_t i : inputsOf(role)) {
                if (covered.count({role, s, i}))
                    continue;
                Finding f;
                f.kind = Finding::Kind::missing_row;
                f.role = role;
                f.detail = detail::concat(
                    proto::toString(role), " ",
                    ProtocolTable::stateName(role, s), " x ",
                    proto::tableInputName(i),
                    ": no transition row and no declared-unreachable "
                    "marker");
                out.push_back(std::move(f));
            }
        }
    }
}

// ------------------------- determinism -------------------------

/** Guard values a row matches (its own guard, plus guard|q under the
 *  allowQ relaxation). */
std::vector<proto::GuardBits>
matchSet(const TransitionRow &r)
{
    std::vector<proto::GuardBits> m{r.guard};
    if (r.allowQ)
        m.push_back(r.guard | proto::guard_q);
    return m;
}

void
checkDeterminism(const ProtocolTable &t, std::vector<Finding> &out)
{
    std::map<std::tuple<Role, std::uint8_t, std::uint8_t>,
             std::vector<const TransitionRow *>>
        buckets;
    for (const TransitionRow &r : t.rows())
        if (!r.unreachable)
            buckets[{r.role, r.state, r.input}].push_back(&r);

    for (const auto &[key, rows] : buckets) {
        for (std::size_t a = 0; a < rows.size(); ++a) {
            for (std::size_t b = a + 1; b < rows.size(); ++b) {
                const auto ma = matchSet(*rows[a]);
                const auto mb = matchSet(*rows[b]);
                const bool overlap = std::any_of(
                    ma.begin(), ma.end(), [&](proto::GuardBits g) {
                        return std::find(mb.begin(), mb.end(), g) !=
                               mb.end();
                    });
                if (!overlap)
                    continue;
                Finding f;
                f.kind = Finding::Kind::overlapping_rows;
                f.role = std::get<0>(key);
                f.detail = detail::concat(
                    "two rows of ", rows[a]->format(),
                    " match the same guard; dispatch would be "
                    "order-dependent");
                f.rows = {refOf(*rows[a]), refOf(*rows[b])};
                out.push_back(std::move(f));
            }
        }
    }
}

// --------------------- message conservation ---------------------

/** Any-path DFS through the transaction's continuation rows: from
 *  @p row, is a row reachable that emits one of @p resp or delegates
 *  the data response to a third party? @p pending is the bitmask of
 *  response inputs the transaction is still owed (it grows when a
 *  row emits further requests). */
bool
answers(const ProtocolTable &t, const TransitionRow &row,
        const std::vector<MsgType> &resp, std::uint32_t pending,
        std::set<std::pair<const TransitionRow *, std::uint32_t>>
            &visited)
{
    for (MsgType e : row.emits)
        if (std::find(resp.begin(), resp.end(), e) != resp.end())
            return true;
    if (row.delegatesData)
        return true;

    // Requests this row fans out add their responses to what the
    // transaction waits for (e.g. a write serve emitting
    // inval_ro_request continues on inval_ro_response rows).
    for (MsgType e : row.emits)
        for (MsgType r : responsesFor(e))
            pending |= 1u << static_cast<unsigned>(r);

    for (std::uint8_t i = 0; i < proto::num_msg_types; ++i) {
        if (!(pending & (1u << i)))
            continue;
        for (const TransitionRow *c :
             liveRowsAt(t, row.role, row.next, i)) {
            if (!visited.insert({c, pending}).second)
                continue;
            if (answers(t, *c, resp, pending, visited))
                return true;
        }
    }
    return false;
}

void
checkConservation(const ProtocolTable &t, std::vector<Finding> &out)
{
    for (const TransitionRow &r : t.rows()) {
        if (r.unreachable || !isRequest(r.input))
            continue;
        // A queue row defers the request into the entry's backlog;
        // it is re-dispatched against the quiescent rows later, so
        // those rows carry the obligation.
        if (r.action == ActionId::dir_queue_request)
            continue;
        const auto resp = responsesFor(static_cast<MsgType>(r.input));
        std::set<std::pair<const TransitionRow *, std::uint32_t>>
            visited;
        if (answers(t, r, resp, 0, visited))
            continue;
        Finding f;
        f.kind = Finding::Kind::dropped_response;
        f.role = r.role;
        f.detail = detail::concat(
            "no continuation of ", r.format(), " emits a response to ",
            proto::tableInputName(r.input),
            " (and none delegates the data three-hop); the requester "
            "would wait forever");
        f.rows = {refOf(r)};
        out.push_back(std::move(f));
    }
}

// ---------------------- channel discipline ----------------------

void
checkChannelDiscipline(const ProtocolTable &t,
                       std::vector<Finding> &out)
{
    for (const TransitionRow &r : t.rows()) {
        if (r.unreachable)
            continue;
        // A completing row ends the transaction: its outstanding
        // responses cannot still be in flight afterwards.
        if (r.completes)
            continue;
        for (std::uint8_t i : inputsOf(r.role)) {
            if (r.clears & (1u << i))
                continue;
            for (const TransitionRow *c :
                 liveRowsAt(t, r.role, r.state, i)) {
                // Processor inputs are issued, not in flight.
                if (c->via == proto::Via::proc)
                    continue;
                // Same single FIFO channel as the consumed input:
                // the sender serializes its own stream, so anything
                // behind the consumed message is consistent with the
                // state this row enters.
                if (proto::singleChannel(c->via) && c->via == r.via)
                    continue;
                if (!liveRowsAt(t, r.role, r.next, i).empty())
                    continue;
                Finding f;
                f.kind = Finding::Kind::out_of_order_consume;
                f.role = r.role;
                f.detail = detail::concat(
                    proto::tableInputName(i), " can be in flight to ",
                    proto::toString(r.role), " ",
                    ProtocolTable::stateName(r.role, r.state),
                    " but has no row in next state ",
                    ProtocolTable::stateName(r.role, r.next),
                    " after ", r.format());
                f.rows = {refOf(r), refOf(*c)};
                out.push_back(std::move(f));
            }
        }
    }
}

// --------------------- forwarding asymmetry ---------------------

void
checkForwardingAsymmetry(const ProtocolTable &t,
                         std::vector<Finding> &out)
{
    for (const TransitionRow &r : t.rows()) {
        if (r.unreachable || r.role != Role::cache)
            continue;
        const bool emitsData =
            std::find(r.emits.begin(), r.emits.end(),
                      MsgType::get_ro_response) != r.emits.end() ||
            std::find(r.emits.begin(), r.emits.end(),
                      MsgType::get_rw_response) != r.emits.end();
        if (!emitsData)
            continue;
        const bool forwardedRecall =
            (r.input == static_cast<std::uint8_t>(
                            MsgType::inval_rw_request) ||
             r.input == static_cast<std::uint8_t>(
                            MsgType::downgrade_request)) &&
            (r.guard & proto::guard_fwd);
        if (forwardedRecall)
            continue;
        Finding f;
        f.kind = Finding::Kind::forwarding_asymmetry;
        f.role = Role::cache;
        f.detail = detail::concat(
            "cache row ", r.format(),
            " emits a data response outside a forwarded "
            "inval_rw/downgrade recall; inval_ro sweeps target "
            "shared blocks whose data the home itself holds and are "
            "never forwarded");
        f.rows = {refOf(r)};
        out.push_back(std::move(f));
    }
}

} // namespace

std::vector<Finding>
analyze(const ProtocolTable &table)
{
    std::vector<Finding> out;
    checkCompleteness(table, out);
    checkDeterminism(table, out);
    checkConservation(table, out);
    checkChannelDiscipline(table, out);
    checkForwardingAsymmetry(table, out);
    return out;
}

} // namespace cosmos::lint
