#include "lint/report.hh"

#include <cstdio>
#include <sstream>

namespace cosmos::lint
{

namespace
{

// JSON string escaping, duplicated from model/report.cc's
// file-private helper (kept local on both sides: the report writers
// evolve independently).
void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::size_t
countUnreachable(const proto::ProtocolTable &t)
{
    std::size_t n = 0;
    for (const proto::TransitionRow &r : t.rows())
        n += r.unreachable ? 1 : 0;
    return n;
}

void
appendConfig(std::ostream &os, const MachineConfig &cfg)
{
    os << "{\"nodes\": " << static_cast<unsigned>(cfg.numNodes)
       << ", \"forwarding\": " << (cfg.forwarding ? "true" : "false")
       << ", \"legacy_forwarding\": "
       << (cfg.legacyForwarding ? "true" : "false")
       << ", \"owner_read_policy\": ";
    appendJsonString(os, toString(cfg.ownerReadPolicy));
    os << ", \"cache_capacity_blocks\": " << cfg.cacheCapacityBlocks
       << "}";
}

} // namespace

std::string
renderReport(const proto::ProtocolTable &table,
             const std::vector<Finding> &findings,
             MutationKind mutation)
{
    std::ostringstream os;
    const MachineConfig &cfg = table.config();
    os << "lint: rows=" << table.rows().size() - countUnreachable(table)
       << " unreachable=" << countUnreachable(table)
       << " forwarding=" << (cfg.forwarding ? 1 : 0)
       << " legacy_forwarding=" << (cfg.legacyForwarding ? 1 : 0)
       << " policy=" << toString(cfg.ownerReadPolicy)
       << " capacity=" << cfg.cacheCapacityBlocks;
    if (mutation != MutationKind::none)
        os << " mutation=" << toString(mutation);
    os << "\n";
    os << "findings: " << findings.size() << "\n";
    for (const Finding &f : findings) {
        os << "  [" << Finding::toString(f.kind) << "] "
           << proto::toString(f.role) << ": " << f.detail << "\n";
        for (const RowRef &r : f.rows)
            os << "    " << r.where << ": " << r.row << "\n";
    }
    return os.str();
}

std::string
renderJson(const proto::ProtocolTable &table,
           const std::vector<Finding> &findings, MutationKind mutation)
{
    std::ostringstream os;
    os << "{\n  \"format\": \"cosmos-lint-v1\",\n";
    os << "  \"config\": ";
    appendConfig(os, table.config());
    os << ",\n";
    os << "  \"mutation\": ";
    appendJsonString(os, toString(mutation));
    os << ",\n";
    os << "  \"rows\": "
       << table.rows().size() - countUnreachable(table) << ",\n";
    os << "  \"unreachable_rows\": " << countUnreachable(table)
       << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? "," : "") << "\n    {\"kind\": ";
        appendJsonString(os, Finding::toString(f.kind));
        os << ", \"role\": ";
        appendJsonString(os, proto::toString(f.role));
        os << ", \"detail\": ";
        appendJsonString(os, f.detail);
        os << ", \"rows\": [";
        for (std::size_t j = 0; j < f.rows.size(); ++j) {
            os << (j ? ", " : "") << "{\"where\": ";
            appendJsonString(os, f.rows[j].where);
            os << ", \"row\": ";
            appendJsonString(os, f.rows[j].row);
            os << "}";
        }
        os << "]}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"clean\": " << (findings.empty() ? "true" : "false")
       << "\n}\n";
    return os.str();
}

} // namespace cosmos::lint
