/**
 * @file
 * Planted table mutations proving `cosmos lint` has teeth.
 *
 * Each mutation edits the declared transition table into a protocol
 * with exactly the class of bug one lint pass exists to catch; CI
 * runs `cosmos lint --mutate=<kind>` as a must-fail leg and greps
 * the finding kind out of the JSON. The mutations never touch the
 * controllers -- the table is edited after build(), so the planted
 * bug exists only inside the analyzed copy.
 */

#ifndef COSMOS_LINT_MUTATE_HH
#define COSMOS_LINT_MUTATE_HH

#include <string>
#include <string_view>

#include "proto/transition_table.hh"

namespace cosmos::lint
{

/** Which planted bug to apply (names match Finding::Kind). */
enum class MutationKind : std::uint8_t
{
    none,
    missing_row,
    overlapping_rows,
    dropped_response,
    out_of_order_consume,
    forwarding_asymmetry,
};

const char *toString(MutationKind k);

/** Parse a --mutate= value; false on an unknown name. */
bool parseMutation(std::string_view name, MutationKind &out);

/**
 * Edit @p table in place with the planted bug for @p kind (a no-op
 * for none). Returns a one-line description of the edit. Panics if
 * the targeted row is not in the table (the mutations target rows
 * present under every configuration).
 */
std::string applyMutation(proto::ProtocolTable &table,
                          MutationKind kind);

} // namespace cosmos::lint

#endif // COSMOS_LINT_MUTATE_HH
