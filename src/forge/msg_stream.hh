/**
 * @file
 * Lower a forge::TrafficSource access stream to coherence-message
 * records without a simulated machine.
 *
 * harness::runTraffic produces ground-truth traces by driving every
 * access through the full protocol machine -- faithful, but ~10k
 * messages/s: useless for exercising the predictor throughput path
 * with 100M+ message streams. CoherenceMessageStream instead applies
 * a *designed* lowering: a timeless MSI write-invalidate directory
 * emulation (per-block owner + sharer set, home directory at
 * (addr / pageBytes) % numNodes, matching the kernels' round-robin
 * page homes) that emits the paper's Table 1 message vocabulary
 * directly. It reproduces the protocol's message *patterns* --
 * migratory handoffs, producer-consumer invalidation fans, read-only
 * quiescence -- not its timing, which the predictors never see
 * anyway (Cosmos history is per-block message order, §3.1).
 *
 * The stream is a deterministic function of the source and this
 * config: accesses are pulled in a fixed internal chunk size and
 * lowered one access at a time, so the record sequence is
 * byte-identical regardless of how the consumer chunks its next()
 * calls -- the trace::RecordSource contract.
 */

#ifndef COSMOS_FORGE_MSG_STREAM_HH
#define COSMOS_FORGE_MSG_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "forge/traffic_source.hh"
#include "trace/record_source.hh"

namespace cosmos::forge
{

/** How to lower accesses into messages. */
struct MsgStreamConfig
{
    unsigned blockBytes = 64;
    unsigned pageBytes = 4096;

    /** Accesses per tagged iteration; 0 leaves every record in
     *  iteration 0. Pass SynthSource::accessesPerRound() to make one
     *  forge round one iteration. */
    std::uint64_t accessesPerIteration = 0;

    /** Stop after exactly this many records; 0 streams until the
     *  source is exhausted (so an unbounded forge stream needs a
     *  cap). */
    std::uint64_t maxRecords = 0;
};

/** TrafficSource accesses, lowered to TraceRecords on the fly. */
class CoherenceMessageStream : public trace::RecordSource
{
  public:
    /** @p source must outlive the stream. At most 64 processors
     *  (the sharer set is one machine word). */
    CoherenceMessageStream(TrafficSource &source,
                           const MsgStreamConfig &cfg = {});

    const std::string &name() const override { return name_; }
    NodeId numNodes() const override { return source_.numProcs(); }
    std::size_t next(std::vector<trace::TraceRecord> &out,
                     std::size_t max) override;

    /** Records emitted so far (equals maxRecords after a capped
     *  stream drains). */
    std::uint64_t emitted() const { return emitted_; }

    /** Accesses consumed from the source so far. */
    std::uint64_t accesses() const { return accesses_; }

  private:
    /** Directory view of one block: exclusive owner or sharer set. */
    struct DirState
    {
        NodeId owner = invalid_node;
        std::uint64_t sharers = 0;
    };

    bool refill();
    void lower(const Access &a, std::int32_t iteration);
    void emit(proto::MsgType type, NodeId sender, NodeId receiver,
              std::int32_t iteration);

    TrafficSource &source_;
    MsgStreamConfig cfg_;
    std::string name_;
    FlatMap<Addr, DirState> dir_;
    std::vector<Access> accessChunk_;
    std::vector<trace::TraceRecord> pending_;
    std::size_t cursor_ = 0;
    std::uint64_t emitted_ = 0;
    std::uint64_t accesses_ = 0;
    Tick tick_ = 0;
    bool done_ = false;
};

} // namespace cosmos::forge

#endif // COSMOS_FORGE_MSG_STREAM_HH
