/**
 * @file
 * Score prediction accuracy against ground truth.
 *
 * The paper's Table 5 reports accuracy per application and can only
 * *conjecture* (§6.1) how each sharing class contributes. A forge
 * run knows every block's class, and sharded replay is bit-identical
 * to serial replay (src/replay), so replaying each class's record
 * slice through its own predictor bank yields exact per-class
 * accuracy -- the decomposition the paper could never measure on
 * real benchmarks. The same pass validates trace::classifyTrace
 * against the labels: a census with a known answer.
 */

#ifndef COSMOS_FORGE_SCORE_HH
#define COSMOS_FORGE_SCORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cosmos/predictor_bank.hh"
#include "forge/synth.hh"
#include "trace/trace.hh"

namespace cosmos::forge
{

/** Accuracy and census agreement for one ground-truth class. */
struct ClassScore
{
    BlockClass cls{};
    std::uint64_t blocks = 0;  ///< blocks assigned this class
    std::uint64_t records = 0; ///< trace records replayed
    pred::AccuracyTracker accuracy;
    /** Blocks of this class the census saw / that it classified as
     *  the class's expected pattern. */
    std::uint64_t censusSeen = 0;
    std::uint64_t censusAgree = 0;
};

/** A forge run's full per-class decomposition. */
struct ForgeScore
{
    pred::CosmosConfig config{};
    /** Indexed by BlockClass value; classes with zero blocks keep
     *  zero counters. */
    std::vector<ClassScore> classes;
    /** Whole-trace accuracy (the merge of every class slice, which
     *  equals a full serial replay bit-for-bit). */
    pred::AccuracyTracker total;

    /** Table-5-style text table, one row per class. */
    std::string formatTable() const;
};

/**
 * Replay @p t through per-class predictor banks and census-check the
 * labels. Every record's block must be a forge block of @p src.
 */
ForgeScore scoreByClass(const trace::Trace &t, const SynthSource &src,
                        const pred::CosmosConfig &cfg);

/**
 * Write a `cosmos-forge-v1` JSON artifact (validated by
 * scripts/check_json.py --schema forge). @return false on I/O error.
 */
bool writeForgeReport(const std::string &path, const SynthSource &src,
                      const trace::Trace &t, const ForgeScore &score);

} // namespace cosmos::forge

#endif // COSMOS_FORGE_SCORE_HH
