#include "forge/text_trace.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#if COSMOS_HAS_ZLIB
#include <zlib.h>
#endif

#include "common/log.hh"

namespace cosmos::forge
{

namespace
{

/** Bytes pulled from the input per refill; bounds resident memory. */
constexpr std::size_t chunk_bytes = 256 * 1024;

bool
isSpace(char c)
{
    return c == ' ' || c == '\t' || c == '\r';
}

/**
 * Default processor encoded in a benchmark-suite filename: the
 * digits after the last '_' of the stem (`bodytrack_3.data` -> 3,
 * `canneal_12.data.gz` -> 12). -1 when the name carries none.
 */
int
filenameProc(const std::string &path)
{
    std::string stem = std::filesystem::path(path).filename().string();
    // Strip extensions (.gz first, then one more).
    for (int pass = 0; pass < 2; ++pass) {
        const auto dot = stem.rfind('.');
        if (dot == std::string::npos || dot == 0)
            break;
        stem.erase(dot);
    }
    const auto us = stem.rfind('_');
    if (us == std::string::npos || us + 1 >= stem.size())
        return -1;
    int proc = 0;
    for (std::size_t i = us + 1; i < stem.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(stem[i])))
            return -1;
        proc = proc * 10 + (stem[i] - '0');
        if (proc > 0xffff)
            return -1;
    }
    return proc;
}

} // namespace

bool
gzipSupported()
{
#if COSMOS_HAS_ZLIB
    return true;
#else
    return false;
#endif
}

/** One open input file: gzip-transparent when zlib is available. */
struct TextTraceReader::Input
{
    std::string path;
    int defaultProc = -1;
    std::uint64_t line = 0;
    std::string carry; ///< partial trailing line of the last chunk
    std::vector<char> buf = std::vector<char>(chunk_bytes);
    bool eof = false;
#if COSMOS_HAS_ZLIB
    gzFile gz = nullptr;
#else
    std::FILE *fp = nullptr;
#endif

    bool
    open(const std::string &p)
    {
        path = p;
        defaultProc = filenameProc(p);
#if COSMOS_HAS_ZLIB
        // gzopen reads uncompressed files unchanged, so every file
        // takes the same path and `.gz` is pure passthrough.
        gz = gzopen(p.c_str(), "rb");
        return gz != nullptr;
#else
        if (p.size() > 3 && p.compare(p.size() - 3, 3, ".gz") == 0)
            return false; // gated: no zlib in this build
        fp = std::fopen(p.c_str(), "rb");
        return fp != nullptr;
#endif
    }

    /** @return bytes read into @p buf; 0 = EOF; -1 = I/O error. */
    long
    read(char *buf, std::size_t n)
    {
#if COSMOS_HAS_ZLIB
        const int got = gzread(gz, buf, static_cast<unsigned>(n));
        if (got == 0)
            eof = true;
        return got;
#else
        const std::size_t got = std::fread(buf, 1, n, fp);
        if (got == 0) {
            if (std::ferror(fp))
                return -1;
            eof = true;
        }
        return static_cast<long>(got);
#endif
    }

    ~Input()
    {
#if COSMOS_HAS_ZLIB
        if (gz != nullptr)
            gzclose(gz);
#else
        if (fp != nullptr)
            std::fclose(fp);
#endif
    }
};

TextTraceReader::TextTraceReader(const std::string &path,
                                 NodeId max_procs)
    : name_(std::filesystem::path(path).filename().string()),
      maxProcs_(max_procs)
{
    if (name_.empty())
        name_ = path;
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(path, ec)) {
            if (!entry.is_regular_file())
                continue;
            const std::string fname =
                entry.path().filename().string();
            if (!fname.empty() && fname[0] == '.')
                continue;
            files_.push_back(entry.path().string());
        }
        std::sort(files_.begin(), files_.end());
        if (files_.empty())
            fail(path + ": benchmark directory contains no trace "
                        "files");
    } else {
        files_.push_back(path);
    }
}

TextTraceReader::~TextTraceReader() = default;

void
TextTraceReader::fail(const std::string &reason)
{
    failed_ = true;
    error_ = reason;
    in_.reset();
}

bool
TextTraceReader::openNextFile()
{
    if (nextFile_ >= files_.size())
        return false;
    auto in = std::make_unique<Input>();
    if (!in->open(files_[nextFile_])) {
        fail(files_[nextFile_] +
             (gzipSupported()
                  ? ": cannot open trace file"
                  : ": cannot open trace file (note: .gz needs a "
                    "zlib build)"));
        return false;
    }
    in_ = std::move(in);
    ++nextFile_;
    return true;
}

bool
TextTraceReader::parseLine(const char *begin, const char *end,
                           Access &a)
{
    const char *p = begin;
    while (p < end && isSpace(*p))
        ++p;
    if (p == end || *p == '#' ||
        (p + 1 < end && p[0] == '/' && p[1] == '/'))
        return false; // blank or comment

    auto malformed = [&](const std::string &reason) {
        std::ostringstream os;
        os << in_->path << ":" << in_->line << ": " << reason << ": '"
           << std::string(begin, static_cast<std::size_t>(end - begin))
           << "'";
        fail(os.str());
        return false;
    };

    // Field 1: processor id, or the r/w column of the two-field form.
    long proc = -1;
    if (std::isdigit(static_cast<unsigned char>(*p))) {
        proc = 0;
        while (p < end &&
               std::isdigit(static_cast<unsigned char>(*p))) {
            proc = proc * 10 + (*p - '0');
            if (proc > 0xffff)
                return malformed("processor id overflows");
            ++p;
        }
        if (p == end || !isSpace(*p))
            return malformed("expected whitespace after processor id");
        while (p < end && isSpace(*p))
            ++p;
    } else {
        if (in_->defaultProc < 0)
            return malformed(
                "two-field line in a file whose name carries no _<N> "
                "processor suffix");
        proc = in_->defaultProc;
    }
    if (proc >= static_cast<long>(maxProcs_)) {
        std::ostringstream os;
        os << "processor " << proc << " out of range (machine has "
           << maxProcs_ << " nodes; raise --nodes)";
        return malformed(os.str());
    }

    // Field 2: r or w.
    if (p == end)
        return malformed("missing r/w column");
    const char op = *p++;
    if (op != 'r' && op != 'R' && op != 'w' && op != 'W')
        return malformed("operation must be r or w");
    if (p == end || !isSpace(*p))
        return malformed("expected whitespace after operation");
    while (p < end && isSpace(*p))
        ++p;

    // Field 3: hex address, optional 0x prefix.
    if (p + 1 < end && p[0] == '0' && (p[1] == 'x' || p[1] == 'X'))
        p += 2;
    if (p == end ||
        !std::isxdigit(static_cast<unsigned char>(*p)))
        return malformed("missing or non-hex address");
    Addr addr = 0;
    unsigned digits = 0;
    while (p < end && std::isxdigit(static_cast<unsigned char>(*p))) {
        const char c = *p++;
        addr = (addr << 4) |
               static_cast<Addr>(
                   c <= '9' ? c - '0'
                            : (c | 0x20) - 'a' + 10);
        if (++digits > 16)
            return malformed("address exceeds 64 bits");
    }
    while (p < end && isSpace(*p))
        ++p;
    if (p != end)
        return malformed("trailing garbage after address");

    a.proc = static_cast<NodeId>(proc);
    a.write = op == 'w' || op == 'W';
    a.addr = addr;
    return true;
}

std::size_t
TextTraceReader::next(std::vector<Access> &out, std::size_t max)
{
    out.clear();
    while (out.size() < max) {
        // Drain the parse-ahead buffer first, even after a failure:
        // accesses parsed ahead of a malformed line are still valid
        // and are delivered before next() starts returning 0.
        while (cursor_ < pending_.size() && out.size() < max)
            out.push_back(pending_[cursor_++]);
        if (out.size() == max)
            break;
        pending_.clear();
        cursor_ = 0;
        if (failed_)
            break;

        if (in_ == nullptr) {
            if (exhausted_ || !openNextFile())
                break;
        }

        // Refill: one chunk, parsed line by line into pending_.
        char *buf = in_->buf.data();
        const long got = in_->read(buf, in_->buf.size());
        if (got < 0) {
            fail(in_->path + ": read error mid-stream");
            break;
        }
        bytes_ += static_cast<std::uint64_t>(got);

        auto consume = [&](const char *b, const char *e) {
            ++in_->line;
            ++lines_;
            Access a;
            if (parseLine(b, e, a)) {
                pending_.push_back(a);
                ++accesses_;
            }
            return !failed_;
        };

        if (got == 0) {
            // EOF: the carry, if any, is the file's unterminated
            // final line.
            if (!in_->carry.empty()) {
                const std::string last = std::move(in_->carry);
                consume(last.data(), last.data() + last.size());
            }
            in_.reset();
            if (nextFile_ >= files_.size())
                exhausted_ = true;
            continue;
        }

        const char *p = buf;
        const char *chunk_end = buf + got;
        while (p < chunk_end) {
            const char *nl = static_cast<const char *>(
                std::memchr(p, '\n', static_cast<std::size_t>(
                                         chunk_end - p)));
            if (nl == nullptr) {
                in_->carry.append(p, chunk_end);
                break;
            }
            if (!in_->carry.empty()) {
                in_->carry.append(p, nl);
                const std::string line = std::move(in_->carry);
                in_->carry.clear();
                if (!consume(line.data(),
                             line.data() + line.size()))
                    break;
            } else if (!consume(p, nl)) {
                break;
            }
            p = nl + 1;
        }
    }
    return out.size();
}

std::uint64_t
writeTextTrace(const std::string &path, TrafficSource &source,
               std::uint64_t max_accesses)
{
    const bool gz =
        path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
#if COSMOS_HAS_ZLIB
    gzFile gzf = nullptr;
    std::FILE *fp = nullptr;
    if (gz)
        gzf = gzopen(path.c_str(), "wb");
    else
        fp = std::fopen(path.c_str(), "wb");
    if (gzf == nullptr && fp == nullptr)
        cosmos_fatal("cannot open trace file for writing: ", path);
#else
    if (gz)
        cosmos_fatal("cannot write ", path,
                     ": this build has no zlib (write a plain .trc "
                     "and gzip it afterwards)");
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (fp == nullptr)
        cosmos_fatal("cannot open trace file for writing: ", path);
#endif

    std::uint64_t written = 0;
    std::vector<Access> batch;
    char line[64];
    while (written < max_accesses) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(max_accesses - written, 8192));
        if (source.next(batch, want) == 0)
            break;
        for (const Access &a : batch) {
            const int n = std::snprintf(
                line, sizeof line, "%u %c 0x%llx\n",
                static_cast<unsigned>(a.proc), a.write ? 'w' : 'r',
                static_cast<unsigned long long>(a.addr));
            bool ok = false;
#if COSMOS_HAS_ZLIB
            if (gzf != nullptr)
                ok = gzwrite(gzf, line, static_cast<unsigned>(n)) == n;
            else
#endif
                ok = std::fwrite(line, 1,
                                 static_cast<std::size_t>(n),
                                 fp) == static_cast<std::size_t>(n);
            if (!ok)
                cosmos_fatal("error writing trace file: ", path);
            ++written;
        }
    }
    if (source.failed())
        cosmos_fatal("traffic source failed while exporting: ",
                     source.error());
#if COSMOS_HAS_ZLIB
    if (gzf != nullptr) {
        if (gzclose(gzf) != Z_OK)
            cosmos_fatal("error finishing gzip trace file: ", path);
    } else
#endif
        if (std::fclose(fp) != 0)
            cosmos_fatal("error closing trace file: ", path);
    return written;
}

std::string
formatAccesses(const std::vector<Access> &accesses)
{
    std::string out;
    char line[64];
    for (const Access &a : accesses) {
        std::snprintf(line, sizeof line, "%u %c 0x%llx\n",
                      static_cast<unsigned>(a.proc),
                      a.write ? 'w' : 'r',
                      static_cast<unsigned long long>(a.addr));
        out += line;
    }
    return out;
}

} // namespace cosmos::forge
