/**
 * @file
 * The traffic front door: a common streaming interface over every
 * source of per-processor shared-memory accesses.
 *
 * The built-in workload kernels (src/workloads) synthesize their
 * access skeletons from miniature host computations. A TrafficSource
 * abstracts that stream so the same machine + predictor pipeline can
 * also consume (a) externally captured multiprocessor traces in the
 * de-facto `<processor> <r|w> <hex-addr>` text format (text_trace.hh)
 * and (b) unbounded synthetic streams with controlled sharing
 * structure and known ground truth (synth.hh). harness::runTraffic
 * drives any TrafficSource through the simulator exactly like a
 * kernel run, so predictors, census, fuzzing, and benches all work
 * over every source.
 */

#ifndef COSMOS_FORGE_TRAFFIC_SOURCE_HH
#define COSMOS_FORGE_TRAFFIC_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cosmos::forge
{

/** One shared-memory access by one processor. */
struct Access
{
    NodeId proc = 0;
    bool write = false;
    Addr addr = 0;

    bool operator==(const Access &) const = default;
};

/**
 * Streaming producer of accesses.
 *
 * Sources are pulled in chunks so multi-GB trace files never
 * materialize as whole vectors, and synthetic sources can be
 * unbounded. A source that encounters an input error latches
 * failed(); next() then returns 0 and error() explains what went
 * wrong (with file and line number for text traces).
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Human-readable source name (becomes the trace's app name). */
    virtual const std::string &name() const = 0;

    /** Processors the stream may reference (ids in [0, numProcs)). */
    virtual NodeId numProcs() const = 0;

    /** True when the stream ends on its own (trace files); false for
     *  unbounded generators, which need an external iteration cap. */
    virtual bool bounded() const = 0;

    /**
     * Replace @p out with up to @p max further accesses.
     * @return the number produced; 0 means exhausted or failed().
     */
    virtual std::size_t next(std::vector<Access> &out,
                             std::size_t max) = 0;

    /** True after an unrecoverable input error. */
    virtual bool failed() const { return false; }

    /** Diagnostic for failed(); empty when healthy. */
    virtual std::string error() const { return {}; }
};

} // namespace cosmos::forge

#endif // COSMOS_FORGE_TRAFFIC_SOURCE_HH
