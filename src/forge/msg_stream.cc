#include "forge/msg_stream.hh"

#include <algorithm>

#include "common/log.hh"
#include "proto/messages.hh"

namespace cosmos::forge
{

namespace
{
/// Accesses pulled from the source per refill. Fixed so the lowered
/// record sequence never depends on the consumer's chunk sizes.
constexpr std::size_t access_chunk = 8192;
} // namespace

CoherenceMessageStream::CoherenceMessageStream(
    TrafficSource &source, const MsgStreamConfig &cfg)
    : source_(source), cfg_(cfg), name_(source.name() + "+dir")
{
    cosmos_assert(source.numProcs() <= 64,
                  "sharer bitmask holds at most 64 processors, got ",
                  source.numProcs());
    cosmos_assert(cfg_.blockBytes > 0 && cfg_.pageBytes > 0,
                  "blockBytes and pageBytes must be positive");
}

void
CoherenceMessageStream::emit(proto::MsgType type, NodeId sender,
                             NodeId receiver, std::int32_t iteration)
{
    // Intra-node traffic never crosses the network, so the machine
    // would not have recorded it either.
    if (sender == receiver)
        return;
    trace::TraceRecord r;
    r.block = 0; // caller fills
    r.when = tick_++;
    r.receiver = receiver;
    r.sender = sender;
    r.type = type;
    r.role = proto::receiverRole(type);
    r.iteration = iteration;
    pending_.push_back(r);
}

void
CoherenceMessageStream::lower(const Access &a,
                              std::int32_t iteration)
{
    const Addr block = a.addr / cfg_.blockBytes * cfg_.blockBytes;
    const NodeId home = static_cast<NodeId>(
        (a.addr / cfg_.pageBytes) % source_.numProcs());
    DirState &st = dir_.obtain(block);
    const NodeId p = a.proc;
    const std::uint64_t pbit = std::uint64_t{1} << p;
    const std::size_t before = pending_.size();

    if (!a.write) {
        // Read. A hit in any valid state is silent.
        if (st.owner != p && (st.sharers & pbit) == 0) {
            emit(proto::MsgType::get_ro_request, p, home, iteration);
            if (st.owner != invalid_node) {
                // Exclusive elsewhere: home downgrades the owner to
                // shared before answering.
                emit(proto::MsgType::downgrade_request, home,
                     st.owner, iteration);
                emit(proto::MsgType::downgrade_response, st.owner,
                     home, iteration);
                st.sharers |= std::uint64_t{1} << st.owner;
                st.owner = invalid_node;
            }
            emit(proto::MsgType::get_ro_response, home, p,
                 iteration);
            st.sharers |= pbit;
        }
    } else if (st.owner != p) {
        // Write without ownership: upgrade when already shared,
        // full fetch otherwise; every other copy is invalidated.
        const bool had_shared = (st.sharers & pbit) != 0;
        emit(had_shared ? proto::MsgType::upgrade_request
                        : proto::MsgType::get_rw_request,
             p, home, iteration);
        if (st.owner != invalid_node) {
            emit(proto::MsgType::inval_rw_request, home, st.owner,
                 iteration);
            emit(proto::MsgType::inval_rw_response, st.owner, home,
                 iteration);
            st.owner = invalid_node;
        }
        for (NodeId s = 0; s < source_.numProcs(); ++s) {
            if (s == p || (st.sharers & (std::uint64_t{1} << s)) == 0)
                continue;
            emit(proto::MsgType::inval_ro_request, home, s,
                 iteration);
            emit(proto::MsgType::inval_ro_response, s, home,
                 iteration);
        }
        st.sharers = 0;
        emit(had_shared ? proto::MsgType::upgrade_response
                        : proto::MsgType::get_rw_response,
             home, p, iteration);
        st.owner = p;
    }

    for (std::size_t i = before; i < pending_.size(); ++i)
        pending_[i].block = block;
}

bool
CoherenceMessageStream::refill()
{
    pending_.clear();
    cursor_ = 0;
    while (pending_.empty() && !done_) {
        if (source_.next(accessChunk_, access_chunk) == 0) {
            done_ = true;
            if (source_.failed())
                cosmos_fatal("traffic source failed: ",
                             source_.error());
            break;
        }
        for (const Access &a : accessChunk_) {
            const std::int32_t iter =
                cfg_.accessesPerIteration == 0
                    ? 0
                    : static_cast<std::int32_t>(
                          accesses_ / cfg_.accessesPerIteration);
            lower(a, iter);
            ++accesses_;
            if (cfg_.maxRecords != 0 &&
                emitted_ + pending_.size() >= cfg_.maxRecords) {
                // Truncate to exactly maxRecords; the record cut is
                // a pure function of the config, not of consumer
                // chunking (the access chunk size is fixed).
                pending_.resize(cfg_.maxRecords - emitted_);
                done_ = true;
                break;
            }
        }
    }
    return !pending_.empty();
}

std::size_t
CoherenceMessageStream::next(std::vector<trace::TraceRecord> &out,
                             std::size_t max)
{
    out.clear();
    while (out.size() < max) {
        if (cursor_ == pending_.size()) {
            if (done_ || !refill())
                break;
        }
        const std::size_t take =
            std::min(max - out.size(), pending_.size() - cursor_);
        out.insert(out.end(), pending_.begin() + cursor_,
                   pending_.begin() + cursor_ + take);
        cursor_ += take;
        emitted_ += take;
    }
    return out.size();
}

} // namespace cosmos::forge
