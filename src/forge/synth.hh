/**
 * @file
 * The workload forge: seeded synthetic traffic with known ground
 * truth.
 *
 * §6.1 of the paper explains each application's predictor accuracy
 * by its mix of classical sharing patterns -- migratory blocks,
 * producer-consumer fan-out, read-only data, false sharing -- but
 * can only observe that mix indirectly through benchmarks. The forge
 * inverts the experiment: every cache block is *assigned* a sharing
 * class up front, traffic is generated to exercise exactly that
 * class, and the assignment is exported as a ground-truth label per
 * block. Prediction accuracy can then be scored against known
 * sharing structure (forge/score.hh), and trace::classifyTrace can
 * be validated against a census with a known answer.
 *
 * Streams are unbounded, deterministic functions of (seed, params):
 * the same parameters produce byte-identical access sequences
 * regardless of chunk sizes or consumer threading. Phase oscillation
 * (PAPERS.md's phase-priority direction) rotates the role assignment
 * every `phase` rounds so predictors must re-learn mid-stream.
 */

#ifndef COSMOS_FORGE_SYNTH_HH
#define COSMOS_FORGE_SYNTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "forge/traffic_source.hh"
#include "trace/pattern_census.hh"

namespace cosmos::forge
{

/** Ground-truth sharing class assigned to a block. */
enum class BlockClass : std::uint8_t
{
    private_block,     ///< one processor, reads and writes
    read_only,         ///< fetched by every processor, never written
    migratory,         ///< read-modify-write ownership rotation
    producer_consumer, ///< one writer, `fanout` readers
    false_sharing,     ///< disjoint offsets of one block written by
                       ///< different processors
};

constexpr unsigned num_block_classes = 5;

const char *toString(BlockClass c);

/** The census pattern a block of class @p c should classify as. */
trace::SharingPattern expectedPattern(BlockClass c);

/**
 * Forge parameters: the §6.1 sharing axes.
 *
 * The class fractions partition the block population; whatever the
 * four explicit fractions leave over becomes producer-consumer.
 */
struct ForgeParams
{
    NodeId numProcs = 16;
    unsigned blocks = 256;
    unsigned blockBytes = 64;
    unsigned pageBytes = 4096;

    double migratory = 0.25;    ///< fraction of migratory blocks
    double falseSharing = 0.10; ///< fraction of false-sharing blocks
    double privateFrac = 0.20;  ///< fraction of private blocks
    double readOnly = 0.15;     ///< fraction of read-only blocks

    /** Consumers reading each producer-consumer block per round. */
    unsigned fanout = 3;

    /** Rounds per sharing phase; after each phase the producer,
     *  migratory rotation, and false-sharing writer roles shift to
     *  different processors. 0 = static roles. */
    unsigned phase = 0;

    std::uint64_t seed = 0xf0e6e5eedULL;

    /** Fraction left to producer-consumer blocks. */
    double producerConsumer() const;

    /** Fatal on inconsistent values. */
    void validate() const;

    /** One-line key=value summary (CLI echo, JSON artifacts). */
    std::string summary() const;

    /**
     * Parse a `key=value,key=value` spec: migratory, false, private,
     * readonly, fanout, phase, blocks, procs, seed (decimal or 0x).
     * @return false with @p err set on an unknown key or bad value.
     */
    static bool parse(const std::string &spec, ForgeParams &out,
                      std::string *err);
};

/**
 * The generator. Traffic is produced in rounds: each round touches
 * every block once according to its class, in a per-round shuffled
 * block order. One round is a natural "iteration" of the stream.
 */
class SynthSource : public TrafficSource
{
  public:
    explicit SynthSource(const ForgeParams &params);

    const std::string &name() const override { return name_; }
    NodeId numProcs() const override { return params_.numProcs; }
    bool bounded() const override { return false; }
    std::size_t next(std::vector<Access> &out,
                     std::size_t max) override;

    const ForgeParams &params() const { return params_; }

    /** Ground-truth label of block @p index (in [0, blocks)). */
    BlockClass label(unsigned index) const;

    /** All labels, indexed by block. */
    const std::vector<BlockClass> &labels() const { return labels_; }

    /** Base address of block @p index (one block per page, so homes
     *  spread round-robin like the kernels' allocator). */
    Addr blockAddr(unsigned index) const;

    /**
     * Ground-truth label for an address the stream emitted;
     * -1 cast to BlockClass never happens -- panics on a foreign
     * address (every stream address maps back to its block).
     */
    BlockClass labelOfAddr(Addr a) const;

    /** Accesses emitted per full round over all blocks. */
    std::size_t accessesPerRound() const;

    /** Completed rounds so far. */
    unsigned round() const { return round_; }

  private:
    void emitRound();
    void emitBlock(unsigned index, unsigned phase_shift);

    ForgeParams params_;
    std::string name_ = "forge";
    Rng rng_;
    std::vector<BlockClass> labels_;
    std::vector<unsigned> order_; ///< per-round shuffled block order
    std::vector<Access> pending_;
    std::size_t cursor_ = 0;
    unsigned round_ = 0;
};

} // namespace cosmos::forge

#endif // COSMOS_FORGE_SYNTH_HH
