#include "forge/synth.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <sstream>

#include "common/log.hh"

namespace cosmos::forge
{

namespace
{

constexpr std::uint64_t label_stream = 0x1abe15ULL;
constexpr std::uint64_t order_stream = 0x02de2ULL;

/** Stable per-block processor base: decorrelates neighboring blocks
 *  so one node is not the producer of a whole address range. */
NodeId
baseProc(unsigned block, NodeId num_procs)
{
    const std::uint64_t h =
        (static_cast<std::uint64_t>(block) + 1) *
        0x9e3779b97f4a7c15ULL;
    return static_cast<NodeId>((h >> 33) % num_procs);
}

} // namespace

const char *
toString(BlockClass c)
{
    switch (c) {
      case BlockClass::private_block:     return "private";
      case BlockClass::read_only:         return "read-only";
      case BlockClass::migratory:         return "migratory";
      case BlockClass::producer_consumer: return "producer-consumer";
      case BlockClass::false_sharing:     return "false-sharing";
    }
    return "?";
}

trace::SharingPattern
expectedPattern(BlockClass c)
{
    switch (c) {
      case BlockClass::private_block:
        // A private block's only remote traffic is its first fetch:
        // too few directory messages to classify.
        return trace::SharingPattern::rarely_touched;
      case BlockClass::read_only:
        return trace::SharingPattern::read_only;
      case BlockClass::migratory:
        return trace::SharingPattern::migratory;
      case BlockClass::producer_consumer:
        return trace::SharingPattern::producer_consumer;
      case BlockClass::false_sharing:
        return trace::SharingPattern::multi_writer;
    }
    return trace::SharingPattern::rarely_touched;
}

double
ForgeParams::producerConsumer() const
{
    return 1.0 - migratory - falseSharing - privateFrac - readOnly;
}

void
ForgeParams::validate() const
{
    cosmos_assert(numProcs >= 2, "forge needs >= 2 processors");
    cosmos_assert(blocks >= 1, "forge needs >= 1 block");
    cosmos_assert(fanout >= 1 && fanout < numProcs,
                  "fanout must be in [1, procs); got ", fanout);
    cosmos_assert(blockBytes >= 2 && pageBytes >= blockBytes,
                  "bad block/page geometry");
    for (double f : {migratory, falseSharing, privateFrac, readOnly})
        cosmos_assert(f >= 0.0 && f <= 1.0,
                      "class fractions must be within [0, 1]");
    cosmos_assert(producerConsumer() >= -1e-9,
                  "class fractions sum past 1.0");
}

std::string
ForgeParams::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "procs=%u blocks=%u migratory=%.2f false=%.2f "
                  "private=%.2f readonly=%.2f pc=%.2f fanout=%u "
                  "phase=%u seed=0x%llx",
                  static_cast<unsigned>(numProcs), blocks, migratory,
                  falseSharing, privateFrac, readOnly,
                  producerConsumer() < 0 ? 0.0 : producerConsumer(),
                  fanout, phase,
                  static_cast<unsigned long long>(seed));
    return buf;
}

bool
ForgeParams::parse(const std::string &spec, ForgeParams &out,
                   std::string *err)
{
    auto bad = [&](const std::string &msg) {
        if (err != nullptr)
            *err = msg;
        return false;
    };
    std::istringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            return bad("forge spec item '" + item +
                       "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char *end = nullptr;
        const double d = std::strtod(val.c_str(), &end);
        const bool numeric = end != nullptr && *end == '\0' &&
                             end != val.c_str();
        if (!numeric)
            return bad("forge value for '" + key +
                       "' is not a number: '" + val + "'");
        if (key == "migratory") {
            out.migratory = d;
        } else if (key == "false") {
            out.falseSharing = d;
        } else if (key == "private") {
            out.privateFrac = d;
        } else if (key == "readonly") {
            out.readOnly = d;
        } else if (key == "fanout") {
            out.fanout = static_cast<unsigned>(d);
        } else if (key == "phase") {
            out.phase = static_cast<unsigned>(d);
        } else if (key == "blocks") {
            out.blocks = static_cast<unsigned>(d);
        } else if (key == "procs") {
            out.numProcs = static_cast<NodeId>(d);
        } else if (key == "seed") {
            out.seed = std::strtoull(val.c_str(), nullptr, 0);
        } else {
            return bad("unknown forge key '" + key +
                       "' (valid: migratory, false, private, "
                       "readonly, fanout, phase, blocks, procs, "
                       "seed)");
        }
    }
    return true;
}

SynthSource::SynthSource(const ForgeParams &params)
    : params_(params), rng_(params.seed ^ order_stream)
{
    params_.validate();

    // Partition the block population into classes by the requested
    // fractions (producer-consumer takes the remainder), then
    // scatter the assignment so classes interleave in address space.
    const unsigned n = params_.blocks;
    auto count = [&](double f) {
        return static_cast<unsigned>(f * n + 0.5);
    };
    labels_.clear();
    labels_.insert(labels_.end(), count(params_.migratory),
                   BlockClass::migratory);
    labels_.insert(labels_.end(), count(params_.falseSharing),
                   BlockClass::false_sharing);
    labels_.insert(labels_.end(), count(params_.privateFrac),
                   BlockClass::private_block);
    labels_.insert(labels_.end(), count(params_.readOnly),
                   BlockClass::read_only);
    if (labels_.size() > n)
        labels_.resize(n);
    labels_.insert(labels_.end(), n - labels_.size(),
                   BlockClass::producer_consumer);
    Rng lrng(params_.seed ^ label_stream);
    lrng.shuffle(labels_);

    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0u);
}

BlockClass
SynthSource::label(unsigned index) const
{
    cosmos_assert(index < labels_.size(), "bad block index ", index);
    return labels_[index];
}

Addr
SynthSource::blockAddr(unsigned index) const
{
    // One block per page: page homes spread round-robin across the
    // nodes, mirroring how the kernels' allocator lays out hot data.
    return static_cast<Addr>(index) * params_.pageBytes;
}

BlockClass
SynthSource::labelOfAddr(Addr a) const
{
    const std::uint64_t index = a / params_.pageBytes;
    cosmos_assert(index < labels_.size(),
                  "address 0x", a, " is not a forge block");
    return labels_[static_cast<std::size_t>(index)];
}

std::size_t
SynthSource::accessesPerRound() const
{
    std::size_t total = 0;
    for (BlockClass c : labels_) {
        switch (c) {
          case BlockClass::private_block:
          case BlockClass::migratory:
          case BlockClass::false_sharing:
            total += 2;
            break;
          case BlockClass::read_only:
            total += params_.numProcs;
            break;
          case BlockClass::producer_consumer:
            total += 1 + params_.fanout;
            break;
        }
    }
    return total;
}

void
SynthSource::emitBlock(unsigned index, unsigned phase_shift)
{
    const Addr addr = blockAddr(index);
    const NodeId procs = params_.numProcs;
    const NodeId base = baseProc(index, procs);
    auto emit = [&](NodeId p, bool w, Addr a) {
        pending_.push_back({p, w, a});
    };

    switch (labels_[index]) {
      case BlockClass::private_block: {
        // One fixed owner, unaffected by phase: private data must
        // never migrate or it stops being private.
        emit(base, false, addr);
        emit(base, true, addr);
        break;
      }
      case BlockClass::read_only: {
        // Every processor reads; after the first round these are
        // cache hits, exactly like real read-only tables.
        for (NodeId k = 0; k < procs; ++k)
            emit(static_cast<NodeId>((base + k) % procs), false,
                 addr);
        break;
      }
      case BlockClass::migratory: {
        // The current owner read-modify-writes, then ownership
        // rotates: the directory sees get_ro then upgrade from one
        // node per round, the classic migratory hand-off.
        const NodeId owner = static_cast<NodeId>(
            (base + round_ + phase_shift) % procs);
        emit(owner, false, addr);
        emit(owner, true, addr);
        break;
      }
      case BlockClass::producer_consumer: {
        const NodeId producer =
            static_cast<NodeId>((base + phase_shift) % procs);
        emit(producer, true, addr);
        for (unsigned k = 1; k <= params_.fanout; ++k)
            emit(static_cast<NodeId>((producer + k) % procs), false,
                 addr);
        break;
      }
      case BlockClass::false_sharing: {
        // Two writers hammer disjoint halves of the same block with
        // pure writes -- no read-modify-write discipline, so the
        // census must call it multi-writer, not migratory.
        const NodeId wa =
            static_cast<NodeId>((base + phase_shift) % procs);
        const NodeId wb = static_cast<NodeId>((wa + 1) % procs);
        emit(wa, true, addr);
        emit(wb, true, addr + params_.blockBytes / 2);
        break;
      }
    }
}

void
SynthSource::emitRound()
{
    const unsigned phase_shift =
        params_.phase > 0
            ? (round_ / params_.phase) % params_.numProcs
            : 0;
    rng_.shuffle(order_);
    for (unsigned index : order_)
        emitBlock(index, phase_shift);
    ++round_;
}

std::size_t
SynthSource::next(std::vector<Access> &out, std::size_t max)
{
    out.clear();
    while (out.size() < max) {
        if (cursor_ == pending_.size()) {
            pending_.clear();
            cursor_ = 0;
            emitRound();
        }
        while (cursor_ < pending_.size() && out.size() < max)
            out.push_back(pending_[cursor_++]);
    }
    return out.size();
}

} // namespace cosmos::forge
