/**
 * @file
 * Ingestion of the de-facto multiprocessor trace text format.
 *
 * Each line is one memory transaction: `<processor> <r|w> <hex-addr>`
 * (e.g. `5 w 0xabcd`), the format the classic coherence-simulator
 * course infrastructures consume. Two layouts are accepted:
 *
 *  - a single file of such lines;
 *  - a benchmark-suite directory: every regular file inside is
 *    ingested in lexicographic filename order. A file whose stem ends
 *    in `_<N>` (e.g. `bodytrack_3.data`) may omit the processor
 *    column -- two-field lines `<r|w> <hex-addr>` default to
 *    processor N.
 *
 * Files are read in fixed-size chunks, never materialized whole, so
 * multi-GB captures stream through in constant memory. Files ending
 * in `.gz` are decompressed on the fly when zlib is available (and
 * plain files pass through the same path untouched). Blank lines and
 * `#`/`//` comment lines are skipped. Any malformed line stops the
 * stream with a `<file>:<line>: <reason>` diagnostic -- trace bugs
 * surface with an actionable location instead of silently skewing
 * the workload.
 */

#ifndef COSMOS_FORGE_TEXT_TRACE_HH
#define COSMOS_FORGE_TEXT_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "forge/traffic_source.hh"

namespace cosmos::forge
{

/** True when this build can decompress `.gz` traces. */
bool gzipSupported();

/** Streaming reader over a trace file or benchmark directory. */
class TextTraceReader : public TrafficSource
{
  public:
    /**
     * @param path       file or directory to ingest
     * @param max_procs  processor ids must be < max_procs (the
     *                   machine's node count); larger ids are
     *                   reported as malformed input
     */
    TextTraceReader(const std::string &path, NodeId max_procs);
    ~TextTraceReader() override;

    const std::string &name() const override { return name_; }
    NodeId numProcs() const override { return maxProcs_; }
    bool bounded() const override { return true; }
    std::size_t next(std::vector<Access> &out,
                     std::size_t max) override;
    bool failed() const override { return failed_; }
    std::string error() const override { return error_; }

    /** Accesses produced so far. */
    std::uint64_t accessesRead() const { return accesses_; }

    /** Input lines consumed so far (including blank/comment). */
    std::uint64_t linesRead() const { return lines_; }

    /** Compressed/raw input bytes consumed so far. */
    std::uint64_t bytesRead() const { return bytes_; }

  private:
    struct Input; // one open file (plain or gzip)

    bool openNextFile();
    void fail(const std::string &reason);
    bool parseLine(const char *begin, const char *end, Access &a);

    std::string name_;
    NodeId maxProcs_;
    std::vector<std::string> files_;
    std::size_t nextFile_ = 0;
    std::unique_ptr<Input> in_;
    bool failed_ = false;
    bool exhausted_ = false;
    std::string error_;
    std::uint64_t accesses_ = 0;
    std::uint64_t lines_ = 0;
    std::uint64_t bytes_ = 0;
    /// accesses parsed ahead of the consumer (one chunk's worth)
    std::vector<Access> pending_;
    std::size_t cursor_ = 0;
};

/**
 * Drain @p source into @p path in the text trace format (one
 * `<proc> <r|w> 0x<hex>` line per access). A `.gz` suffix writes a
 * gzip stream when zlib is available (fatal otherwise). Unbounded
 * sources stop after @p max_accesses.
 * @return accesses written.
 */
std::uint64_t writeTextTrace(const std::string &path,
                             TrafficSource &source,
                             std::uint64_t max_accesses);

/** Render accesses as text trace lines (tests, small exports). */
std::string formatAccesses(const std::vector<Access> &accesses);

} // namespace cosmos::forge

#endif // COSMOS_FORGE_TEXT_TRACE_HH
