#include "forge/score.hh"

#include <cstdio>

#include "common/table.hh"
#include "trace/pattern_census.hh"

namespace cosmos::forge
{

std::string
ForgeScore::formatTable() const
{
    TextTable table("accuracy by ground-truth sharing class (depth " +
                    std::to_string(config.depth) + ", filter " +
                    std::to_string(config.filterMax) + ")");
    table.setHeader({"Class", "Blocks", "Msgs", "C%", "D%", "O%",
                     "Census"});
    for (const ClassScore &c : classes) {
        if (c.blocks == 0)
            continue;
        table.addRow(
            {toString(c.cls), TextTable::num(c.blocks),
             TextTable::num(c.records),
             TextTable::num(c.accuracy.cacheSide().percent(), 1),
             TextTable::num(c.accuracy.directorySide().percent(), 1),
             TextTable::num(c.accuracy.overall().percent(), 1),
             TextTable::num(c.censusAgree) + "/" +
                 TextTable::num(c.censusSeen)});
    }
    std::uint64_t all_blocks = 0;
    std::uint64_t all_records = 0;
    for (const ClassScore &c : classes) {
        all_blocks += c.blocks;
        all_records += c.records;
    }
    table.addSeparator();
    table.addRow({"all", TextTable::num(all_blocks),
                  TextTable::num(all_records),
                  TextTable::num(total.cacheSide().percent(), 1),
                  TextTable::num(total.directorySide().percent(), 1),
                  TextTable::num(total.overall().percent(), 1), ""});
    return table.render();
}

ForgeScore
scoreByClass(const trace::Trace &t, const SynthSource &src,
             const pred::CosmosConfig &cfg)
{
    ForgeScore score;
    score.config = cfg;
    score.classes.resize(num_block_classes);
    for (unsigned i = 0; i < num_block_classes; ++i)
        score.classes[i].cls = static_cast<BlockClass>(i);
    for (BlockClass c : src.labels())
        ++score.classes[static_cast<unsigned>(c)].blocks;

    // Partition the record stream by its block's ground-truth label.
    // Prediction state is per block (sharded replay is bit-identical
    // to serial, src/replay), so replaying each slice through its own
    // bank gives exact per-class accuracy.
    std::vector<std::vector<const trace::TraceRecord *>> slices(
        num_block_classes);
    for (const auto &r : t.records)
        slices[static_cast<unsigned>(src.labelOfAddr(r.block))]
            .push_back(&r);

    for (unsigned i = 0; i < num_block_classes; ++i) {
        ClassScore &c = score.classes[i];
        c.records = slices[i].size();
        if (slices[i].empty())
            continue;
        pred::PredictorBank bank(t.numNodes, cfg);
        bank.replay(slices[i]);
        c.accuracy.merge(bank.accuracy());
        score.total.merge(bank.accuracy());
    }

    // Census validation: classify the trace with no ground truth and
    // count how often it recovers each class's expected pattern.
    for (const auto &[block, pattern] : trace::classifyBlocks(t)) {
        ClassScore &c = score.classes[static_cast<unsigned>(
            src.labelOfAddr(block))];
        ++c.censusSeen;
        if (pattern == expectedPattern(c.cls))
            ++c.censusAgree;
    }
    return score;
}

bool
writeForgeReport(const std::string &path, const SynthSource &src,
                 const trace::Trace &t, const ForgeScore &score)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const ForgeParams &p = src.params();
    std::fprintf(f, "{\n  \"format\": \"cosmos-forge-v1\",\n");
    std::fprintf(f,
                 "  \"params\": {\"procs\": %u, \"blocks\": %u, "
                 "\"migratory\": %.4f, \"false\": %.4f, "
                 "\"private\": %.4f, \"readonly\": %.4f, "
                 "\"producer_consumer\": %.4f, \"fanout\": %u, "
                 "\"phase\": %u, \"seed\": %llu},\n",
                 static_cast<unsigned>(p.numProcs), p.blocks,
                 p.migratory, p.falseSharing, p.privateFrac,
                 p.readOnly,
                 p.producerConsumer() < 0 ? 0.0
                                          : p.producerConsumer(),
                 p.fanout, p.phase,
                 static_cast<unsigned long long>(p.seed));
    std::fprintf(f, "  \"depth\": %u,\n  \"filter\": %u,\n",
                 score.config.depth, score.config.filterMax);
    std::fprintf(f, "  \"nodes\": %u,\n  \"iterations\": %d,\n",
                 static_cast<unsigned>(t.numNodes), t.iterations);
    std::fprintf(f, "  \"messages\": %zu,\n", t.records.size());
    std::fprintf(f, "  \"overall_pct\": %.2f,\n",
                 score.total.overall().percent());
    std::fprintf(f, "  \"classes\": [\n");
    bool first = true;
    for (const ClassScore &c : score.classes) {
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(
            f,
            "    {\"class\": \"%s\", \"blocks\": %llu, "
            "\"records\": %llu, \"cache_pct\": %.2f, "
            "\"directory_pct\": %.2f, \"overall_pct\": %.2f, "
            "\"census_seen\": %llu, \"census_agree\": %llu}",
            toString(c.cls),
            static_cast<unsigned long long>(c.blocks),
            static_cast<unsigned long long>(c.records),
            c.accuracy.cacheSide().percent(),
            c.accuracy.directorySide().percent(),
            c.accuracy.overall().percent(),
            static_cast<unsigned long long>(c.censusSeen),
            static_cast<unsigned long long>(c.censusAgree));
    }
    std::fprintf(f, "\n  ]\n}\n");
    return std::fclose(f) == 0;
}

} // namespace cosmos::forge
