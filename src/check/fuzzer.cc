#include "check/fuzzer.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "common/rng.hh"
#include "forge/synth.hh"
#include "proto/machine.hh"
#include "runtime/processor.hh"

namespace cosmos::check
{

namespace
{

// Independent derived streams per seed.
constexpr std::uint64_t case_stream = 0xca5e00ULL;
constexpr std::uint64_t jitter_stream = 0x717732ULL;

Addr
blockAddr(const MachineConfig &cfg, unsigned b)
{
    // One block per page: homes spread round-robin across nodes, and
    // all contention is concentrated on numBlocks hot blocks.
    return Addr{b} * cfg.pageBytes;
}

std::string
formatOp(const runtime::Op &op)
{
    std::ostringstream os;
    switch (op.kind) {
      case runtime::Op::Kind::read:
        os << "R 0x" << std::hex << op.addr;
        break;
      case runtime::Op::Kind::write:
        os << "W 0x" << std::hex << op.addr;
        break;
      case runtime::Op::Kind::think:
        os << "T " << op.delay;
        break;
      default:
        os << "?";
        break;
    }
    return os.str();
}

void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendViolation(std::ostream &os, const Violation &v,
                const char *indent)
{
    os << indent << "{\"kind\": ";
    appendJsonString(os, toString(v.kind));
    os << ", \"block\": " << v.block << ", \"when\": " << v.when
       << ", \"nodes\": [";
    for (std::size_t i = 0; i < v.nodes.size(); ++i)
        os << (i ? ", " : "") << static_cast<unsigned>(v.nodes[i]);
    os << "], \"detail\": ";
    appendJsonString(os, v.detail);
    os << ", \"history\": [";
    for (std::size_t i = 0; i < v.history.size(); ++i) {
        os << (i ? ", " : "");
        appendJsonString(os, v.history[i]);
    }
    os << "]}";
}

/**
 * Draw per-seed forge parameters and lower the synthetic stream to
 * per-node programs. The forge uses the fuzzer's block layout (one
 * block per page), so violations print the same addresses either way.
 */
void
makeForgePrograms(FuzzCase &c, Rng &rng, const FuzzOptions &opts)
{
    forge::ForgeParams fp;
    fp.numProcs = opts.numNodes;
    fp.blocks = std::max(1u, opts.numBlocks);
    fp.blockBytes = c.cfg.blockBytes;
    fp.pageBytes = c.cfg.pageBytes;
    fp.seed = c.seed;
    // Random class mix per seed; the four explicit fractions sum to
    // at most 0.9, leaving producer-consumer the remainder.
    fp.migratory = 0.1 * static_cast<double>(rng.nextBelow(4));
    fp.falseSharing = 0.1 * static_cast<double>(rng.nextBelow(3));
    fp.privateFrac = 0.1 * static_cast<double>(rng.nextBelow(3));
    fp.readOnly = 0.1 * static_cast<double>(rng.nextBelow(3));
    fp.fanout = 1 + static_cast<unsigned>(rng.nextBelow(
                        std::max<NodeId>(opts.numNodes, 2) - 1));
    fp.phase = rng.nextBool(0.5)
                   ? 1 + static_cast<unsigned>(rng.nextBelow(4))
                   : 0;

    forge::SynthSource src(fp);
    const std::size_t want =
        static_cast<std::size_t>(opts.opsPerNode) * opts.numNodes;
    std::vector<forge::Access> batch;
    std::size_t pulled = 0;
    while (pulled < want && src.next(batch, want - pulled) > 0) {
        for (const forge::Access &a : batch) {
            c.programs[a.proc].push_back(
                {a.write ? runtime::Op::Kind::write
                         : runtime::Op::Kind::read,
                 a.addr, 0, 0});
        }
        pulled += batch.size();
    }
}

} // namespace

std::size_t
FuzzCase::totalOps() const
{
    std::size_t n = 0;
    for (const auto &p : programs)
        n += p.size();
    return n;
}

FuzzCase
makeCase(std::uint64_t seed, const FuzzOptions &opts)
{
    Rng rng(seed ^ case_stream);

    FuzzCase c;
    c.seed = seed;
    c.cfg.numNodes = opts.numNodes;
    c.cfg.seed = seed;
    // Vary the protocol-shaping knobs per seed so the campaign covers
    // every flow family (half-migratory vs downgrade owner reads,
    // 3-hop forwarding, replacement, overlapping misses).
    c.cfg.ownerReadPolicy = rng.nextBool(0.5)
                                ? OwnerReadPolicy::half_migratory
                                : OwnerReadPolicy::downgrade;
    c.cfg.forwarding = rng.nextBool(0.5);
    if (rng.nextBool(0.25))
        c.cfg.cacheCapacityBlocks =
            2 + static_cast<unsigned>(rng.nextBelow(opts.numBlocks));
    if (rng.nextBool(0.3))
        c.cfg.memoryLevelParallelism = 2;
    c.cfg.fault.ignoreInvalEvery = opts.ignoreInvalEvery;

    c.programs.resize(opts.numNodes);
    if (opts.forgeMix > 0.0 && rng.nextBool(opts.forgeMix)) {
        makeForgePrograms(c, rng, opts);
        return c;
    }
    for (NodeId p = 0; p < opts.numNodes; ++p) {
        runtime::Program &prog = c.programs[p];
        prog.reserve(opts.opsPerNode);
        for (unsigned i = 0; i < opts.opsPerNode; ++i) {
            const Addr a = blockAddr(
                c.cfg,
                static_cast<unsigned>(rng.nextBelow(opts.numBlocks)));
            switch (rng.nextBelow(10)) {
              case 8:
              case 9:
                prog.push_back({runtime::Op::Kind::think, 0, 0,
                                1 + static_cast<Tick>(
                                        rng.nextBelow(32))});
                break;
              case 0:
              case 1:
              case 2:
              case 3:
                prog.push_back({runtime::Op::Kind::read, a, 0, 0});
                break;
              default:
                prog.push_back({runtime::Op::Kind::write, a, 0, 0});
                break;
            }
        }
    }
    return c;
}

CaseResult
runCase(const FuzzCase &c, const FuzzOptions &opts)
{
    CaseResult r;
    r.seed = c.seed;

    // Declared before the machine: the jitter closure captures it and
    // lives inside the machine's network.
    Rng jrng(c.seed ^ jitter_stream);

    proto::Machine machine(c.cfg);
    if (opts.maxJitter > 0) {
        machine.network().setDeliveryJitter(
            [&jrng, &opts](NodeId, NodeId, const proto::Msg &) {
                return static_cast<Tick>(
                    jrng.nextBelow(opts.maxJitter + 1));
            });
    }

    InvariantEngine engine(machine, opts.check);
    runtime::Runtime rt(machine);

    bool drained = false;
    try {
        FailureTrap trap;
        rt.runPrograms(c.programs);
        drained = true;
    } catch (const RecoverableError &e) {
        engine.noteFailure(e);
    }
    // Quiescent invariants only hold for a drained queue; after a
    // trapped panic the machine is frozen mid-transaction and the
    // sweep would report that, not the root cause.
    if (drained)
        engine.checkQuiescent();

    r.failed = !engine.clean();
    r.violations = engine.violations();
    r.suppressed = engine.suppressed();
    r.delivered = engine.delivered();
    return r;
}

FuzzCase
shrinkCase(const FuzzCase &failing, const FuzzOptions &opts)
{
    FuzzCase best = failing;
    unsigned runs = 0;

    const auto stillFails = [&](const FuzzCase &cand) {
        ++runs;
        return runCase(cand, opts).failed;
    };

    bool progress = true;
    while (progress && runs < opts.maxShrinkRuns) {
        progress = false;
        for (NodeId p = 0;
             p < best.programs.size() && runs < opts.maxShrinkRuns;
             ++p) {
            for (std::size_t len =
                     std::max<std::size_t>(1,
                                           best.programs[p].size() / 2);
                 len >= 1; len /= 2) {
                std::size_t i = 0;
                while (i < best.programs[p].size() &&
                       runs < opts.maxShrinkRuns) {
                    FuzzCase cand = best;
                    auto &ops = cand.programs[p];
                    const std::size_t take =
                        std::min(len, ops.size() - i);
                    ops.erase(ops.begin() +
                                  static_cast<std::ptrdiff_t>(i),
                              ops.begin() +
                                  static_cast<std::ptrdiff_t>(i + take));
                    if (stillFails(cand)) {
                        best = std::move(cand);
                        progress = true;
                        // Same index now names the next chunk.
                    } else {
                        i += len;
                    }
                }
                if (len == 1)
                    break;
            }
        }
    }
    return best;
}

std::vector<std::string>
formatPrograms(const std::vector<runtime::Program> &programs)
{
    std::vector<std::string> out;
    for (std::size_t p = 0; p < programs.size(); ++p) {
        if (programs[p].empty())
            continue;
        std::ostringstream os;
        os << "node " << p << ": ";
        for (std::size_t i = 0; i < programs[p].size(); ++i)
            os << (i ? ", " : "") << formatOp(programs[p][i]);
        out.push_back(os.str());
    }
    return out;
}

Failure
replaySeed(std::uint64_t seed, const FuzzOptions &opts)
{
    const FuzzCase c = makeCase(seed, opts);
    Failure f;
    f.result = runCase(c, opts);
    f.originalOps = c.totalOps();
    f.shrunkOps = f.originalOps;
    f.reproducer = formatPrograms(c.programs);
    if (f.result.failed && opts.shrink) {
        const FuzzCase small = shrinkCase(c, opts);
        f.shrunkOps = small.totalOps();
        f.reproducer = formatPrograms(small.programs);
    }
    return f;
}

FuzzReport
fuzz(const FuzzOptions &opts, std::ostream *log)
{
    FuzzReport report;
    for (unsigned i = 0; i < opts.numSeeds; ++i) {
        const std::uint64_t seed = opts.baseSeed + i;
        const FuzzCase c = makeCase(seed, opts);
        CaseResult r = runCase(c, opts);
        ++report.casesRun;
        if (!r.failed)
            continue;

        Failure f;
        f.result = std::move(r);
        f.originalOps = c.totalOps();
        f.shrunkOps = f.originalOps;
        f.reproducer = formatPrograms(c.programs);
        if (opts.shrink) {
            const FuzzCase small = shrinkCase(c, opts);
            f.shrunkOps = small.totalOps();
            f.reproducer = formatPrograms(small.programs);
        }
        if (log != nullptr) {
            *log << "fuzz: seed " << seed << " FAILED ("
                 << f.result.violations.size() << " violation(s), "
                 << f.shrunkOps << "/" << f.originalOps
                 << " ops after shrink)\n";
            if (!f.result.violations.empty())
                *log << f.result.violations.front().format() << "\n";
        }
        report.failures.push_back(std::move(f));
    }
    if (log != nullptr) {
        *log << "fuzz: " << report.casesRun << " case(s), "
             << report.failures.size() << " failure(s)\n";
    }
    return report;
}

bool
writeReport(const FuzzReport &report, const FuzzOptions &opts,
            const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;

    os << "{\n  \"format\": \"cosmos-fuzz-v1\",\n";
    os << "  \"base_seed\": " << opts.baseSeed << ",\n";
    os << "  \"num_seeds\": " << opts.numSeeds << ",\n";
    os << "  \"cases_run\": " << report.casesRun << ",\n";
    os << "  \"clean\": " << (report.clean() ? "true" : "false")
       << ",\n";
    os << "  \"config\": {\"nodes\": "
       << static_cast<unsigned>(opts.numNodes)
       << ", \"blocks\": " << opts.numBlocks
       << ", \"ops_per_node\": " << opts.opsPerNode
       << ", \"max_jitter\": " << opts.maxJitter
       << ", \"ignore_inval_every\": " << opts.ignoreInvalEvery
       << ", \"forge_mix\": " << opts.forgeMix << "},\n";
    os << "  \"failures\": [";
    for (std::size_t i = 0; i < report.failures.size(); ++i) {
        const Failure &f = report.failures[i];
        os << (i ? "," : "") << "\n    {\"seed\": " << f.result.seed
           << ", \"delivered\": " << f.result.delivered
           << ", \"original_ops\": " << f.originalOps
           << ", \"shrunk_ops\": " << f.shrunkOps
           << ", \"suppressed\": " << f.result.suppressed << ",\n";
        os << "     \"violations\": [";
        for (std::size_t v = 0; v < f.result.violations.size(); ++v) {
            os << (v ? ",\n       " : "");
            appendViolation(os, f.result.violations[v], "");
        }
        os << "],\n     \"reproducer\": [";
        for (std::size_t r = 0; r < f.reproducer.size(); ++r) {
            os << (r ? ", " : "");
            appendJsonString(os, f.reproducer[r]);
        }
        os << "]}";
    }
    os << (report.failures.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return static_cast<bool>(os);
}

namespace
{

/** Extract the unsigned value of "key=<num>" from @p line, or
 *  @p fallback when the key is absent. */
unsigned
parseField(const std::string &line, const std::string &key,
           unsigned fallback)
{
    const std::string needle = key + "=";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return fallback;
    return static_cast<unsigned>(
        std::strtoul(line.c_str() + at + needle.size(), nullptr, 10));
}

/** Extract the string value of "key=<word>" from @p line. */
std::string
parseWord(const std::string &line, const std::string &key)
{
    const std::string needle = key + "=";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return {};
    const std::size_t begin = at + needle.size();
    std::size_t end = begin;
    while (end < line.size() && !std::isspace(
                                    static_cast<unsigned char>(line[end])))
        ++end;
    return line.substr(begin, end - begin);
}

} // namespace

FuzzCase
loadCounterexample(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        cosmos_fatal("cannot open counterexample file ", path);

    std::string line;
    if (!std::getline(in, line) ||
        line != "# cosmos-model-counterexample-v1") {
        cosmos_fatal(path, " is not a cosmos-model-counterexample-v1 "
                           "file");
    }

    FuzzCase c;
    c.seed = 0;
    runtime::ProgramBuilder *builder = nullptr;
    std::unique_ptr<runtime::ProgramBuilder> owned;

    while (std::getline(in, line)) {
        if (line.rfind("# config", 0) == 0) {
            c.cfg.numNodes = static_cast<NodeId>(
                parseField(line, "nodes", c.cfg.numNodes));
            // "forwarding=" also matches inside "legacy_forwarding=",
            // but the header always writes the plain field first, so
            // the first occurrence is the right one.
            c.cfg.forwarding = parseField(line, "forwarding", 0) != 0;
            c.cfg.legacyForwarding =
                parseField(line, "legacy_forwarding", 0) != 0;
            c.cfg.fault.ignoreInvalEvery =
                parseField(line, "inject_ignore_inval", 0);
            const std::string policy = parseWord(line, "policy");
            if (policy == "downgrade")
                c.cfg.ownerReadPolicy = OwnerReadPolicy::downgrade;
            else
                c.cfg.ownerReadPolicy =
                    OwnerReadPolicy::half_migratory;
            owned = std::make_unique<runtime::ProgramBuilder>(
                c.cfg.numNodes);
            builder = owned.get();
            continue;
        }
        if (line.rfind("step ", 0) != 0 ||
            line.find(" issue ") == std::string::npos) {
            continue; // deliver steps and comments need no lowering
        }
        cosmos_assert(builder != nullptr,
                      "counterexample has steps before its # config "
                      "header");
        const auto node = static_cast<NodeId>(
            parseField(line, "node", invalid_node));
        const unsigned block = parseField(line, "block", 0);
        cosmos_assert(node < c.cfg.numNodes,
                      "counterexample issue at bad node ", node);
        const Addr addr = blockAddr(c.cfg, block);
        if (parseWord(line, "op") == "write")
            builder->proc(node).write(addr);
        else
            builder->proc(node).read(addr);
        // The model's schedule orders issues across nodes; a global
        // barrier after each op is the runtime equivalent.
        builder->barrier();
    }

    cosmos_assert(builder != nullptr,
                  "counterexample file has no # config header");
    c.programs = builder->take();
    return c;
}

} // namespace cosmos::check
