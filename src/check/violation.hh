/**
 * @file
 * Structured protocol-safety violation records.
 *
 * The invariant engine and the schedule fuzzer report what went wrong
 * as data -- which property, which block, which nodes, the machine
 * states involved, and the last few delivered messages leading up to
 * the failure -- instead of an abort() with a one-line string. A
 * Violation renders to a human paragraph for terminals and to JSON
 * for CI artifacts (scripts/check_json.py validates the schema).
 */

#ifndef COSMOS_CHECK_VIOLATION_HH
#define COSMOS_CHECK_VIOLATION_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cosmos::check
{

/** Which safety property was violated. */
enum class ViolationKind : std::uint8_t
{
    multiple_writers,   ///< SWMR: more than one read_write copy
    writer_and_readers, ///< SWMR: read_write and read_only coexist
    directory_mismatch, ///< sharer bits / owner disagree with caches
    conservation,       ///< request/response imbalance for a block
    liveness,           ///< pending window exceeded / stuck at quiescence
    assertion,          ///< a cosmos_assert/panic recovered by the trap
};

const char *toString(ViolationKind k);

/** One detected safety violation, with enough context to debug it. */
struct Violation
{
    ViolationKind kind{};
    Addr block = 0;
    /** Nodes implicated (e.g. the coexisting writer and readers). */
    std::vector<NodeId> nodes;
    /** Human-readable description of the offending states. */
    std::string detail;
    /** Simulated time of detection. */
    Tick when = 0;
    /** Last-k delivered messages before detection, oldest first. */
    std::vector<std::string> history;

    /** Multi-line human rendering (detail + message history). */
    std::string format() const;
};

/** "block 0x40 nodes [1, 3]"-style one-liner used inside reports. */
std::string describeBlockNodes(Addr block,
                               const std::vector<NodeId> &nodes);

} // namespace cosmos::check

#endif // COSMOS_CHECK_VIOLATION_HH
