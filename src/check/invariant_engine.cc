#include "check/invariant_engine.hh"

#include <bit>
#include <set>
#include <sstream>

#include "obs/trace_event.hh"

namespace cosmos::check
{

namespace
{

std::vector<NodeId>
nodesOf(std::uint64_t mask)
{
    std::vector<NodeId> nodes;
    for (NodeId n = 0; mask != 0; ++n, mask >>= 1)
        if (mask & 1)
            nodes.push_back(n);
    return nodes;
}

std::vector<NodeId>
nodesOf(std::uint64_t a, std::uint64_t b)
{
    return nodesOf(a | b);
}

} // namespace

InvariantEngine::InvariantEngine(proto::Machine &machine,
                                 CheckOptions opts)
    : machine_(machine), opts_(opts)
{
    machine_.setDeliveryProbe(
        [this](const proto::Msg &m, bool, Tick when) {
            onDelivered(m, when);
        });
}

InvariantEngine::~InvariantEngine()
{
    machine_.setDeliveryProbe(nullptr);
}

std::vector<std::string>
InvariantEngine::historySnapshot() const
{
    return {history_.begin(), history_.end()};
}

void
InvariantEngine::report(Violation v)
{
    if (violations_.size() >= opts_.maxViolations) {
        ++suppressed_;
        return;
    }
    v.history = historySnapshot();
    COSMOS_INSTANT("check", "violation", "block",
                   static_cast<std::uint64_t>(v.block));
    violations_.push_back(std::move(v));
}

void
InvariantEngine::noteFailure(const RecoverableError &e)
{
    Violation v;
    v.kind = ViolationKind::assertion;
    v.when = machine_.eventQueue().now();
    std::ostringstream os;
    os << e.what() << " (" << e.file() << ":" << e.line() << ")";
    v.detail = os.str();
    report(std::move(v));
}

void
InvariantEngine::onDelivered(const proto::Msg &m, Tick when)
{
    ++delivered_;

    std::ostringstream os;
    os << "t=" << when << " " << m.format();
    history_.push_back(os.str());
    while (history_.size() > opts_.historyDepth)
        history_.pop_front();

    // Message conservation: per block, every delivered response must
    // answer a previously delivered request. fwd_ack is exempt: it
    // answers no request -- it is the requester's receipt for the
    // forwarded data response, closing a handshake the request
    // counter does not model.
    if (m.type == proto::MsgType::fwd_ack) {
        if (opts_.perMessage)
            checkBlock(m.block, when);
        if ((delivered_ & 1023) == 0)
            scanPendingWindows(when);
        return;
    }
    auto it = flights_.try_emplace(m.block).first;
    Flight &f = it->second;
    if (proto::isRequest(m.type)) {
        if (f.outstanding == 0) {
            f.since = when;
            f.reportedStuck = false;
        }
        ++f.outstanding;
    } else {
        --f.outstanding;
        if (f.outstanding < 0) {
            Violation v;
            v.kind = ViolationKind::conservation;
            v.block = m.block;
            v.nodes = {m.src, m.dst};
            v.when = when;
            v.detail = std::string("response ") +
                       proto::toString(m.type) +
                       " delivered with no outstanding request for "
                       "the block";
            report(std::move(v));
            f.outstanding = 0;
        }
        if (f.outstanding == 0)
            flights_.erase(it);
    }

    if (opts_.perMessage)
        checkBlock(m.block, when);

    // Amortized liveness scan: stuck transactions produce no further
    // deliveries of their own, so piggyback on overall progress.
    if ((delivered_ & 1023) == 0)
        scanPendingWindows(when);
}

void
InvariantEngine::scanPendingWindows(Tick when)
{
    for (auto &[block, f] : flights_) {
        if (f.outstanding > 0 && !f.reportedStuck &&
            when > f.since && when - f.since > opts_.maxPendingWindow) {
            f.reportedStuck = true;
            Violation v;
            v.kind = ViolationKind::liveness;
            v.block = block;
            v.when = when;
            std::ostringstream os;
            os << f.outstanding << " request(s) outstanding since t="
               << f.since << " (window " << opts_.maxPendingWindow
               << " ticks exceeded)";
            v.detail = os.str();
            report(std::move(v));
        }
    }
}

void
InvariantEngine::checkBlock(Addr block, Tick when)
{
    using proto::DirState;
    using proto::LineState;

    std::uint64_t ro = 0;
    std::uint64_t rw = 0;
    bool transient = false;
    const NodeId n = machine_.numNodes();
    for (NodeId c = 0; c < n; ++c) {
        switch (machine_.cache(c).state(block)) {
          case LineState::invalid:
            break;
          case LineState::read_only:
            ro |= std::uint64_t{1} << c;
            break;
          case LineState::read_write:
            rw |= std::uint64_t{1} << c;
            break;
          default:
            transient = true;
            break;
        }
    }

    // SWMR holds at *every* delivery point: exclusivity is only
    // granted after all invalidation acks, so two quiescent writable
    // copies -- or a writable copy next to readable ones -- are a
    // protocol bug no matter what is in flight.
    if (std::popcount(rw) > 1) {
        Violation v;
        v.kind = ViolationKind::multiple_writers;
        v.block = block;
        v.nodes = nodesOf(rw);
        v.when = when;
        v.detail = "more than one cache holds the block read_write";
        report(std::move(v));
    }
    if (rw != 0 && ro != 0) {
        Violation v;
        v.kind = ViolationKind::writer_and_readers;
        v.block = block;
        v.nodes = nodesOf(rw, ro);
        v.when = when;
        std::ostringstream os;
        os << "writer node " << nodesOf(rw).front()
           << " coexists with " << std::popcount(ro)
           << " read_only cop" << (std::popcount(ro) == 1 ? "y" : "ies");
        v.detail = os.str();
        report(std::move(v));
    }

    // Directory agreement only makes sense once the block is outside
    // any transaction: skip mid-flight states exactly like the
    // quiescent checker in proto/invariants.
    if (transient)
        return;
    const NodeId home = machine_.addrMap().home(block);
    const auto &dir = machine_.directory(home);
    if (dir.busy(block))
        return;

    const DirState ds = dir.state(block);
    const std::uint64_t sharers = dir.sharers(block);
    const NodeId owner = dir.owner(block);
    const bool replacement = machine_.config().cacheCapacityBlocks != 0;

    Violation v;
    v.kind = ViolationKind::directory_mismatch;
    v.block = block;
    v.when = when;
    switch (ds) {
      case DirState::idle:
        if (ro == 0 && rw == 0)
            return;
        v.nodes = nodesOf(ro, rw);
        v.detail = "directory says idle but the block is cached";
        break;
      case DirState::shared:
        if (rw != 0) {
            v.nodes = nodesOf(rw);
            v.detail = "directory says shared but a cache holds the "
                       "block read_write";
        } else if (replacement ? (ro & ~sharers) != 0
                               : ro != sharers) {
            // Silent drops make the sharer list a superset of the
            // real holders; without replacement it must be exact.
            v.nodes = nodesOf(ro ^ (sharers & ro), ro & ~sharers);
            std::ostringstream os;
            os << "sharer bits 0x" << std::hex << sharers
               << " disagree with read_only holders 0x" << ro;
            v.detail = os.str();
            v.nodes = nodesOf(ro ^ sharers);
        } else {
            return;
        }
        break;
      case DirState::exclusive:
        if (rw != (std::uint64_t{1} << owner)) {
            v.nodes = nodesOf(rw | (std::uint64_t{1} << owner));
            std::ostringstream os;
            os << "directory owner is node " << owner
               << " but read_write holders are 0x" << std::hex << rw;
            v.detail = os.str();
        } else if (ro != 0) {
            v.nodes = nodesOf(ro);
            v.detail = "directory says exclusive but read_only "
                       "copies exist";
        } else {
            return;
        }
        break;
    }
    report(std::move(v));
}

void
InvariantEngine::checkQuiescent()
{
    const Tick when = machine_.eventQueue().now();
    const NodeId n = machine_.numNodes();

    // Union of every block anyone still knows about.
    std::set<Addr> blocks;
    for (NodeId c = 0; c < n; ++c) {
        machine_.cache(c).forEachLine(
            [&](Addr b, proto::LineState) { blocks.insert(b); });
        if (machine_.cache(c).busy()) {
            Violation v;
            v.kind = ViolationKind::liveness;
            v.nodes = {c};
            v.when = when;
            std::ostringstream os;
            os << machine_.cache(c).outstanding()
               << " cache miss(es) still outstanding at quiescence";
            v.detail = os.str();
            report(std::move(v));
        }
    }
    for (NodeId d = 0; d < n; ++d) {
        machine_.directory(d).forEachEntry(
            [&](Addr b, proto::DirState, std::uint64_t, NodeId) {
                blocks.insert(b);
                if (machine_.directory(d).busy(b)) {
                    Violation v;
                    v.kind = ViolationKind::liveness;
                    v.block = b;
                    v.nodes = {d};
                    v.when = when;
                    v.detail = "directory entry still busy at "
                               "quiescence";
                    report(std::move(v));
                }
            });
    }

    for (Addr b : blocks)
        checkBlock(b, when);

    for (const auto &[block, f] : flights_) {
        if (f.outstanding == 0)
            continue;
        Violation v;
        v.kind = ViolationKind::conservation;
        v.block = block;
        v.when = when;
        std::ostringstream os;
        os << f.outstanding
           << " request(s) never answered (outstanding since t="
           << f.since << ")";
        v.detail = os.str();
        report(std::move(v));
    }
}

} // namespace cosmos::check
