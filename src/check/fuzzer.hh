/**
 * @file
 * Schedule fuzzer for the coherence protocol.
 *
 * Each fuzz case derives a machine configuration, a random
 * multi-node read/write/think workload, and a network delivery-jitter
 * stream from one 64-bit seed, then runs it under the invariant
 * engine with assertion failures trapped into Violation records. The
 * jitter permutes the global message interleaving (per-channel FIFO
 * order is preserved -- the network's ordering contract) so one
 * workload explores many schedules across seeds.
 *
 * A failing seed is fully reproducible: `cosmos fuzz --replay <seed>`
 * rebuilds the identical case bit-for-bit (common/rng is
 * platform-independent). Failures are also greedily shrunk -- chunks
 * of each node's op list are deleted while the failure persists --
 * to a minimal reproducer reported alongside the violations.
 */

#ifndef COSMOS_CHECK_FUZZER_HH
#define COSMOS_CHECK_FUZZER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariant_engine.hh"
#include "common/config.hh"
#include "runtime/program.hh"

namespace cosmos::check
{

/** Knobs of the fuzz campaign. */
struct FuzzOptions
{
    /** Cases to run (seeds baseSeed .. baseSeed+numSeeds-1). */
    unsigned numSeeds = 100;

    /** First seed of the campaign. */
    std::uint64_t baseSeed = 1;

    /** Nodes per fuzz machine. Small machines hit protocol races
     *  harder: fewer blocks, more contention per block. */
    NodeId numNodes = 4;

    /** Contended shared blocks, each homed on its own page. */
    unsigned numBlocks = 8;

    /** Random ops (read/write/think) per node. */
    unsigned opsPerNode = 64;

    /** Max extra delivery delay in ticks drawn per remote message.
     *  0 disables schedule fuzzing (pure workload fuzzing). */
    Tick maxJitter = 64;

    /** Passed through to MachineConfig::fault.ignoreInvalEvery --
     *  nonzero plants a lost-invalidation bug the checker must
     *  catch (negative testing / CI's planted-bug stage). */
    unsigned ignoreInvalEvery = 0;

    /**
     * Probability that a case's workload is drawn from the synthetic
     * forge (src/forge) instead of pure-random ops: structured
     * migratory / producer-consumer / false-sharing traffic with
     * per-seed random class fractions. Structured sharing drives the
     * protocol through its steady-state flows (ownership hand-offs,
     * fan-out invalidation bursts) that uniform random ops rarely
     * sustain. 0 = classic random workloads only.
     */
    double forgeMix = 0.0;

    /** Shrink failing cases to a minimal reproducer. */
    bool shrink = true;

    /** Cap on extra simulations spent shrinking one failure. */
    unsigned maxShrinkRuns = 200;

    /** Invariant engine tunables for every case. */
    CheckOptions check{};
};

/** One generated case: everything derived from the seed. */
struct FuzzCase
{
    std::uint64_t seed = 0;
    MachineConfig cfg;
    std::vector<runtime::Program> programs;

    std::size_t totalOps() const;
};

/** Outcome of simulating one case. */
struct CaseResult
{
    std::uint64_t seed = 0;
    bool failed = false;
    std::vector<Violation> violations;
    std::uint64_t suppressed = 0;
    std::uint64_t delivered = 0;
};

/** One failing seed with its shrunk reproducer. */
struct Failure
{
    CaseResult result;
    std::size_t originalOps = 0;
    /** Ops surviving the shrink (== originalOps if shrinking off). */
    std::size_t shrunkOps = 0;
    /** Human rendering of the shrunk per-node programs. */
    std::vector<std::string> reproducer;
};

/** Campaign summary. */
struct FuzzReport
{
    unsigned casesRun = 0;
    std::vector<Failure> failures;

    bool clean() const { return failures.empty(); }
};

/** Deterministically derive the case for @p seed. */
FuzzCase makeCase(std::uint64_t seed, const FuzzOptions &opts);

/**
 * Simulate @p c under the invariant engine with failures trapped.
 * Quiescent-state checks run only when the run drains normally (a
 * trapped panic leaves the machine mid-flight, where quiescent
 * invariants do not apply).
 */
CaseResult runCase(const FuzzCase &c, const FuzzOptions &opts);

/**
 * Greedy delta-debugging shrink: repeatedly delete chunks of each
 * node's op list (halving chunk sizes down to single ops), keeping a
 * deletion when the case still fails. Returns the smallest failing
 * case found within opts.maxShrinkRuns extra simulations.
 */
FuzzCase shrinkCase(const FuzzCase &failing, const FuzzOptions &opts);

/**
 * Run the whole campaign. Per-case progress and failure summaries go
 * to @p log when non-null.
 */
FuzzReport fuzz(const FuzzOptions &opts, std::ostream *log = nullptr);

/** Re-run a single seed (shrinking if it fails), as `--replay`. */
Failure replaySeed(std::uint64_t seed, const FuzzOptions &opts);

/** Render one-line per-node programs ("node 2: W 0x1000, R 0x3000"). */
std::vector<std::string>
formatPrograms(const std::vector<runtime::Program> &programs);

/**
 * Lower a `cosmos-model-counterexample-v1` schedule (written by
 * `cosmos model --counterexample-out`) to a directed fuzz case that
 * runCase() can execute: the model's processor issues become per-node
 * read/write ops, each followed by a global barrier so their
 * cross-node order is exactly the model's schedule. Delivery steps
 * need no translation -- with zero jitter the real network's FIFO
 * channels deliver deterministically, and the faults the model
 * checker hunts (e.g. the planted every-Nth-lost-invalidation bug)
 * are functions of the issue order, not of message timing.
 *
 * The machine configuration (nodes, policy, forwarding, injected
 * fault) is parsed from the file's `# config` header. Calls
 * cosmos_fatal on a malformed file.
 */
FuzzCase loadCounterexample(const std::string &path);

/**
 * Write the campaign as a `cosmos-fuzz-v1` JSON artifact for CI
 * (scripts/check_json.py validates it). @return false on I/O error.
 */
bool writeReport(const FuzzReport &report, const FuzzOptions &opts,
                 const std::string &path);

} // namespace cosmos::check

#endif // COSMOS_CHECK_FUZZER_HH
