/**
 * @file
 * Per-message protocol invariant engine.
 *
 * Attaches to a proto::Machine's delivery probe and, after every
 * delivered coherence message, verifies the global safety properties
 * of the protocol on the block the message touched:
 *
 *  - single-writer / multiple-reader: at most one read_write copy
 *    machine-wide, and never a read_write copy coexisting with
 *    read_only copies (checked strictly, at every delivery -- the
 *    protocol grants exclusivity only after all invalidations ack,
 *    so SWMR must hold at every instant, not just quiescence);
 *  - directory/cache agreement: a quiescent directory entry's sharer
 *    bits and owner must match the caches' actual line states;
 *  - message conservation: per block, responses never outnumber the
 *    requests they answer, and at quiescence every request has been
 *    matched (no in-flight transactions survive a drained queue);
 *  - busy-entry liveness: a block may not sit with requests
 *    outstanding for longer than a bounded pending window.
 *
 * Violations are recorded as structured check::Violation values
 * carrying the block, the implicated nodes, the states seen, and a
 * ring buffer of the last-k delivered messages -- the same
 * ring-buffer discipline the obs tracing layer uses -- rather than
 * aborting the process. Assertion failures inside the protocol are
 * folded in through the common/log FailureTrap.
 */

#ifndef COSMOS_CHECK_INVARIANT_ENGINE_HH
#define COSMOS_CHECK_INVARIANT_ENGINE_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "check/violation.hh"
#include "common/log.hh"
#include "proto/machine.hh"

namespace cosmos::check
{

/** Tunables of the invariant engine. */
struct CheckOptions
{
    /** Delivered messages kept in the violation history ring. */
    unsigned historyDepth = 12;

    /**
     * Ticks a block may continuously have unanswered requests before
     * the liveness invariant reports it stuck. Generous by default:
     * a legitimate transaction spans a few network hops plus memory
     * and occupancy, i.e. hundreds of ticks, not a million.
     */
    Tick maxPendingWindow = 1'000'000;

    /** Run the per-block checks after every delivery (else only the
     *  quiescent sweep). */
    bool perMessage = true;

    /** Recording stops after this many violations (the count of
     *  suppressed ones is still kept). */
    unsigned maxViolations = 64;
};

class InvariantEngine
{
  public:
    /** Installs itself as @p machine's delivery probe. */
    explicit InvariantEngine(proto::Machine &machine,
                             CheckOptions opts = {});
    ~InvariantEngine();

    InvariantEngine(const InvariantEngine &) = delete;
    InvariantEngine &operator=(const InvariantEngine &) = delete;

    /**
     * Full-machine sweep for quiescent points (event queue drained):
     * SWMR + directory agreement over every known block, message
     * conservation (no outstanding requests), and liveness (no busy
     * caches or directory entries).
     */
    void checkQuiescent();

    /** Fold a trapped assertion/panic into the violation list. */
    void noteFailure(const RecoverableError &e);

    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    bool clean() const { return violations_.empty(); }

    /** Violations dropped after maxViolations was reached. */
    std::uint64_t suppressed() const { return suppressed_; }

    /** Messages observed through the delivery probe. */
    std::uint64_t delivered() const { return delivered_; }

  private:
    void onDelivered(const proto::Msg &m, Tick when);
    /** SWMR + directory agreement for a single block. */
    void checkBlock(Addr block, Tick when);
    void scanPendingWindows(Tick when);
    void report(Violation v);
    std::vector<std::string> historySnapshot() const;

    proto::Machine &machine_;
    CheckOptions opts_;
    std::deque<std::string> history_;

    /** Request/response bookkeeping for one block. */
    struct Flight
    {
        std::int64_t outstanding = 0;
        Tick since = 0;
        bool reportedStuck = false;
    };

    std::unordered_map<Addr, Flight> flights_;
    std::vector<Violation> violations_;
    std::uint64_t delivered_ = 0;
    std::uint64_t suppressed_ = 0;
};

} // namespace cosmos::check

#endif // COSMOS_CHECK_INVARIANT_ENGINE_HH
