#include "check/violation.hh"

#include <sstream>

namespace cosmos::check
{

const char *
toString(ViolationKind k)
{
    switch (k) {
      case ViolationKind::multiple_writers:   return "multiple_writers";
      case ViolationKind::writer_and_readers: return "writer_and_readers";
      case ViolationKind::directory_mismatch: return "directory_mismatch";
      case ViolationKind::conservation:       return "conservation";
      case ViolationKind::liveness:           return "liveness";
      case ViolationKind::assertion:          return "assertion";
    }
    return "?";
}

std::string
describeBlockNodes(Addr block, const std::vector<NodeId> &nodes)
{
    std::ostringstream os;
    os << "block 0x" << std::hex << block << std::dec;
    if (!nodes.empty()) {
        os << " nodes [";
        for (std::size_t i = 0; i < nodes.size(); ++i)
            os << (i ? ", " : "") << nodes[i];
        os << "]";
    }
    return os.str();
}

std::string
Violation::format() const
{
    std::ostringstream os;
    os << toString(kind) << " at t=" << when << ": "
       << describeBlockNodes(block, nodes) << "\n  " << detail;
    if (!history.empty()) {
        os << "\n  last " << history.size() << " messages:";
        for (const auto &h : history)
            os << "\n    " << h;
    }
    return os.str();
}

} // namespace cosmos::check
