/**
 * @file
 * Blocking single-issue processors and the Runtime that drives one
 * application iteration through the machine.
 */

#ifndef COSMOS_RUNTIME_PROCESSOR_HH
#define COSMOS_RUNTIME_PROCESSOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "proto/machine.hh"
#include "runtime/barrier.hh"
#include "runtime/lock_manager.hh"
#include "runtime/program.hh"

namespace cosmos::runtime
{

/**
 * One processor executing its Program in order. With an issue window
 * of 1 (the paper's blocking target model) every read/write blocks
 * until the cache completes it; with a wider window up to W misses
 * to distinct blocks overlap (non-blocking caches). Accesses to a
 * block with a miss in flight, and all synchronization operations,
 * wait for the relevant drains, so per-block access order -- the
 * thing message signatures depend on -- is preserved.
 */
class Processor
{
  public:
    using DoneFn = std::function<void()>;

    Processor(NodeId id, proto::CacheController &cache,
              LockManager &locks, Barrier &barrier,
              sim::EventQueue &eq, unsigned window = 1);

    /** Begin executing @p program; @p done fires at the last op. */
    void run(Program program, DoneFn done);

    NodeId id() const { return id_; }
    std::uint64_t opsExecuted() const { return opsExecuted_; }

  private:
    void step();
    void next();

    NodeId id_;
    proto::CacheController &cache_;
    LockManager &locks_;
    Barrier &barrier_;
    sim::EventQueue &eq_;
    unsigned window_;

    Program program_;
    std::size_t pc_ = 0;
    std::size_t outstanding_ = 0;
    DoneFn done_;
    std::uint64_t opsExecuted_ = 0;
};

/**
 * Owns the processors, lock manager, and barrier for a Machine and
 * runs per-iteration program sets to completion.
 */
class Runtime
{
  public:
    explicit Runtime(proto::Machine &machine);

    /**
     * Execute one iteration: every processor runs its program; the
     * event queue is drained. Panics if the queue drains while a
     * processor is still blocked (deadlock).
     */
    void runPrograms(std::vector<Program> programs);

    Processor &processor(NodeId n) { return *procs_[n]; }
    LockManager &lockManager() { return locks_; }

  private:
    proto::Machine &machine_;
    LockManager locks_;
    Barrier barrier_;
    std::vector<std::unique_ptr<Processor>> procs_;
};

} // namespace cosmos::runtime

#endif // COSMOS_RUNTIME_PROCESSOR_HH
