#include "runtime/barrier.hh"

#include <utility>

#include "common/log.hh"

namespace cosmos::runtime
{

Barrier::Barrier(sim::EventQueue &eq, NodeId parties,
                 Tick release_latency)
    : eq_(eq), parties_(parties), releaseLatency_(release_latency)
{
    cosmos_assert(parties > 0, "barrier needs at least one party");
}

void
Barrier::arrive(ResumeFn resume)
{
    waiting_.push_back(std::move(resume));
    cosmos_assert(waiting_.size() <= parties_,
                  "more arrivals than barrier parties");
    if (waiting_.size() == parties_) {
        std::vector<ResumeFn> release = std::move(waiting_);
        waiting_.clear();
        for (auto &fn : release)
            eq_.scheduleAfter(releaseLatency_, std::move(fn));
    }
}

} // namespace cosmos::runtime
