/**
 * @file
 * Runtime lock service.
 *
 * Locks serialize critical sections; the *order* in which processors
 * win a lock is what creates migratory block movement in the
 * workloads. Lock traffic itself is a runtime service and produces no
 * coherence messages (the paper excludes synchronization variables
 * from its traces, §5.1).
 */

#ifndef COSMOS_RUNTIME_LOCK_MANAGER_HH
#define COSMOS_RUNTIME_LOCK_MANAGER_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace cosmos::runtime
{

/** FIFO lock manager with a fixed acquire/hand-off latency. */
class LockManager
{
  public:
    using GrantFn = std::function<void()>;

    LockManager(sim::EventQueue &eq, Tick grant_latency);

    /**
     * Request lock @p l; @p granted fires (via the event queue) when
     * the lock is held by the caller.
     */
    void acquire(LockId l, GrantFn granted);

    /** Release lock @p l, handing it to the next waiter if any. */
    void release(LockId l);

    /** True if @p l is currently held. */
    bool held(LockId l) const;

    /** Number of processors waiting on @p l. */
    std::size_t waiters(LockId l) const;

  private:
    struct LockState
    {
        bool held = false;
        std::deque<GrantFn> waiting;
    };

    sim::EventQueue &eq_;
    Tick grantLatency_;
    std::unordered_map<LockId, LockState> locks_;
};

} // namespace cosmos::runtime

#endif // COSMOS_RUNTIME_LOCK_MANAGER_HH
