/**
 * @file
 * Per-processor access programs.
 *
 * Workload kernels do their real computation on the host and express
 * the *shared-memory access skeleton* of one application iteration as
 * a per-processor list of operations: reads, writes, lock/unlock of a
 * runtime lock, barriers, and think time. Synchronization is a runtime
 * service (its traffic is not part of the coherence message stream,
 * matching the paper's exclusion of barrier variables, §5.1).
 */

#ifndef COSMOS_RUNTIME_PROGRAM_HH
#define COSMOS_RUNTIME_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace cosmos::runtime
{

/** One step of a processor's program. */
struct Op
{
    enum class Kind : std::uint8_t
    {
        read,    ///< load from addr
        write,   ///< store to addr
        lock,    ///< acquire runtime lock
        unlock,  ///< release runtime lock
        barrier, ///< global barrier
        think,   ///< local compute for delay ticks
    };

    Kind kind{};
    Addr addr = 0;
    LockId lock = 0;
    Tick delay = 0;
};

/** A processor's ordered operation list for one iteration. */
using Program = std::vector<Op>;

/**
 * Builds the per-processor programs of one iteration.
 *
 * The per-processor proxy keeps kernel code readable:
 * @code
 *   b.proc(p).read(a).write(a).lockAcq(l).write(f).unlock(l);
 *   b.barrier();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** Chainable per-processor appender. */
    class ProcRef
    {
      public:
        ProcRef(ProgramBuilder &b, NodeId p) : b_(b), p_(p) {}

        ProcRef &
        read(Addr a)
        {
            b_.programs_[p_].push_back(
                {Op::Kind::read, a, 0, 0});
            return *this;
        }

        ProcRef &
        write(Addr a)
        {
            b_.programs_[p_].push_back(
                {Op::Kind::write, a, 0, 0});
            return *this;
        }

        ProcRef &
        lockAcq(LockId l)
        {
            b_.programs_[p_].push_back(
                {Op::Kind::lock, 0, l, 0});
            return *this;
        }

        ProcRef &
        unlock(LockId l)
        {
            b_.programs_[p_].push_back(
                {Op::Kind::unlock, 0, l, 0});
            return *this;
        }

        ProcRef &
        think(Tick t)
        {
            b_.programs_[p_].push_back(
                {Op::Kind::think, 0, 0, t});
            return *this;
        }

      private:
        ProgramBuilder &b_;
        NodeId p_;
    };

    explicit ProgramBuilder(NodeId num_procs)
        : programs_(num_procs)
    {
    }

    /** Appender for processor @p p. */
    ProcRef
    proc(NodeId p)
    {
        cosmos_assert(p < programs_.size(), "bad processor ", p);
        return ProcRef(*this, p);
    }

    /** Append a barrier to every processor. */
    void
    barrier()
    {
        for (auto &prog : programs_)
            prog.push_back({Op::Kind::barrier, 0, 0, 0});
    }

    NodeId numProcs() const
    {
        return static_cast<NodeId>(programs_.size());
    }

    /** Total number of operations across processors. */
    std::size_t totalOps() const;

    /** Move the built programs out. */
    std::vector<Program> take() { return std::move(programs_); }

  private:
    friend class ProcRef;
    std::vector<Program> programs_;
};

} // namespace cosmos::runtime

#endif // COSMOS_RUNTIME_PROGRAM_HH
