#include "runtime/lock_manager.hh"

#include <utility>

#include "common/log.hh"

namespace cosmos::runtime
{

LockManager::LockManager(sim::EventQueue &eq, Tick grant_latency)
    : eq_(eq), grantLatency_(grant_latency)
{
}

void
LockManager::acquire(LockId l, GrantFn granted)
{
    LockState &s = locks_[l];
    if (!s.held) {
        s.held = true;
        eq_.scheduleAfter(grantLatency_, std::move(granted));
    } else {
        s.waiting.push_back(std::move(granted));
    }
}

void
LockManager::release(LockId l)
{
    auto it = locks_.find(l);
    cosmos_assert(it != locks_.end() && it->second.held,
                  "release of unheld lock ", l);
    LockState &s = it->second;
    if (s.waiting.empty()) {
        s.held = false;
        return;
    }
    GrantFn next = std::move(s.waiting.front());
    s.waiting.pop_front();
    eq_.scheduleAfter(grantLatency_, std::move(next));
}

bool
LockManager::held(LockId l) const
{
    auto it = locks_.find(l);
    return it != locks_.end() && it->second.held;
}

std::size_t
LockManager::waiters(LockId l) const
{
    auto it = locks_.find(l);
    return it == locks_.end() ? 0 : it->second.waiting.size();
}

} // namespace cosmos::runtime
