/**
 * @file
 * Runtime barrier service.
 *
 * Stache implements barriers with point-to-point messages whose
 * traffic the paper excludes from its traces (§5.1); here the barrier
 * is a runtime service with a fixed release latency.
 */

#ifndef COSMOS_RUNTIME_BARRIER_HH
#define COSMOS_RUNTIME_BARRIER_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace cosmos::runtime
{

/** Reusable N-party barrier. */
class Barrier
{
  public:
    using ResumeFn = std::function<void()>;

    Barrier(sim::EventQueue &eq, NodeId parties, Tick release_latency);

    /**
     * Arrive at the barrier; @p resume fires once all parties have
     * arrived. The barrier resets automatically for reuse.
     */
    void arrive(ResumeFn resume);

    /** Number of parties currently waiting. */
    std::size_t waiting() const { return waiting_.size(); }

  private:
    sim::EventQueue &eq_;
    NodeId parties_;
    Tick releaseLatency_;
    std::vector<ResumeFn> waiting_;
};

} // namespace cosmos::runtime

#endif // COSMOS_RUNTIME_BARRIER_HH
