#include "runtime/program.hh"

namespace cosmos::runtime
{

std::size_t
ProgramBuilder::totalOps() const
{
    std::size_t n = 0;
    for (const auto &p : programs_)
        n += p.size();
    return n;
}

} // namespace cosmos::runtime
